#include "logic/gadgets.h"

namespace relcomp {
namespace {

const Value kZero = Value::Int(0);
const Value kOne = Value::Int(1);

}  // namespace

GadgetNames GadgetNames::WithSuffix(const std::string& suffix) const {
  GadgetNames out;
  out.r01 = r01 + suffix;
  out.ror = ror + suffix;
  out.rand = rand + suffix;
  out.rnot = rnot + suffix;
  return out;
}

void AddGadgetSchemas(DatabaseSchema* schema, const GadgetNames& names) {
  Domain boolean = Domain::Boolean();
  schema->AddRelation(
      RelationSchema(names.r01, {Attribute{"x", boolean}}));
  schema->AddRelation(RelationSchema(
      names.ror,
      {Attribute{"a1", boolean}, Attribute{"a2", boolean},
       Attribute{"b", boolean}}));
  schema->AddRelation(RelationSchema(
      names.rand,
      {Attribute{"a1", boolean}, Attribute{"a2", boolean},
       Attribute{"b", boolean}}));
  schema->AddRelation(RelationSchema(
      names.rnot, {Attribute{"a", boolean}, Attribute{"abar", boolean}}));
}

void FillGadgetInstance(Instance* instance, const GadgetNames& names) {
  instance->AddTuple(names.r01, {kZero});
  instance->AddTuple(names.r01, {kOne});
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      instance->AddTuple(names.ror,
                         {Value::Int(a), Value::Int(b), Value::Int(a | b)});
      instance->AddTuple(names.rand,
                         {Value::Int(a), Value::Int(b), Value::Int(a & b)});
    }
  }
  instance->AddTuple(names.rnot, {kZero, kOne});
  instance->AddTuple(names.rnot, {kOne, kZero});
}

CCSet GadgetBoundCcs(const GadgetNames& names,
                     const GadgetNames& master_names) {
  CCSet ccs;
  auto identity_cc = [](const std::string& name, const std::string& rel,
                        const std::string& master, int arity) {
    std::vector<CTerm> head;
    std::vector<CTerm> args;
    std::vector<int> cols;
    for (int i = 0; i < arity; ++i) {
      VarId v{i};
      head.push_back(v);
      args.push_back(v);
      cols.push_back(i);
    }
    ConjunctiveQuery q(std::move(head), {RelAtom{rel, std::move(args)}});
    return ContainmentConstraint(name, std::move(q), master, std::move(cols));
  };
  ccs.push_back(identity_cc("bound_r01", names.r01, master_names.r01, 1));
  ccs.push_back(identity_cc("bound_ror", names.ror, master_names.ror, 3));
  ccs.push_back(identity_cc("bound_rand", names.rand, master_names.rand, 3));
  ccs.push_back(identity_cc("bound_rnot", names.rnot, master_names.rnot, 2));
  return ccs;
}

namespace {

// Term carrying the truth value of a literal: the variable's term for a
// positive literal; a fresh Rnot output for a negative one.
CTerm LiteralTerm(const Lit& lit, const std::vector<CTerm>& var_terms,
                  const GadgetNames& names, int32_t* next_var,
                  std::vector<RelAtom>* atoms) {
  CTerm base = var_terms[static_cast<size_t>(lit.var)];
  if (!lit.neg) return base;
  VarId flipped{(*next_var)++};
  atoms->push_back(RelAtom{names.rnot, {base, flipped}});
  return flipped;
}

}  // namespace

CTerm AppendCnfEvaluation(const Cnf3& cnf, const std::vector<CTerm>& var_terms,
                          const GadgetNames& names, int32_t* next_var,
                          std::vector<RelAtom>* atoms) {
  if (cnf.clauses.empty()) return CTerm(kOne);
  std::vector<CTerm> clause_terms;
  clause_terms.reserve(cnf.clauses.size());
  for (const Clause3& clause : cnf.clauses) {
    CTerm l1 = LiteralTerm(clause[0], var_terms, names, next_var, atoms);
    CTerm l2 = LiteralTerm(clause[1], var_terms, names, next_var, atoms);
    CTerm l3 = LiteralTerm(clause[2], var_terms, names, next_var, atoms);
    VarId or12{(*next_var)++};
    atoms->push_back(RelAtom{names.ror, {l1, l2, or12}});
    VarId or123{(*next_var)++};
    atoms->push_back(RelAtom{names.ror, {or12, l3, or123}});
    clause_terms.push_back(or123);
  }
  CTerm acc = clause_terms[0];
  for (size_t i = 1; i < clause_terms.size(); ++i) {
    VarId conj{(*next_var)++};
    atoms->push_back(RelAtom{names.rand, {acc, clause_terms[i], conj}});
    acc = conj;
  }
  return acc;
}

void AppendBooleanGenerators(const std::vector<CTerm>& terms,
                             const GadgetNames& names,
                             std::vector<RelAtom>* atoms) {
  for (const CTerm& t : terms) {
    atoms->push_back(RelAtom{names.r01, {t}});
  }
}

void AppendQallAtoms(const GadgetNames& names, std::vector<RelAtom>* atoms) {
  atoms->push_back(RelAtom{names.r01, {kZero}});
  atoms->push_back(RelAtom{names.r01, {kOne}});
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      atoms->push_back(RelAtom{
          names.ror, {Value::Int(a), Value::Int(b), Value::Int(a | b)}});
      atoms->push_back(RelAtom{
          names.rand, {Value::Int(a), Value::Int(b), Value::Int(a & b)}});
    }
  }
  atoms->push_back(RelAtom{names.rnot, {kZero, kOne}});
  atoms->push_back(RelAtom{names.rnot, {kOne, kZero}});
}

}  // namespace relcomp
