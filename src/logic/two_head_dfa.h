// Deterministic finite 2-head automata (Lemma 4.6 / Spielmann 2000): the
// substrate behind the undecidability of FP satisfiability under FDs. The
// emptiness problem is undecidable in general; this simulator decides
// membership for concrete words and emptiness up to a length bound, which is
// what the executable reduction (reductions/lemma46_dfa) is validated
// against.
#ifndef RELCOMP_LOGIC_TWO_HEAD_DFA_H_
#define RELCOMP_LOGIC_TWO_HEAD_DFA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace relcomp {

/// Input symbol for one head: 0, 1, or ε (head reads nothing this step).
enum class HeadSymbol : uint8_t { kZero = 0, kOne = 1, kEpsilon = 2 };

/// A transition ∆(s, in1, in2) = (s', move1, move2); moves are 0 or +1.
struct DfaTransition {
  int next_state = 0;
  int move1 = 0;
  int move2 = 0;
};

/// A deterministic finite 2-head automaton over Σ = {0, 1}.
class TwoHeadDfa {
 public:
  TwoHeadDfa(int num_states, int initial_state, int accepting_state)
      : num_states_(num_states),
        initial_(initial_state),
        accepting_(accepting_state) {}

  int num_states() const { return num_states_; }
  int initial_state() const { return initial_; }
  int accepting_state() const { return accepting_; }

  /// Defines ∆(state, in1, in2); overwrites any previous entry.
  void AddTransition(int state, HeadSymbol in1, HeadSymbol in2,
                     DfaTransition transition);

  /// The transition for a configuration, if defined.
  std::optional<DfaTransition> Lookup(int state, HeadSymbol in1,
                                      HeadSymbol in2) const;

  /// Membership: does the automaton accept `word` (bits as chars '0'/'1')?
  /// Runs the deterministic computation with cycle detection over the finite
  /// configuration space S × [0,|w|] × [0,|w|]. A head observes ε exactly
  /// when it sits on the end-of-word position, and the applied transition
  /// must match the observed symbol pair exactly (the semantics the
  /// Lemma 4.6 FP encoding implements).
  bool Accepts(const std::string& word) const;

  /// True if no word of length ≤ max_len is accepted.
  bool EmptyUpTo(int max_len) const;

  /// All transitions as (state, in1, in2, transition) tuples.
  std::vector<std::tuple<int, HeadSymbol, HeadSymbol, DfaTransition>>
  Transitions() const;

 private:
  int num_states_;
  int initial_;
  int accepting_;
  std::map<std::tuple<int, int, int>, DfaTransition> delta_;
};

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_TWO_HEAD_DFA_H_
