#include "logic/fd.h"

#include <algorithm>

namespace relcomp {

std::string Fd::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(lhs[i]);
  }
  out += "} -> " + std::to_string(rhs);
  return out;
}

std::vector<int> FdClosure(const std::vector<int>& attrs,
                           const std::vector<Fd>& sigma, int num_attrs) {
  std::vector<bool> in_closure(static_cast<size_t>(num_attrs), false);
  for (int a : attrs) {
    if (a >= 0 && a < num_attrs) in_closure[static_cast<size_t>(a)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : sigma) {
      if (fd.rhs < 0 || fd.rhs >= num_attrs ||
          in_closure[static_cast<size_t>(fd.rhs)]) {
        continue;
      }
      bool all = true;
      for (int a : fd.lhs) {
        if (a < 0 || a >= num_attrs || !in_closure[static_cast<size_t>(a)]) {
          all = false;
          break;
        }
      }
      if (all) {
        in_closure[static_cast<size_t>(fd.rhs)] = true;
        changed = true;
      }
    }
  }
  std::vector<int> out;
  for (int a = 0; a < num_attrs; ++a) {
    if (in_closure[static_cast<size_t>(a)]) out.push_back(a);
  }
  return out;
}

bool FdImplies(const std::vector<Fd>& sigma, const Fd& phi, int num_attrs) {
  std::vector<int> closure = FdClosure(phi.lhs, sigma, num_attrs);
  return std::binary_search(closure.begin(), closure.end(), phi.rhs);
}

std::vector<Fd> RandomFds(int num_attrs, int num_fds, uint64_t seed) {
  auto next = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  std::vector<Fd> fds;
  for (int i = 0; i < num_fds; ++i) {
    Fd fd;
    int lhs_size = 1 + static_cast<int>(next() % 2);
    for (int j = 0; j < lhs_size; ++j) {
      fd.lhs.push_back(
          static_cast<int>(next() % static_cast<uint64_t>(num_attrs)));
    }
    std::sort(fd.lhs.begin(), fd.lhs.end());
    fd.lhs.erase(std::unique(fd.lhs.begin(), fd.lhs.end()), fd.lhs.end());
    fd.rhs = static_cast<int>(next() % static_cast<uint64_t>(num_attrs));
    fds.push_back(std::move(fd));
  }
  return fds;
}

}  // namespace relcomp
