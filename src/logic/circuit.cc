#include "logic/circuit.h"

namespace relcomp {

int Circuit::NumInputs() const {
  int n = 0;
  for (const Gate& g : gates_) {
    if (g.type == GateType::kIn) ++n;
  }
  return n;
}

Status Circuit::Validate() const {
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.type) {
      case GateType::kIn:
        break;
      case GateType::kNot:
        if (g.in1 < 0 || g.in1 >= static_cast<int>(i)) {
          return Status::InvalidArgument("NOT gate input out of range");
        }
        break;
      case GateType::kAnd:
      case GateType::kOr:
        if (g.in1 < 0 || g.in1 >= static_cast<int>(i) || g.in2 < 0 ||
            g.in2 >= static_cast<int>(i)) {
          return Status::InvalidArgument("binary gate input out of range");
        }
        break;
    }
  }
  if (gates_.empty()) {
    return Status::InvalidArgument("empty circuit");
  }
  return Status::OK();
}

bool Circuit::Eval(uint64_t input) const {
  std::vector<bool> values(gates_.size());
  int next_input = 0;
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.type) {
      case GateType::kIn:
        values[i] = (input >> next_input) & 1;
        ++next_input;
        break;
      case GateType::kNot:
        values[i] = !values[static_cast<size_t>(g.in1)];
        break;
      case GateType::kAnd:
        values[i] = values[static_cast<size_t>(g.in1)] &&
                    values[static_cast<size_t>(g.in2)];
        break;
      case GateType::kOr:
        values[i] = values[static_cast<size_t>(g.in1)] ||
                    values[static_cast<size_t>(g.in2)];
        break;
    }
  }
  return values.back();
}

bool Circuit::IsTautology() const {
  int n = NumInputs();
  uint64_t limit = uint64_t{1} << n;
  for (uint64_t w = 0; w < limit; ++w) {
    if (!Eval(w)) return false;
  }
  return true;
}

std::string Circuit::ToString() const {
  std::string out;
  for (size_t i = 0; i < gates_.size(); ++i) {
    if (!out.empty()) out += "; ";
    out += "g" + std::to_string(i) + "=";
    switch (gates_[i].type) {
      case GateType::kIn:
        out += "in";
        break;
      case GateType::kNot:
        out += "!g" + std::to_string(gates_[i].in1);
        break;
      case GateType::kAnd:
        out += "g" + std::to_string(gates_[i].in1) + "&g" +
               std::to_string(gates_[i].in2);
        break;
      case GateType::kOr:
        out += "g" + std::to_string(gates_[i].in1) + "|g" +
               std::to_string(gates_[i].in2);
        break;
    }
  }
  return out;
}

Circuit RandomCircuit(int num_inputs, int num_gates, uint64_t seed,
                      bool force_taut) {
  auto next = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  Circuit c;
  for (int i = 0; i < num_inputs; ++i) c.AddGate(Gate{GateType::kIn, -1, -1});
  for (int i = 0; i < num_gates; ++i) {
    int size = num_inputs + i;
    GateType types[] = {GateType::kAnd, GateType::kOr, GateType::kNot};
    GateType type = types[next() % 3];
    int in1 = static_cast<int>(next() % static_cast<uint64_t>(size));
    int in2 = static_cast<int>(next() % static_cast<uint64_t>(size));
    c.AddGate(Gate{type, in1, in2});
  }
  if (force_taut) {
    // out' = out | x0 | !x0 — a tautology with the same gate structure.
    int out = static_cast<int>(c.gates().size()) - 1;
    c.AddGate(Gate{GateType::kNot, 0, -1});
    int not_x0 = static_cast<int>(c.gates().size()) - 1;
    c.AddGate(Gate{GateType::kOr, 0, not_x0});
    int taut = static_cast<int>(c.gates().size()) - 1;
    c.AddGate(Gate{GateType::kOr, out, taut});
  }
  return c;
}

}  // namespace relcomp
