#include "logic/qbf.h"

namespace relcomp {
namespace {

bool EvalBlocks(const Qbf& qbf, size_t block_index, int first_var,
                uint64_t assignment) {
  if (block_index == qbf.blocks.size()) {
    return qbf.matrix.Eval(assignment);
  }
  const QuantifierBlock& block = qbf.blocks[block_index];
  uint64_t combos = uint64_t{1} << block.size;
  for (uint64_t bits = 0; bits < combos; ++bits) {
    uint64_t extended = assignment | (bits << first_var);
    bool sub = EvalBlocks(qbf, block_index + 1, first_var + block.size,
                          extended);
    if (block.forall && !sub) return false;
    if (!block.forall && sub) return true;
  }
  return block.forall;
}

}  // namespace

int Qbf::TotalVars() const {
  int n = 0;
  for (const QuantifierBlock& b : blocks) n += b.size;
  return n;
}

bool Qbf::Eval() const { return EvalBlocks(*this, 0, 0, 0); }

Qbf MakeForallExists(int nx, int ny, Cnf3 matrix) {
  Qbf qbf;
  qbf.blocks = {QuantifierBlock{true, nx}, QuantifierBlock{false, ny}};
  qbf.matrix = std::move(matrix);
  return qbf;
}

Qbf MakeExistsForallExists(int nx, int ny, int nz, Cnf3 matrix) {
  Qbf qbf;
  qbf.blocks = {QuantifierBlock{false, nx}, QuantifierBlock{true, ny},
                QuantifierBlock{false, nz}};
  qbf.matrix = std::move(matrix);
  return qbf;
}

Qbf MakeForallExistsForallExists(int nx, int ny, int nz, int nw, Cnf3 matrix) {
  Qbf qbf;
  qbf.blocks = {QuantifierBlock{true, nx}, QuantifierBlock{false, ny},
                QuantifierBlock{true, nz}, QuantifierBlock{false, nw}};
  qbf.matrix = std::move(matrix);
  return qbf;
}

}  // namespace relcomp
