// Boolean circuits for the SUCCINCT-TAUT reductions (Theorems 5.1(2) and
// 5.6(2)): gates g_i = (type, j, k) with j, k < i; the circuit computes
// f_C : {0,1}^n → {0,1}.
#ifndef RELCOMP_LOGIC_CIRCUIT_H_
#define RELCOMP_LOGIC_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace relcomp {

/// Gate kinds of a Boolean circuit.
enum class GateType { kIn, kAnd, kOr, kNot };

/// One gate; inputs refer to earlier gates (indices < own index).
struct Gate {
  GateType type = GateType::kIn;
  int in1 = -1;  // unused for kIn
  int in2 = -1;  // unused for kIn / kNot
};

/// A Boolean circuit; gate order is topological by construction, input gates
/// may appear anywhere and are numbered by order of appearance. The last
/// gate is the output.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::vector<Gate> gates) : gates_(std::move(gates)) {}

  const std::vector<Gate>& gates() const { return gates_; }
  void AddGate(Gate gate) { gates_.push_back(gate); }

  /// Number of input gates.
  int NumInputs() const;

  /// Structural well-formedness (inputs precede use, arities sensible).
  Status Validate() const;

  /// f_C(w): evaluates on the input bits (bit i of `input` feeds the i-th
  /// input gate, in gate order).
  bool Eval(uint64_t input) const;

  /// Brute-force tautology test: f_C(w) = 1 for all w (inputs ≤ ~20).
  bool IsTautology() const;

  std::string ToString() const;

 private:
  std::vector<Gate> gates_;
};

/// Deterministic pseudo-random circuit over `num_inputs` inputs with
/// `num_gates` internal gates; `force_taut` ORs the output with an always-true
/// subcircuit to manufacture tautologies.
Circuit RandomCircuit(int num_inputs, int num_gates, uint64_t seed,
                      bool force_taut);

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_CIRCUIT_H_
