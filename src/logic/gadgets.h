// The Boolean gadget relations of Figure 2 — I(0,1), I∨, I∧, I¬ — plus the
// CQ encoder that evaluates a 3CNF formula ψ through them. CQ supports
// neither ∨ nor ¬, but the paper's reductions express ψ in CQ by joining
// against these constant relations; this module is that machinery, shared by
// all reduction builders.
#ifndef RELCOMP_LOGIC_GADGETS_H_
#define RELCOMP_LOGIC_GADGETS_H_

#include <string>
#include <vector>

#include "data/instance.h"
#include "logic/cnf.h"
#include "query/containment.h"

namespace relcomp {

/// Relation names used for the gadget tables.
struct GadgetNames {
  std::string r01 = "R01";    ///< I(0,1): unary {0, 1}
  std::string ror = "Ror";    ///< I∨: (a, b, a∨b)
  std::string rand = "Rand";  ///< I∧: (a, b, a∧b)
  std::string rnot = "Rnot";  ///< I¬: (a, ¬a)

  /// The same names with a master-data suffix.
  GadgetNames WithSuffix(const std::string& suffix) const;
};

/// Adds the four gadget relation schemas (Boolean-domain attributes) to
/// `schema` under `names`.
void AddGadgetSchemas(DatabaseSchema* schema, const GadgetNames& names);

/// Populates the gadget relations of `instance` with the Fig. 2 contents.
void FillGadgetInstance(Instance* instance, const GadgetNames& names);

/// CCs pinning each database gadget relation inside its master copy
/// (R01 ⊆ Rm01 etc.); these are INDs. Master relations must use
/// `master_names` in the master schema.
CCSet GadgetBoundCcs(const GadgetNames& names, const GadgetNames& master_names);

/// Appends to `atoms` a CQ sub-plan that evaluates ψ over the gadget
/// relations: `var_terms[i]` is the term carrying the truth value of
/// variable i, fresh variables are drawn from `*next_var`, and the returned
/// term carries the truth value of ψ. An empty formula returns constant 1.
CTerm AppendCnfEvaluation(const Cnf3& cnf, const std::vector<CTerm>& var_terms,
                          const GadgetNames& names, int32_t* next_var,
                          std::vector<RelAtom>* atoms);

/// Appends atoms R01(t) for each term, generating all truth assignments of
/// the terms (the paper's "Cartesian products of I(0,1)").
void AppendBooleanGenerators(const std::vector<CTerm>& terms,
                             const GadgetNames& names,
                             std::vector<RelAtom>* atoms);

/// Appends the `Qall` constant atoms asserting all 12 gadget tuples are
/// present (used by Thm 4.8 / 6.1 reductions to pin the gadget tables).
void AppendQallAtoms(const GadgetNames& names, std::vector<RelAtom>* atoms);

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_GADGETS_H_
