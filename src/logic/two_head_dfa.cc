#include "logic/two_head_dfa.h"

namespace relcomp {

void TwoHeadDfa::AddTransition(int state, HeadSymbol in1, HeadSymbol in2,
                               DfaTransition transition) {
  delta_[{state, static_cast<int>(in1), static_cast<int>(in2)}] = transition;
}

std::optional<DfaTransition> TwoHeadDfa::Lookup(int state, HeadSymbol in1,
                                                HeadSymbol in2) const {
  auto it = delta_.find({state, static_cast<int>(in1), static_cast<int>(in2)});
  if (it == delta_.end()) return std::nullopt;
  return it->second;
}

bool TwoHeadDfa::Accepts(const std::string& word) const {
  int len = static_cast<int>(word.size());
  auto symbol_at = [&word, len](int pos) -> HeadSymbol {
    if (pos >= len) return HeadSymbol::kEpsilon;
    return word[static_cast<size_t>(pos)] == '1' ? HeadSymbol::kOne
                                                 : HeadSymbol::kZero;
  };
  int state = initial_;
  int pos1 = 0;
  int pos2 = 0;
  // The configuration space is finite; bound the run length to avoid cycles.
  int64_t max_steps =
      static_cast<int64_t>(num_states_) * (len + 1) * (len + 1) + 1;
  for (int64_t step = 0; step < max_steps; ++step) {
    if (state == accepting_) return true;
    // Strict semantics (matching the Lemma 4.6 encoding): a head reads ε
    // exactly when it sits on the end-of-word position; the transition must
    // match the pair of observed symbols exactly.
    HeadSymbol s1 = symbol_at(pos1);
    HeadSymbol s2 = symbol_at(pos2);
    std::optional<DfaTransition> t = Lookup(state, s1, s2);
    if (!t.has_value()) return false;  // stuck
    state = t->next_state;
    pos1 = std::min(pos1 + t->move1, len);
    pos2 = std::min(pos2 + t->move2, len);
  }
  return state == accepting_;
}

bool TwoHeadDfa::EmptyUpTo(int max_len) const {
  // Enumerate all binary words of length ≤ max_len.
  for (int len = 0; len <= max_len; ++len) {
    uint64_t combos = uint64_t{1} << len;
    for (uint64_t bits = 0; bits < combos; ++bits) {
      std::string word;
      for (int i = 0; i < len; ++i) {
        word += ((bits >> i) & 1) ? '1' : '0';
      }
      if (Accepts(word)) return false;
    }
  }
  return true;
}

std::vector<std::tuple<int, HeadSymbol, HeadSymbol, DfaTransition>>
TwoHeadDfa::Transitions() const {
  std::vector<std::tuple<int, HeadSymbol, HeadSymbol, DfaTransition>> out;
  for (const auto& [key, value] : delta_) {
    out.emplace_back(std::get<0>(key),
                     static_cast<HeadSymbol>(std::get<1>(key)),
                     static_cast<HeadSymbol>(std::get<2>(key)), value);
  }
  return out;
}

}  // namespace relcomp
