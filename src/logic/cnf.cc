#include "logic/cnf.h"

namespace relcomp {

bool Cnf3::Eval(uint64_t assignment) const {
  for (const Clause3& clause : clauses) {
    bool sat = false;
    for (const Lit& lit : clause) {
      bool v = (assignment >> lit.var) & 1;
      if (lit.neg ? !v : v) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

bool Cnf3::IsSatisfiable() const {
  uint64_t limit = uint64_t{1} << num_vars;
  for (uint64_t a = 0; a < limit; ++a) {
    if (Eval(a)) return true;
  }
  return false;
}

std::string Cnf3::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(" + clauses[i][0].ToString() + " | " + clauses[i][1].ToString() +
           " | " + clauses[i][2].ToString() + ")";
  }
  return out;
}

Cnf3 RandomCnf3(int num_vars, int num_clauses, uint64_t seed) {
  // SplitMix64; deterministic across platforms.
  auto next = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  Cnf3 cnf;
  cnf.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    Clause3 clause;
    for (int j = 0; j < 3; ++j) {
      clause[j].var = static_cast<int>(next() % static_cast<uint64_t>(num_vars));
      clause[j].neg = (next() & 1) != 0;
    }
    cnf.clauses.push_back(clause);
  }
  return cnf;
}

}  // namespace relcomp
