// 3CNF formulas and brute-force (satisfiability) evaluation. These drive the
// hardness reductions of the paper (Props 3.1/3.3, Thms 4.8, 5.1, 5.6, 6.1)
// and serve as ground-truth oracles in tests.
#ifndef RELCOMP_LOGIC_CNF_H_
#define RELCOMP_LOGIC_CNF_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace relcomp {

/// A literal: variable index (0-based) and sign.
struct Lit {
  int var = 0;
  bool neg = false;

  /// Positive literal of variable v.
  static Lit Pos(int v) { return Lit{v, false}; }
  /// Negative literal of variable v.
  static Lit Neg(int v) { return Lit{v, true}; }

  std::string ToString() const {
    return (neg ? "!x" : "x") + std::to_string(var);
  }
};

/// A 3-literal clause.
using Clause3 = std::array<Lit, 3>;

/// An instance of 3SAT: ψ = C1 ∧ ... ∧ Cr over variables 0..num_vars-1.
struct Cnf3 {
  int num_vars = 0;
  std::vector<Clause3> clauses;

  /// ψ under the assignment encoded bitwise (bit v of `assignment` is the
  /// truth value of variable v). num_vars must be ≤ 63.
  bool Eval(uint64_t assignment) const;

  /// Brute-force satisfiability (num_vars ≤ ~25 practical).
  bool IsSatisfiable() const;

  std::string ToString() const;
};

/// A deterministic pseudo-random 3CNF generator (for benchmark workloads).
Cnf3 RandomCnf3(int num_vars, int num_clauses, uint64_t seed);

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_CNF_H_
