// Quantified 3SAT instances with alternating blocks, evaluated by brute
// force. The paper's lower bounds reduce from ∀∃ (Πp2), ∃∀∃ (Σp3), ∀∃∀∃ (Πp4)
// 3SAT; these evaluators are the ground-truth oracles for those reductions.
#ifndef RELCOMP_LOGIC_QBF_H_
#define RELCOMP_LOGIC_QBF_H_

#include <vector>

#include "logic/cnf.h"

namespace relcomp {

/// A quantifier block: kind plus the number of consecutive variables it
/// binds. Blocks bind variables left to right: the first block binds
/// variables [0, size), the next [size, size+size'), etc.
struct QuantifierBlock {
  bool forall = false;  // false: ∃, true: ∀
  int size = 0;
};

/// A quantified Boolean formula over a 3CNF matrix.
struct Qbf {
  std::vector<QuantifierBlock> blocks;
  Cnf3 matrix;

  /// Total number of quantified variables; must equal matrix.num_vars.
  int TotalVars() const;

  /// Brute-force truth evaluation (total vars ≤ ~20 practical).
  bool Eval() const;
};

/// ∀X ∃Y ψ with |X| = nx, |Y| = ny (X's variables come first).
Qbf MakeForallExists(int nx, int ny, Cnf3 matrix);

/// ∃X ∀Y ∃Z ψ.
Qbf MakeExistsForallExists(int nx, int ny, int nz, Cnf3 matrix);

/// ∀X ∃Y ∀Z ∃W ψ.
Qbf MakeForallExistsForallExists(int nx, int ny, int nz, int nw, Cnf3 matrix);

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_QBF_H_
