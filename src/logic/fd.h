// Functional dependencies with Armstrong-closure implication. FD implication
// is the decidable fragment against which the Prop 3.1 reduction (FDs as
// constraints → RCDP) is validated; with INDs added the implication problem —
// and hence RCDP/RCQP — becomes undecidable, which is the point of Prop 3.1.
#ifndef RELCOMP_LOGIC_FD_H_
#define RELCOMP_LOGIC_FD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relcomp {

/// An FD X → A over attribute indices of a single relation (A a single
/// attribute; X → Y decomposes into singletons).
struct Fd {
  std::vector<int> lhs;
  int rhs = 0;

  std::string ToString() const;
};

/// Attribute-set closure X⁺ under Σ (Armstrong axioms; indices < num_attrs).
std::vector<int> FdClosure(const std::vector<int>& attrs,
                           const std::vector<Fd>& sigma, int num_attrs);

/// Σ ⊨ φ via closure: φ.rhs ∈ (φ.lhs)⁺.
bool FdImplies(const std::vector<Fd>& sigma, const Fd& phi, int num_attrs);

/// Deterministic pseudo-random FD set for property tests / benches.
std::vector<Fd> RandomFds(int num_attrs, int num_fds, uint64_t seed);

}  // namespace relcomp

#endif  // RELCOMP_LOGIC_FD_H_
