#include "obs/http_endpoint.h"

#include <chrono>
#include <utility>

namespace relcomp {
namespace obs {

namespace {

constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonContentType = "application/json";
constexpr const char* kTextContentType = "text/plain; charset=utf-8";

/// Every routable path. Doubles as the bounded label vocabulary for the
/// endpoint's own metrics: an unknown path records as "other", so a
/// scanner probing random URLs cannot grow the label space.
constexpr const char* kKnownPaths[] = {
    "/",       "/healthz", "/readyz", "/metrics",      "/metrics.json",
    "/traces", "/slow",    "/report", "/debug/active",
};

const char* kIndexBody =
    "relcomp live observability endpoint\n"
    "\n"
    "  /metrics        Prometheus text exposition (every registered family)\n"
    "  /metrics.json   the same dump as JSON (histograms carry p50/p95/p99)\n"
    "  /traces         finished request traces, Chrome trace-event JSON\n"
    "                  (load in ui.perfetto.dev or chrome://tracing)\n"
    "  /slow           worst end-to-end decisions currently retained\n"
    "  /report         the ObsReport dashboard (vitals, tenants, recorder)\n"
    "  /debug/active   evaluations running right now, with heartbeat ages\n"
    "  /healthz        liveness (200 while the endpoint serves)\n"
    "  /readyz         readiness (200 once settings are registered and the\n"
    "                  worker pool is live, 503 before)\n";

net::HttpResponse TextResponse(int code, const std::string& body,
                               const char* content_type) {
  net::HttpResponse response;
  response.code = code;
  response.content_type = content_type;
  response.body = body;
  return response;
}

/// Renders one surface callback, or 503 when it was never wired.
net::HttpResponse FromSurface(const std::function<std::string()>& surface,
                              const char* content_type) {
  if (surface == nullptr) {
    return TextResponse(503, "503 surface not wired\n", kTextContentType);
  }
  return TextResponse(200, surface(), content_type);
}

}  // namespace

HttpEndpoint::HttpEndpoint(ObsSurfaces surfaces, MetricsRegistry* registry)
    : surfaces_(std::move(surfaces)), registry_(registry) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

Status HttpEndpoint::Start(const ObsHttpOptions& options) {
  if (registry_ != nullptr) {
    // Pre-create the endpoint's instruments for every routable path so
    // the very first scrape already lists all three families — a
    // monitoring system should never have to request twice to learn
    // what exists.
    inflight_ = registry_->GetGauge(kMetricHttpInflightRequests);
    for (const char* path : kKnownPaths) {
      registry_->GetHistogram(kMetricHttpHandlerLatencyMicros,
                              {{"path", path}});
      registry_->GetCounter(kMetricHttpRequestsTotal,
                            {{"code", "200"}, {"path", path}});
    }
  }
  net::HttpServerOptions server_options;
  server_options.host = options.host;
  server_options.port = options.port;
  server_options.worker_threads = options.worker_threads;
  server_options.max_head_bytes = options.max_head_bytes;
  return server_.Start(server_options, [this](const net::HttpRequest& request) {
    return Handle(request);
  });
}

void HttpEndpoint::Stop() { server_.Stop(); }

net::HttpResponse HttpEndpoint::Handle(const net::HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  if (inflight_ != nullptr) inflight_->Add(1);

  const char* path_label = "other";
  net::HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response = TextResponse(405, "405 " +
                                     std::string(net::HttpStatusReason(405)) +
                                     ": use GET or HEAD\n",
                            kTextContentType);
    response.extra_headers.emplace_back("Allow", "GET, HEAD");
    // Still attribute the request to the path it aimed at (if known).
    Route(request.Path(), &path_label);
  } else {
    response = Route(request.Path(), &path_label);
  }

  if (inflight_ != nullptr) inflight_->Add(-1);
  if (registry_ != nullptr) {
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    Histogram* latency = registry_->GetHistogram(kMetricHttpHandlerLatencyMicros,
                                                 {{"path", path_label}});
    if (latency != nullptr) latency->Record(static_cast<uint64_t>(micros));
    Counter* requests = registry_->GetCounter(
        kMetricHttpRequestsTotal,
        {{"code", std::to_string(response.code)}, {"path", path_label}});
    if (requests != nullptr) requests->Inc();
  }
  return response;
}

net::HttpResponse HttpEndpoint::Route(const std::string& path,
                                      const char** path_label) {
  for (const char* known : kKnownPaths) {
    if (path == known) {
      *path_label = known;
      break;
    }
  }
  if (path == "/") {
    return TextResponse(200, kIndexBody, kTextContentType);
  }
  if (path == "/healthz") {
    return TextResponse(200, "ok\n", kTextContentType);
  }
  if (path == "/readyz") {
    const bool ready = surfaces_.ready == nullptr || surfaces_.ready();
    return ready ? TextResponse(200, "ready\n", kTextContentType)
                 : TextResponse(503, "not ready\n", kTextContentType);
  }
  if (path == "/metrics") {
    return FromSurface(surfaces_.metrics_prometheus, kPromContentType);
  }
  if (path == "/metrics.json") {
    return FromSurface(surfaces_.metrics_json, kJsonContentType);
  }
  if (path == "/traces") {
    return FromSurface(surfaces_.traces_json, kJsonContentType);
  }
  if (path == "/slow") {
    return FromSurface(surfaces_.slow_text, kTextContentType);
  }
  if (path == "/report") {
    return FromSurface(surfaces_.report_text, kTextContentType);
  }
  if (path == "/debug/active") {
    return FromSurface(surfaces_.active_text, kTextContentType);
  }
  return TextResponse(404, "404 " + std::string(net::HttpStatusReason(404)) +
                               "\n\n" + kIndexBody,
                      kTextContentType);
}

}  // namespace obs
}  // namespace relcomp
