#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace relcomp {
namespace obs {

namespace {

// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// JSON string escaping for the small character set metric names/labels use.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// {a="1",b="2"} — empty string for an empty label set.
std::string PromLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

// Same, but with an extra label appended (Prometheus histogram `le`).
std::string PromLabelsWith(const LabelSet& labels, const std::string& key,
                           const std::string& value) {
  LabelSet extended = labels;
  extended.emplace_back(key, value);
  return PromLabels(extended);
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void MetricsDump::AddCounter(const std::string& name, const LabelSet& labels,
                             uint64_t value, const std::string& help) {
  Row row;
  row.type = RowType::kCounter;
  row.name = name;
  row.labels = labels;
  row.help = help;
  row.scalar = static_cast<int64_t>(value);
  rows_.push_back(std::move(row));
}

void MetricsDump::AddGauge(const std::string& name, const LabelSet& labels,
                           int64_t value, const std::string& help) {
  Row row;
  row.type = RowType::kGauge;
  row.name = name;
  row.labels = labels;
  row.help = help;
  row.scalar = value;
  rows_.push_back(std::move(row));
}

void MetricsDump::AddHistogram(const std::string& name, const LabelSet& labels,
                               const HistogramData& data,
                               const std::string& help) {
  Row row;
  row.type = RowType::kHistogram;
  row.name = name;
  row.labels = labels;
  row.help = help;
  row.data = data;
  rows_.push_back(std::move(row));
}

void MetricsDump::AddRate(const std::string& name, const LabelSet& labels,
                          double value, const std::string& help) {
  Row row;
  row.type = RowType::kRate;
  row.name = name;
  row.labels = labels;
  row.help = help;
  row.rate = value;
  rows_.push_back(std::move(row));
}

std::string MetricsDump::Render(DumpFormat format) const {
  return format == DumpFormat::kPrometheus ? RenderPrometheus() : RenderJson();
}

std::string MetricsDump::RenderPrometheus() const {
  std::ostringstream out;
  std::string last_family;
  for (const Row& row : rows_) {
    if (row.name != last_family) {
      last_family = row.name;
      if (!row.help.empty()) {
        out << "# HELP " << row.name << " " << row.help << "\n";
      }
      const char* type = row.type == RowType::kCounter     ? "counter"
                         : row.type == RowType::kHistogram ? "histogram"
                                                           : "gauge";
      out << "# TYPE " << row.name << " " << type << "\n";
    }
    switch (row.type) {
      case RowType::kCounter:
        out << row.name << PromLabels(row.labels) << " "
            << static_cast<uint64_t>(row.scalar) << "\n";
        break;
      case RowType::kGauge:
        out << row.name << PromLabels(row.labels) << " " << row.scalar
            << "\n";
        break;
      case RowType::kRate: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", row.rate);
        out << row.name << PromLabels(row.labels) << " " << buf << "\n";
        break;
      }
      case RowType::kHistogram: {
        // Cumulative le-buckets at each power-of-two upper bound; empty
        // trailing buckets collapse into +Inf.
        uint64_t cumulative = 0;
        int highest = -1;
        for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
          if (row.data.buckets[i] != 0) highest = i;
        }
        for (int i = 0; i <= highest; ++i) {
          cumulative += row.data.buckets[i];
          out << row.name << "_bucket"
              << PromLabelsWith(row.labels, "le",
                                std::to_string(
                                    HistogramData::BucketUpperBound(i)))
              << " " << cumulative << "\n";
        }
        out << row.name << "_bucket"
            << PromLabelsWith(row.labels, "le", "+Inf") << " "
            << row.data.count << "\n";
        out << row.name << "_sum" << PromLabels(row.labels) << " "
            << row.data.sum << "\n";
        out << row.name << "_count" << PromLabels(row.labels) << " "
            << row.data.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsDump::RenderJson() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Row& row : rows_) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\":\"" << EscapeJson(row.name) << "\",\"labels\":"
        << JsonLabels(row.labels);
    switch (row.type) {
      case RowType::kCounter:
        out << ",\"type\":\"counter\",\"value\":"
            << static_cast<uint64_t>(row.scalar);
        break;
      case RowType::kGauge:
        out << ",\"type\":\"gauge\",\"value\":" << row.scalar;
        break;
      case RowType::kRate: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", row.rate);
        out << ",\"type\":\"rate\",\"value\":" << buf;
        break;
      }
      case RowType::kHistogram:
        out << ",\"type\":\"histogram\",\"count\":" << row.data.count
            << ",\"sum\":" << row.data.sum
            << ",\"p50\":" << static_cast<uint64_t>(row.data.Quantile(0.50))
            << ",\"p95\":" << static_cast<uint64_t>(row.data.Quantile(0.95))
            << ",\"p99\":" << static_cast<uint64_t>(row.data.Quantile(0.99))
            << ",\"max\":" << row.data.max;
        break;
    }
    out << "}";
  }
  out << "\n]\n";
  return out.str();
}

MetricsRegistry::Instrument* MetricsRegistry::GetInstrument(
    const std::string& name, LabelSet labels, const std::string& help,
    FamilyType type) {
  std::sort(labels.begin(), labels.end());
  MutexLock lock(mu_);
  auto [family_it, family_inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    return nullptr;  // name already claimed by a different metric type
  }
  Instrument& instrument = family.instruments[std::move(labels)];
  switch (type) {
    case FamilyType::kCounter:
      if (!instrument.counter) instrument.counter = std::make_unique<Counter>();
      break;
    case FamilyType::kGauge:
      if (!instrument.gauge) instrument.gauge = std::make_unique<Gauge>();
      break;
    case FamilyType::kHistogram:
      if (!instrument.histogram) {
        instrument.histogram = std::make_unique<Histogram>();
      }
      break;
  }
  return &instrument;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, LabelSet labels,
                                     const std::string& help) {
  Instrument* instrument =
      GetInstrument(name, std::move(labels), help, FamilyType::kCounter);
  return instrument ? instrument->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, LabelSet labels,
                                 const std::string& help) {
  Instrument* instrument =
      GetInstrument(name, std::move(labels), help, FamilyType::kGauge);
  return instrument ? instrument->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         LabelSet labels,
                                         const std::string& help) {
  Instrument* instrument =
      GetInstrument(name, std::move(labels), help, FamilyType::kHistogram);
  return instrument ? instrument->histogram.get() : nullptr;
}

void MetricsRegistry::DumpInto(MetricsDump* dump) const {
  MutexLock lock(mu_);
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instrument] : family.instruments) {
      switch (family.type) {
        case FamilyType::kCounter:
          dump->AddCounter(name, labels, instrument.counter->value(),
                           family.help);
          break;
        case FamilyType::kGauge:
          dump->AddGauge(name, labels, instrument.gauge->value(), family.help);
          break;
        case FamilyType::kHistogram:
          dump->AddHistogram(name, labels, instrument.histogram->Snapshot(),
                             family.help);
          break;
      }
    }
  }
}

}  // namespace obs
}  // namespace relcomp
