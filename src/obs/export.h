// Trace export: a bounded ring of finished traces plus a renderer to the
// Chrome trace_event JSON format, so a `--trace-dump` file opens directly
// in ui.perfetto.dev (or chrome://tracing) with a real timeline viewer.
//
// Layout: two process rows.
//   pid 1 "relcomp requests" — one thread row per request (tid = trace
//     id), showing the request's own phase machine: admit, queue, cache
//     lookup, evaluate, deliver. Marks render as instant events.
//   pid 2 "relcomp workers"  — one thread row per worker-pool thread
//     (tid = worker index; row 0 is the submitter for inline requests),
//     showing what each worker executed over time: the evaluate span of
//     every request it ran, with the SearchProfile's per-loop sub-slices
//     nested inside. Time the evaluation spent outside any instrumented
//     loop is gap-filled as "other", so the sub-slices tile the evaluate
//     span exactly — visible at a glance as a full second-level row.
//
// All timestamps are microseconds on the steady clock's epoch, the same
// clock every Trace and SearchProfile records on, so rows from different
// requests line up on one shared timeline.
#ifndef RELCOMP_OBS_EXPORT_H_
#define RELCOMP_OBS_EXPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"

namespace relcomp {

class SearchProfile;

namespace obs {

/// One exported trace plus the request identity and search attribution
/// that the Trace itself does not carry.
struct TraceRecord {
  std::shared_ptr<const Trace> trace;
  std::string tenant;
  std::string kind;  ///< ProblemKindName
  std::shared_ptr<const SearchProfile> profile;  ///< null on hits/sheds
  int worker = Trace::kInlineTrack;  ///< evaluating worker; kInlineTrack =
                                     ///< submitter thread
};

/// Bounded ring of the most recent finished traces. Offer() overwrites the
/// oldest record once full; `dropped()` counts the overwritten ones so a
/// dump can say how much history it is missing.
class TraceSink {
 public:
  /// capacity 0 disables the sink (Offer becomes a cheap no-op).
  void Configure(size_t capacity);

  void Offer(TraceRecord record);

  /// The retained records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  size_t size() const;
  size_t capacity() const;
  uint64_t dropped() const;

 private:
  mutable Mutex mu_{LockRank::kObsTraceSink, "TraceSink::mu_"};
  size_t capacity_ GUARDED_BY(mu_) = 0;
  size_t next_ GUARDED_BY(mu_) = 0;  ///< ring write cursor
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::vector<TraceRecord> ring_ GUARDED_BY(mu_);
};

/// Renders records as a Chrome trace_event JSON document (the
/// `{"traceEvents":[...]}` object form). Deterministic given the records.
std::string RenderChromeTrace(const std::vector<TraceRecord>& records);

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_EXPORT_H_
