// The single source of truth for every `relcomp_*` metric family the
// service exposes: name, instrument type, label keys, and help text.
//
// Nothing outside this header may spell a `relcomp_*` metric name as a
// string literal — relcomp_lint rule `metric-registry` enforces that, and
// also checks this table against the README "Metric reference" table
// (name, type, and label set must match row for row), so the registry, the
// code, and the documentation cannot drift apart silently.
//
// The families live in one X-macro list so the constants, the
// AllMetricFamilies() enumeration, and the lint/test tooling all read the
// same rows. To add a metric: add an X(...) row here, add the matching row
// to the README table, and use the generated kMetric<Sym> constant at the
// call site (via the MetricFamily overloads on MetricsRegistry /
// MetricsDump). relcomp_lint fails the build if any of the three diverge.
#ifndef RELCOMP_OBS_METRIC_NAMES_H_
#define RELCOMP_OBS_METRIC_NAMES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relcomp {
namespace obs {

/// How a family renders in the exposition formats. kRate is a derived
/// floating-point reading (rendered as a Prometheus gauge; see
/// MetricsDump::AddRate) — it never lives in the registry proper.
enum class MetricKind { kCounter, kGauge, kHistogram, kRate };

/// One registered family. `labels` is the comma-joined label KEY list in
/// call-site order ("" = unlabeled); values are per-instrument.
struct MetricFamily {
  const char* name;
  MetricKind kind;
  const char* labels;
  const char* help;
};

// clang-format off
/// Every metric family in the system: X(Symbol, name, kind, labels, help).
/// Windowed families are enumerated per concrete window so each exported
/// name appears here (and in the README table) exactly once.
#define RELCOMP_METRIC_FAMILIES(X)                                           \
  X(RequestLatencyMicros, "relcomp_request_latency_micros", kHistogram,      \
    "tenant", "end-to-end latency, submission to delivery, microseconds")    \
  X(QueueWaitMicros, "relcomp_queue_wait_micros", kHistogram, "tenant",      \
    "scheduler queue residency of this tenant's tasks, microseconds")        \
  X(SchedQueueWaitMicros, "relcomp_sched_queue_wait_micros", kHistogram,     \
    "", "in-queue residency of every popped task, microseconds")             \
  X(SchedTokenWaitMicros, "relcomp_sched_token_wait_micros", kHistogram,     \
    "",                                                                      \
    "time producers spent blocked on admission (quota / rate limit) "        \
    "before a task was admitted, microseconds")                              \
  X(RequestsTotal, "relcomp_requests_total", kCounter, "tenant,kind",        \
    "requests submitted, by problem kind")                                   \
  X(PriorityRequestsTotal, "relcomp_priority_requests_total", kCounter,      \
    "tenant,priority", "requests submitted, by scheduling priority class")   \
  X(DecisionsTotal, "relcomp_decisions_total", kCounter, "outcome,tenant",   \
    "request outcomes; the five outcomes partition requests exactly")        \
  X(ErrorsTotal, "relcomp_errors_total", kCounter, "tenant",                 \
    "decider errors (not part of the outcome partition: an errored "         \
    "evaluation still counts as a miss)")                                    \
  X(CacheHitsTotal, "relcomp_cache_hits_total", kCounter, "tenant",          \
    "shard cache lookup hits")                                               \
  X(CacheMissesTotal, "relcomp_cache_misses_total", kCounter, "tenant",      \
    "shard cache lookup misses")                                             \
  X(CacheEvictionsTotal, "relcomp_cache_evictions_total", kCounter,          \
    "tenant",                                                                \
    "cache entries evicted under capacity or shared-budget pressure")        \
  X(CacheAdmissionRejectsTotal, "relcomp_cache_admission_rejects_total",     \
    kCounter, "tenant", "computed decisions the cache refused to admit")     \
  X(CacheResidentBytes, "relcomp_cache_resident_bytes", kGauge, "tenant",    \
    "resident cache bytes")                                                  \
  X(CacheResidentEntries, "relcomp_cache_resident_entries", kGauge,          \
    "tenant", "resident cache entries")                                      \
  X(InflightRequests, "relcomp_inflight_requests", kGauge, "",               \
    "requests currently executing inside the service")                       \
  X(TracesSampledTotal, "relcomp_traces_sampled_total", kCounter, "",        \
    "requests sampled into a span-timeline trace")                           \
  X(SlowLogEntries, "relcomp_slow_log_entries", kGauge, "",                  \
    "finished traces currently held by the slow-decision log")               \
  X(WatchdogStallsTotal, "relcomp_watchdog_stalls_total", kCounter, "",      \
    "running evaluations flagged by the stall watchdog")                     \
  X(TraceRingEntries, "relcomp_trace_ring_entries", kGauge, "",              \
    "finished traces retained for DumpTraces()")                             \
  X(TraceRingDroppedTotal, "relcomp_trace_ring_dropped_total", kCounter,     \
    "", "finished traces overwritten in the export ring")                    \
  X(SearchStepsTotal, "relcomp_search_steps_total", kCounter,                \
    "tenant,kind,loop",                                                      \
    "search checkpoint steps charged, by core search loop")                  \
  X(SearchLoopMicros, "relcomp_search_loop_micros", kHistogram,              \
    "tenant,loop",                                                           \
    "time one evaluation spent inside a core search loop, microseconds")     \
  X(RequestsRate1s, "relcomp_requests_rate1s", kRate, "",                    \
    "delivered requests/sec over the trailing 1s, all tenants")              \
  X(RequestsRate10s, "relcomp_requests_rate10s", kRate, "",                  \
    "delivered requests/sec over the trailing 10s, all tenants")             \
  X(RequestsRate60s, "relcomp_requests_rate60s", kRate, "",                  \
    "delivered requests/sec over the trailing 60s, all tenants")             \
  X(TenantRequestsRate1s, "relcomp_tenant_requests_rate1s", kRate,           \
    "tenant", "delivered requests/sec over the trailing 1s")                 \
  X(TenantRequestsRate10s, "relcomp_tenant_requests_rate10s", kRate,         \
    "tenant", "delivered requests/sec over the trailing 10s")                \
  X(TenantRequestsRate60s, "relcomp_tenant_requests_rate60s", kRate,         \
    "tenant", "delivered requests/sec over the trailing 60s")                \
  X(RequestLatencyRecent10sMicros,                                           \
    "relcomp_request_latency_recent10s_micros", kHistogram, "",              \
    "end-to-end latency of requests delivered in the trailing 10s, all "     \
    "tenants, microseconds")                                                 \
  X(RequestLatencyRecent60sMicros,                                           \
    "relcomp_request_latency_recent60s_micros", kHistogram, "",              \
    "end-to-end latency of requests delivered in the trailing 60s, all "     \
    "tenants, microseconds")                                                 \
  X(HttpRequestsTotal, "relcomp_http_requests_total", kCounter,              \
    "code,path",                                                             \
    "observability endpoint requests served, by path and response code")     \
  X(HttpInflightRequests, "relcomp_http_inflight_requests", kGauge, "",      \
    "observability endpoint requests currently being handled")               \
  X(HttpHandlerLatencyMicros, "relcomp_http_handler_latency_micros",         \
    kHistogram, "path",                                                      \
    "observability endpoint handler latency (route + render + dump locks), " \
    "microseconds")                                                          \
  X(BuildInfo, "relcomp_build_info", kGauge, "git,version",                  \
    "always 1; the labels identify the running binary")                      \
  X(UptimeSeconds, "relcomp_uptime_seconds", kGauge, "",                     \
    "seconds since this CompletenessService was constructed")
// clang-format on

#define RELCOMP_OBS_DECLARE_METRIC(sym, name, kind, labels, help) \
  inline constexpr MetricFamily kMetric##sym{name, MetricKind::kind, labels, \
                                             help};
RELCOMP_METRIC_FAMILIES(RELCOMP_OBS_DECLARE_METRIC)
#undef RELCOMP_OBS_DECLARE_METRIC

/// Every family in declaration order, for tests and exposition tooling.
inline const std::vector<const MetricFamily*>& AllMetricFamilies() {
  static const std::vector<const MetricFamily*> kAll = [] {
    std::vector<const MetricFamily*> all;
#define RELCOMP_OBS_LIST_METRIC(sym, name, kind, labels, help) \
  all.push_back(&kMetric##sym);
    RELCOMP_METRIC_FAMILIES(RELCOMP_OBS_LIST_METRIC)
#undef RELCOMP_OBS_LIST_METRIC
    return all;
  }();
  return kAll;
}

/// The windowed families, addressed by their window width — the dump loop
/// iterates {1, 10, 60} and needs the matching registered family rather
/// than a name built by string concatenation (which the lint would flag).
inline const MetricFamily& RequestsRateFamily(uint64_t secs) {
  switch (secs) {
    case 1:
      return kMetricRequestsRate1s;
    case 10:
      return kMetricRequestsRate10s;
    default:
      return kMetricRequestsRate60s;
  }
}

inline const MetricFamily& TenantRequestsRateFamily(uint64_t secs) {
  switch (secs) {
    case 1:
      return kMetricTenantRequestsRate1s;
    case 10:
      return kMetricTenantRequestsRate10s;
    default:
      return kMetricTenantRequestsRate60s;
  }
}

inline const MetricFamily& RecentLatencyFamily(uint64_t secs) {
  return secs == 10 ? kMetricRequestLatencyRecent10sMicros
                    : kMetricRequestLatencyRecent60sMicros;
}

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_METRIC_NAMES_H_
