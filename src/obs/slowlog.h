// Slow-decision log: a bounded record of the N worst (slowest end-to-end)
// finished traces, queryable through the service API. The point is
// post-hoc debugging — when a tenant reports tail latency, the slow log
// already holds the span timelines of the worst offenders without anyone
// having had to reproduce the problem.
#ifndef RELCOMP_OBS_SLOWLOG_H_
#define RELCOMP_OBS_SLOWLOG_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"

namespace relcomp {
namespace obs {

class SlowDecisionLog {
 public:
  /// capacity 0 disables the log (Offer becomes a cheap no-op).
  void Configure(size_t capacity);

  /// Considers a finished trace for the log: kept if the log has room or
  /// the trace is slower than the current fastest entry. Unfinished
  /// traces are ignored.
  void Offer(std::shared_ptr<const Trace> trace);

  /// Entries sorted slowest-first.
  std::vector<std::shared_ptr<const Trace>> Worst() const;

  size_t size() const;
  size_t capacity() const;

 private:
  // Ranked BELOW Trace::mu_: Offer compares Trace::total_micros() (which
  // takes the trace mutex) while holding this lock.
  mutable Mutex mu_{LockRank::kObsSlowLog, "SlowDecisionLog::mu_"};
  size_t capacity_ GUARDED_BY(mu_) = 0;
  // Kept sorted slowest-first; at most capacity_ entries, so insertion is
  // O(capacity) — fine for the small N this log is meant for.
  std::vector<std::shared_ptr<const Trace>> entries_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_SLOWLOG_H_
