// Slow-decision log: a bounded record of the N worst (slowest end-to-end)
// decisions, queryable through the service API. The point is post-hoc
// debugging — when a tenant reports tail latency, the slow log already
// holds the worst offenders' span timelines, their per-loop search
// attribution, and the identity (trace id / tenant / problem kind) needed
// to cross-link them to exported traces, without anyone having had to
// reproduce the problem.
#ifndef RELCOMP_OBS_SLOWLOG_H_
#define RELCOMP_OBS_SLOWLOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"

namespace relcomp {

class SearchProfile;

namespace obs {

/// One slow decision, self-explaining: how slow, whose request it was,
/// which problem kind, the sampled span timeline when one exists, and the
/// per-loop search attribution from the evaluation.
struct SlowEntry {
  /// End-to-end latency — the sort key. For watchdog-flagged stalls this
  /// is the age of the still-running evaluation when it was flagged.
  uint64_t micros = 0;
  /// Cross-link to the exported trace (0 when the request was unsampled).
  uint64_t trace_id = 0;
  std::string tenant;
  std::string kind;  ///< ProblemKindName, empty when unknown
  /// The sampled span timeline; null for unsampled requests. A stall
  /// entry may carry a still-unfinished trace.
  std::shared_ptr<const Trace> trace;
  /// Per-loop search attribution; null for cache hits / coalesced copies.
  std::shared_ptr<const SearchProfile> profile;
  /// Extra context: abort reasons, "stalled in <loop> after N steps", ...
  std::string note;
};

class SlowDecisionLog {
 public:
  /// capacity 0 disables the log (Offer becomes a cheap no-op).
  void Configure(size_t capacity);

  /// Considers an entry for the log: kept if the log has room or the
  /// entry is slower than the current fastest kept one.
  void Offer(SlowEntry entry);

  /// Entries sorted slowest-first.
  std::vector<SlowEntry> Worst() const;

  size_t size() const;
  size_t capacity() const;

 private:
  // Entries are compared by their plain `micros` field — the trace inside
  // an entry is never locked under this mutex.
  mutable Mutex mu_{LockRank::kObsSlowLog, "SlowDecisionLog::mu_"};
  size_t capacity_ GUARDED_BY(mu_) = 0;
  // Kept sorted slowest-first; at most capacity_ entries, so insertion is
  // O(capacity) — fine for the small N this log is meant for.
  std::vector<SlowEntry> entries_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_SLOWLOG_H_
