// Slow-decision log: a bounded record of the N worst (slowest end-to-end)
// finished traces, queryable through the service API. The point is
// post-hoc debugging — when a tenant reports tail latency, the slow log
// already holds the span timelines of the worst offenders without anyone
// having had to reproduce the problem.
#ifndef RELCOMP_OBS_SLOWLOG_H_
#define RELCOMP_OBS_SLOWLOG_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace relcomp {
namespace obs {

class SlowDecisionLog {
 public:
  /// capacity 0 disables the log (Offer becomes a cheap no-op).
  void Configure(size_t capacity);

  /// Considers a finished trace for the log: kept if the log has room or
  /// the trace is slower than the current fastest entry. Unfinished
  /// traces are ignored.
  void Offer(std::shared_ptr<const Trace> trace);

  /// Entries sorted slowest-first.
  std::vector<std::shared_ptr<const Trace>> Worst() const;

  size_t size() const;
  size_t capacity() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  // Kept sorted slowest-first; at most capacity_ entries, so insertion is
  // O(capacity) — fine for the small N this log is meant for.
  std::vector<std::shared_ptr<const Trace>> entries_;
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_SLOWLOG_H_
