// The live observability endpoint: routes the service's existing
// dump-to-string surfaces (metrics, traces, slow log, obs report,
// active evaluations, health) over the net/ HTTP server, and
// instruments itself through the same metric registry it exposes.
//
// Layering: obs/ cannot see service/ (service depends on obs), so the
// endpoint takes the surfaces as a struct of callbacks and
// CompletenessService::ServeObs binds them — the endpoint stays
// reusable for any process that can render the same strings.
//
// Scrape cost stays off the decision hot path by construction: a GET
// runs on an endpoint worker thread and takes exactly the locks the
// underlying dump call always took (registry/shard snapshot for
// /metrics, the trace-ring mutex for /traces, ...), never a new one.
// bench/bench_http_scrape.cc holds the A/B evidence.
#ifndef RELCOMP_OBS_HTTP_ENDPOINT_H_
#define RELCOMP_OBS_HTTP_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/http.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace relcomp {
namespace obs {

struct ObsHttpOptions {
  /// Numeric IPv4 listen address. The default stays loopback-only: the
  /// endpoint exposes operational internals, opting into 0.0.0.0 is a
  /// deliberate act.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Concurrent scrape workers. Two is plenty for a scraper plus a
  /// human; this bounds how many dump renders can run at once.
  size_t worker_threads = 2;
  /// Request head cap (431 beyond it).
  size_t max_head_bytes = 16 * 1024;
};

/// The service surfaces the endpoint exposes. Each callback must be
/// thread-safe and may be invoked concurrently; a default-constructed
/// (empty) callback renders that endpoint as 503.
struct ObsSurfaces {
  std::function<std::string()> metrics_prometheus;  ///< GET /metrics
  std::function<std::string()> metrics_json;        ///< GET /metrics.json
  std::function<std::string()> traces_json;         ///< GET /traces
  std::function<std::string()> slow_text;           ///< GET /slow
  std::function<std::string()> report_text;         ///< GET /report
  std::function<std::string()> active_text;         ///< GET /debug/active
  std::function<bool()> ready;                      ///< GET /readyz
};

class HttpEndpoint {
 public:
  /// `registry` receives the endpoint's own instruments (request
  /// counter, in-flight gauge, handler latency); null = uninstrumented.
  HttpEndpoint(ObsSurfaces surfaces, MetricsRegistry* registry);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds and starts serving. One-shot, like the underlying server.
  Status Start(const ObsHttpOptions& options);

  /// Graceful shutdown; idempotent. Runs at destruction.
  void Stop();

  /// The bound port (resolves port 0), valid after a successful Start.
  uint16_t port() const { return server_.port(); }

  /// The routing core, exposed so tests can drive it without sockets.
  /// Thread-safe; this is exactly what the server workers invoke.
  net::HttpResponse Handle(const net::HttpRequest& request);

 private:
  net::HttpResponse Route(const std::string& path, const char** path_label);

  ObsSurfaces surfaces_;
  MetricsRegistry* registry_;
  Gauge* inflight_ = nullptr;
  net::HttpServer server_;
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_HTTP_ENDPOINT_H_
