#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/types.h"

namespace relcomp {
namespace obs {

void TraceSink::Configure(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  next_ = 0;
  dropped_ = 0;
}

void TraceSink::Offer(TraceRecord record) {
  if (!record.trace) return;
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceRecord> TraceSink::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t TraceSink::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

size_t TraceSink::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

uint64_t TraceSink::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

namespace {

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Emits one trace_event object. `args_json` is a pre-rendered JSON object
// body ("{...}") or empty for no args.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& out) : out_(out) {}

  void Metadata(const std::string& name, int pid, uint64_t tid,
                const std::string& value) {
    Begin();
    out_ << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << EscapeJson(value) << "\"}}";
  }

  void Complete(const std::string& name, int pid, uint64_t tid, uint64_t ts,
                uint64_t dur, const std::string& args_json = "") {
    Begin();
    out_ << "{\"name\":\"" << EscapeJson(name) << "\",\"ph\":\"X\",\"ts\":"
         << ts << ",\"dur\":" << dur << ",\"pid\":" << pid << ",\"tid\":"
         << tid;
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << "}";
  }

  void Instant(const std::string& name, int pid, uint64_t tid, uint64_t ts,
               const std::string& args_json = "") {
    Begin();
    out_ << "{\"name\":\"" << EscapeJson(name)
         << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts << ",\"pid\":" << pid
         << ",\"tid\":" << tid;
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << "}";
  }

 private:
  void Begin() {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "  ";
  }

  std::ostringstream& out_;
  bool first_ = true;
};

constexpr int kRequestsPid = 1;
constexpr int kWorkersPid = 2;

// Worker rows: tid 0 is the submitter (inline evaluations), worker i of
// the pool is tid i+1.
uint64_t WorkerTid(int worker) {
  return worker == Trace::kInlineTrack ? 0
                                       : static_cast<uint64_t>(worker) + 1;
}

uint64_t MicrosOnClock(TraceTime at) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          at.time_since_epoch())
          .count());
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceRecord>& records) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventWriter events(out);

  events.Metadata("process_name", kRequestsPid, 0, "relcomp requests");
  events.Metadata("process_name", kWorkersPid, 0, "relcomp workers");

  std::vector<uint64_t> named_worker_tids;
  for (const TraceRecord& record : records) {
    if (!record.trace) continue;
    const Trace& trace = *record.trace;
    const uint64_t base_ts = MicrosOnClock(trace.start_time());
    const uint64_t request_tid = trace.id();

    std::string row_name = "req#" + std::to_string(trace.id());
    if (!record.tenant.empty()) row_name += " tenant=" + record.tenant;
    if (!record.kind.empty()) row_name += " kind=" + record.kind;
    events.Metadata("thread_name", kRequestsPid, request_tid, row_name);

    // The request row: the trace's own phase machine, marks as instants.
    uint64_t eval_start = 0;
    uint64_t eval_dur = 0;
    bool have_eval = false;
    for (const TraceSpan& span : trace.spans()) {
      std::string args;
      if (!span.note.empty()) {
        args = "{\"note\":\"" + EscapeJson(span.note) + "\"}";
      }
      if (span.start_micros == span.end_micros) {
        events.Instant(span.name, kRequestsPid, request_tid,
                       base_ts + span.start_micros, args);
        continue;
      }
      events.Complete(span.name, kRequestsPid, request_tid,
                      base_ts + span.start_micros, span.duration_micros(),
                      args);
      if (span.name == "evaluate") {
        have_eval = true;
        eval_start = span.start_micros;
        eval_dur = span.duration_micros();
      }
    }

    if (!have_eval) continue;  // hits/sheds never ran on a worker

    // The worker row: this request's evaluate span, with the profile's
    // per-loop sub-slices nested inside and un-attributed time gap-filled
    // as "other" so the sub-slices tile the span exactly.
    const uint64_t worker_tid = WorkerTid(record.worker);
    if (std::find(named_worker_tids.begin(), named_worker_tids.end(),
                  worker_tid) == named_worker_tids.end()) {
      named_worker_tids.push_back(worker_tid);
      events.Metadata("thread_name", kWorkersPid, worker_tid,
                      worker_tid == 0
                          ? "submitter (inline)"
                          : "worker " + std::to_string(worker_tid - 1));
    }
    std::string eval_args = "{\"trace_id\":" + std::to_string(trace.id());
    if (!record.tenant.empty()) {
      eval_args += ",\"tenant\":\"" + EscapeJson(record.tenant) + "\"";
    }
    if (!record.kind.empty()) {
      eval_args += ",\"kind\":\"" + EscapeJson(record.kind) + "\"";
    }
    eval_args += "}";
    events.Complete("evaluate req#" + std::to_string(trace.id()), kWorkersPid,
                    worker_tid, base_ts + eval_start, eval_dur, eval_args);

    if (!record.profile) continue;
    // The service anchors SearchProfile::Start at the same instant it
    // opens the trace's "evaluate" phase, so slice offsets are offsets
    // into the evaluate span.
    const uint64_t span_ts = base_ts + eval_start;
    uint64_t cursor = 0;
    auto emit_other = [&](uint64_t from, uint64_t to) {
      if (to > from) {
        events.Complete("other", kWorkersPid, worker_tid, span_ts + from,
                        to - from);
      }
    };
    for (const SearchProfile::Slice& slice : record.profile->slices()) {
      const uint64_t start = std::min<uint64_t>(slice.start_micros, eval_dur);
      const uint64_t end = std::min<uint64_t>(slice.end_micros, eval_dur);
      emit_other(cursor, start);
      events.Complete(slice.loop, kWorkersPid, worker_tid, span_ts + start,
                      end - start,
                      "{\"steps\":" + std::to_string(slice.steps) + "}");
      cursor = end;
    }
    emit_other(cursor, eval_dur);
  }

  out << "\n]}\n";
  return out.str();
}

}  // namespace obs
}  // namespace relcomp
