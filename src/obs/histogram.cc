#include "obs/histogram.h"

#include <algorithm>
#include <sstream>

namespace relcomp {
namespace obs {

namespace {

// bit_width(v): position of the highest set bit, 1-based; 0 for v == 0.
// (std::bit_width is C++20; this repo targets C++17.)
inline int BitWidth(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return v == 0 ? 0 : 64 - __builtin_clzll(v);
#else
  int width = 0;
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width;
#endif
}

}  // namespace

int HistogramData::BucketIndex(uint64_t value) { return BitWidth(value); }

uint64_t HistogramData::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  return uint64_t{1} << (index - 1);
}

uint64_t HistogramData::BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= 64) return ~uint64_t{0};
  return (uint64_t{1} << index) - 1;
}

HistogramData& HistogramData::Merge(const HistogramData& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  return *this;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in [1, count]; ceil(q * count) with a floor of 1 so that
  // q=0 still names the first recorded value's bucket.
  const double target = std::max(1.0, q * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      // Interpolate within the half-open bucket [lo, 2*lo); bucket 0 is the
      // single value 0. Cap the interpolated point at the observed max so a
      // lone sample never reports above itself.
      if (i == 0) return 0.0;
      const double width = lo;  // [2^(k-1), 2^k) spans 2^(k-1)
      const double into =
          (target - static_cast<double>(before)) /
          static_cast<double>(buckets[i]);
      const double estimate = lo + into * width;
      return std::min(estimate, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

std::string HistogramData::ToString() const {
  std::ostringstream out;
  out << "count=" << count << " sum=" << sum
      << " p50=" << static_cast<uint64_t>(Quantile(0.50))
      << " p95=" << static_cast<uint64_t>(Quantile(0.95))
      << " p99=" << static_cast<uint64_t>(Quantile(0.99)) << " max=" << max;
  return out.str();
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  return data;
}

}  // namespace obs
}  // namespace relcomp
