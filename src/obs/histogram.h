// Log-bucketed latency histograms: the distribution primitive behind every
// quantile the service reports. Values (microseconds in practice, but any
// uint64 works) land in fixed power-of-two buckets — bucket 0 holds the
// value 0, bucket k holds [2^(k-1), 2^k) — so recording is branch-light and
// two histograms recorded on different machines, threads, or processes
// merge by plain bucket-wise addition (merging is associative and
// commutative, which is what makes per-shard → service-wide → fleet-wide
// rollups sound). Quantiles (p50/p95/p99) are estimated by walking the
// cumulative bucket counts and interpolating linearly inside the bucket
// containing the target rank, so the estimate is never off by more than
// the bucket's width (a factor of two at worst — the price of O(1) memory).
//
// Two types split the concurrency concern:
//   Histogram     — the live recording surface: fixed atomic counters,
//                   relaxed increments, no locks, safe for any number of
//                   concurrent writers (the "lock-cheap" hot-path type).
//   HistogramData — a plain snapshot: mergeable, quantile-queryable, cheap
//                   to copy; what expositions and tests operate on.
#ifndef RELCOMP_OBS_HISTOGRAM_H_
#define RELCOMP_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace relcomp {
namespace obs {

/// A plain, copyable histogram snapshot. All the math (bucket geometry,
/// merge, quantile estimation) lives here so it can be tested without
/// touching atomics.
struct HistogramData {
  /// Bucket 0 holds the value 0; bucket k (1..64) holds [2^(k-1), 2^k).
  static constexpr int kNumBuckets = 65;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  /// The bucket a value lands in: 0 for 0, else bit_width(value).
  static int BucketIndex(uint64_t value);
  /// Smallest value belonging to bucket `index` (0 for bucket 0).
  static uint64_t BucketLowerBound(int index);
  /// Largest value belonging to bucket `index` (inclusive).
  static uint64_t BucketUpperBound(int index);

  /// Bucket-wise addition; associative and commutative (max merges by max).
  HistogramData& Merge(const HistogramData& other);

  /// Estimated value at quantile q in [0, 1]: walks the cumulative counts
  /// to the bucket containing the target rank and interpolates linearly
  /// within it. 0 when empty. The estimate is exact for single-bucket
  /// distributions and within one bucket width otherwise.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// "count=N sum=S p50=... p95=... p99=... max=M" — the human summary.
  std::string ToString() const;
};

/// The live recording surface: fixed-size atomic buckets, relaxed
/// increments, wait-free for writers. Snapshot() produces a HistogramData
/// (readers racing writers see a consistent-enough view: each field is
/// individually atomic; cross-field skew is at most the records in flight).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[HistogramData::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramData Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, HistogramData::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_HISTOGRAM_H_
