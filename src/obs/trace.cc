#include "obs/trace.h"

#include <sstream>

namespace relcomp {
namespace obs {

Trace::Trace(uint64_t id, TraceTime start) : id_(id), start_(start) {}

uint64_t Trace::MicrosSinceStart(TraceTime now) const {
  if (now <= start_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
          .count());
}

void Trace::Phase(const std::string& name, TraceTime now) {
  const uint64_t at = MicrosSinceStart(now);
  MutexLock lock(mu_);
  if (finished_) return;
  if (open_phase_) {
    if (spans_.size() < kMaxSpans) {
      TraceSpan span;
      span.name = phase_name_;
      span.start_micros = phase_start_micros_;
      span.end_micros = at;
      span.note = phase_note_;
      spans_.push_back(std::move(span));
    } else {
      ++dropped_;
    }
  }
  open_phase_ = true;
  phase_name_ = name;
  phase_note_.clear();
  phase_start_micros_ = at;
}

void Trace::Mark(const std::string& name, const std::string& note,
                 TraceTime now) {
  const uint64_t at = MicrosSinceStart(now);
  MutexLock lock(mu_);
  if (finished_) return;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  TraceSpan mark;
  mark.name = name;
  mark.start_micros = at;
  mark.end_micros = at;
  mark.note = note;
  spans_.push_back(std::move(mark));
}

void Trace::AnnotatePhase(const std::string& note) {
  MutexLock lock(mu_);
  if (finished_ || !open_phase_) return;
  phase_note_ = note;
}

void Trace::Finish(const std::string& outcome, TraceTime now) {
  const uint64_t at = MicrosSinceStart(now);
  MutexLock lock(mu_);
  if (finished_) return;
  if (open_phase_) {
    if (spans_.size() < kMaxSpans) {
      TraceSpan span;
      span.name = phase_name_;
      span.start_micros = phase_start_micros_;
      span.end_micros = at;
      span.note = phase_note_;
      spans_.push_back(std::move(span));
    } else {
      ++dropped_;
    }
    open_phase_ = false;
  }
  finished_ = true;
  outcome_ = outcome;
  total_micros_ = at;
}

bool Trace::finished() const {
  MutexLock lock(mu_);
  return finished_;
}

std::string Trace::outcome() const {
  MutexLock lock(mu_);
  return outcome_;
}

uint64_t Trace::total_micros() const {
  MutexLock lock(mu_);
  return total_micros_;
}

std::vector<TraceSpan> Trace::spans() const {
  MutexLock lock(mu_);
  return spans_;
}

size_t Trace::dropped_spans() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string Trace::ToString() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "trace#" << id_;
  if (finished_) {
    out << " outcome=" << outcome_ << " total=" << total_micros_ << "us";
  } else {
    out << " (running)";
  }
  for (const TraceSpan& span : spans_) {
    out << "\n  [" << span.start_micros << ".." << span.end_micros << "us] "
        << span.name;
    if (!span.note.empty()) out << " (" << span.note << ")";
  }
  if (open_phase_) {
    out << "\n  [" << phase_start_micros_ << "..us] " << phase_name_
        << " (open)";
  }
  if (dropped_ > 0) out << "\n  (+" << dropped_ << " spans dropped)";
  return out.str();
}

std::shared_ptr<Trace> Tracer::MaybeTrace(TraceTime now) {
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return nullptr;
  const uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return nullptr;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<Trace>(
      next_id_.fetch_add(1, std::memory_order_relaxed), now);
}

}  // namespace obs
}  // namespace relcomp
