#include "obs/recorder.h"

#include <algorithm>
#include <cstdio>

namespace relcomp {
namespace obs {

void ActiveEvaluations::Registration::Reset() {
  if (registry_ != nullptr && record_ != nullptr) {
    registry_->Unregister(record_.get());
  }
  registry_ = nullptr;
  record_.reset();
}

ActiveEvaluations::Registration ActiveEvaluations::Register(
    std::string tenant, std::string kind, uint64_t trace_id,
    Clock::time_point now) {
  std::shared_ptr<Record> record;
  {
    MutexLock lock(mu_);
    record = std::make_shared<Record>(next_id_++, std::move(tenant),
                                      std::move(kind), trace_id, now);
    records_.push_back(record);
  }
  return Registration(this, std::move(record));
}

void ActiveEvaluations::Unregister(const Record* record) {
  MutexLock lock(mu_);
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [record](const std::shared_ptr<Record>& r) {
                                  return r.get() == record;
                                }),
                 records_.end());
}

std::vector<std::shared_ptr<ActiveEvaluations::Record>>
ActiveEvaluations::Snapshot() const {
  MutexLock lock(mu_);
  return records_;
}

size_t ActiveEvaluations::size() const {
  MutexLock lock(mu_);
  return records_.size();
}

void FlightRecorder::Configure(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  next_ = 0;
}

void FlightRecorder::Add(RecorderSample sample) {
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
    return;
  }
  ring_[next_] = std::move(sample);
  next_ = (next_ + 1) % capacity_;
}

void FlightRecorder::Annotate(std::string annotation,
                              std::chrono::steady_clock::time_point now) {
  RecorderSample sample;
  sample.at = now;
  sample.annotation = std::move(annotation);
  Add(std::move(sample));
}

std::vector<RecorderSample> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<RecorderSample> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t FlightRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

size_t FlightRecorder::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

namespace {

// The published report lives behind the shared_ptr atomic free functions
// (C++17 has no std::atomic<shared_ptr>): the sampler thread swaps in a
// freshly rendered string; the abort hook loads whatever is current and
// fwrites it. No relcomp::Mutex anywhere on the dump path, so the hook is
// safe to run while the dying thread holds arbitrary ranked locks.
std::shared_ptr<const std::string>& AbortReportSlot() {
  static std::shared_ptr<const std::string> slot;
  return slot;
}

}  // namespace

void PublishAbortReport(std::string report) {
  std::atomic_store(&AbortReportSlot(),
                    std::make_shared<const std::string>(std::move(report)));
}

void DumpPublishedAbortReport() {
  const std::shared_ptr<const std::string> report =
      std::atomic_load(&AbortReportSlot());
  if (report != nullptr && !report->empty()) {
    std::fprintf(stderr, "\n--- relcomp flight recorder (last report) ---\n");
    std::fwrite(report->data(), 1, report->size(), stderr);
    std::fprintf(stderr, "--- end flight recorder ---\n");
  }
}

void InstallAbortReportHook() {
  SetLockRankAbortHook(&DumpPublishedAbortReport);
}

}  // namespace obs
}  // namespace relcomp
