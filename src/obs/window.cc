#include "obs/window.h"

#include <algorithm>

namespace relcomp {
namespace obs {

namespace {

int64_t SecondOf(std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
      .count();
}

// Whether `slot_second` falls inside the trailing window [now-window+1, now]
// — the current second counts as the window's newest slot. Callers clamp
// `window_secs` to the ring size first: a slot older than the ring's span
// belongs to a second the ring can no longer represent (its intervening
// seconds were recycled), so counting it would resurrect expired data.
bool InWindow(int64_t slot_second, int64_t now_second, uint64_t window_secs) {
  if (slot_second < 0) return false;
  if (slot_second > now_second) return false;  // clock skew guard
  return now_second - slot_second <
         static_cast<int64_t>(std::max<uint64_t>(window_secs, 1));
}

}  // namespace

void WindowedCounter::Record(uint64_t n, Clock::time_point now) {
  const int64_t second = SecondOf(now);
  MutexLock lock(mu_);
  Slot& slot = slots_[static_cast<size_t>(second) % slots_.size()];
  if (slot.second != second) {
    // The slot's previous second has aged out of the ring; recycle it.
    slot.second = second;
    slot.count = 0;
  }
  slot.count += n;
}

uint64_t WindowedCounter::Sum(uint64_t window_secs,
                              Clock::time_point now) const {
  const int64_t second = SecondOf(now);
  uint64_t sum = 0;
  MutexLock lock(mu_);
  window_secs = std::min<uint64_t>(window_secs, slots_.size());
  for (const Slot& slot : slots_) {
    if (InWindow(slot.second, second, window_secs)) sum += slot.count;
  }
  return sum;
}

double WindowedCounter::Rate(uint64_t window_secs,
                             Clock::time_point now) const {
  if (window_secs == 0) window_secs = 1;
  return static_cast<double>(Sum(window_secs, now)) /
         static_cast<double>(window_secs);
}

void WindowedHistogram::Record(uint64_t value, Clock::time_point now) {
  const int64_t second = SecondOf(now);
  MutexLock lock(mu_);
  Slot& slot = slots_[static_cast<size_t>(second) % slots_.size()];
  if (slot.second != second) {
    slot.second = second;
    slot.data = HistogramData{};
  }
  slot.data.buckets[HistogramData::BucketIndex(value)] += 1;
  slot.data.count += 1;
  slot.data.sum += value;
  slot.data.max = std::max(slot.data.max, value);
}

HistogramData WindowedHistogram::Snapshot(uint64_t window_secs,
                                          Clock::time_point now) const {
  const int64_t second = SecondOf(now);
  HistogramData merged;
  MutexLock lock(mu_);
  window_secs = std::min<uint64_t>(window_secs, slots_.size());
  for (const Slot& slot : slots_) {
    if (InWindow(slot.second, second, window_secs)) merged.Merge(slot.data);
  }
  return merged;
}

}  // namespace obs
}  // namespace relcomp
