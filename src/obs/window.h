// Sliding-window metrics: recent-window rates and quantiles next to the
// registry's since-start cumulative values. Both wrappers keep an N-slot
// ring of one-second buckets tagged with the absolute second they cover;
// Record() lands in the current second's slot (lazily re-tagging slots
// whose second has passed), and a read merges the slots inside the asked
// window. Merging rides the HistogramData bucket algebra, so a windowed
// p95 is computed exactly the way the cumulative one is — same buckets,
// same interpolation — just over a bounded time range.
//
// Both types take explicit time points on every call (defaulted to now)
// so tests drive deterministic timelines, and both are small enough to
// live per-shard: one mutex (rank kObsWindow, a leaf) guarding a
// fixed-size ring, no allocation after construction.
#ifndef RELCOMP_OBS_WINDOW_H_
#define RELCOMP_OBS_WINDOW_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/histogram.h"
#include "util/mutex.h"

namespace relcomp {
namespace obs {

/// A counter whose recent per-second history is queryable: Rate(10s) is
/// the mean events/sec over the last 10 seconds, Sum(60s) the raw count.
/// Slots older than the ring's span are recycled in place, so the counter
/// answers for any window up to `window_slots` seconds and costs O(ring)
/// per read, O(1) per record.
class WindowedCounter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `window_slots` is the history depth in seconds (>= 1; default covers
  /// the 60 s reporting window plus slack for slot-boundary skew).
  explicit WindowedCounter(size_t window_slots = 64)
      : slots_(window_slots == 0 ? 1 : window_slots) {}

  void Record(uint64_t n = 1, Clock::time_point now = Clock::now());

  /// Total events recorded in the trailing `window_secs` seconds
  /// (clamped to the ring's span).
  uint64_t Sum(uint64_t window_secs,
               Clock::time_point now = Clock::now()) const;

  /// Mean events/second over the trailing window: Sum / window_secs.
  double Rate(uint64_t window_secs,
              Clock::time_point now = Clock::now()) const;

 private:
  struct Slot {
    int64_t second = -1;  ///< absolute steady-clock second; -1 = never used
    uint64_t count = 0;
  };

  mutable Mutex mu_{LockRank::kObsWindow, "WindowedCounter::mu_"};
  std::vector<Slot> slots_ GUARDED_BY(mu_);
};

/// A histogram whose recent distribution is queryable: Snapshot(10s)
/// merges the last 10 one-second HistogramData slots, giving recent
/// p50/p95/p99 with the same bucket math as the cumulative histogram.
class WindowedHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  explicit WindowedHistogram(size_t window_slots = 64)
      : slots_(window_slots == 0 ? 1 : window_slots) {}

  void Record(uint64_t value, Clock::time_point now = Clock::now());

  /// The merged distribution of the trailing `window_secs` seconds
  /// (clamped to the ring's span). Empty HistogramData when idle.
  HistogramData Snapshot(uint64_t window_secs,
                         Clock::time_point now = Clock::now()) const;

 private:
  struct Slot {
    int64_t second = -1;
    HistogramData data;
  };

  mutable Mutex mu_{LockRank::kObsWindow, "WindowedHistogram::mu_"};
  std::vector<Slot> slots_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_WINDOW_H_
