// Request tracing: a sampled per-request timeline of named spans.
//
// A Trace is a *phase machine*: the request is always in exactly one phase,
// and Phase("next") both closes the current span and opens the next one at
// the same instant. Because consecutive spans share their boundary
// timestamp, span durations sum to exactly the trace's end-to-end total —
// no gaps, no overlaps — which is what lets tests (and operators) check a
// timeline against the recorded latency instead of eyeballing it.
//
// Marks are zero-width events inside the current phase (e.g. evaluation
// progress checkpoints); they record a timestamp and note without touching
// phase accounting.
//
// Traces are shared objects: a coalesced flight group's owner publishes its
// run trace, and every waiter's own trace records the id of the run it
// joined. All mutators take a mutex — traces are *sampled* (1-in-N), so
// this is off the un-sampled hot path entirely.
//
// Every time-taking method accepts an optional explicit TimePoint so tests
// can drive deterministic timelines; production callers omit it.
#ifndef RELCOMP_OBS_TRACE_H_
#define RELCOMP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace relcomp {
namespace obs {

using TraceClock = std::chrono::steady_clock;
using TraceTime = TraceClock::time_point;

/// One closed span: [start_micros, end_micros) relative to the trace start.
/// Marks are spans with start == end.
struct TraceSpan {
  std::string name;
  uint64_t start_micros = 0;
  uint64_t end_micros = 0;
  std::string note;

  uint64_t duration_micros() const { return end_micros - start_micros; }
};

class Trace {
 public:
  /// Spans beyond this cap are counted in dropped_spans() instead of
  /// stored, bounding memory for pathological phase churn.
  static constexpr size_t kMaxSpans = 96;

  Trace(uint64_t id, TraceTime start);

  uint64_t id() const { return id_; }

  /// The trace's epoch on the steady clock; span offsets are relative to
  /// this instant. Const member — safe to read without the mutex.
  TraceTime start_time() const { return start_; }

  /// Which execution track ran this request's evaluation: a worker-pool
  /// index, or kInlineTrack for requests evaluated on the submitter's
  /// thread. Stamped once by the evaluating thread; the trace exporter
  /// uses it to lay requests out on per-worker timeline rows.
  static constexpr int kInlineTrack = -1;
  void SetTrack(int track) {
    track_.store(track, std::memory_order_relaxed);
  }
  int track() const { return track_.load(std::memory_order_relaxed); }

  /// Closes the current phase (if any) and opens `name` at `now`. The
  /// shared boundary is what makes span durations sum to the total.
  void Phase(const std::string& name, TraceTime now = TraceClock::now());

  /// Zero-width event inside the current phase.
  void Mark(const std::string& name, const std::string& note = "",
            TraceTime now = TraceClock::now());

  /// Attaches/overwrites the note on the currently open phase.
  void AnnotatePhase(const std::string& note);

  /// Closes the final phase and seals the trace. Idempotent: the first
  /// Finish wins (a coalesced decision can reach two delivery paths).
  void Finish(const std::string& outcome, TraceTime now = TraceClock::now());

  bool finished() const;
  std::string outcome() const;
  /// Total end-to-end duration; 0 until finished.
  uint64_t total_micros() const;
  /// Snapshot of the recorded spans (marks included, in order).
  std::vector<TraceSpan> spans() const;
  size_t dropped_spans() const;

  /// Human timeline, one line per span:
  ///   trace#7 outcome=ok total=1234us
  ///     [0..12us] admit
  ///     [12..90us] queue
  ///     ...
  std::string ToString() const;

 private:
  uint64_t MicrosSinceStart(TraceTime now) const;

  const uint64_t id_;
  const TraceTime start_;
  std::atomic<int> track_{kInlineTrack};

  mutable Mutex mu_{LockRank::kObsTrace, "Trace::mu_"};
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  size_t dropped_ GUARDED_BY(mu_) = 0;
  /// spans_.back() is the running phase.
  bool open_phase_ GUARDED_BY(mu_) = false;
  uint64_t phase_start_micros_ GUARDED_BY(mu_) = 0;
  std::string phase_name_ GUARDED_BY(mu_);
  std::string phase_note_ GUARDED_BY(mu_);
  bool finished_ GUARDED_BY(mu_) = false;
  std::string outcome_ GUARDED_BY(mu_);
  uint64_t total_micros_ GUARDED_BY(mu_) = 0;
};

/// Sampling gate: hands out a fresh Trace for 1 in every `sample_every`
/// requests (0 = tracing off). Cheap when off — one relaxed load.
class Tracer {
 public:
  void Configure(uint64_t sample_every) {
    sample_every_.store(sample_every, std::memory_order_relaxed);
  }
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }

  /// nullptr when this request is not sampled.
  std::shared_ptr<Trace> MaybeTrace(TraceTime now = TraceClock::now());

  uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_TRACE_H_
