// Flight recorder + stall watchdog support: the forensics layer that can
// answer "what was the system doing just before X" and "which evaluation
// is stuck right now".
//
// Three pieces:
//   ActiveEvaluations — a registry of currently-running evaluations. Each
//     evaluation registers an atomic heartbeat record (loop tag + step
//     count + last-heartbeat time) for its lifetime; the evaluating thread
//     updates it with relaxed stores from the checkpoint progress hook
//     (lock-free hot path), and the watchdog thread scans a snapshot to
//     flag records whose heartbeat has not moved past a threshold.
//   FlightRecorder — a bounded ring of periodic samples (in-flight count,
//     recent rates, queue depth, active/stalled evaluation counts) plus
//     out-of-band annotations ("watchdog: stall flagged..."), written by
//     the service's sampler thread and dumped by ObsReport().
//   PublishAbortReport / DumpPublishedAbortReport — a pre-rendered report
//     string swapped in atomically by the sampler thread and written to
//     stderr from the lock-rank abort hook. The abort path must not lock
//     or allocate, so the report is rendered *ahead of time*, every tick;
//     the hook just fwrites whatever snapshot was current when the process
//     began dying.
#ifndef RELCOMP_OBS_RECORDER_H_
#define RELCOMP_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace relcomp {
namespace obs {

/// The registry of running evaluations. Registration/deregistration lock
/// a leaf mutex; heartbeats are relaxed atomic stores on the record.
class ActiveEvaluations {
 public:
  using Clock = std::chrono::steady_clock;

  /// One running evaluation's heartbeat surface. The const identity
  /// fields are written once at registration; the atomics are updated by
  /// the evaluating thread and read by the watchdog without locks.
  struct Record {
    Record(uint64_t id, std::string tenant_in, std::string kind_in,
           uint64_t trace_id_in, Clock::time_point start_in)
        : id(id),
          tenant(std::move(tenant_in)),
          kind(std::move(kind_in)),
          trace_id(trace_id_in),
          start(start_in),
          last_heartbeat(start_in.time_since_epoch().count()) {}

    const uint64_t id;
    const std::string tenant;
    const std::string kind;
    const uint64_t trace_id;  ///< 0 when unsampled
    const Clock::time_point start;

    std::atomic<uint64_t> steps{0};
    /// The loop tag last heartbeat'd (string literal from the checkpoint).
    std::atomic<const char*> loop{nullptr};
    /// steady-clock duration-since-epoch count of the last heartbeat.
    std::atomic<Clock::rep> last_heartbeat;
    /// Set (once) by the watchdog when the record trips the stall
    /// threshold, so one stall is flagged exactly once.
    std::atomic<bool> flagged{false};

    void Heartbeat(const char* loop_tag, uint64_t step_count,
                   Clock::time_point now = Clock::now()) {
      loop.store(loop_tag, std::memory_order_relaxed);
      steps.store(step_count, std::memory_order_relaxed);
      last_heartbeat.store(now.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }
  };

  /// RAII registration: the record stays in the registry until the handle
  /// dies (i.e. for exactly the evaluation's duration).
  class Registration {
   public:
    Registration() = default;
    Registration(ActiveEvaluations* registry, std::shared_ptr<Record> record)
        : registry_(registry), record_(std::move(record)) {}
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept {
      Reset();
      registry_ = other.registry_;
      record_ = std::move(other.record_);
      other.registry_ = nullptr;
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { Reset(); }

    Record* record() const { return record_.get(); }

   private:
    void Reset();

    ActiveEvaluations* registry_ = nullptr;
    std::shared_ptr<Record> record_;
  };

  Registration Register(std::string tenant, std::string kind,
                        uint64_t trace_id,
                        Clock::time_point now = Clock::now());

  /// Copies of the live records (the records themselves, not snapshots —
  /// callers read the atomics after the registry lock is released).
  std::vector<std::shared_ptr<Record>> Snapshot() const;

  size_t size() const;

 private:
  void Unregister(const Record* record);

  mutable Mutex mu_{LockRank::kObsActive, "ActiveEvaluations::mu_"};
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::vector<std::shared_ptr<Record>> records_ GUARDED_BY(mu_);
};

/// One periodic sample of the system's vitals, or an annotation.
struct RecorderSample {
  std::chrono::steady_clock::time_point at{};
  int64_t inflight = 0;
  double rate_1s = 0.0;    ///< requests/sec over the last second
  double rate_10s = 0.0;   ///< requests/sec over the last 10 seconds
  uint64_t p95_10s = 0;    ///< recent latency p95 (µs, 10 s window)
  size_t queue_depth = 0;
  size_t active = 0;       ///< running evaluations
  uint64_t stalled = 0;    ///< watchdog stall flags so far (cumulative)
  std::string annotation;  ///< non-empty for out-of-band events
};

/// Bounded ring of recent samples, oldest overwritten first.
class FlightRecorder {
 public:
  /// capacity 0 disables the recorder.
  void Configure(size_t capacity);

  void Add(RecorderSample sample);
  /// Appends an annotation-only sample (stamped `now`).
  void Annotate(std::string annotation,
                std::chrono::steady_clock::time_point now =
                    std::chrono::steady_clock::now());

  /// Retained samples, oldest first.
  std::vector<RecorderSample> Snapshot() const;

  size_t size() const;
  size_t capacity() const;

 private:
  mutable Mutex mu_{LockRank::kObsRecorder, "FlightRecorder::mu_"};
  size_t capacity_ GUARDED_BY(mu_) = 0;
  size_t next_ GUARDED_BY(mu_) = 0;
  std::vector<RecorderSample> ring_ GUARDED_BY(mu_);
};

/// Swaps in the pre-rendered last-gasp report the lock-rank abort hook
/// writes to stderr. Call InstallAbortReportHook() once (idempotent) to
/// register the dump with util/mutex's abort path; then publish a fresh
/// report every sampler tick.
void PublishAbortReport(std::string report);
/// Writes the current published report to stderr. Lock-free: one atomic
/// shared_ptr load + fwrite. Safe to call from the abort path.
void DumpPublishedAbortReport();
void InstallAbortReportHook();

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_RECORDER_H_
