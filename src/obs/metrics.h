// Metrics registry: named, labeled families of counters, gauges, and
// log-bucketed histograms, plus exposition in Prometheus text format and
// JSON.
//
// Design:
//  - A *family* is a metric name + help string + type; within a family,
//    each distinct label set owns one instrument. Instruments are created
//    on first use and live as long as the registry — GetCounter/GetGauge/
//    GetHistogram return stable raw pointers, so hot paths hold the
//    pointer and never touch the registry (or its mutex) again.
//  - Instruments themselves are lock-free (relaxed atomics); the registry
//    mutex guards only creation and dump-time iteration.
//  - Exposition is split in two: the registry (or any other source, e.g.
//    derived per-tenant counters) writes rows into a MetricsDump, and the
//    dump renders itself as Prometheus text or JSON. Histogram JSON carries
//    explicit p50/p95/p99 so dashboards don't need to re-derive quantiles.
#ifndef RELCOMP_OBS_METRICS_H_
#define RELCOMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/metric_names.h"
#include "util/mutex.h"

namespace relcomp {
namespace obs {

/// Monotonic counter; relaxed atomic increments.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (e.g. in-flight requests, resident bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Sorted (key, value) pairs; the identity of an instrument within a
/// family. Keep label sets small — they are compared lexicographically on
/// every registry lookup (but hot paths cache the instrument pointer).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class DumpFormat { kPrometheus, kJson };

/// An exposition staging area: flat rows of (name, labels, value/data)
/// that render as Prometheus text or JSON. Populated by
/// MetricsRegistry::DumpInto plus any derived metrics the caller adds.
class MetricsDump {
 public:
  void AddCounter(const std::string& name, const LabelSet& labels,
                  uint64_t value, const std::string& help = "");
  void AddGauge(const std::string& name, const LabelSet& labels,
                int64_t value, const std::string& help = "");
  void AddHistogram(const std::string& name, const LabelSet& labels,
                    const HistogramData& data, const std::string& help = "");
  /// A derived floating-point reading (requests/sec over a sliding window,
  /// ratios). Rendered as a Prometheus gauge — rates are instantaneous
  /// observations, not monotonic series — and as a JSON double.
  void AddRate(const std::string& name, const LabelSet& labels, double value,
               const std::string& help = "");

  /// Registry-constant flavors (obs/metric_names.h): name and help come
  /// from the family, so a row's identity can never be a loose string.
  void AddCounter(const MetricFamily& family, const LabelSet& labels,
                  uint64_t value) {
    AddCounter(family.name, labels, value, family.help);
  }
  void AddGauge(const MetricFamily& family, const LabelSet& labels,
                int64_t value) {
    AddGauge(family.name, labels, value, family.help);
  }
  void AddHistogram(const MetricFamily& family, const LabelSet& labels,
                    const HistogramData& data) {
    AddHistogram(family.name, labels, data, family.help);
  }
  void AddRate(const MetricFamily& family, const LabelSet& labels,
               double value) {
    AddRate(family.name, labels, value, family.help);
  }

  std::string Render(DumpFormat format) const;

 private:
  enum class RowType { kCounter, kGauge, kHistogram, kRate };
  struct Row {
    RowType type;
    std::string name;
    LabelSet labels;
    std::string help;
    int64_t scalar = 0;  // counter (as unsigned) or gauge value
    double rate = 0.0;   // rate rows only
    HistogramData data;  // histogram rows only
  };

  std::string RenderPrometheus() const;
  std::string RenderJson() const;

  std::vector<Row> rows_;
};

/// The registry. Thread-safe; instrument pointers are valid for the life
/// of the registry. A name used with one type cannot be reused with
/// another — mismatched lookups return nullptr (callers treat a null
/// instrument as "metrics off" rather than crashing a serving path).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, LabelSet labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, LabelSet labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, LabelSet labels = {},
                          const std::string& help = "");

  /// Registry-constant flavors (obs/metric_names.h) — the production call
  /// sites: the family carries the canonical name and help text, so no
  /// caller spells a metric name as a string literal (relcomp_lint rule
  /// `metric-registry` bans that outside the registry header).
  Counter* GetCounter(const MetricFamily& family, LabelSet labels = {}) {
    return GetCounter(family.name, std::move(labels), family.help);
  }
  Gauge* GetGauge(const MetricFamily& family, LabelSet labels = {}) {
    return GetGauge(family.name, std::move(labels), family.help);
  }
  Histogram* GetHistogram(const MetricFamily& family, LabelSet labels = {}) {
    return GetHistogram(family.name, std::move(labels), family.help);
  }

  /// Writes every registered instrument into `dump`, families in name
  /// order, instruments in label order.
  void DumpInto(MetricsDump* dump) const;

 private:
  enum class FamilyType { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    FamilyType type;
    std::string help;
    std::map<LabelSet, Instrument> instruments;
  };

  Instrument* GetInstrument(const std::string& name, LabelSet labels,
                            const std::string& help, FamilyType type);

  mutable Mutex mu_{LockRank::kObsMetrics, "MetricsRegistry::mu_"};
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace relcomp

#endif  // RELCOMP_OBS_METRICS_H_
