#include "obs/slowlog.h"

#include <algorithm>

namespace relcomp {
namespace obs {

void SlowDecisionLog::Configure(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

void SlowDecisionLog::Offer(SlowEntry entry) {
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (entries_.size() >= capacity_ && entry.micros <= entries_.back().micros) {
    return;  // not slower than the fastest kept entry
  }
  auto at = std::upper_bound(entries_.begin(), entries_.end(), entry.micros,
                             [](uint64_t t, const SlowEntry& e) {
                               return t > e.micros;
                             });
  entries_.insert(at, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<SlowEntry> SlowDecisionLog::Worst() const {
  MutexLock lock(mu_);
  return entries_;
}

size_t SlowDecisionLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t SlowDecisionLog::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

}  // namespace obs
}  // namespace relcomp
