#include "obs/slowlog.h"

#include <algorithm>

namespace relcomp {
namespace obs {

void SlowDecisionLog::Configure(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

void SlowDecisionLog::Offer(std::shared_ptr<const Trace> trace) {
  if (!trace || !trace->finished()) return;
  const uint64_t total = trace->total_micros();
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (entries_.size() >= capacity_ &&
      total <= entries_.back()->total_micros()) {
    return;  // not slower than the fastest kept entry
  }
  auto at = std::upper_bound(
      entries_.begin(), entries_.end(), total,
      [](uint64_t t, const std::shared_ptr<const Trace>& e) {
        return t > e->total_micros();
      });
  entries_.insert(at, std::move(trace));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<std::shared_ptr<const Trace>> SlowDecisionLog::Worst() const {
  MutexLock lock(mu_);
  return entries_;
}

size_t SlowDecisionLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t SlowDecisionLog::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

}  // namespace obs
}  // namespace relcomp
