// CompletenessEngine: a long-lived batch decision service over one partially
// closed setting (Dm, V). The setting is prepared once (validation, Adom
// seed, IND classification, master projections); decision requests — any of
// the paper's problems × models — are then answered in batches, fanned out
// across a fixed worker pool, with results memoized in an LRU cache keyed by
// stable (setting, problem, query, instance) fingerprints and per-request
// SearchStats merged into engine-level aggregate counters.
//
// This is the "many scenarios, heavy query-audit traffic" deployment shape:
// prepare once, decide millions of times.
#ifndef RELCOMP_ENGINE_ENGINE_H_
#define RELCOMP_ENGINE_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/types.h"
#include "engine/lru_cache.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// The decision problems the engine serves (problem × model).
enum class ProblemKind {
  kRcdpStrong,   ///< is T strongly complete for Q?           (Thm 4.1)
  kRcdpWeak,     ///< is T weakly complete for Q?             (Thm 5.1)
  kRcdpViable,   ///< is some world of T complete for Q?      (Thm 6.1)
  kRcqpStrong,   ///< does any complete instance exist?       (Thm 4.5/7.2)
  kRcqpWeak,     ///< ... in the weak model (O(1), Thm 5.4)
  kMinpStrong,   ///< is T minimally complete, all worlds?    (Thm 4.8)
  kMinpViable,   ///< ... in some world                       (Cor 6.3)
  kMinpWeak,     ///< ... in the weak model                   (Thm 5.6/5.7)
};

/// Human-readable kind name ("rcdp-strong", ...), matching the CLI flags.
const char* ProblemKindName(ProblemKind kind);

/// Parses a ProblemKindName string; kInvalidArgument on unknown names.
Result<ProblemKind> ParseProblemKind(const std::string& name);

/// One unit of engine work: problem kind × query × audited c-instance ×
/// budget. RCQP kinds ignore `cinstance` (the problem quantifies over all
/// instances).
struct DecisionRequest {
  ProblemKind kind = ProblemKind::kRcdpStrong;
  Query query;
  CInstance cinstance;
  SearchOptions options;
  /// Witness-size bound for the non-IND RCQP search (Theorem 4.5 leaves the
  /// NEXPTIME bound exponential; callers pick a practical cutoff).
  size_t rcqp_max_tuples = 3;
};

/// The engine's answer to one request.
struct Decision {
  Status status;           ///< decider outcome; `answer` meaningful iff ok()
  bool answer = false;     ///< the yes/no decision
  bool from_cache = false; ///< served from the memoization cache
  std::string note;        ///< qualifiers (e.g. RCQP bound exhausted)
  SearchStats stats;       ///< work done; the original run's stats on hits

  std::string ToString() const;
};

/// Engine configuration.
struct EngineOptions {
  size_t num_workers = 4;       ///< worker threads; 0 = run batches inline
  size_t cache_capacity = 1024; ///< LRU entries; 0 disables memoization
  bool memoize = true;
};

/// Decides one request by direct dispatch to the legacy
/// PartiallyClosedSetting decider entry points — the cold, per-call-prepared
/// baseline. The engine, the CLI's --compare mode, and the batch benchmark
/// all share this one kind→decider mapping.
Decision DecideCold(const DecisionRequest& request,
                    const PartiallyClosedSetting& setting);

/// Aggregate counters across the engine's lifetime.
struct EngineCounters {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t errors = 0;
  SearchStats search;  ///< per-request stats merged via SearchStats::Merge

  std::string ToString() const;
};

class CompletenessEngine {
 public:
  /// Validates and prepares `setting`, spins up the worker pool.
  static Result<std::unique_ptr<CompletenessEngine>> Create(
      PartiallyClosedSetting setting, EngineOptions options = {});

  ~CompletenessEngine();
  CompletenessEngine(const CompletenessEngine&) = delete;
  CompletenessEngine& operator=(const CompletenessEngine&) = delete;

  const PreparedSetting& prepared() const { return prepared_; }
  const EngineOptions& options() const { return options_; }

  /// Decides one request synchronously on the calling thread (consulting and
  /// filling the cache). Thread-safe.
  Decision Decide(const DecisionRequest& request);

  /// Decides a batch: requests are fanned out across the worker pool and the
  /// result vector is parallel to `requests`. Answers are deterministic —
  /// independent of worker count and scheduling; only `from_cache` flags may
  /// differ between runs. One batch runs at a time.
  std::vector<Decision> SubmitBatch(
      const std::vector<DecisionRequest>& requests);

  /// Stable memoization key of a request under this engine's setting. The
  /// cache internally keys on two independently-seeded digests of the same
  /// canonical material; this is the primary one.
  uint64_t FingerprintRequest(const DecisionRequest& request) const;

  EngineCounters counters() const;
  void ClearCache();

 private:
  CompletenessEngine(PreparedSetting prepared, EngineOptions options);

  /// Two independently-seeded digests of one request: a 64-bit fingerprint
  /// alone would hand a colliding request another request's verdict.
  struct CacheKey {
    uint64_t primary = 0;
    uint64_t check = 0;
    friend bool operator==(const CacheKey& a, const CacheKey& b) {
      return a.primary == b.primary && a.check == b.check;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return static_cast<size_t>(k.primary ^ (k.check * 0x9e3779b97f4a7c15ULL));
    }
  };
  CacheKey CacheKeyFor(const DecisionRequest& request) const;

  /// Raw decider dispatch — no cache, no counters.
  Decision Evaluate(const DecisionRequest& request) const;
  /// Cache-through evaluation + counter update.
  Decision DecideImpl(const DecisionRequest& request);
  void WorkerLoop();

  PreparedSetting prepared_;
  EngineOptions options_;

  // Worker pool: SubmitBatch enqueues (request, slot) pairs; workers drain.
  struct Job {
    const DecisionRequest* request = nullptr;
    Decision* out = nullptr;
  };
  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // signals workers
  std::condition_variable done_cv_;   // signals batch completion
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::mutex batch_mu_;  // serializes SubmitBatch callers

  // Memoization and counters share one lock: lookup/insert stays atomic
  // with the hit/miss accounting.
  mutable std::mutex cache_mu_;
  LruCache<CacheKey, Decision, CacheKeyHash> cache_;
  EngineCounters counters_;
};

}  // namespace relcomp

#endif  // RELCOMP_ENGINE_ENGINE_H_
