// CompletenessEngine: the legacy single-setting batch API, kept as a thin
// deprecated adapter over the multi-setting CompletenessService (like the
// raw-PartiallyClosedSetting decider overloads kept beside the
// PreparedSetting ones). Create() stands up a private service, registers the
// one setting, and every call routes through that handle — so the engine
// inherits the service's dedup-aware batch planning, request coalescing, and
// witness-carrying decisions for free. New code should talk to
// service/service.h directly; `service()` / `handle()` are the escape hatch
// for incremental migration.
#ifndef RELCOMP_ENGINE_ENGINE_H_
#define RELCOMP_ENGINE_ENGINE_H_

#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "core/prepared_setting.h"
#include "core/types.h"
#include "service/service.h"

namespace relcomp {

/// Engine configuration (the single-setting slice of ServiceOptions).
struct EngineOptions {
  size_t num_workers = 4;       ///< worker threads; 0 = run batches inline
  size_t cache_capacity = 1024; ///< LRU entries; 0 disables memoization
  bool memoize = true;
  bool coalesce = true;         ///< coalesce identical concurrent requests
};

class CompletenessEngine {
 public:
  /// Validates and prepares `setting`, spins up the worker pool.
  static Result<std::unique_ptr<CompletenessEngine>> Create(
      PartiallyClosedSetting setting, EngineOptions options = {});

  CompletenessEngine(const CompletenessEngine&) = delete;
  CompletenessEngine& operator=(const CompletenessEngine&) = delete;

  const PreparedSetting& prepared() const { return *prepared_; }
  const EngineOptions& options() const { return options_; }

  /// Decides one request synchronously on the calling thread (consulting and
  /// filling the cache). Thread-safe.
  Decision Decide(const DecisionRequest& request);

  /// Decides a batch: requests are fanned out across the worker pool and the
  /// result vector is parallel to `requests`. Answers are deterministic —
  /// independent of worker count and scheduling; only `from_cache` flags and
  /// coalescing notes may differ between runs. Thread-safe; batches may now
  /// run concurrently.
  std::vector<Decision> SubmitBatch(
      const std::vector<DecisionRequest>& requests);

  /// Async submission through the shared pool (see
  /// CompletenessService::SubmitAsync).
  std::future<Decision> SubmitAsync(DecisionRequest request);

  /// Stable memoization key of a request under this engine's setting. The
  /// cache internally keys on two independently-seeded digests of the same
  /// canonical material; this is the primary one.
  uint64_t FingerprintRequest(const DecisionRequest& request) const;

  EngineCounters counters() const;
  void ClearCache();

  /// The backing service and this engine's registration in it.
  CompletenessService& service() { return service_; }
  SettingHandle handle() const { return handle_; }

 private:
  CompletenessEngine(EngineOptions options, ServiceOptions service_options);

  EngineOptions options_;
  CompletenessService service_;
  SettingHandle handle_;
  std::optional<PreparedSetting> prepared_;  // set by Create, then immutable
};

}  // namespace relcomp

#endif  // RELCOMP_ENGINE_ENGINE_H_
