#include "engine/engine.h"

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "core/fingerprint.h"

namespace relcomp {

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kRcdpStrong: return "rcdp-strong";
    case ProblemKind::kRcdpWeak: return "rcdp-weak";
    case ProblemKind::kRcdpViable: return "rcdp-viable";
    case ProblemKind::kRcqpStrong: return "rcqp-strong";
    case ProblemKind::kRcqpWeak: return "rcqp-weak";
    case ProblemKind::kMinpStrong: return "minp-strong";
    case ProblemKind::kMinpViable: return "minp-viable";
    case ProblemKind::kMinpWeak: return "minp-weak";
  }
  return "unknown";
}

Result<ProblemKind> ParseProblemKind(const std::string& name) {
  static constexpr ProblemKind kAll[] = {
      ProblemKind::kRcdpStrong, ProblemKind::kRcdpWeak,
      ProblemKind::kRcdpViable, ProblemKind::kRcqpStrong,
      ProblemKind::kRcqpWeak,   ProblemKind::kMinpStrong,
      ProblemKind::kMinpViable, ProblemKind::kMinpWeak,
  };
  for (ProblemKind kind : kAll) {
    if (name == ProblemKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown problem kind '" + name +
                                 "' (try e.g. rcdp-strong, minp-weak)");
}

std::string Decision::ToString() const {
  if (!status.ok()) return "error[" + status.ToString() + "]";
  std::string out = answer ? "YES" : "no";
  if (from_cache) out += " (cached)";
  if (!note.empty()) out += " [" + note + "]";
  return out;
}

std::string EngineCounters::ToString() const {
  return "requests=" + std::to_string(requests) +
         " cache_hits=" + std::to_string(cache_hits) +
         " cache_misses=" + std::to_string(cache_misses) +
         " errors=" + std::to_string(errors) + " | " + search.ToString();
}

Result<std::unique_ptr<CompletenessEngine>> CompletenessEngine::Create(
    PartiallyClosedSetting setting, EngineOptions options) {
  Result<PreparedSetting> prepared =
      PreparedSetting::Prepare(std::move(setting));
  if (!prepared.ok()) return prepared.status();
  return std::unique_ptr<CompletenessEngine>(
      new CompletenessEngine(std::move(prepared).value(), options));
}

CompletenessEngine::CompletenessEngine(PreparedSetting prepared,
                                       EngineOptions options)
    : prepared_(std::move(prepared)),
      options_(options),
      cache_(options.memoize ? options.cache_capacity : 0) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompletenessEngine::~CompletenessEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void CompletenessEngine::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
    }
    *job.out = DecideImpl(*job.request);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

namespace {

/// The single kind→decider mapping, instantiated for both the prepared
/// (engine hot path) and the raw-setting (cold baseline) overload sets.
template <typename SettingT>
Decision EvaluateWith(const DecisionRequest& request, const SettingT& setting,
                      bool all_inds) {
  Decision decision;
  Result<bool> answer = true;
  switch (request.kind) {
    case ProblemKind::kRcdpStrong:
      answer = RcdpStrong(request.query, request.cinstance, setting,
                          request.options, &decision.stats);
      break;
    case ProblemKind::kRcdpWeak:
      answer = RcdpWeak(request.query, request.cinstance, setting,
                        request.options, &decision.stats);
      break;
    case ProblemKind::kRcdpViable:
      answer = RcdpViable(request.query, request.cinstance, setting,
                          request.options, &decision.stats);
      break;
    case ProblemKind::kRcqpStrong: {
      if (all_inds) {
        // Corollary 7.2: all CCs are INDs — decide in PTIME.
        answer = RcqpStrongInd(request.query, setting, request.options,
                               &decision.stats);
        break;
      }
      Result<RcqpSearchResult> found =
          RcqpStrongBounded(request.query, setting, request.rcqp_max_tuples,
                            request.options, &decision.stats);
      if (!found.ok()) {
        answer = found.status();
        break;
      }
      answer = found->found;
      if (!found->found && found->bound_exhausted) {
        decision.note = "no witness within " +
                        std::to_string(request.rcqp_max_tuples) +
                        " tuples (conclusive only if the NEXPTIME witness "
                        "bound fits)";
      }
      break;
    }
    case ProblemKind::kRcqpWeak:
      answer = RcqpWeak(request.query);
      break;
    case ProblemKind::kMinpStrong:
      answer = MinpStrong(request.query, request.cinstance, setting,
                          request.options, &decision.stats);
      break;
    case ProblemKind::kMinpViable:
      answer = MinpViable(request.query, request.cinstance, setting,
                          request.options, &decision.stats);
      break;
    case ProblemKind::kMinpWeak:
      // Lemma 5.7 dichotomy: CQ has a coDP fast path; the general subset
      // removal handles UCQ/∃FO⁺/FP.
      if (request.query.language() == QueryLanguage::kCQ) {
        answer = MinpWeakCq(request.query, request.cinstance, setting,
                            request.options, &decision.stats);
      } else {
        answer = MinpWeak(request.query, request.cinstance, setting,
                          request.options, &decision.stats);
      }
      break;
  }
  if (!answer.ok()) {
    decision.status = answer.status();
    return decision;
  }
  decision.answer = *answer;
  return decision;
}

}  // namespace

Decision DecideCold(const DecisionRequest& request,
                    const PartiallyClosedSetting& setting) {
  return EvaluateWith(request, setting, AllInds(setting.ccs));
}

CompletenessEngine::CacheKey CompletenessEngine::CacheKeyFor(
    const DecisionRequest& request) const {
  // Serialize the request's canonical material once; both digests then mix
  // the same handful of words from independently-seeded states.
  const char* kind = ProblemKindName(request.kind);
  const uint64_t query_print = FingerprintQuery(request.query);
  // RCQP quantifies over all instances; leaving T out of its key lets
  // audits of different databases share one RCQP verdict per query.
  const bool keyed_on_instance = request.kind != ProblemKind::kRcqpStrong &&
                                 request.kind != ProblemKind::kRcqpWeak;
  const uint64_t cinstance_print =
      keyed_on_instance ? FingerprintCInstance(request.cinstance) : 0;

  auto digest = [&](StableHasher h) {
    h.Mix(prepared_.fingerprint());
    h.Mix(kind);
    h.Mix(query_print);
    if (keyed_on_instance) h.Mix(cinstance_print);
    h.Mix(request.options.max_steps);
    if (request.kind == ProblemKind::kRcqpStrong) {
      h.Mix(static_cast<uint64_t>(request.rcqp_max_tuples));
    }
    return h.digest();
  };
  CacheKey key;
  key.primary = digest(StableHasher());
  key.check = digest(StableHasher(/*seed=*/0x5ca1ab1e5eed5ULL));
  return key;
}

uint64_t CompletenessEngine::FingerprintRequest(
    const DecisionRequest& request) const {
  return CacheKeyFor(request).primary;
}

Decision CompletenessEngine::Evaluate(const DecisionRequest& request) const {
  return EvaluateWith(request, prepared_, prepared_.all_inds());
}

Decision CompletenessEngine::DecideImpl(const DecisionRequest& request) {
  const bool memoize = options_.memoize && options_.cache_capacity > 0;
  CacheKey key;
  if (memoize) {
    key = CacheKeyFor(request);
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++counters_.requests;
    if (const Decision* cached = cache_.Get(key)) {
      ++counters_.cache_hits;
      Decision hit = *cached;
      hit.from_cache = true;
      return hit;
    }
    ++counters_.cache_misses;
  } else {
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++counters_.requests;
  }

  Decision decision = Evaluate(request);

  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    counters_.search += decision.stats;
    if (!decision.status.ok()) ++counters_.errors;
    if (memoize) cache_.Put(key, decision);
  }
  return decision;
}

Decision CompletenessEngine::Decide(const DecisionRequest& request) {
  return DecideImpl(request);
}

std::vector<Decision> CompletenessEngine::SubmitBatch(
    const std::vector<DecisionRequest>& requests) {
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  std::vector<Decision> results(requests.size());
  if (requests.empty()) return results;
  if (workers_.empty()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      results[i] = DecideImpl(requests[i]);
    }
    return results;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    in_flight_ = requests.size();
    for (size_t i = 0; i < requests.size(); ++i) {
      queue_.push_back(Job{&requests[i], &results[i]});
    }
  }
  queue_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  return results;
}

EngineCounters CompletenessEngine::counters() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return counters_;
}

void CompletenessEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.Clear();
}

}  // namespace relcomp
