#include "engine/engine.h"

namespace relcomp {

namespace {

ServiceOptions ToServiceOptions(const EngineOptions& options) {
  ServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.cache_capacity = options.cache_capacity;
  service_options.memoize = options.memoize;
  service_options.coalesce = options.coalesce;
  return service_options;
}

}  // namespace

CompletenessEngine::CompletenessEngine(EngineOptions options,
                                       ServiceOptions service_options)
    : options_(options), service_(service_options) {}

Result<std::unique_ptr<CompletenessEngine>> CompletenessEngine::Create(
    PartiallyClosedSetting setting, EngineOptions options) {
  std::unique_ptr<CompletenessEngine> engine(
      new CompletenessEngine(options, ToServiceOptions(options)));
  Result<SettingHandle> handle =
      engine->service_.RegisterSetting(std::move(setting));
  if (!handle.ok()) return handle.status();
  engine->handle_ = *handle;
  Result<PreparedSetting> prepared = engine->service_.prepared(*handle);
  if (!prepared.ok()) return prepared.status();
  engine->prepared_.emplace(std::move(prepared).value());
  return engine;
}

Decision CompletenessEngine::Decide(const DecisionRequest& request) {
  return service_.Decide(handle_, request);
}

std::vector<Decision> CompletenessEngine::SubmitBatch(
    const std::vector<DecisionRequest>& requests) {
  return service_.SubmitBatch(handle_, requests);
}

std::future<Decision> CompletenessEngine::SubmitAsync(DecisionRequest request) {
  return service_.SubmitAsync(ServiceRequest{handle_, std::move(request)});
}

uint64_t CompletenessEngine::FingerprintRequest(
    const DecisionRequest& request) const {
  return RequestKeyFor(*prepared_, request).primary;
}

EngineCounters CompletenessEngine::counters() const {
  return service_.counters(handle_).value_or(EngineCounters{});
}

void CompletenessEngine::ClearCache() { service_.ClearCache(handle_); }

}  // namespace relcomp
