// A small intrusive-list LRU map, bounded by ENTRY COUNT. Formerly the
// service shards' result memoization; the shard hot path now runs on the
// byte-weighted, admission-filtered cache::ShardCache (src/cache/), which
// also understands the shared cross-shard byte budget. This template stays
// as the plain building block for fixed-population caches whose values are
// uniformly small. Not thread-safe by itself: callers serialize access.
#ifndef RELCOMP_SERVICE_LRU_CACHE_H_
#define RELCOMP_SERVICE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace relcomp {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and refreshes its recency, or nullptr.
  const Value* Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; evicts the least recently used entry beyond
  /// capacity. A zero-capacity cache stores nothing.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key,
                     typename std::list<std::pair<Key, Value>>::iterator, Hash>
      index_;
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_LRU_CACHE_H_
