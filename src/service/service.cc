#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>
#include <utility>

#include "cache/persist.h"
#include "core/fingerprint.h"
#include "util/build_info.h"

namespace relcomp {

namespace {

/// Set while a pool thread is executing jobs. Re-entrant submissions — a
/// completion callback calling back into Decide/SubmitBatch/SubmitAsync —
/// then execute inline instead of enqueueing: a worker blocking on work
/// that only workers can drain would deadlock the pool.
thread_local bool tls_on_worker_thread = false;

/// Which worker-pool thread this is (trace-export track id);
/// Trace::kInlineTrack on submitter threads.
thread_local int tls_worker_index = obs::Trace::kInlineTrack;

void AppendNote(Decision* decision, const char* note) {
  if (decision->note.empty()) {
    decision->note = note;
  } else {
    decision->note += "; ";
    decision->note += note;
  }
}

Decision CancelledDecision() {
  Decision decision;
  decision.status =
      Status::Cancelled("request cancelled before evaluation started");
  return decision;
}

Decision ExpiredDecision() {
  Decision decision;
  decision.status = Status::DeadlineExceeded(
      "best-effort deadline passed while queued; request shed before "
      "evaluation");
  return decision;
}

Decision RejectedDecision() {
  Decision decision;
  decision.status = Status::Unavailable(
      "admission control rejected the request (tenant queue quota or rate "
      "limit exceeded)");
  return decision;
}

/// Whether a decision was shed by the scheduler rather than evaluated —
/// batch duplicates of a shed primary mirror its scheduling fate in the
/// counters instead of counting as cache hits. Mid-run aborts carry the
/// same codes, so an aborted primary's duplicates mirror the abort too.
bool IsShedDecision(const Decision& decision) {
  switch (decision.status.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// Whether an evaluation that RAN was aborted mid-run by a cooperative
/// checkpoint (deadline or joint cancellation).
bool IsAbortStatus(const Status& status) {
  return status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kDeadlineExceeded;
}

/// Whether a decision is a definitive verdict that may live in the shard
/// LRU. Resource-dependent failures — mid-run aborts, admission rejections,
/// and a decider's own step-budget exhaustion — must never be replayed
/// from the cache as if they were answers.
bool IsCacheableDecision(const Decision& decision) {
  switch (decision.status.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kUnavailable:
      return false;
    default:
      return true;
  }
}

/// Files one request under the partition bucket matching an abort status
/// (kCancelled → cancelled, kDeadlineExceeded → expired). The ONE place
/// that owns the mapping — every abort-accounting site goes through it so
/// the requests == hits+misses+rejected+expired+cancelled invariant cannot
/// drift between them. Requires the shard mutex.
void CountAbortBucketLocked(EngineCounters& counters, const Status& status) {
  if (status.code() == StatusCode::kCancelled) {
    ++counters.cancelled;
  } else {
    ++counters.expired;
  }
}

/// Re-files an evaluation that aborted mid-run: the claim-time cache miss
/// becomes the matching abort bucket, and the wasted search work becomes
/// visible as shed_running / aborted_steps. Requires the shard mutex.
void ReclassifyAbortLocked(EngineCounters& counters, const Decision& decision) {
  --counters.cache_misses;
  CountAbortBucketLocked(counters, decision.status);
  ++counters.shed_running;
  counters.aborted_steps += decision.stats.TotalSteps();
}

/// Counter bucket for one batch duplicate mirroring `primary`. Requires the
/// shard mutex.
void CountDuplicateLocked(EngineCounters& counters, const Decision& primary) {
  ++counters.requests;
  switch (primary.status.code()) {
    case StatusCode::kCancelled:
      ++counters.cancelled;
      break;
    case StatusCode::kDeadlineExceeded:
      ++counters.expired;
      break;
    case StatusCode::kUnavailable:
      ++counters.rejected;
      break;
    default:
      ++counters.cache_hits;
      ++counters.coalesced;
      break;
  }
}

/// Queue-wait accounting for one scheduled task: the shard counters plus
/// the tenant's queue-wait histogram (null = metrics off). Requires the
/// shard mutex.
void CountWaitLocked(EngineCounters& counters, std::chrono::microseconds wait,
                     obs::Histogram* histogram) {
  if (wait.count() < 0) return;  // never queued (inline or rejected)
  ++counters.waited;
  const uint64_t micros = static_cast<uint64_t>(wait.count());
  counters.wait_micros += micros;
  counters.max_wait_micros = std::max(counters.max_wait_micros, micros);
  if (histogram != nullptr) histogram->Record(micros);
}

/// RAII +1/-1 on a (possibly null) gauge — the in-flight request count
/// survives every early return of the decide paths.
class GaugeGuard {
 public:
  explicit GaugeGuard(obs::Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1);
  }
  ~GaugeGuard() {
    if (gauge_ != nullptr) gauge_->Add(-1);
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  obs::Gauge* gauge_;
};

/// The trace outcome tag of a finished decision: the verdict for served
/// answers, the status code for everything else.
std::string TraceOutcome(const Decision& decision) {
  if (decision.status.ok()) return decision.answer ? "YES" : "no";
  return StatusCodeName(decision.status.code());
}

sched::TaskOutcome InlineOutcome(const sched::Task& task) {
  return task.deadline < sched::Clock::now() ? sched::TaskOutcome::kExpired
                                             : sched::TaskOutcome::kRun;
}

}  // namespace

CompletenessService::CompletenessService(ServiceOptions options)
    : options_(options),
      cache_budget_(options.cache_budget_bytes > 0
                        ? std::make_unique<cache::CacheBudget>(
                              options.cache_budget_bytes)
                        : nullptr),
      queue_(options.policy, options.overload,
             sched::TenantOptions{/*weight=*/1, options.default_max_queue,
                                  /*rate_per_sec=*/0.0, /*burst=*/0.0}) {
  tracer_.Configure(options_.trace_sample);
  slow_log_.Configure(options_.slow_log);
  trace_sink_.Configure(options_.trace_ring);
  if (options_.metrics) {
    windows_ = std::make_unique<Shard::Windows>();
    inflight_gauge_ = metrics_registry_.GetGauge(obs::kMetricInflightRequests);
    sched_queue_wait_ =
        metrics_registry_.GetHistogram(obs::kMetricSchedQueueWaitMicros);
    sched_token_wait_ =
        metrics_registry_.GetHistogram(obs::kMetricSchedTokenWaitMicros);
    queue_.AttachMetrics(sched_queue_wait_, sched_token_wait_);
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
  if (options_.recorder_interval_ms > 0 || options_.watchdog_stall_micros > 0) {
    recorder_.Configure(options_.recorder_ring);
    obs::InstallAbortReportHook();
    recorder_thread_ = JoinableThread([this] { RecorderLoop(); });
  }
}

CompletenessService::~CompletenessService() {
  // The observability endpoint's handler threads call back into this
  // service, so it stops before anything else is dismantled.
  StopObs();
  // The sampler reads queue/window/registry state the rest of this
  // teardown dismantles, so it stops first.
  if (recorder_thread_.joinable()) {
    {
      MutexLock lock(recorder_wake_mu_);
      recorder_stop_ = true;
    }
    recorder_wake_cv_.NotifyAll();
    recorder_thread_.Join();
  }
  queue_.Shutdown();
  for (JoinableThread& worker : workers_) worker.Join();
}

void CompletenessService::WorkerLoop(int worker_index) {
  tls_on_worker_thread = true;
  tls_worker_index = worker_index;
  sched::Task task;
  sched::TaskOutcome outcome;
  while (queue_.Pop(&task, &outcome)) {
    task.fn(outcome, task.wait);
    task.fn = nullptr;  // drop captures before blocking in Pop again
  }
}

Result<SettingHandle> CompletenessService::RegisterSetting(
    PartiallyClosedSetting setting, const ShardOptions& shard_options) {
  const SettingKey key{FingerprintSetting(setting),
                       FingerprintSettingSeeded(setting,
                                                /*seed=*/0x5e771465eed2ULL)};
  {
    MutexLock lock(registry_mu_);
    auto it = handle_by_fingerprint_.find(key);
    if (it != handle_by_fingerprint_.end()) {
      ++shards_.at(it->second)->refcount;
      return SettingHandle{it->second};
    }
  }
  // Prepare outside the registry lock — validation, Adom seeding and master
  // projection can be heavy, and other settings keep registering meanwhile.
  // The dedup digest doubles as the prepared fingerprint: no re-scan.
  Result<PreparedSetting> prepared =
      PreparedSetting::Prepare(std::move(setting), key.primary);
  if (!prepared.ok()) return prepared.status();

  ShardOptions resolved = shard_options;
  if (resolved.cache_capacity == ShardOptions::kInherit) {
    resolved.cache_capacity = options_.cache_capacity;
  }
  // The resolved options report the EFFECTIVE capacity: memoization off
  // service-wide means every shard's cache is capacity 0, and
  // shard_options() must say so rather than echo a capacity no cache has.
  if (!options_.memoize) resolved.cache_capacity = 0;
  if (resolved.max_queue == ShardOptions::kInherit) {
    resolved.max_queue = options_.default_max_queue;
  }
  if (resolved.weight == 0) resolved.weight = 1;

  cache::ShardCacheOptions cache_options;
  cache_options.max_entries = resolved.cache_capacity;
  auto shard_cache = std::make_shared<cache::ShardCache>(cache_options);
  if (cache_budget_ != nullptr && cache_options.max_entries > 0) {
    shard_cache->AttachBudget(cache_budget_.get(), shard_cache,
                              resolved.cache_floor_bytes);
  }

  MutexLock lock(registry_mu_);
  auto it = handle_by_fingerprint_.find(key);
  if (it != handle_by_fingerprint_.end()) {
    // Another thread registered the same setting while we prepared.
    ++shards_.at(it->second)->refcount;
    return SettingHandle{it->second};
  }
  // Warm start: replay any staged snapshot entries computed under this
  // exact setting fingerprint (coldest first, so recency survives the
  // round trip). A snapshot of different master data fingerprints
  // differently and simply never matches.
  if (cache_options.max_entries > 0) {
    auto warm = pending_warm_.find(key);
    if (warm != pending_warm_.end()) {
      for (auto& [entry_key, decision] : warm->second) {
        shard_cache->Restore(entry_key, std::move(decision));
      }
      pending_warm_.erase(warm);
    }
  }
  const uint64_t id = next_handle_id_++;
  auto shard = std::make_shared<Shard>(std::move(prepared).value(), key,
                                       resolved, std::move(shard_cache));
  shard->id = id;
  InitShardMetrics(*shard, id);
  shards_.emplace(id, std::move(shard));
  handle_by_fingerprint_.emplace(key, id);
  queue_.RegisterTenant(id, sched::TenantOptions{resolved.weight,
                                                 resolved.max_queue,
                                                 resolved.rate_per_sec,
                                                 resolved.burst});
  return SettingHandle{id};
}

Status CompletenessService::ReleaseSetting(SettingHandle handle) {
  MutexLock lock(registry_mu_);
  auto it = shards_.find(handle.id);
  if (it == shards_.end()) {
    return Status::NotFound("setting handle " + std::to_string(handle.id) +
                            " is not registered (or already fully released)");
  }
  if (--it->second->refcount == 0) {
    handle_by_fingerprint_.erase(it->second->setting_key);
    shards_.erase(it);  // in-flight requests hold their own shared_ptr
    queue_.ReleaseTenant(handle.id);
  }
  return Status::OK();
}

size_t CompletenessService::num_settings() const {
  MutexLock lock(registry_mu_);
  return shards_.size();
}

std::shared_ptr<CompletenessService::Shard> CompletenessService::FindShard(
    SettingHandle handle) const {
  MutexLock lock(registry_mu_);
  auto it = shards_.find(handle.id);
  return it == shards_.end() ? nullptr : it->second;
}

Decision CompletenessService::UnknownHandleDecision(SettingHandle handle) {
  Decision decision;
  decision.status =
      Status::NotFound("setting handle " + std::to_string(handle.id) +
                       " is not registered (or already fully released)");
  return decision;
}

void CompletenessService::InitShardMetrics(Shard& shard, uint64_t handle_id) {
  if (!options_.metrics) return;
  shard.windows = std::make_unique<Shard::Windows>();
  const obs::LabelSet tenant{{"tenant", std::to_string(handle_id)}};
  shard.metrics.e2e_latency =
      metrics_registry_.GetHistogram(obs::kMetricRequestLatencyMicros, tenant);
  shard.metrics.queue_wait =
      metrics_registry_.GetHistogram(obs::kMetricQueueWaitMicros, tenant);
  const std::vector<ProblemKind>& kinds = AllProblemKinds();
  shard.metrics.by_kind.assign(kinds.size(), nullptr);
  for (size_t i = 0; i < kinds.size(); ++i) {
    obs::LabelSet labels = tenant;
    labels.emplace_back("kind", ProblemKindName(kinds[i]));
    shard.metrics.by_kind[i] =
        metrics_registry_.GetCounter(obs::kMetricRequestsTotal, labels);
  }
  static constexpr const char* kPriorityNames[sched::kNumPriorities] = {
      "high", "normal", "low"};
  for (size_t i = 0; i < sched::kNumPriorities; ++i) {
    obs::LabelSet labels = tenant;
    labels.emplace_back("priority", kPriorityNames[i]);
    shard.metrics.by_priority[i] =
        metrics_registry_.GetCounter(obs::kMetricPriorityRequestsTotal, labels);
  }
  cache::CacheEventSink sink;
  sink.hits = metrics_registry_.GetCounter(obs::kMetricCacheHitsTotal, tenant);
  sink.misses =
      metrics_registry_.GetCounter(obs::kMetricCacheMissesTotal, tenant);
  sink.evictions =
      metrics_registry_.GetCounter(obs::kMetricCacheEvictionsTotal, tenant);
  sink.admission_rejects = metrics_registry_.GetCounter(
      obs::kMetricCacheAdmissionRejectsTotal, tenant);
  sink.resident_bytes =
      metrics_registry_.GetGauge(obs::kMetricCacheResidentBytes, tenant);
  sink.resident_entries =
      metrics_registry_.GetGauge(obs::kMetricCacheResidentEntries, tenant);
  shard.cache->AttachEvents(sink);
}

void CompletenessService::CountAdmission(const Shard& shard,
                                         const DecisionRequest& request,
                                         const sched::SchedParams* sched) {
  const size_t kind = static_cast<size_t>(request.kind);
  if (kind < shard.metrics.by_kind.size() &&
      shard.metrics.by_kind[kind] != nullptr) {
    shard.metrics.by_kind[kind]->Inc();
  }
  const size_t priority = static_cast<size_t>(
      sched != nullptr ? sched->priority : sched::Priority::kNormal);
  if (priority < shard.metrics.by_priority.size() &&
      shard.metrics.by_priority[priority] != nullptr) {
    shard.metrics.by_priority[priority]->Inc();
  }
}

void CompletenessService::FinishRequest(Shard* shard,
                                        const std::shared_ptr<obs::Trace>& trace,
                                        sched::TimePoint submit,
                                        Decision* decision,
                                        const char* kind) {
  const sched::TimePoint now = sched::Clock::now();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(now - submit);
  const uint64_t micros =
      elapsed.count() > 0 ? static_cast<uint64_t>(elapsed.count()) : 0;
  decision->latency_micros = micros;
  if (shard != nullptr && shard->metrics.e2e_latency != nullptr) {
    shard->metrics.e2e_latency->Record(micros);
  }
  if (shard != nullptr && shard->windows != nullptr) {
    shard->windows->requests.Record(1, now);
    shard->windows->latency.Record(micros, now);
  }
  if (windows_ != nullptr) {
    windows_->requests.Record(1, now);
    windows_->latency.Record(micros, now);
  }
  if (trace != nullptr) {
    // The SAME instant closes the trace and stamps the latency: the span
    // durations sum to latency_micros exactly, not merely approximately.
    trace->Finish(TraceOutcome(*decision), now);
    obs::SlowEntry entry;
    entry.micros = micros;
    entry.trace_id = trace->id();
    if (shard != nullptr) entry.tenant = std::to_string(shard->id);
    if (kind != nullptr) entry.kind = kind;
    entry.trace = trace;
    entry.profile = decision->profile;
    slow_log_.Offer(std::move(entry));
    obs::TraceRecord record;
    record.trace = trace;
    if (shard != nullptr) record.tenant = std::to_string(shard->id);
    if (kind != nullptr) record.kind = kind;
    record.profile = decision->profile;
    record.worker = trace->track();
    trace_sink_.Offer(std::move(record));
  }
}

void CompletenessService::ResolveMember(FlightGroup::Member& member,
                                        Decision decision) {
  if (member.promise != nullptr) {
    member.promise->set_value(std::move(decision));
  } else if (member.callback) {
    member.callback(std::move(decision));
  }
}

Result<PreparedSetting> CompletenessService::prepared(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return shard->prepared;
}

Result<ShardOptions> CompletenessService::shard_options(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return shard->options;
}

Result<uint64_t> CompletenessService::FingerprintRequest(
    SettingHandle handle, const DecisionRequest& request) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return RequestKeyFor(shard->prepared, request).primary;
}

SearchOptions CompletenessService::EffectiveOptions(
    const Shard& shard, const DecisionRequest& request,
    const sched::SchedParams* sched) {
  SearchOptions effective = request.options;
  if (shard.options.max_steps != 0 &&
      effective.max_steps == SearchOptions::kDefaultMaxSteps) {
    effective.max_steps = shard.options.max_steps;
  }
  if (sched != nullptr) {
    effective.deadline = std::min(effective.deadline, sched->deadline);
    // Either-cancels: the request's own token keeps working alongside the
    // submission's (group composite for scheduled batch work).
    effective.cancel =
        sched::CancelToken::AnyOf(effective.cancel, sched->cancel);
  }
  return effective;
}

Decision CompletenessService::RunEvaluation(
    Shard& shard, const DecisionRequest& request, SearchOptions* effective,
    const std::shared_ptr<obs::Trace>& trace) {
  // One clock read anchors the trace's "evaluate" phase AND the profile's
  // epoch, so profile slice offsets are offsets into the evaluate span
  // (what the trace exporter nests sub-slices by).
  auto profile = std::make_shared<SearchProfile>();
  const obs::TraceTime eval_start = obs::TraceClock::now();
  profile->Start(eval_start);
  effective->profile = profile.get();
  if (trace != nullptr) {
    trace->Phase("evaluate", eval_start);
    trace->SetTrack(tls_worker_index);
  }

  // Register with the stall watchdog for exactly the evaluation's
  // lifetime. Heartbeats flow through the chained progress hook below;
  // registering without enabling that hook would flag every long
  // evaluation as stalled, so both are gated on the same condition.
  const bool watched = options_.watchdog_stall_micros > 0;
  obs::ActiveEvaluations::Registration registration;
  obs::ActiveEvaluations::Record* heartbeat = nullptr;
  if (watched) {
    registration = active_.Register(std::to_string(shard.id),
                                    ProblemKindName(request.kind),
                                    trace != nullptr ? trace->id() : 0,
                                    eval_start);
    heartbeat = registration.record();
  }

  // Chain the checkpoint progress hook: watchdog heartbeat, then the
  // trace mark, then whatever hook the request itself supplied (which may
  // block — the heartbeat must land first so the watchdog sees the loop
  // the request's hook is stuck under).
  const SearchOptions::SearchProgressFn* original = effective->progress;
  SearchOptions::SearchProgressFn progress_fn;
  if (heartbeat != nullptr || trace != nullptr || original != nullptr) {
    progress_fn = [&trace, heartbeat, original](const char* what,
                                                uint64_t steps) {
      if (heartbeat != nullptr) heartbeat->Heartbeat(what, steps);
      if (trace != nullptr) {
        trace->Mark(std::string("eval:") + what,
                    "steps=" + std::to_string(steps));
      }
      if (original != nullptr && *original) (*original)(what, steps);
    };
    effective->progress = &progress_fn;
  }

  Decision decision = EvaluateRequest(request, shard.prepared, effective);

  const obs::TraceTime eval_end = obs::TraceClock::now();
  profile->Finish(eval_end);
  if (trace != nullptr) trace->Phase("cache-store", eval_end);
  decision.profile = std::move(profile);
  RecordSearchProfile(shard, request, *decision.profile);
  return decision;
}

void CompletenessService::RecordSearchProfile(const Shard& shard,
                                              const DecisionRequest& request,
                                              const SearchProfile& profile) {
  if (!options_.metrics) return;
  const std::string tenant = std::to_string(shard.id);
  const char* kind = ProblemKindName(request.kind);
  for (const SearchProfile::LoopTotal& total : profile.totals()) {
    obs::Counter* steps = metrics_registry_.GetCounter(
        obs::kMetricSearchStepsTotal,
        {{"tenant", tenant}, {"kind", kind}, {"loop", total.loop}});
    if (steps != nullptr) steps->Inc(total.steps);
    obs::Histogram* micros = metrics_registry_.GetHistogram(
        obs::kMetricSearchLoopMicros,
        {{"tenant", tenant}, {"loop", total.loop}});
    if (micros != nullptr) micros->Record(total.micros);
  }
}

Decision CompletenessService::DecideOnShard(
    Shard& shard, const DecisionRequest& request,
    const RequestCacheKey* precomputed, const sched::SchedParams* sched,
    bool count_request, const std::shared_ptr<obs::Trace>& trace) {
  GaugeGuard in_flight(inflight_gauge_);
  // Cooperative shed points for synchronous evaluation: a request already
  // cancelled or past its deadline never reaches the decider.
  if (sched != nullptr) {
    if (sched->cancel.cancelled()) {
      if (trace != nullptr) {
        trace->Phase("shed");
        trace->AnnotatePhase("cancelled before evaluation");
      }
      MutexLock lock(shard.mu);
      if (count_request) ++shard.counters.requests;
      ++shard.counters.cancelled;
      return CancelledDecision();
    }
    if (sched->deadline < sched::Clock::now()) {
      if (trace != nullptr) {
        trace->Phase("shed");
        trace->AnnotatePhase("deadline passed while queued");
      }
      MutexLock lock(shard.mu);
      if (count_request) ++shard.counters.requests;
      ++shard.counters.expired;
      return ExpiredDecision();
    }
  }
  const bool memoize = options_.memoize && shard.cache->capacity() > 0;
  const bool coalesce = options_.coalesce;
  RequestCacheKey key;
  if (memoize || coalesce) {
    key = precomputed != nullptr ? *precomputed
                                 : RequestKeyFor(shard.prepared, request);
  }
  if (trace != nullptr && (memoize || coalesce)) trace->Phase("cache-lookup");
  std::shared_ptr<FlightGroup> joined;
  std::shared_ptr<FlightGroup> owned;
  uint64_t joined_run_id = 0;
  bool joined_run_traced = false;
  {
    MutexLock lock(shard.mu);
    if (count_request) ++shard.counters.requests;
    if (memoize) {
      Decision hit;
      if (shard.cache->Get(key, &hit)) {
        ++shard.counters.cache_hits;
        hit.from_cache = true;
        if (trace != nullptr) trace->AnnotatePhase("hit");
        return hit;
      }
    }
    if (coalesce) {
      // Whatever role this caller ends up in, it is one more participant
      // whose interest keeps the (possibly already running) computation
      // alive — a caller without a token pins it forever — and whose
      // deadline extends the run's shared deadline (none lifts it).
      const sched::CancelToken participant =
          sched != nullptr ? sched->cancel : sched::CancelToken{};
      const sched::TimePoint participant_deadline =
          sched != nullptr ? sched->deadline : sched::kNoDeadline;
      auto it = shard.in_flight.find(key);
      if (it != shard.in_flight.end() && it->second->started) {
        // Live evaluation on another thread: wait on its shared future.
        ++shard.counters.cache_hits;
        ++shard.counters.coalesced;
        joined = it->second;
        joined->interest.Add(participant);
        ExtendRunDeadline(*joined, participant_deadline);
        if (joined->run_trace != nullptr) {
          joined_run_traced = true;
          joined_run_id = joined->run_trace->id();
        }
      } else if (it != shard.in_flight.end()) {
        // The group is parked — its owner task is still in the queue. A
        // synchronous caller must never block on parked work (with every
        // worker blocked that way the pool would wedge), so it steals the
        // evaluation; the owner task will find started == true and yield.
        owned = it->second;
        owned->started = true;
        owned->interest.Add(participant);
        ExtendRunDeadline(*owned, participant_deadline);
        if (trace != nullptr) owned->run_trace = trace;
        ++shard.counters.cache_misses;
      } else {
        owned = std::make_shared<FlightGroup>();
        owned->started = true;
        owned->interest.Add(participant);
        ExtendRunDeadline(*owned, participant_deadline);
        owned->future = std::make_shared<std::shared_future<Decision>>(
            owned->sync_promise.get_future().share());
        if (trace != nullptr) owned->run_trace = trace;
        shard.in_flight.emplace(key, owned);
        ++shard.counters.cache_misses;
      }
    } else {
      ++shard.counters.cache_misses;
    }
  }
  if (joined != nullptr) {
    if (trace != nullptr) {
      trace->Phase("coalesce-join");
      trace->AnnotatePhase(joined_run_traced
                               ? "joined run trace#" +
                                     std::to_string(joined_run_id)
                               : "joined in-flight run");
    }
    // The computation is live on the claiming thread (never parked on the
    // queue), so this wait always makes progress.
    Decision decision = joined->future->get();
    if (IsAbortStatus(decision.status)) {
      // The run this caller piggy-backed on was aborted mid-evaluation:
      // re-file the join-time hit under the abort's bucket instead.
      MutexLock lock(shard.mu);
      --shard.counters.cache_hits;
      --shard.counters.coalesced;
      CountAbortBucketLocked(shard.counters, decision.status);
      return decision;
    }
    decision.from_cache = true;
    AppendNote(&decision, "coalesced with identical in-flight request");
    return decision;
  }
  if (owned == nullptr) {
    // Coalescing off: plain cache-through evaluation under the merged
    // budget / deadline / token.
    SearchOptions effective = EffectiveOptions(shard, request, sched);
    Decision decision = RunEvaluation(shard, request, &effective, trace);
    const bool aborted = IsAbortStatus(decision.status);
    MutexLock lock(shard.mu);
    shard.counters.search += decision.stats;
    if (!decision.status.ok() && !aborted) ++shard.counters.errors;
    if (aborted) ReclassifyAbortLocked(shard.counters, decision);
    if (memoize && IsCacheableDecision(decision)) {
      const bool admitted = shard.cache->Put(key, decision);
      if (trace != nullptr) {
        trace->AnnotatePhase(admitted ? "admitted" : "admission rejected");
      }
    } else if (trace != nullptr) {
      trace->AnnotatePhase(memoize ? "not cacheable" : "memoization off");
    }
    return decision;
  }
  return EvaluateForGroup(shard, request, key, owned, kSyncBilled);
}

void CompletenessService::ExtendRunDeadline(FlightGroup& group,
                                            sched::TimePoint deadline) {
  const sched::Clock::rep candidate = deadline.time_since_epoch().count();
  sched::Clock::rep current = group.run_deadline.load(std::memory_order_relaxed);
  while (current < candidate &&
         !group.run_deadline.compare_exchange_weak(current, candidate,
                                                   std::memory_order_relaxed)) {
  }
}

Decision CompletenessService::EvaluateForGroup(
    Shard& shard, const DecisionRequest& request, const RequestCacheKey& key,
    const std::shared_ptr<FlightGroup>& group, size_t billed_member) {
  const bool memoize = options_.memoize && shard.cache->capacity() > 0;
  // The run's trace (the claiming caller's, or an async member's chosen at
  // claim time). Written under the shard mutex by the thread that set
  // `started`, which is this thread — reading it here is race-free.
  const std::shared_ptr<obs::Trace>& trace = group->run_trace;
  SearchOptions effective = EffectiveOptions(shard, request, nullptr);
  // The joint interest token and the extendable run deadline: checkpoints
  // abort this run only once EVERY participant — including ones that join
  // mid-run — has cancelled, and only past the LATEST deadline among them
  // (re-read each poll, so a late deadline-less joiner lifts the bound).
  // Every participant was recorded at its join site; the group outlives
  // the evaluation (the caller holds the shared_ptr), so the pointer into
  // it stays valid for the whole search.
  effective.cancel = group->interest.token();
  effective.shared_deadline = &group->run_deadline;
  Decision decision = RunEvaluation(shard, request, &effective, trace);
  const bool aborted = IsAbortStatus(decision.status);

  std::vector<FlightGroup::Member> members;
  std::vector<bool> member_cancelled;
  {
    MutexLock lock(shard.mu);
    shard.counters.search += decision.stats;
    if (!decision.status.ok() && !aborted) ++shard.counters.errors;
    if (aborted) ReclassifyAbortLocked(shard.counters, decision);
    if (memoize && IsCacheableDecision(decision)) {
      const bool admitted = shard.cache->Put(key, decision);
      if (trace != nullptr) {
        trace->AnnotatePhase(admitted ? "admitted" : "admission rejected");
      }
    } else if (trace != nullptr) {
      trace->AnnotatePhase(memoize ? "not cacheable" : "memoization off");
    }
    shard.in_flight.erase(key);
    members = std::move(group->members);
    group->members.clear();
    // Classify each async member while the counters are consistent with
    // the cancellation snapshot (a token flipping after this point is too
    // late: the result is already being published). Members of an aborted
    // run mirror the abort's bucket — they were never served an answer, so
    // they must not count as cache hits.
    member_cancelled.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      const bool cancelled =
          i != billed_member && members[i].cancel.cancelled();
      member_cancelled.push_back(cancelled);
      if (i == billed_member) continue;  // charged as the evaluation miss
      if (cancelled) {
        ++shard.counters.cancelled;
      } else if (aborted) {
        CountAbortBucketLocked(shard.counters, decision.status);
      } else {
        ++shard.counters.cache_hits;
        ++shard.counters.coalesced;
      }
    }
  }
  // Publish after the slot is gone: late arrivals hit the LRU instead.
  // Promises and callbacks resolve outside the shard lock — callbacks may
  // re-enter the service.
  group->sync_promise.set_value(decision);
  for (size_t i = 0; i < members.size(); ++i) {
    Decision member_decision;
    if (member_cancelled[i]) {
      member_decision = CancelledDecision();
    } else {
      member_decision = decision;
      if (i != billed_member && !aborted) {
        member_decision.from_cache = true;
        AppendNote(&member_decision, "coalesced with identical in-flight request");
      }
    }
    FinishRequest(&shard, members[i].trace, members[i].submit,
                  &member_decision, ProblemKindName(request.kind));
    ResolveMember(members[i], std::move(member_decision));
  }
  return decision;
}

void CompletenessService::ShedGroup(Shard& shard, const RequestCacheKey& key,
                                    const std::shared_ptr<FlightGroup>& group,
                                    const char* kind) {
  const Decision shed = RejectedDecision();
  std::vector<FlightGroup::Member> members;
  std::vector<bool> member_cancelled;
  {
    MutexLock lock(shard.mu);
    if (group->started) return;  // a sync caller stole it; it will publish
    shard.in_flight.erase(key);
    members = std::move(group->members);
    group->members.clear();
    member_cancelled.reserve(members.size());
    for (const FlightGroup::Member& member : members) {
      const bool cancelled = member.cancel.cancelled();
      member_cancelled.push_back(cancelled);
      if (cancelled) {
        ++shard.counters.cancelled;
      } else {
        ++shard.counters.rejected;
      }
    }
  }
  group->sync_promise.set_value(shed);  // parked ⇒ no sync waiters listen
  for (size_t i = 0; i < members.size(); ++i) {
    Decision decision = member_cancelled[i] ? CancelledDecision() : shed;
    if (members[i].trace != nullptr) members[i].trace->Phase("shed");
    FinishRequest(&shard, members[i].trace, members[i].submit, &decision, kind);
    ResolveMember(members[i], std::move(decision));
  }
}

Decision CompletenessService::Decide(const ServiceRequest& request) {
  const sched::TimePoint submit = sched::Clock::now();
  std::shared_ptr<Shard> shard = FindShard(request.setting);
  if (shard == nullptr) return UnknownHandleDecision(request.setting);
  CountAdmission(*shard, request.request, &request.sched);
  std::shared_ptr<obs::Trace> trace = tracer_.MaybeTrace(submit);
  if (trace != nullptr) trace->Phase("admit", submit);
  Decision decision =
      DecideOnShard(*shard, request.request, nullptr, &request.sched,
                    /*count_request=*/true, trace);
  FinishRequest(shard.get(), trace, submit, &decision,
                ProblemKindName(request.request.kind));
  return decision;
}

Decision CompletenessService::Decide(SettingHandle handle,
                                     const DecisionRequest& request) {
  const sched::TimePoint submit = sched::Clock::now();
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle);
  CountAdmission(*shard, request, nullptr);
  std::shared_ptr<obs::Trace> trace = tracer_.MaybeTrace(submit);
  if (trace != nullptr) trace->Phase("admit", submit);
  Decision decision = DecideOnShard(*shard, request, nullptr, nullptr,
                                    /*count_request=*/true, trace);
  FinishRequest(shard.get(), trace, submit, &decision,
                ProblemKindName(request.kind));
  return decision;
}

std::vector<CompletenessService::RoutedRequest> CompletenessService::RouteBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<RoutedRequest> routed;
  routed.reserve(requests.size());
  // Resolve each distinct handle once instead of taking the registry lock
  // per request.
  std::unordered_map<uint64_t, std::shared_ptr<Shard>> resolved;
  for (const ServiceRequest& request : requests) {
    auto it = resolved.find(request.setting.id);
    if (it == resolved.end()) {
      it = resolved.emplace(request.setting.id, FindShard(request.setting))
               .first;
    }
    routed.push_back(RoutedRequest{it->second, &request.request,
                                   request.setting, &request.sched});
  }
  return routed;
}

void CompletenessService::SubmitRouted(
    const std::vector<RoutedRequest>& routed, DecisionStream* stream,
    std::shared_ptr<const void> keep_alive) {
  const sched::TimePoint submit = sched::Clock::now();
  const bool plan = options_.coalesce;
  const bool inline_mode = workers_.empty() || tls_on_worker_thread;

  // Publishing from the submitting thread (inline mode — including the
  // re-entrant on-a-worker case, where this thread is also the eventual
  // consumer — rejected pushes, unknown handles) must never block on the
  // stream bound: the consumer has not started draining yet. Pool workers
  // executing scheduled tasks respect it — that is the backpressure —
  // UNLESS admission itself can block: with OverloadPolicy::kBlock and a
  // quota/rate-limited tenant in the batch, the submitting thread may park
  // in Push until workers free queue slots, and a worker parked in Publish
  // waiting for that same (not yet draining) thread would close a deadlock
  // cycle. In that configuration delivery falls back to unbounded
  // buffering; bound batch memory with kReject quotas instead.
  bool admission_may_block = false;
  if (options_.overload == sched::OverloadPolicy::kBlock) {
    for (const RoutedRequest& r : routed) {
      if (r.shard != nullptr && (r.shard->options.max_queue > 0 ||
                                 r.shard->options.rate_per_sec > 0)) {
        admission_may_block = true;
        break;
      }
    }
  }
  const bool bypass_bound = inline_mode || admission_may_block;
  auto publish = [stream, bypass_bound](size_t index, Decision decision) {
    stream->Publish(StreamedDecision{index, std::move(decision)},
                    /*ignore_bound=*/bypass_bound || !tls_on_worker_thread);
  };

  // Key derivation (re-fingerprinting each request's query and c-instance)
  // runs on the submitting thread: planning must never depend on pool
  // progress, because a worker publishing to a caller-owned bounded stream
  // can legitimately block until that stream's consumer drains — a pool
  // barrier here could deadlock against exactly that consumer.
  std::vector<RequestCacheKey> keys(plan ? routed.size() : 0);
  if (plan) {
    for (size_t i = 0; i < routed.size(); ++i) {
      if (routed[i].shard == nullptr) continue;
      keys[i] = RequestKeyFor(routed[i].shard->prepared, *routed[i].request);
    }
  }

  // Dedup-aware planning: one computation per (shard, cache key); the
  // duplicates are delivered by their primary's task the moment it
  // completes.
  struct PlanKey {
    const Shard* shard = nullptr;
    RequestCacheKey key;
    bool operator==(const PlanKey& other) const {
      return shard == other.shard && key == other.key;
    }
  };
  struct PlanKeyHash {
    size_t operator()(const PlanKey& k) const {
      return std::hash<const void*>()(k.shard) ^ RequestCacheKeyHash()(k.key);
    }
  };
  std::unordered_map<PlanKey, size_t, PlanKeyHash> first_of;
  std::unordered_map<size_t, std::vector<size_t>> dups_of;  // primary → dups
  std::vector<size_t> primaries;
  primaries.reserve(routed.size());
  for (size_t i = 0; i < routed.size(); ++i) {
    if (routed[i].shard == nullptr) {
      Decision unknown = UnknownHandleDecision(routed[i].handle);
      FinishRequest(nullptr, nullptr, submit, &unknown,
                    ProblemKindName(routed[i].request->kind));
      publish(i, std::move(unknown));
      continue;
    }
    CountAdmission(*routed[i].shard, *routed[i].request, routed[i].sched);
    if (plan) {
      auto [it, inserted] =
          first_of.emplace(PlanKey{routed[i].shard.get(), keys[i]}, i);
      if (!inserted) {
        dups_of[it->second].push_back(i);
        continue;
      }
    }
    primaries.push_back(i);
  }
  if (primaries.empty()) {
    stream->Finish();
    return;
  }

  auto remaining = std::make_shared<std::atomic<size_t>>(primaries.size());
  std::vector<sched::Task> tasks;
  tasks.reserve(primaries.size());
  for (size_t i : primaries) {
    const RoutedRequest& r = routed[i];
    // The dedup group's slots (primary first) and their cancel tokens.
    // Sched params merge across members: the latest deadline and the most
    // urgent priority govern the task, and — like in-flight flight groups
    // — the computation is shed only when EVERY member's token is
    // cancelled; individually-cancelled members report kCancelled at
    // delivery. Tokens are copied (shared state), so the closure holds no
    // pointers into the caller's sched params.
    std::vector<size_t> slots{i};
    if (auto it = dups_of.find(i); it != dups_of.end()) {
      slots.insert(slots.end(), it->second.begin(), it->second.end());
    }
    sched::SchedParams effective;
    std::vector<sched::CancelToken> tokens(slots.size());
    sched::CancelGroup slot_interest;
    for (size_t j = 0; j < slots.size(); ++j) {
      const sched::SchedParams* sp = routed[slots[j]].sched;
      const sched::Priority priority =
          sp != nullptr ? sp->priority : sched::Priority::kNormal;
      const sched::TimePoint deadline =
          sp != nullptr ? sp->deadline : sched::kNoDeadline;
      if (sp != nullptr) tokens[j] = sp->cancel;
      slot_interest.Add(tokens[j]);  // a token-less slot pins the group
      if (j == 0) {
        effective.priority = priority;
        effective.deadline = deadline;
      } else {
        effective.priority = std::min(effective.priority, priority);
        effective.deadline = std::max(effective.deadline, deadline);
      }
    }
    // The merged params carry the slots' JOINT token: both the entry gate
    // in DecideOnShard and the decider's mid-run checkpoints then abort
    // exactly when every member of the dedup group has cancelled.
    effective.cancel = slot_interest.token();
    // One sampled trace per dedup group, carried by the primary slot: the
    // admit span covers routing + planning, the queue span everything from
    // enqueue to the worker claiming the task.
    std::shared_ptr<obs::Trace> trace = tracer_.MaybeTrace(submit);
    if (trace != nullptr) {
      trace->Phase("admit", submit);
      trace->Phase("queue");
    }
    sched::Task task;
    task.tenant = r.handle.id;
    task.priority = effective.priority;
    task.deadline = effective.deadline;
    task.fn = [this, shard = r.shard, request = r.request,
               has_key = plan, key = plan ? keys[i] : RequestCacheKey{},
               slots = std::move(slots), tokens = std::move(tokens),
               effective, remaining, stream, publish, keep_alive, submit,
               trace](sched::TaskOutcome outcome,
                      std::chrono::microseconds wait) {
      {
        MutexLock lock(shard->mu);
        CountWaitLocked(shard->counters, wait, shard->metrics.queue_wait);
      }
      // Cancellation snapshot at evaluation start: members cancelling
      // later are too late (they receive the result), matching the
      // flight-group semantics.
      std::vector<bool> cancelled(slots.size());
      bool all_cancelled = true;
      for (size_t j = 0; j < slots.size(); ++j) {
        cancelled[j] = tokens[j].cancelled();
        all_cancelled = all_cancelled && cancelled[j];
      }
      Decision decision;
      bool evaluated = false;
      if (outcome == sched::TaskOutcome::kRun && !all_cancelled) {
        // `effective` carries the slots' joint token and latest deadline,
        // so the evaluation itself aborts at a checkpoint if the whole
        // group cancels (or the merged deadline passes) mid-run.
        decision = DecideOnShard(*shard, *request, has_key ? &key : nullptr,
                                 &effective, /*count_request=*/true, trace);
        evaluated = true;  // DecideOnShard counted one request's outcome
      } else if (outcome == sched::TaskOutcome::kExpired) {
        if (trace != nullptr) trace->Phase("shed");
        decision = ExpiredDecision();
      } else if (outcome == sched::TaskOutcome::kRejected) {
        if (trace != nullptr) trace->Phase("shed");
        decision = RejectedDecision();
      } else {
        if (trace != nullptr) trace->Phase("shed");
        decision = CancelledDecision();  // every member cancelled
      }
      // The first live member inherits the evaluation's accounting (done
      // inside DecideOnShard); everyone else is counted here per its own
      // fate. Shed groups (expired / rejected / all-cancelled) charge
      // every member.
      size_t billed = slots.size();
      if (evaluated) {
        for (size_t j = 0; j < slots.size(); ++j) {
          if (!cancelled[j]) {
            billed = j;
            break;
          }
        }
      }
      for (size_t j = 0; j < slots.size(); ++j) {
        Decision member_decision;
        if (j == billed) {
          member_decision = decision;
        } else if (cancelled[j]) {
          member_decision = CancelledDecision();
          MutexLock lock(shard->mu);
          ++shard->counters.requests;
          ++shard->counters.cancelled;
        } else if (!evaluated) {
          member_decision = decision;
          MutexLock lock(shard->mu);
          CountDuplicateLocked(shard->counters, decision);
        } else {
          member_decision = decision;
          member_decision.from_cache = !IsShedDecision(decision);
          AppendNote(&member_decision,
                     "coalesced with identical request in batch");
          MutexLock lock(shard->mu);
          CountDuplicateLocked(shard->counters, decision);
        }
        // The trace rides the primary slot only — one Finish, one slow-log
        // offer per sampled submission.
        FinishRequest(shard.get(), j == 0 ? trace : nullptr, submit,
                      &member_decision, ProblemKindName(request->kind));
        publish(slots[j], std::move(member_decision));
      }
      if (remaining->fetch_sub(1) == 1) stream->Finish();
    };
    tasks.push_back(std::move(task));
  }

  if (inline_mode) {
    for (sched::Task& task : tasks) {
      task.fn(InlineOutcome(task), sched::kNotQueued);
    }
    return;
  }
  for (sched::Task& task : tasks) {
    if (!queue_.Push(std::move(task))) {
      task.fn(sched::TaskOutcome::kRejected, sched::kNotQueued);
    }
  }
}

std::vector<Decision> CompletenessService::CollectRouted(
    const std::vector<RoutedRequest>& routed) {
  // The blocking collect shared by both SubmitBatch overloads: run the
  // plan through an unbounded stream and reassemble by index.
  DecisionStream stream(/*capacity=*/0);
  SubmitRouted(routed, &stream);
  std::vector<Decision> results(routed.size());
  stream.Drain([&results](StreamedDecision item) {
    results[item.index] = std::move(item.decision);
  });
  return results;
}

std::vector<Decision> CompletenessService::SubmitBatch(
    const std::vector<ServiceRequest>& requests) {
  return CollectRouted(RouteBatch(requests));
}

std::vector<Decision> CompletenessService::SubmitBatch(
    SettingHandle handle, const std::vector<DecisionRequest>& requests) {
  std::shared_ptr<Shard> shard = FindShard(handle);
  std::vector<RoutedRequest> routed;
  routed.reserve(requests.size());
  for (const DecisionRequest& request : requests) {
    routed.push_back(RoutedRequest{shard, &request, handle, nullptr});
  }
  return CollectRouted(routed);
}

void CompletenessService::SubmitStream(
    const std::vector<ServiceRequest>& requests, DecisionStream* stream) {
  // This flavor returns before delivery completes, so the scheduled tasks
  // must not reference the caller's vector: route against a private copy
  // pinned by every task until the last one ran.
  auto owned = std::make_shared<const std::vector<ServiceRequest>>(requests);
  std::vector<RoutedRequest> routed = RouteBatch(*owned);
  SubmitRouted(routed, stream, owned);
}

void CompletenessService::SubmitStream(
    const std::vector<ServiceRequest>& requests, const StreamSink& sink) {
  DecisionStream stream(/*capacity=*/0);
  SubmitStream(requests, &stream);
  stream.Drain([&sink](StreamedDecision item) {
    sink(item.index, item.decision);
  });
}

void CompletenessService::SubmitAsyncImpl(
    ServiceRequest request, std::shared_ptr<std::promise<Decision>> promise,
    std::function<void(Decision)> on_complete) {
  auto deliver = [&promise, &on_complete](Decision decision) {
    FlightGroup::Member member;
    member.promise = promise;
    member.callback = on_complete;
    ResolveMember(member, std::move(decision));
  };
  // Route at submission time: releasing the setting after admission does
  // not fail requests already in the system.
  const sched::TimePoint submit = sched::Clock::now();
  std::shared_ptr<Shard> shard = FindShard(request.setting);
  if (shard == nullptr) {
    Decision unknown = UnknownHandleDecision(request.setting);
    FinishRequest(nullptr, nullptr, submit, &unknown,
                  ProblemKindName(request.request.kind));
    deliver(std::move(unknown));
    return;
  }
  CountAdmission(*shard, request.request, &request.sched);
  std::shared_ptr<obs::Trace> trace = tracer_.MaybeTrace(submit);
  if (trace != nullptr) trace->Phase("admit", submit);
  if (workers_.empty() || tls_on_worker_thread) {
    Decision decision =
        DecideOnShard(*shard, request.request, nullptr, &request.sched,
                      /*count_request=*/true, trace);
    FinishRequest(shard.get(), trace, submit, &decision,
                  ProblemKindName(request.request.kind));
    deliver(std::move(decision));
    return;
  }
  const sched::SchedParams& sp = request.sched;
  // Admission-time shed: dead requests never pollute the queue.
  if (sp.cancel.cancelled() || sp.deadline < sched::Clock::now()) {
    const bool cancelled = sp.cancel.cancelled();
    {
      MutexLock lock(shard->mu);
      ++shard->counters.requests;
      if (cancelled) {
        ++shard->counters.cancelled;
      } else {
        ++shard->counters.expired;
      }
    }
    if (trace != nullptr) {
      trace->Phase("shed");
      trace->AnnotatePhase(cancelled ? "cancelled at admission"
                                     : "deadline passed at admission");
    }
    Decision decision = cancelled ? CancelledDecision() : ExpiredDecision();
    FinishRequest(shard.get(), trace, submit, &decision,
                  ProblemKindName(request.request.kind));
    deliver(std::move(decision));
    return;
  }

  if (!options_.coalesce) {
    {
      MutexLock lock(shard->mu);
      ++shard->counters.requests;
    }
    if (trace != nullptr) trace->Phase("queue");
    sched::Task task;
    task.tenant = request.setting.id;
    task.priority = sp.priority;
    task.deadline = sp.deadline;
    task.fn = [this, shard, request = std::move(request.request),
               sched = sp, promise, on_complete = std::move(on_complete),
               submit, trace](sched::TaskOutcome outcome,
                              std::chrono::microseconds wait) {
      {
        MutexLock lock(shard->mu);
        CountWaitLocked(shard->counters, wait, shard->metrics.queue_wait);
      }
      Decision decision;
      switch (outcome) {
        case sched::TaskOutcome::kRun:
          decision = DecideOnShard(*shard, request, nullptr, &sched,
                                   /*count_request=*/false, trace);
          break;
        case sched::TaskOutcome::kExpired: {
          if (trace != nullptr) trace->Phase("shed");
          MutexLock lock(shard->mu);
          ++shard->counters.expired;
          decision = ExpiredDecision();
          break;
        }
        case sched::TaskOutcome::kRejected: {
          if (trace != nullptr) trace->Phase("shed");
          MutexLock lock(shard->mu);
          ++shard->counters.rejected;
          decision = RejectedDecision();
          break;
        }
      }
      FinishRequest(shard.get(), trace, submit, &decision,
                    ProblemKindName(request.kind));
      FlightGroup::Member member;
      member.promise = promise;
      member.callback = on_complete;  // const capture: copy, not move
      ResolveMember(member, std::move(decision));
    };
    if (!queue_.Push(std::move(task))) {
      task.fn(sched::TaskOutcome::kRejected, sched::kNotQueued);
    }
    return;
  }

  // Coalescing admission: cache hits and joins resolve without ever
  // touching the queue; only a fresh computation becomes a task.
  const RequestCacheKey key = RequestKeyFor(shard->prepared, request.request);
  const bool memoize = options_.memoize && shard->cache->capacity() > 0;
  if (trace != nullptr) trace->Phase("cache-lookup");
  std::shared_ptr<FlightGroup> group;
  Decision hit;
  bool have_hit = false;
  bool joined = false;
  uint64_t joined_run_id = 0;
  bool joined_run_traced = false;
  {
    MutexLock lock(shard->mu);
    ++shard->counters.requests;
    if (memoize) {
      if (shard->cache->Get(key, &hit)) {
        ++shard->counters.cache_hits;
        hit.from_cache = true;
        have_hit = true;
        if (trace != nullptr) trace->AnnotatePhase("hit");
      }
    }
    if (!have_hit) {
      auto it = shard->in_flight.find(key);
      if (it != shard->in_flight.end()) {
        // Join the flight group (parked or already evaluating); this
        // member is classified — result, coalesced copy, or cancelled —
        // when the group publishes. Its token joins the group interest and
        // its deadline extends the run deadline, so a RUNNING evaluation
        // stays alive (and deadline-bounded correctly) while this member
        // is live.
        it->second->interest.Add(sp.cancel);
        ExtendRunDeadline(*it->second, sp.deadline);
        joined = true;
        if (it->second->run_trace != nullptr) {
          joined_run_traced = true;
          joined_run_id = it->second->run_trace->id();
        }
        it->second->members.push_back(FlightGroup::Member{
            sp.cancel, sp.deadline, promise, std::move(on_complete), submit,
            trace});
      } else {
        group = std::make_shared<FlightGroup>();
        group->interest.Add(sp.cancel);
        ExtendRunDeadline(*group, sp.deadline);
        group->future = std::make_shared<std::shared_future<Decision>>(
            group->sync_promise.get_future().share());
        group->members.push_back(FlightGroup::Member{
            sp.cancel, sp.deadline, promise, std::move(on_complete), submit,
            trace});
        shard->in_flight.emplace(key, group);
      }
    }
  }
  if (have_hit) {
    FinishRequest(shard.get(), trace, submit, &hit,
                  ProblemKindName(request.request.kind));
    deliver(std::move(hit));
    return;
  }
  if (joined) {
    // The member's own trace shows the join; the run it joined is closed by
    // whichever thread publishes the group (EvaluateForGroup / ShedGroup /
    // RunOwnerTask), which also finishes this member's trace.
    if (trace != nullptr) {
      trace->Phase("coalesce-join");
      trace->AnnotatePhase(joined_run_traced
                               ? "joined run trace#" +
                                     std::to_string(joined_run_id)
                               : "joined in-flight run");
    }
    return;
  }
  if (trace != nullptr) trace->Phase("queue");
  // The request is about to move into the task closure; the shed path
  // below only needs its kind name (a static string).
  const char* kind_name = ProblemKindName(request.request.kind);
  sched::Task task;
  task.tenant = request.setting.id;
  task.priority = sp.priority;
  task.deadline = sp.deadline;
  task.fn = [this, shard, key, group,
             request = std::move(request.request)](
                sched::TaskOutcome, std::chrono::microseconds wait) {
    RunOwnerTask(shard, key, group, request, wait);
  };
  if (!queue_.Push(std::move(task))) {
    ShedGroup(*shard, key, group, kind_name);
  }
}

void CompletenessService::RunOwnerTask(
    const std::shared_ptr<Shard>& shard_ptr, const RequestCacheKey& key,
    const std::shared_ptr<FlightGroup>& group, const DecisionRequest& request,
    std::chrono::microseconds wait) {
  Shard& shard = *shard_ptr;
  GaugeGuard in_flight(inflight_gauge_);
  const bool memoize = options_.memoize && shard.cache->capacity() > 0;
  enum class Action { kStolen, kShed, kHit, kEvaluate };
  Action action = Action::kEvaluate;
  size_t billed = kSyncBilled;
  Decision hit;
  std::vector<FlightGroup::Member> members;
  std::vector<bool> member_cancelled;
  {
    MutexLock lock(shard.mu);
    CountWaitLocked(shard.counters, wait, shard.metrics.queue_wait);
    if (group->started) {
      // A synchronous caller stole the parked group; it owns publication.
      action = Action::kStolen;
    } else {
      // Only a live member keeps the computation alive: a group whose
      // every waiter has cancelled or expired is shed before evaluation.
      // (Sync waiters only ever join *started* groups, so none exist.)
      const sched::TimePoint now = sched::Clock::now();
      for (size_t i = 0; i < group->members.size(); ++i) {
        const FlightGroup::Member& m = group->members[i];
        if (!m.cancel.cancelled() && m.deadline >= now) {
          billed = i;
          break;
        }
      }
      if (billed == kSyncBilled) {
        action = Action::kShed;
        shard.in_flight.erase(key);
        members = std::move(group->members);
        group->members.clear();
        member_cancelled.reserve(members.size());
        for (const FlightGroup::Member& member : members) {
          const bool cancelled = member.cancel.cancelled();
          member_cancelled.push_back(cancelled);
          if (cancelled) {
            ++shard.counters.cancelled;
          } else {
            ++shard.counters.expired;
          }
        }
      } else if (memoize && shard.cache->Get(key, &hit)) {
        // A synchronous caller computed and cached this request while the
        // task sat queued: serve the whole group from the cache.
        action = Action::kHit;
        hit.from_cache = true;
        shard.in_flight.erase(key);
        members = std::move(group->members);
        group->members.clear();
        member_cancelled.reserve(members.size());
        for (size_t i = 0; i < members.size(); ++i) {
          const bool cancelled =
              i != billed && members[i].cancel.cancelled();
          member_cancelled.push_back(cancelled);
          if (cancelled) {
            ++shard.counters.cancelled;
          } else {
            ++shard.counters.cache_hits;
            if (i != billed) ++shard.counters.coalesced;
          }
        }
      } else {
        action = Action::kEvaluate;
        group->started = true;
        // The billed member's trace becomes the run's trace: its timeline
        // gains the evaluate / cache-store phases, and later joiners see
        // which sampled run they piggy-backed on.
        if (billed < group->members.size()) {
          group->run_trace = group->members[billed].trace;
        }
        ++shard.counters.cache_misses;  // charged to the billed member
      }
    }
  }
  switch (action) {
    case Action::kStolen:
      return;
    case Action::kShed: {
      group->sync_promise.set_value(ExpiredDecision());
      for (size_t i = 0; i < members.size(); ++i) {
        Decision decision = member_cancelled[i] ? CancelledDecision()
                                                : ExpiredDecision();
        if (members[i].trace != nullptr) members[i].trace->Phase("shed");
        FinishRequest(&shard, members[i].trace, members[i].submit, &decision,
                      ProblemKindName(request.kind));
        ResolveMember(members[i], std::move(decision));
      }
      return;
    }
    case Action::kHit: {
      group->sync_promise.set_value(hit);
      for (size_t i = 0; i < members.size(); ++i) {
        Decision decision;
        if (member_cancelled[i]) {
          decision = CancelledDecision();
        } else {
          decision = hit;
          if (i != billed) {
            AppendNote(&decision, "coalesced with identical in-flight request");
          }
        }
        if (members[i].trace != nullptr) {
          members[i].trace->AnnotatePhase("served from cache at claim time");
        }
        FinishRequest(&shard, members[i].trace, members[i].submit, &decision,
                      ProblemKindName(request.kind));
        ResolveMember(members[i], std::move(decision));
      }
      return;
    }
    case Action::kEvaluate:
      EvaluateForGroup(shard, request, key, group, billed);
      return;
  }
}

std::future<Decision> CompletenessService::SubmitAsync(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<Decision>>();
  std::future<Decision> future = promise->get_future();
  SubmitAsyncImpl(std::move(request), std::move(promise), nullptr);
  return future;
}

void CompletenessService::SubmitAsync(ServiceRequest request,
                                      std::function<void(Decision)> on_complete) {
  SubmitAsyncImpl(std::move(request), nullptr, std::move(on_complete));
}

namespace {

/// Folds the cache-lifecycle stats into a shard's request counters. The
/// shard counters never carry these fields themselves — evictions can be
/// triggered by ANOTHER shard's insert (budget pressure), so the cache is
/// the one source of truth and the accessors overlay at read time.
EngineCounters WithCacheStats(EngineCounters counters,
                              const cache::CacheStats& cache_stats) {
  counters.evictions = cache_stats.evictions;
  counters.admission_rejects = cache_stats.admission_rejects;
  counters.cache_bytes = cache_stats.bytes;
  return counters;
}

}  // namespace

Result<EngineCounters> CompletenessService::counters(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  const cache::CacheStats cache_stats = shard->cache->stats();
  MutexLock lock(shard->mu);
  return WithCacheStats(shard->counters, cache_stats);
}

EngineCounters CompletenessService::TotalCounters() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    MutexLock lock(registry_mu_);
    shards.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) shards.push_back(shard);
  }
  EngineCounters total;
  for (const std::shared_ptr<Shard>& shard : shards) {
    const cache::CacheStats cache_stats = shard->cache->stats();
    MutexLock lock(shard->mu);
    total += WithCacheStats(shard->counters, cache_stats);
  }
  return total;
}

std::string CompletenessService::DumpMetrics(obs::DumpFormat format) const {
  obs::MetricsDump dump;
  metrics_registry_.DumpInto(&dump);

  // Derived per-tenant outcome counters, computed from the shard
  // EngineCounters at dump time: the counters are the request-partition
  // source of truth (requests == hits + misses + rejected + expired +
  // cancelled), so deriving rather than double-counting on the hot path
  // keeps the exposition consistent with counters()/TotalCounters() by
  // construction. Sorted by handle id for deterministic output.
  std::vector<std::pair<uint64_t, std::shared_ptr<Shard>>> shards;
  {
    MutexLock lock(registry_mu_);
    shards.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) shards.emplace_back(id, shard);
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<uint64_t, EngineCounters>> snapshots;
  snapshots.reserve(shards.size());
  for (const auto& [id, shard] : shards) {
    MutexLock shard_lock(shard->mu);
    snapshots.emplace_back(id, shard->counters);
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  struct Outcome {
    const char* name;
    uint64_t EngineCounters::* field;
  };
  static constexpr Outcome kOutcomes[] = {
      {"hit", &EngineCounters::cache_hits},
      {"miss", &EngineCounters::cache_misses},
      {"rejected", &EngineCounters::rejected},
      {"expired", &EngineCounters::expired},
      {"cancelled", &EngineCounters::cancelled},
  };
  // Outcome-major order keeps each hand-added family's rows contiguous, so
  // the Prometheus renderer emits one HELP/TYPE header per family.
  for (const Outcome& outcome : kOutcomes) {
    for (const auto& [id, counters] : snapshots) {
      dump.AddCounter(
          obs::kMetricDecisionsTotal,
          {{"outcome", outcome.name}, {"tenant", std::to_string(id)}},
          counters.*outcome.field);
    }
  }
  for (const auto& [id, counters] : snapshots) {
    dump.AddCounter(obs::kMetricErrorsTotal, {{"tenant", std::to_string(id)}},
                    counters.errors);
  }
  // Binary identity + uptime, so a scrape can tell which relcomp build
  // answered it and how long the process has been serving.
  dump.AddGauge(obs::kMetricBuildInfo,
                {{"git", BuildGitRevision()}, {"version", BuildVersion()}}, 1);
  dump.AddGauge(obs::kMetricUptimeSeconds, {},
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count());
  dump.AddCounter(obs::kMetricTracesSampledTotal, {}, tracer_.sampled());
  dump.AddGauge(obs::kMetricSlowLogEntries, {},
                static_cast<int64_t>(slow_log_.size()));
  dump.AddCounter(obs::kMetricWatchdogStallsTotal, {},
                  watchdog_stall_count_.load(std::memory_order_relaxed));
  if (options_.trace_ring > 0) {
    dump.AddGauge(obs::kMetricTraceRingEntries, {},
                  static_cast<int64_t>(trace_sink_.size()));
    dump.AddCounter(obs::kMetricTraceRingDroppedTotal, {},
                    trace_sink_.dropped());
  }

  // Sliding-window views: recent request rates (1s/10s/60s) and recent
  // latency distributions, service-wide and per tenant. One clock read so
  // every window row answers for the same instant.
  if (windows_ != nullptr) {
    const auto now = obs::WindowedCounter::Clock::now();
    static constexpr uint64_t kWindows[] = {1, 10, 60};
    for (const uint64_t secs : kWindows) {
      dump.AddRate(obs::RequestsRateFamily(secs), {},
                   windows_->requests.Rate(secs, now));
      for (const auto& [id, shard] : shards) {
        if (shard->windows == nullptr) continue;
        dump.AddRate(obs::TenantRequestsRateFamily(secs),
                     {{"tenant", std::to_string(id)}},
                     shard->windows->requests.Rate(secs, now));
      }
    }
    static constexpr uint64_t kLatencyWindows[] = {10, 60};
    for (const uint64_t secs : kLatencyWindows) {
      dump.AddHistogram(obs::RecentLatencyFamily(secs), {},
                        windows_->latency.Snapshot(secs, now));
    }
  }
  return dump.Render(format);
}

std::vector<obs::SlowEntry> CompletenessService::SlowDecisions() const {
  return slow_log_.Worst();
}

std::string CompletenessService::DumpTraces() const {
  return obs::RenderChromeTrace(trace_sink_.Snapshot());
}

Result<cache::CacheStats> CompletenessService::CacheStats(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return shard->cache->stats();
}

Status CompletenessService::SaveCaches(const std::string& path) const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    MutexLock lock(registry_mu_);
    shards.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) shards.push_back(shard);
  }
  cache::Snapshot snapshot;
  for (const std::shared_ptr<Shard>& shard : shards) {
    if (shard->cache->capacity() == 0) continue;  // nothing cached, ever
    cache::SnapshotShard image;
    image.setting_key = shard->setting_key;
    image.entries = shard->cache->SnapshotEntries();
    if (image.entries.empty()) continue;
    snapshot.shards.push_back(std::move(image));
  }
  return cache::SaveSnapshot(snapshot, path);
}

Result<size_t> CompletenessService::LoadCaches(const std::string& path) {
  Result<cache::Snapshot> snapshot = cache::LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  size_t accepted = 0;
  for (cache::SnapshotShard& image : snapshot->shards) {
    std::shared_ptr<Shard> live;
    {
      MutexLock lock(registry_mu_);
      auto it = handle_by_fingerprint_.find(image.setting_key);
      if (it == handle_by_fingerprint_.end()) {
        // Stage for a future RegisterSetting with this fingerprint; a
        // re-load of the same snapshot replaces the staged entries.
        pending_warm_[image.setting_key] = std::move(image.entries);
        ++accepted;
        continue;
      }
      live = shards_.at(it->second);
    }
    // A live shard with its cache disabled can never apply the image:
    // dropped, and NOT counted as accepted.
    if (live->cache->capacity() == 0) continue;
    for (auto& [key, decision] : image.entries) {
      live->cache->Restore(key, std::move(decision));
    }
    ++accepted;
  }
  return accepted;
}

Status CompletenessService::ClearCache(SettingHandle handle) {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  shard->cache->Clear();
  return Status::OK();
}

void CompletenessService::RecorderLoop() {
  using std::chrono::microseconds;
  // Tick at the finer of the two cadences being served: the sampling
  // interval, and half the stall threshold (so a stall is flagged within
  // one threshold period of the heartbeat going quiet).
  uint64_t tick_us = options_.recorder_interval_ms * 1000;
  if (options_.watchdog_stall_micros > 0) {
    const uint64_t half =
        std::max<uint64_t>(options_.watchdog_stall_micros / 2, 100);
    tick_us = tick_us == 0 ? half : std::min(tick_us, half);
  }
  const uint64_t interval_us = options_.recorder_interval_ms * 1000;
  // Start "due": the first tick takes the first sample.
  auto last_sample =
      std::chrono::steady_clock::now() - microseconds(interval_us);
  for (;;) {
    {
      MutexLock lock(recorder_wake_mu_);
      if (!recorder_stop_) {
        recorder_wake_cv_.WaitFor(recorder_wake_mu_, microseconds(tick_us));
      }
      if (recorder_stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();

    bool flagged_stall = false;
    if (options_.watchdog_stall_micros > 0) {
      for (const auto& record : active_.Snapshot()) {
        const auto last_heartbeat = obs::ActiveEvaluations::Clock::duration(
            record->last_heartbeat.load(std::memory_order_relaxed));
        const int64_t age_us = std::chrono::duration_cast<microseconds>(
                                   now.time_since_epoch() - last_heartbeat)
                                   .count();
        if (age_us < 0 ||
            static_cast<uint64_t>(age_us) <= options_.watchdog_stall_micros) {
          continue;
        }
        // exchange(): each stalled evaluation is flagged exactly once,
        // even across ticks while it stays stuck.
        if (record->flagged.exchange(true, std::memory_order_relaxed)) {
          continue;
        }
        watchdog_stall_count_.fetch_add(1, std::memory_order_relaxed);
        flagged_stall = true;
        const char* loop = record->loop.load(std::memory_order_relaxed);
        const uint64_t steps = record->steps.load(std::memory_order_relaxed);
        const std::string where =
            std::string("tenant=") + record->tenant + " kind=" + record->kind +
            " loop=" + (loop != nullptr ? loop : "(before first checkpoint)") +
            " steps=" + std::to_string(steps);
        obs::SlowEntry entry;
        entry.micros = static_cast<uint64_t>(
            std::chrono::duration_cast<microseconds>(now - record->start)
                .count());
        entry.trace_id = record->trace_id;
        entry.tenant = record->tenant;
        entry.kind = record->kind;
        entry.note = "watchdog: no checkpoint progress for " +
                     std::to_string(age_us) + "us; " + where;
        slow_log_.Offer(std::move(entry));
        recorder_.Annotate("watchdog: evaluation stalled, " + where, now);
      }
    }

    if (interval_us > 0 && now - last_sample >= microseconds(interval_us)) {
      last_sample = now;
      obs::RecorderSample sample;
      sample.at = now;
      if (inflight_gauge_ != nullptr) sample.inflight = inflight_gauge_->value();
      if (windows_ != nullptr) {
        sample.rate_1s = windows_->requests.Rate(1, now);
        sample.rate_10s = windows_->requests.Rate(10, now);
        sample.p95_10s = static_cast<uint64_t>(
            windows_->latency.Snapshot(10, now).Quantile(0.95));
      }
      sample.queue_depth = queue_.depth();
      sample.active = active_.size();
      sample.stalled = watchdog_stall_count_.load(std::memory_order_relaxed);
      recorder_.Add(std::move(sample));
      obs::PublishAbortReport(ObsReport());
    } else if (flagged_stall) {
      // No sample due, but the vitals just changed in the way the abort
      // report most needs to show.
      obs::PublishAbortReport(ObsReport());
    }
  }
}

std::string CompletenessService::ObsReport() const {
  const auto now = std::chrono::steady_clock::now();
  const auto us_since = [now](std::chrono::steady_clock::time_point at) {
    return std::chrono::duration_cast<std::chrono::microseconds>(now - at)
        .count();
  };
  std::ostringstream out;
  out << "=== relcomp obs report ===\n";
  out << "in-flight: "
      << (inflight_gauge_ != nullptr ? inflight_gauge_->value() : 0)
      << "  queue depth: " << queue_.depth()
      << "  active evaluations: " << active_.size() << "  watchdog stalls: "
      << watchdog_stall_count_.load(std::memory_order_relaxed) << "\n";
  if (windows_ != nullptr) {
    const obs::HistogramData recent = windows_->latency.Snapshot(10, now);
    out << "rates: " << std::fixed << std::setprecision(1)
        << windows_->requests.Rate(1, now) << "/s (1s), "
        << windows_->requests.Rate(10, now) << "/s (10s), "
        << windows_->requests.Rate(60, now) << "/s (60s)\n";
    out << "latency (10s window): p50=" << std::setprecision(0)
        << recent.Quantile(0.5) << "us p95=" << recent.Quantile(0.95)
        << "us p99=" << recent.Quantile(0.99) << "us max=" << recent.max
        << "us n=" << recent.count << "\n";
  }

  std::vector<std::pair<uint64_t, std::shared_ptr<Shard>>> shards;
  {
    MutexLock lock(registry_mu_);
    shards.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) shards.emplace_back(id, shard);
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [id, shard] : shards) {
    if (shard->windows == nullptr) continue;
    out << "tenant " << id << ": " << std::setprecision(1)
        << shard->windows->requests.Rate(10, now) << "/s (10s), queued "
        << queue_.TenantDepth(id) << "\n";
  }

  if (active_.size() > 0) out << RenderActiveEvaluations();

  const auto samples = recorder_.Snapshot();
  if (!samples.empty()) {
    out << "flight recorder (" << samples.size() << " samples, oldest first):\n";
    for (const obs::RecorderSample& sample : samples) {
      out << "  t-" << std::setprecision(1)
          << static_cast<double>(us_since(sample.at)) / 1e6 << "s ";
      if (!sample.annotation.empty()) {
        out << sample.annotation << "\n";
        continue;
      }
      out << "inflight=" << sample.inflight << " rate1s=" << sample.rate_1s
          << " rate10s=" << sample.rate_10s << " p95_10s=" << sample.p95_10s
          << "us queue=" << sample.queue_depth << " active=" << sample.active
          << " stalled=" << sample.stalled << "\n";
    }
  }

  const auto slow = slow_log_.Worst();
  if (!slow.empty()) {
    const obs::SlowEntry& worst = slow.front();
    out << "slow log: " << slow.size() << " entries, worst " << worst.micros
        << "us tenant=" << worst.tenant << " kind=" << worst.kind;
    if (worst.trace_id != 0) out << " trace#" << worst.trace_id;
    if (!worst.note.empty()) out << " (" << worst.note << ")";
    out << "\n";
  }
  return out.str();
}

std::string CompletenessService::RenderActiveEvaluations() const {
  const auto now = std::chrono::steady_clock::now();
  const auto active = active_.Snapshot();
  std::ostringstream out;
  out << "active evaluations: " << active.size() << "\n";
  for (const auto& record : active) {
    const char* loop = record->loop.load(std::memory_order_relaxed);
    const auto heartbeat_age =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch() -
            obs::ActiveEvaluations::Clock::duration(
                record->last_heartbeat.load(std::memory_order_relaxed)))
            .count();
    const auto running =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              record->start)
            .count();
    out << "  eval#" << record->id << " tenant=" << record->tenant
        << " kind=" << record->kind;
    if (record->trace_id != 0) out << " trace#" << record->trace_id;
    out << " loop=" << (loop != nullptr ? loop : "-")
        << " steps=" << record->steps.load(std::memory_order_relaxed)
        << " running=" << running << "us heartbeat_age=" << heartbeat_age
        << "us";
    if (record->flagged.load(std::memory_order_relaxed)) out << " [STALLED]";
    out << "\n";
  }
  return out.str();
}

std::string CompletenessService::RenderSlowLog() const {
  const auto slow = slow_log_.Worst();
  std::ostringstream out;
  out << "slow decisions: " << slow.size() << " (slowest first)\n";
  for (const obs::SlowEntry& entry : slow) {
    out << "  " << entry.micros << "us tenant=" << entry.tenant
        << " kind=" << (entry.kind.empty() ? "-" : entry.kind);
    if (entry.trace_id != 0) out << " trace#" << entry.trace_id;
    if (!entry.note.empty()) out << " (" << entry.note << ")";
    out << "\n";
  }
  return out.str();
}

Status CompletenessService::ServeObs(const obs::ObsHttpOptions& options) {
  // The surfaces are the public dump methods, bound to `this`; each runs
  // on an endpoint worker thread and takes only the locks the dump call
  // always took. Safe for the life of the service: the destructor stops
  // the endpoint before any other teardown.
  obs::ObsSurfaces surfaces;
  surfaces.metrics_prometheus = [this] {
    return DumpMetrics(obs::DumpFormat::kPrometheus);
  };
  surfaces.metrics_json = [this] {
    return DumpMetrics(obs::DumpFormat::kJson);
  };
  surfaces.traces_json = [this] { return DumpTraces(); };
  surfaces.slow_text = [this] { return RenderSlowLog(); };
  surfaces.report_text = [this] { return ObsReport(); };
  surfaces.active_text = [this] { return RenderActiveEvaluations(); };
  surfaces.ready = [this] {
    // Ready = at least one registered setting, and the worker pool is
    // live (a zero-worker service runs every submission inline, so the
    // pool is vacuously live).
    const bool pool_live = options_.num_workers == 0 || !workers_.empty();
    return pool_live && num_settings() > 0;
  };
  auto endpoint = std::make_unique<obs::HttpEndpoint>(
      std::move(surfaces), options_.metrics ? &metrics_registry_ : nullptr);
  RELCOMP_RETURN_IF_ERROR(endpoint->Start(options));
  {
    MutexLock lock(registry_mu_);
    if (obs_endpoint_ == nullptr) {
      obs_endpoint_ = std::move(endpoint);
      return Status::OK();
    }
  }
  // Lost a ServeObs race (or the service already serves): the freshly
  // started loser stops outside the lock — its handler threads may be
  // serving a request that wants registry_mu_.
  endpoint.reset();
  return Status::InvalidArgument(
      "ServeObs: this service already has a live observability endpoint");
}

void CompletenessService::StopObs() {
  std::unique_ptr<obs::HttpEndpoint> endpoint;
  {
    MutexLock lock(registry_mu_);
    endpoint = std::move(obs_endpoint_);
  }
  // Stopped (joining handler threads that may take registry_mu_) with
  // the lock released.
  endpoint.reset();
}

uint16_t CompletenessService::obs_port() const {
  MutexLock lock(registry_mu_);
  return obs_endpoint_ != nullptr ? obs_endpoint_->port() : 0;
}

}  // namespace relcomp
