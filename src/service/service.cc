#include "service/service.h"

#include <utility>

#include "core/fingerprint.h"

namespace relcomp {

namespace {

/// Set while a pool thread is executing jobs. Re-entrant submissions — a
/// completion callback calling back into Decide/SubmitBatch/SubmitAsync —
/// then execute inline instead of enqueueing: a worker blocking on work
/// that only workers can drain would deadlock the pool.
thread_local bool tls_on_worker_thread = false;

void AppendNote(Decision* decision, const char* note) {
  if (decision->note.empty()) {
    decision->note = note;
  } else {
    decision->note += "; ";
    decision->note += note;
  }
}

}  // namespace

CompletenessService::CompletenessService(ServiceOptions options)
    : options_(options) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CompletenessService::~CompletenessService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void CompletenessService::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void CompletenessService::WorkerLoop() {
  tls_on_worker_thread = true;
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Shutdown only after the queue is drained: async submissions
        // accepted before destruction still resolve their futures.
        if (shutdown_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

Result<SettingHandle> CompletenessService::RegisterSetting(
    PartiallyClosedSetting setting) {
  const SettingKey key{FingerprintSetting(setting),
                       FingerprintSettingSeeded(setting,
                                                /*seed=*/0x5e771465eed2ULL)};
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = handle_by_fingerprint_.find(key);
    if (it != handle_by_fingerprint_.end()) {
      ++shards_.at(it->second)->refcount;
      return SettingHandle{it->second};
    }
  }
  // Prepare outside the registry lock — validation, Adom seeding and master
  // projection can be heavy, and other settings keep registering meanwhile.
  // The dedup digest doubles as the prepared fingerprint: no re-scan.
  Result<PreparedSetting> prepared =
      PreparedSetting::Prepare(std::move(setting), key.primary);
  if (!prepared.ok()) return prepared.status();

  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = handle_by_fingerprint_.find(key);
  if (it != handle_by_fingerprint_.end()) {
    // Another thread registered the same setting while we prepared.
    ++shards_.at(it->second)->refcount;
    return SettingHandle{it->second};
  }
  const uint64_t id = next_handle_id_++;
  shards_.emplace(id, std::make_shared<Shard>(std::move(prepared).value(), key,
                                              options_.memoize
                                                  ? options_.cache_capacity
                                                  : 0));
  handle_by_fingerprint_.emplace(key, id);
  return SettingHandle{id};
}

Status CompletenessService::ReleaseSetting(SettingHandle handle) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = shards_.find(handle.id);
  if (it == shards_.end()) {
    return Status::NotFound("setting handle " + std::to_string(handle.id) +
                            " is not registered (or already fully released)");
  }
  if (--it->second->refcount == 0) {
    handle_by_fingerprint_.erase(it->second->setting_key);
    shards_.erase(it);  // in-flight requests hold their own shared_ptr
  }
  return Status::OK();
}

size_t CompletenessService::num_settings() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return shards_.size();
}

std::shared_ptr<CompletenessService::Shard> CompletenessService::FindShard(
    SettingHandle handle) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = shards_.find(handle.id);
  return it == shards_.end() ? nullptr : it->second;
}

Decision CompletenessService::UnknownHandleDecision(SettingHandle handle) {
  Decision decision;
  decision.status =
      Status::NotFound("setting handle " + std::to_string(handle.id) +
                       " is not registered (or already fully released)");
  return decision;
}

Result<PreparedSetting> CompletenessService::prepared(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return shard->prepared;
}

Result<uint64_t> CompletenessService::FingerprintRequest(
    SettingHandle handle, const DecisionRequest& request) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  return RequestKeyFor(shard->prepared, request).primary;
}

Decision CompletenessService::DecideOnShard(Shard& shard,
                                            const DecisionRequest& request,
                                            const RequestCacheKey* precomputed) {
  const bool memoize = options_.memoize && options_.cache_capacity > 0;
  const bool coalesce = options_.coalesce;
  RequestCacheKey key;
  if (memoize || coalesce) {
    key = precomputed != nullptr ? *precomputed
                                 : RequestKeyFor(shard.prepared, request);
  }
  // When this request is the first of its fingerprint, `computing` owns the
  // in-flight slot; when an identical request is already running, `waiting`
  // shares its future instead of recomputing.
  std::shared_ptr<std::shared_future<Decision>> waiting;
  std::promise<Decision> computing_promise;
  bool computing_published = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.counters.requests;
    if (memoize) {
      if (const Decision* cached = shard.cache.Get(key)) {
        ++shard.counters.cache_hits;
        Decision hit = *cached;
        hit.from_cache = true;
        return hit;
      }
    }
    if (coalesce) {
      auto it = shard.in_flight.find(key);
      if (it != shard.in_flight.end()) {
        ++shard.counters.cache_hits;
        ++shard.counters.coalesced;
        waiting = it->second;
      } else {
        shard.in_flight.emplace(
            key, std::make_shared<std::shared_future<Decision>>(
                     computing_promise.get_future().share()));
        computing_published = true;
        ++shard.counters.cache_misses;
      }
    } else {
      ++shard.counters.cache_misses;
    }
  }
  if (waiting != nullptr) {
    // The computation is live on another thread (the slot is inserted and
    // erased by the computing thread itself, never parked on the queue), so
    // this wait always makes progress.
    Decision decision = waiting->get();
    decision.from_cache = true;
    AppendNote(&decision, "coalesced with identical in-flight request");
    return decision;
  }

  Decision decision = EvaluateRequest(request, shard.prepared);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.search += decision.stats;
    if (!decision.status.ok()) ++shard.counters.errors;
    if (memoize) shard.cache.Put(key, decision);
    if (coalesce && computing_published) shard.in_flight.erase(key);
  }
  // Publish after the slot is gone: late arrivals hit the LRU instead.
  if (computing_published) computing_promise.set_value(decision);
  return decision;
}

Decision CompletenessService::Decide(const ServiceRequest& request) {
  return Decide(request.setting, request.request);
}

Decision CompletenessService::Decide(SettingHandle handle,
                                     const DecisionRequest& request) {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle);
  return DecideOnShard(*shard, request);
}

void CompletenessService::RunJobs(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  if (workers_.empty() || tls_on_worker_thread) {
    for (std::function<void()>& job : jobs) job();
    return;
  }
  struct Countdown {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  };
  auto countdown = std::make_shared<Countdown>();
  countdown->remaining = jobs.size();
  for (std::function<void()>& job : jobs) {
    Enqueue([job = std::move(job), countdown] {
      job();
      std::lock_guard<std::mutex> lock(countdown->mu);
      if (--countdown->remaining == 0) countdown->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(countdown->mu);
  countdown->cv.wait(lock, [&] { return countdown->remaining == 0; });
}

std::vector<Decision> CompletenessService::SubmitBatchImpl(
    const std::vector<RoutedRequest>& routed) {
  std::vector<Decision> results(routed.size());

  // Dedup-aware planning: one computation per (shard, cache key); later
  // occurrences are filled from the first's slot after the batch runs.
  struct PlanKey {
    const Shard* shard = nullptr;
    RequestCacheKey key;
    bool operator==(const PlanKey& other) const {
      return shard == other.shard && key == other.key;
    }
  };
  struct PlanKeyHash {
    size_t operator()(const PlanKey& k) const {
      return std::hash<const void*>()(k.shard) ^ RequestCacheKeyHash()(k.key);
    }
  };
  const bool plan = options_.coalesce;
  std::vector<RequestCacheKey> keys(plan ? routed.size() : 0);
  if (plan) {
    // Key derivation re-fingerprints each request's query and c-instance —
    // the expensive part of planning — so it rides the pool instead of
    // serializing on the submitting thread.
    std::vector<std::function<void()>> key_jobs;
    key_jobs.reserve(routed.size());
    for (size_t i = 0; i < routed.size(); ++i) {
      if (routed[i].shard == nullptr) continue;
      key_jobs.push_back([&routed, &keys, i] {
        keys[i] = RequestKeyFor(routed[i].shard->prepared, *routed[i].request);
      });
    }
    RunJobs(std::move(key_jobs));
  }

  std::unordered_map<PlanKey, size_t, PlanKeyHash> first_of;
  std::vector<std::pair<size_t, size_t>> duplicates;  // (dup, primary)
  std::vector<std::function<void()>> jobs;
  for (size_t i = 0; i < routed.size(); ++i) {
    const RoutedRequest& r = routed[i];
    if (r.shard == nullptr) {
      results[i] = UnknownHandleDecision(r.handle);
      continue;
    }
    const RequestCacheKey* key = nullptr;
    if (plan) {
      auto [it, inserted] = first_of.emplace(PlanKey{r.shard.get(), keys[i]}, i);
      if (!inserted) {
        duplicates.emplace_back(i, it->second);
        continue;
      }
      key = &keys[i];
    }
    jobs.push_back([this, shard = r.shard, request = r.request, key,
                    out = &results[i]] {
      *out = DecideOnShard(*shard, *request, key);
    });
  }
  RunJobs(std::move(jobs));

  for (const auto& [dup, primary] : duplicates) {
    Decision decision = results[primary];
    decision.from_cache = true;
    AppendNote(&decision, "coalesced with identical request in batch");
    {
      Shard& shard = *routed[dup].shard;
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.counters.requests;
      ++shard.counters.cache_hits;
      ++shard.counters.coalesced;
    }
    results[dup] = std::move(decision);
  }
  return results;
}

std::vector<Decision> CompletenessService::SubmitBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<RoutedRequest> routed;
  routed.reserve(requests.size());
  // Resolve each distinct handle once instead of taking the registry lock
  // per request.
  std::unordered_map<uint64_t, std::shared_ptr<Shard>> resolved;
  for (const ServiceRequest& request : requests) {
    auto it = resolved.find(request.setting.id);
    if (it == resolved.end()) {
      it = resolved.emplace(request.setting.id, FindShard(request.setting))
               .first;
    }
    routed.push_back(RoutedRequest{it->second, &request.request,
                                   request.setting});
  }
  return SubmitBatchImpl(routed);
}

std::vector<Decision> CompletenessService::SubmitBatch(
    SettingHandle handle, const std::vector<DecisionRequest>& requests) {
  std::shared_ptr<Shard> shard = FindShard(handle);
  std::vector<RoutedRequest> routed;
  routed.reserve(requests.size());
  for (const DecisionRequest& request : requests) {
    routed.push_back(RoutedRequest{shard, &request, handle});
  }
  return SubmitBatchImpl(routed);
}

std::future<Decision> CompletenessService::SubmitAsync(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<Decision>>();
  std::future<Decision> future = promise->get_future();
  // Route at submission time: releasing the setting after admission does not
  // fail requests already in the system.
  std::shared_ptr<Shard> shard = FindShard(request.setting);
  auto run = [this, shard = std::move(shard),
              request = std::move(request), promise] {
    promise->set_value(shard == nullptr
                           ? UnknownHandleDecision(request.setting)
                           : DecideOnShard(*shard, request.request));
  };
  if (workers_.empty() || tls_on_worker_thread) {
    run();
  } else {
    Enqueue(std::move(run));
  }
  return future;
}

void CompletenessService::SubmitAsync(ServiceRequest request,
                                      std::function<void(Decision)> on_complete) {
  std::shared_ptr<Shard> shard = FindShard(request.setting);
  auto run = [this, shard = std::move(shard), request = std::move(request),
              on_complete = std::move(on_complete)] {
    on_complete(shard == nullptr ? UnknownHandleDecision(request.setting)
                                 : DecideOnShard(*shard, request.request));
  };
  if (workers_.empty() || tls_on_worker_thread) {
    run();
  } else {
    Enqueue(std::move(run));
  }
}

Result<EngineCounters> CompletenessService::counters(
    SettingHandle handle) const {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->counters;
}

EngineCounters CompletenessService::TotalCounters() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    shards.reserve(shards_.size());
    for (const auto& [id, shard] : shards_) shards.push_back(shard);
  }
  EngineCounters total;
  for (const std::shared_ptr<Shard>& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->counters;
  }
  return total;
}

Status CompletenessService::ClearCache(SettingHandle handle) {
  std::shared_ptr<Shard> shard = FindShard(handle);
  if (shard == nullptr) return UnknownHandleDecision(handle).status;
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->cache.Clear();
  return Status::OK();
}

}  // namespace relcomp
