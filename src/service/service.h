// CompletenessService: the multi-setting decision service. Where the legacy
// CompletenessEngine serves one partially closed setting (Dm, V), the
// service hosts a registry of them — one per tenant / master-data snapshot —
// admitted via RegisterSetting (deduplicated by the stable setting
// fingerprint, refcounted, evicted by ReleaseSetting). Each registered
// setting backs a shard owning its PreparedSetting, result cache, and
// counters; handle-carrying requests are routed to their shard and served
// over ONE worker pool shared by every setting, through four submission
// paths:
//
//   Decide       — one request, synchronously on the calling thread;
//   SubmitBatch  — a batch (possibly spanning settings), fanned out across
//                  the pool with dedup-aware planning: identical requests in
//                  one batch collapse to a single computation, the
//                  duplicates reporting from_cache = true with a note;
//   SubmitAsync  — fire-and-collect: returns a std::future<Decision> (or
//                  invokes a completion callback) resolved by the pool;
//   SubmitStream — the batch plan, delivered incrementally: each Decision
//                  is handed to a pull stream / callback sink as it
//                  completes instead of materializing the result vector.
//
// Between the request paths and the worker pool sits the sched/ subsystem:
// work is scheduled by a FairQueue whose tenants are the setting shards.
// ServiceOptions picks the policy (legacy strict FIFO by default, or
// weighted fair share so a cheap tenant interleaves with an expensive
// tenant's backlog), the overload decision (block the producer vs. reject
// with a kUnavailable Decision), and per-tenant quotas; ShardOptions can
// override weight, quota, rate limit, cache capacity, and the default
// decider step budget per setting at registration. Requests may carry
// per-submission sched params: a priority class, a deadline, and a
// cooperative cancellation token. Deadlines and cancellation are ENFORCED,
// not best-effort: a still-queued request past its deadline is shed before
// evaluation, and a request already executing is aborted at the next
// cooperative checkpoint inside the decider's search loops (SearchOptions
// deadline/cancel plumbed per evaluation), reporting kDeadlineExceeded /
// kCancelled with the partial SearchStats the aborted run accumulated.
// Aborted and budget-exhausted decisions are never admitted to the shard
// cache.
//
// Identical requests that are concurrently in flight — across batches,
// async and stream submissions — coalesce: later occurrences join the
// first's flight group instead of recomputing. A coalesced group is shed
// (queued) or aborted (running) only when EVERY member has cancelled (or
// expired); one live waiter keeps the computation alive for everyone — the
// running evaluation polls the group's joint cancellation token at its
// checkpoints, so the last waiter's Cancel() stops a computation that is
// already burning a worker, not just parked ones. Answers are
// deterministic: independent of worker count, scheduling policy, and
// coalescing; only the from_cache flags and coalescing notes may differ
// between runs. (The coalesced paths drive cancellation through the sched
// params; a DecisionRequest's own options.cancel token is honored on the
// non-coalesced paths only.)
//
// Shard caches live in the cache/ subsystem: each shard owns a
// byte-weighted segmented LRU (cache::ShardCache — probation/protected
// segments with frequency-sketch admission, so one-shot scans cannot flush
// a hot working set), every entry is charged its deep byte cost
// (cache/weigher.h, witnesses included), and ServiceOptions::
// cache_budget_bytes arbitrates ONE shared byte budget across all shards
// (coldest shard evicted first, per-shard cache_floor_bytes floors
// respected). SaveCaches / LoadCaches persist the caches across restarts:
// a reloaded snapshot warm-starts any setting whose fingerprint matches at
// RegisterSetting, so a restarted service serves yesterday's decisions as
// cache hits without re-evaluating anything.
#ifndef RELCOMP_SERVICE_SERVICE_H_
#define RELCOMP_SERVICE_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/budget.h"
#include "cache/shard_cache.h"
#include "core/prepared_setting.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "sched/cancel.h"
#include "sched/policy.h"
#include "sched/queue.h"
#include "sched/stream.h"
#include "service/decision.h"
#include "util/mutex.h"
#include "util/thread.h"

namespace relcomp {

/// Opaque ticket for a registered setting. Value-semantic and cheap; the
/// zero handle is invalid. Registering a fingerprint-identical setting
/// returns the SAME handle (with its refcount bumped), so handles are also
/// identity: two equal handles route to one shard and one cache.
struct SettingHandle {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
  friend bool operator==(SettingHandle a, SettingHandle b) {
    return a.id == b.id;
  }
  friend bool operator!=(SettingHandle a, SettingHandle b) {
    return a.id != b.id;
  }
};

/// One routed unit of service work: which setting, what to decide, and how
/// to schedule it. Default sched params reproduce the legacy behavior
/// (normal priority, no deadline, not cancellable), so `{handle, request}`
/// aggregates keep meaning what they always did.
struct ServiceRequest {
  SettingHandle setting;
  DecisionRequest request;
  // The default initializer matters beyond defaulting: it keeps
  // `ServiceRequest{handle, request}` aggregate initialization (the
  // dominant spelling in callers) clean under -Wmissing-field-initializers.
  sched::SchedParams sched = {};
};

/// Per-setting overrides, fixed at registration. When a setting
/// deduplicates onto an existing shard, the FIRST registration's options
/// stay in force (the shard is shared state; late registrants inherit it).
struct ShardOptions {
  /// "Inherit the service-wide default" marker for size fields.
  static constexpr size_t kInherit = static_cast<size_t>(-1);

  /// Entry capacity for this shard's result cache; kInherit uses
  /// ServiceOptions::cache_capacity, 0 disables memoization for the shard.
  /// The RESOLVED options returned by shard_options() always report the
  /// EFFECTIVE capacity: kInherit replaced by the service default, and 0
  /// whenever memoization is off service-wide (ServiceOptions::memoize =
  /// false zeroes every shard's capacity at registration), so the reported
  /// value and the cache's actual behavior cannot disagree.
  size_t cache_capacity = kInherit;
  /// Starvation floor under the shared byte budget: OTHER shards' budget
  /// pressure never evicts this shard below this many resident bytes (the
  /// shard may still shed its own entries past it for its own inserts).
  /// Meaningful only with ServiceOptions::cache_budget_bytes set; floors
  /// should sum to well under the budget or over-floor inserts start being
  /// refused admission.
  size_t cache_floor_bytes = 0;
  /// Fair-share weight of this tenant (kFairShare policy only): a weight-4
  /// tenant gets 4x the worker time of a weight-1 tenant under contention.
  uint32_t weight = 1;
  /// Bounded in-queue quota; kInherit uses ServiceOptions::default_max_queue,
  /// 0 means unbounded. Exceeding it triggers the overload policy.
  size_t max_queue = kInherit;
  /// Token-bucket admission rate in requests/second; 0 = unlimited.
  double rate_per_sec = 0.0;
  /// Token-bucket burst; 0 = max(1, rate_per_sec).
  double burst = 0.0;
  /// Default decider step budget for this shard's evaluations. Requests
  /// that leave DecisionRequest::options.max_steps at the built-in default
  /// inherit this value; requests that set their own budget keep it.
  /// 0 = no shard default (every request keeps its own budget).
  uint64_t max_steps = 0;
};

/// Service configuration. Workers are shared across all settings; cache
/// capacity and the scheduling defaults below are per setting shard unless
/// overridden by ShardOptions at registration.
struct ServiceOptions {
  size_t num_workers = 4;       ///< shared pool; 0 = run everything inline
  size_t cache_capacity = 1024; ///< cache entries per shard; 0 disables
  /// ONE byte budget shared by every shard's result cache (entry costs per
  /// cache/weigher.h). 0 = unbounded. When an insert would overflow it, the
  /// CacheBudget arbiter evicts from the globally coldest shard first,
  /// respecting per-shard cache_floor_bytes — so total resident cache
  /// bytes never exceed the budget no matter how witness-heavy one
  /// tenant's results are.
  size_t cache_budget_bytes = 0;
  bool memoize = true;
  bool coalesce = true;         ///< dedup-aware planning + in-flight joins
  /// Queue order across tenants. kFifo is the legacy strict arrival order;
  /// kFairShare applies stride scheduling over shard weights.
  sched::SchedPolicy policy = sched::SchedPolicy::kFifo;
  /// What admission control does when a tenant is over quota/rate: block
  /// the submitting thread (backpressure) or reject with a kUnavailable
  /// Decision. Irrelevant until a quota or rate limit is configured.
  sched::OverloadPolicy overload = sched::OverloadPolicy::kBlock;
  /// Default per-tenant in-queue quota; 0 = unbounded.
  size_t default_max_queue = 0;
  /// Observability. `metrics` resolves per-tenant latency/queue histograms,
  /// outcome counters, and cache event instruments at registration; false
  /// strips every instrument from the hot path (the A/B baseline for
  /// overhead measurements — DumpMetrics then reports only derived
  /// counters). `trace_sample` samples every Nth submission into a
  /// per-request span timeline (0 = tracing off). `slow_log` keeps the N
  /// worst end-to-end traces for SlowDecisions() (0 = off; needs
  /// trace_sample to ever receive a trace).
  bool metrics = true;
  uint64_t trace_sample = 0;
  size_t slow_log = 0;
  /// Bounded ring of the most recent finished SAMPLED traces, exported by
  /// DumpTraces() as a Chrome trace_event / Perfetto-compatible JSON
  /// timeline (per-request rows plus per-worker rows with the search
  /// profile's per-loop sub-slices). 0 = no trace retention (DumpTraces
  /// renders an empty timeline); needs trace_sample to ever fill.
  size_t trace_ring = 0;
  /// Flight-recorder sampling period in milliseconds: a background thread
  /// snapshots the system's vitals (in-flight, recent rates, windowed p95,
  /// queue depth, active/stalled evaluations) into a bounded ring read by
  /// ObsReport(), and republishes the abort-path report each tick. 0 =
  /// no periodic sampling (the thread still runs if the watchdog is on).
  uint64_t recorder_interval_ms = 0;
  /// Flight-recorder ring capacity (samples + annotations retained).
  size_t recorder_ring = 120;
  /// Stall watchdog threshold: a running evaluation whose cooperative
  /// checkpoints have not heartbeat'd for this many microseconds is
  /// flagged (once) — counted in relcomp_watchdog_stalls_total, annotated
  /// in the flight recorder, and entered into the slow-decision log with
  /// the loop tag and step count it stalled in. 0 = watchdog off. The
  /// watchdog observes heartbeats only at checkpoint granularity, so the
  /// threshold must comfortably exceed checkpoint_interval's wall time.
  uint64_t watchdog_stall_micros = 0;
};

/// One decision of a streamed batch: `index` positions it in the submitted
/// request vector (stream delivery is completion-ordered, not
/// submission-ordered).
struct StreamedDecision {
  size_t index = 0;
  Decision decision;
};

/// Pull side of the streaming submission path; see Stream<T> for the
/// backpressure contract. A bounded stream throttles pool workers when
/// the consumer lags; it is honored only when admission cannot block
/// (OverloadPolicy::kReject, or no quota/rate-limited tenant in the
/// batch) — otherwise delivery falls back to unbounded buffering, since
/// a worker waiting on the consumer while the consumer waits on
/// admission would deadlock. To bound batch memory under backpressure,
/// prefer kReject quotas over stream bounds.
using DecisionStream = sched::Stream<StreamedDecision>;

/// Push side: invoked once per request, serialized, from worker threads
/// (or the submitting thread when the service runs inline).
using StreamSink = std::function<void(size_t index, const Decision& decision)>;

class CompletenessService {
 public:
  explicit CompletenessService(ServiceOptions options = {});
  ~CompletenessService();
  CompletenessService(const CompletenessService&) = delete;
  CompletenessService& operator=(const CompletenessService&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Validates and prepares `setting`, or — when a live setting with the
  /// same stable fingerprint is already registered — bumps its refcount and
  /// returns its existing handle without re-preparing anything (the
  /// original registration's ShardOptions stay in force).
  Result<SettingHandle> RegisterSetting(PartiallyClosedSetting setting,
                                        const ShardOptions& shard_options);
  Result<SettingHandle> RegisterSetting(PartiallyClosedSetting setting) {
    return RegisterSetting(std::move(setting), ShardOptions{});
  }

  /// Drops one registration. The shard (prepared setting, cache, counters)
  /// is evicted when the last registration is released; in-flight requests
  /// keep the shard alive until they finish. kNotFound for unknown or
  /// already fully released handles.
  Status ReleaseSetting(SettingHandle handle);

  /// Number of live (distinct) registered settings.
  size_t num_settings() const;

  /// The shard's prepared setting (a cheap shared handle).
  Result<PreparedSetting> prepared(SettingHandle handle) const;

  /// The shard's resolved per-setting options.
  Result<ShardOptions> shard_options(SettingHandle handle) const;

  /// Stable memoization key of a request under `handle`'s setting (the
  /// primary digest of the dual-digest cache key).
  Result<uint64_t> FingerprintRequest(SettingHandle handle,
                                      const DecisionRequest& request) const;

  /// Decides one request synchronously on the calling thread (consulting
  /// and filling the shard cache, coalescing with in-flight identical
  /// requests, honoring the request's cancellation token and deadline both
  /// at entry and mid-run via the decider's cooperative checkpoints). An
  /// invalid or released handle yields an error Decision, not a crash.
  /// Thread-safe.
  Decision Decide(const ServiceRequest& request);

  /// Same, without wrapping the request (no copy) — the adapter hot path.
  Decision Decide(SettingHandle handle, const DecisionRequest& request);

  /// Decides a batch; the result vector is parallel to `requests`. Requests
  /// may target different settings — each routes to its own shard — and are
  /// fanned out across the shared pool under the scheduling policy. Dedup-
  /// aware planning: identical requests (same shard, same cache key)
  /// collapse to one computation; duplicates report from_cache = true with
  /// a coalescing note. Multiple batches may be submitted concurrently;
  /// under kFairShare their tenants share the pool by weight. Thread-safe.
  std::vector<Decision> SubmitBatch(const std::vector<ServiceRequest>& requests);

  /// Single-setting batch without per-request handle plumbing (and without
  /// copying the requests into ServiceRequests) — the engine adapter's path.
  std::vector<Decision> SubmitBatch(SettingHandle handle,
                                    const std::vector<DecisionRequest>& requests);

  /// Async path: admits the request (cache lookups and coalescing joins are
  /// resolved immediately, on the submitting thread; fresh work is enqueued
  /// on the shared pool) and returns a future for its decision. With 0
  /// workers the request is decided inline and the future is already
  /// resolved. Thread-safe.
  std::future<Decision> SubmitAsync(ServiceRequest request);

  /// Callback flavor: `on_complete` is invoked with the decision, on a
  /// worker thread (or inline: with 0 workers, when the submission is made
  /// from a pool thread, or when it resolves at admission from the cache).
  /// Submissions made from inside a callback execute inline — a worker
  /// parking on work only workers can drain would deadlock the pool — so
  /// callbacks may safely call back into the service.
  void SubmitAsync(ServiceRequest request,
                   std::function<void(Decision)> on_complete);

  /// Streaming submission, pull flavor: the batch plan of SubmitBatch, but
  /// each decision is published to `stream` as it completes (tagged with
  /// its request index) instead of materializing the whole result vector.
  /// Returns once everything is admitted (the requests are copied, so the
  /// caller's vector may die immediately); the stream must stay alive and
  /// be drained until it finishes, after the last delivery. A consumer
  /// abandoning the stream mid-drain must Close() it (throttled workers
  /// unblock and drop further deliveries; parked coalesced waiters still
  /// resolve) and may destroy it only after WaitProducersFinished() — or
  /// after this service is destroyed, which drains the queue. Decisions
  /// are identical to what SubmitBatch would have returned for the same
  /// vector. Thread-safe.
  void SubmitStream(const std::vector<ServiceRequest>& requests,
                    DecisionStream* stream);

  /// Streaming submission, push flavor: blocks until every decision has
  /// been delivered to `sink` (serialized, completion order). Thread-safe.
  void SubmitStream(const std::vector<ServiceRequest>& requests,
                    const StreamSink& sink);

  /// Per-shard counters; kNotFound after release. The cache-lifecycle
  /// fields (evictions / admission_rejects / cache_bytes) are overlaid
  /// from the shard cache's own stats at read time.
  Result<EngineCounters> counters(SettingHandle handle) const;

  /// Field-wise sum of every live shard's counters.
  EngineCounters TotalCounters() const;

  /// Cache introspection for one shard: resident entries/bytes, lifetime
  /// hit ratio at the cache layer (coalesced requests never reach it),
  /// evictions, admission rejections, and snapshot-restored entries.
  Result<cache::CacheStats> CacheStats(SettingHandle handle) const;

  /// Snapshots every live shard's result cache to `path` (atomic write,
  /// versioned + checksummed; see cache/persist.h). Shards with disabled
  /// caches are skipped. Safe to call while serving.
  Status SaveCaches(const std::string& path) const;

  /// Loads a snapshot saved by SaveCaches. Entries for already-registered
  /// settings are restored into their shard caches immediately; the rest
  /// are staged and restored when a setting with a MATCHING fingerprint
  /// registers (the warm-start path) — entries whose fingerprint never
  /// matches (stale master data) are simply never applied. Returns the
  /// number of setting cache images applied or staged; images matching a
  /// live shard whose cache is disabled are dropped and not counted.
  Result<size_t> LoadCaches(const std::string& path);

  /// Drops the shard's memoized results (counters are preserved).
  Status ClearCache(SettingHandle handle);

  /// Renders every live metric — per-tenant end-to-end latency and
  /// queue-wait histograms (Prometheus le-buckets; JSON carries explicit
  /// p50/p95/p99), per-kind and per-priority request counters, cache event
  /// counters and resident gauges, scheduler-level wait histograms, the
  /// in-flight gauge — plus per-tenant outcome counters derived from the
  /// shard EngineCounters (`relcomp_decisions_total{tenant,outcome=...}`,
  /// the request-partition source of truth). Safe to call while serving.
  std::string DumpMetrics(
      obs::DumpFormat format = obs::DumpFormat::kPrometheus) const;

  /// The slow-decision log's current contents, slowest first: the N worst
  /// end-to-end deliveries, each carrying its latency, trace id, tenant,
  /// problem kind, the full trace, and the evaluation's SearchProfile
  /// (null for cache hits / coalesced joins / sheds — nothing searched).
  /// Watchdog-flagged stalls also land here, annotated via `note`. Empty
  /// unless ServiceOptions::slow_log and trace_sample are both set.
  std::vector<obs::SlowEntry> SlowDecisions() const;

  /// Renders the trace ring as a Chrome trace_event JSON document (loads
  /// in ui.perfetto.dev / chrome://tracing). Empty timeline unless
  /// ServiceOptions::trace_ring and trace_sample are both set.
  std::string DumpTraces() const;

  /// A plain-text operational dashboard: in-flight and queue depth, recent
  /// windowed rates and latency quantiles, per-tenant request rates, the
  /// active-evaluation table (loop tag, steps, heartbeat age, stall flag),
  /// the watchdog stall count, and the flight recorder's retained samples.
  /// This is also the report the lock-rank abort hook dumps to stderr —
  /// republished every recorder tick so a crashing process prints its
  /// last-known vitals. Safe to call while serving.
  std::string ObsReport() const;

  /// The slow-decision log as text, slowest first — the /slow endpoint.
  std::string RenderSlowLog() const;

  /// The active-evaluation table as text — the /debug/active endpoint
  /// (the same table ObsReport embeds, without the rest of the report).
  std::string RenderActiveEvaluations() const;

  /// Starts the live observability HTTP endpoint: /metrics (Prometheus),
  /// /metrics.json, /traces (Perfetto-compatible JSON), /slow, /report,
  /// /debug/active, /healthz, /readyz — the surfaces above, served live.
  /// Scrapes run on the endpoint's own threads and take only the locks
  /// the dump calls always took; the decision hot path is untouched.
  /// One endpoint per service; a second call is an error. The endpoint
  /// stops at StopObs() or destruction.
  Status ServeObs(const obs::ObsHttpOptions& options);

  /// Stops the endpoint and joins its threads; no-op when not serving.
  void StopObs();

  /// The endpoint's bound TCP port (resolves an ephemeral port 0
  /// request), or 0 when not serving.
  uint16_t obs_port() const;

 private:
  /// Dual-digest registry identity of a setting — the RequestCacheKey
  /// collision policy applied to registration: a single 64-bit fingerprint
  /// collision would silently route one tenant's requests to another
  /// tenant's shard, so dedup requires both digests to agree.
  using SettingKey = RequestCacheKey;
  using SettingKeyHash = RequestCacheKeyHash;

  /// One coalesced computation in flight: every identical concurrent
  /// request joins this group instead of recomputing. Members that joined
  /// at admission (async/stream) carry their own promise or callback and a
  /// cancellation token; synchronous callers wait on the shared future.
  /// The group is shed without evaluation only when no sync caller waits
  /// and every member has cancelled or expired.
  struct FlightGroup {
    struct Member {
      sched::CancelToken cancel;
      sched::TimePoint deadline = sched::kNoDeadline;
      std::shared_ptr<std::promise<Decision>> promise;  // future flavor
      std::function<void(Decision)> callback;           // callback flavor
      /// Submission time and (when sampled) this member's own trace: each
      /// waiter's decision is stamped with ITS latency at delivery, and a
      /// coalesced waiter's trace records the run it joined.
      sched::TimePoint submit{};
      std::shared_ptr<obs::Trace> trace;
    };
    std::vector<Member> members;  ///< async joiners; an async owner is [0]
    /// Joint cancellation interest of every participant — async members,
    /// sync callers (owners, stealers, and joiners), and batch dedup
    /// composites. The running evaluation polls interest.token() at its
    /// cooperative checkpoints, so it aborts exactly when every registered
    /// participant has cancelled; participants without a token pin the
    /// computation live forever. Membership may grow while the evaluation
    /// runs (a late joiner re-pins a not-yet-aborted run).
    sched::CancelGroup interest;
    /// The run's EXTENDABLE deadline: the latest deadline among every
    /// participant recorded so far (steady-clock rep; max = none — one
    /// deadline-less waiter lifts the bound for everyone). The evaluation's
    /// checkpoints re-read it each poll via SearchOptions::shared_deadline,
    /// so a waiter joining mid-run extends a running search's deadline the
    /// same way its token re-pins cancellation. Grows monotonically
    /// (ExtendRunDeadline); a member cancelling does not shrink it — the
    /// cancellation side is the CancelGroup's job.
    std::atomic<sched::Clock::rep> run_deadline{
        sched::TimePoint::min().time_since_epoch().count()};
    /// Set once evaluation is claimed — by the queued owner task, or by a
    /// synchronous caller that arrived first and "steals" the parked group
    /// (a sync caller must never block on a task still parked in the
    /// queue: with every worker blocked that way the pool would deadlock).
    /// Sync callers therefore only ever wait on `future` of STARTED
    /// groups, which is why the shed check needs no sync-waiter count.
    bool started = false;
    std::promise<Decision> sync_promise;
    std::shared_ptr<std::shared_future<Decision>> future;
    /// The trace of whichever participant claimed the evaluation (null for
    /// an unsampled run). Written under the shard mutex where `started` is
    /// set; joiners read it there to note which run they piggy-backed on.
    std::shared_ptr<obs::Trace> run_trace;
  };

  /// Per-shard metric instruments, resolved once at registration from the
  /// service's registry (all null when ServiceOptions::metrics is false —
  /// every use site null-checks, so the uninstrumented hot path costs one
  /// branch). The instruments outlive the shard: they live in the registry,
  /// and Prometheus counters are cumulative across a tenant's lifetime.
  struct ShardMetrics {
    obs::Histogram* e2e_latency = nullptr;
    obs::Histogram* queue_wait = nullptr;
    std::vector<obs::Counter*> by_kind;  ///< indexed by ProblemKind
    std::array<obs::Counter*, sched::kNumPriorities> by_priority{};
  };

  /// One registered setting: prepared artifacts + cache + counters + the
  /// in-flight table used for request coalescing. Shared-ptr'd so requests
  /// already routed survive a concurrent ReleaseSetting.
  struct Shard {
    Shard(PreparedSetting prepared_setting, SettingKey key,
          const ShardOptions& resolved,
          std::shared_ptr<cache::ShardCache> shard_cache)
        : prepared(std::move(prepared_setting)),
          setting_key(key),
          options(resolved),
          cache(std::move(shard_cache)) {}

    PreparedSetting prepared;
    const SettingKey setting_key;
    const ShardOptions options;  ///< resolved (no kInherit markers)
    uint64_t id = 0;        // handle id; set once at registration, then
                            // read-only (doubles as the tenant label)
    ShardMetrics metrics;   // set once at registration, then read-only
    /// Sliding-window views of this tenant's recent traffic (1s/10s/60s
    /// request rates and recent latency quantiles in DumpMetrics /
    /// ObsReport). Internally synchronized; null when metrics are off.
    struct Windows {
      obs::WindowedCounter requests;
      obs::WindowedHistogram latency;
    };
    std::unique_ptr<Windows> windows;
    uint64_t refcount = 1;  // guarded by registry_mu_ (not expressible as
                            // GUARDED_BY: the outer service's mutex is not
                            // nameable from a nested struct)

    // Guards counters + in_flight (NOT the cache: it is internally
    // synchronized — peer shards shed its entries under shared-budget
    // pressure without ever taking a shard mutex).
    mutable Mutex mu{LockRank::kShard, "Shard::mu"};
    const std::shared_ptr<cache::ShardCache> cache;
    EngineCounters counters GUARDED_BY(mu);
    std::unordered_map<RequestCacheKey, std::shared_ptr<FlightGroup>,
                       RequestCacheKeyHash>
        in_flight GUARDED_BY(mu);
  };

  /// A request resolved to its shard (null when the handle is unknown).
  struct RoutedRequest {
    std::shared_ptr<Shard> shard;
    const DecisionRequest* request = nullptr;
    SettingHandle handle;
    const sched::SchedParams* sched = nullptr;  ///< null = defaults
  };

  std::shared_ptr<Shard> FindShard(SettingHandle handle) const
      EXCLUDES(registry_mu_);
  static Decision UnknownHandleDecision(SettingHandle handle);

  /// Delivers one async member's decision through whichever channel it
  /// registered (future or completion callback). Must be called outside
  /// the shard lock — callbacks may re-enter the service.
  static void ResolveMember(FlightGroup::Member& member, Decision decision);

  /// Cache-through, coalescing evaluation on one shard + counter update,
  /// honoring `sched` (cancellation/deadline at entry) when given.
  /// `precomputed` lets the batch planner hand over the cache key it
  /// already derived; `count_request` is false when the caller already
  /// charged the request at admission (async paths). `trace`, when
  /// sampled, receives the cache-lookup / coalesce-join / evaluate /
  /// cache-store phases (the caller owns admit/queue/finish).
  Decision DecideOnShard(Shard& shard, const DecisionRequest& request,
                         const RequestCacheKey* precomputed = nullptr,
                         const sched::SchedParams* sched = nullptr,
                         bool count_request = true,
                         const std::shared_ptr<obs::Trace>& trace = nullptr)
      EXCLUDES(shard.mu);

  /// Resolves one new shard's metric instruments (and wires the cache's
  /// event sink) under the tenant label `handle_id`. No-op when
  /// ServiceOptions::metrics is false.
  void InitShardMetrics(Shard& shard, uint64_t handle_id);

  /// Charges the per-kind / per-priority admission counters. Called once
  /// per submitted request (duplicates included) at each entry point.
  static void CountAdmission(const Shard& shard, const DecisionRequest& request,
                             const sched::SchedParams* sched);

  /// The one delivery choke point: stamps Decision::latency_micros
  /// (submit → now), records it in the shard's end-to-end histogram and
  /// the shard + service sliding windows, and — when the request carried
  /// a trace — finishes the trace (closing any open phase at the SAME
  /// instant the latency is measured, so span durations sum exactly to
  /// the stamped latency), offers a SlowEntry (latency, trace id, tenant,
  /// `kind`, trace, search profile) to the slow-decision log, and offers
  /// the finished trace to the export ring. `shard` may be null
  /// (unknown-handle deliveries); `kind` is the delivery's
  /// ProblemKindName (empty-string/null tolerated). Call at most once per
  /// (trace, decision) pair.
  void FinishRequest(Shard* shard, const std::shared_ptr<obs::Trace>& trace,
                     sched::TimePoint submit, Decision* decision,
                     const char* kind);

  /// The evaluation-time SearchOptions for one request on `shard`: the
  /// shard's default step budget (for requests that left max_steps at the
  /// built-in default), the earliest of the request's own and the
  /// submission's deadline, and the submission's cancellation token (the
  /// group composite for scheduled batch work).
  static SearchOptions EffectiveOptions(const Shard& shard,
                                        const DecisionRequest& request,
                                        const sched::SchedParams* sched);

  /// The instrumented core of every evaluation: anchors a SearchProfile at
  /// the same instant the trace's "evaluate" phase opens (so profile slice
  /// offsets are offsets into the evaluate span), registers the run with
  /// the stall watchdog, chains the checkpoint progress hook (heartbeat →
  /// trace mark → the request's own hook), runs EvaluateRequest, and
  /// attaches the finished profile to the Decision, feeding the per-loop
  /// step/latency metric families. Runs OUTSIDE shard.mu (the evaluation
  /// is long); `effective`'s profile/progress fields are overwritten.
  Decision RunEvaluation(Shard& shard, const DecisionRequest& request,
                         SearchOptions* effective,
                         const std::shared_ptr<obs::Trace>& trace);

  /// Charges one finished evaluation's per-loop attribution into the
  /// relcomp_search_steps_total{tenant,kind,loop} counters and the
  /// relcomp_search_loop_micros{tenant,loop} histograms. No-op when
  /// metrics are off.
  void RecordSearchProfile(const Shard& shard, const DecisionRequest& request,
                           const SearchProfile& profile);

  /// Records one participant's deadline in the group's shared run
  /// deadline (monotonic max; kNoDeadline lifts it entirely). Called at
  /// every join/creation/steal site, including while the evaluation runs.
  static void ExtendRunDeadline(FlightGroup& group, sched::TimePoint deadline);

  /// Evaluates the group's request on the calling thread and publishes the
  /// decision to the cache, every member, and all sync waiters. The caller
  /// has set group->started under shard.mu. `billed_member` is the async
  /// member charged with the evaluation (its decision is delivered
  /// unannotated), or kSyncBilled when a synchronous caller owns the miss.
  /// The evaluation runs under the group's joint cancellation token and
  /// its extendable run deadline (the latest among all participants,
  /// re-read at every checkpoint, so late joiners extend it). An aborted
  /// evaluation reports kDeadlineExceeded / kCancelled to every live
  /// member, moves the billed miss into the matching abort bucket (plus
  /// shed_running / aborted_steps), and is never cached.
  static constexpr size_t kSyncBilled = static_cast<size_t>(-1);
  Decision EvaluateForGroup(Shard& shard, const DecisionRequest& request,
                            const RequestCacheKey& key,
                            const std::shared_ptr<FlightGroup>& group,
                            size_t billed_member) EXCLUDES(shard.mu);

  /// Sheds a not-yet-started group refused by admission control: members
  /// report kUnavailable unless individually cancelled. No-op if
  /// evaluation already started.
  void ShedGroup(Shard& shard, const RequestCacheKey& key,
                 const std::shared_ptr<FlightGroup>& group, const char* kind)
      EXCLUDES(shard.mu);

  /// The queued owner task of an admission-time flight group: records the
  /// queue wait, then evaluates, serves the group from a cache entry that
  /// appeared meanwhile, or sheds it when every member cancelled/expired —
  /// or yields entirely when a synchronous caller stole the evaluation.
  void RunOwnerTask(const std::shared_ptr<Shard>& shard,
                    const RequestCacheKey& key,
                    const std::shared_ptr<FlightGroup>& group,
                    const DecisionRequest& request,
                    std::chrono::microseconds wait);

  /// Shared admission core of both SubmitAsync flavors.
  void SubmitAsyncImpl(ServiceRequest request,
                       std::shared_ptr<std::promise<Decision>> promise,
                       std::function<void(Decision)> on_complete);

  /// The shared planning/fan-out core of SubmitBatch and SubmitStream:
  /// plans dedup over `routed`, schedules one task per distinct request,
  /// and publishes every slot's decision (duplicates right after their
  /// primary) to `stream`, finishing it after the last slot. The stream
  /// must outlive delivery (the caller drains it to completion). A dedup
  /// group merges its members' sched params — latest deadline, most
  /// urgent priority, shed only when EVERY member's token is cancelled —
  /// and individually-cancelled members report kCancelled at delivery.
  /// `keep_alive` pins whatever owns the routed requests until the last
  /// task ran (the non-blocking pull flavor passes its private copy).
  void SubmitRouted(const std::vector<RoutedRequest>& routed,
                    DecisionStream* stream,
                    std::shared_ptr<const void> keep_alive = nullptr);

  /// Blocking collect over SubmitRouted — the SubmitBatch backend.
  std::vector<Decision> CollectRouted(const std::vector<RoutedRequest>& routed);

  std::vector<RoutedRequest> RouteBatch(
      const std::vector<ServiceRequest>& requests);

  void WorkerLoop(int worker_index);

  /// The sampler/watchdog thread body: sleeps on recorder_wake_mu_ in
  /// recorder-tick-sized slices (woken early by shutdown), scans the
  /// active-evaluation registry for stalls, snapshots vitals into the
  /// flight recorder on the configured cadence, and republishes the
  /// abort-path report. All work happens OUTSIDE the wake mutex.
  void RecorderLoop();

  const ServiceOptions options_;

  // The shared cache-byte arbiter. Declared BEFORE the shard registry:
  // members destroy in reverse order, and every shard cache deregisters
  // from the budget in its destructor, so the budget must outlive the
  // shards. Null when cache_budget_bytes is 0 (unbounded — shards skip
  // budget accounting entirely).
  std::unique_ptr<cache::CacheBudget> cache_budget_;

  // Registry: handle id → shard, plus the fingerprint dedup index. The
  // OUTERMOST lock in the system (kServiceRegistry): registration holds it
  // while reaching into the queue, the cache (warm restore), and the
  // metrics registry.
  mutable Mutex registry_mu_{LockRank::kServiceRegistry,
                             "CompletenessService::registry_mu_"};
  std::unordered_map<uint64_t, std::shared_ptr<Shard>> shards_
      GUARDED_BY(registry_mu_);
  std::unordered_map<SettingKey, uint64_t, SettingKeyHash>
      handle_by_fingerprint_ GUARDED_BY(registry_mu_);
  uint64_t next_handle_id_ GUARDED_BY(registry_mu_) = 1;
  // Snapshot entries loaded before their setting registered, keyed by the
  // setting fingerprint they were computed under; applied (and erased) by
  // the first matching RegisterSetting.
  std::unordered_map<SettingKey,
                     std::vector<std::pair<RequestCacheKey, Decision>>,
                     SettingKeyHash>
      pending_warm_ GUARDED_BY(registry_mu_);

  // Observability: the service-owned metrics registry (per-service, so two
  // services in one process never collide on tenant labels — handle ids
  // restart at 1 per service), the sampling tracer, and the slow-decision
  // log. Declared before the queue/workers so instruments outlive anything
  // recording into them during shutdown.
  obs::MetricsRegistry metrics_registry_;
  obs::Tracer tracer_;
  obs::SlowDecisionLog slow_log_;
  obs::TraceSink trace_sink_;        ///< export ring behind DumpTraces()
  obs::ActiveEvaluations active_;    ///< running evaluations (watchdog prey)
  obs::FlightRecorder recorder_;     ///< periodic vitals ring
  obs::Gauge* inflight_gauge_ = nullptr;          ///< null when metrics off
  obs::Histogram* sched_queue_wait_ = nullptr;    ///< queue-level, all tenants
  obs::Histogram* sched_token_wait_ = nullptr;    ///< admission-block time
  /// Service-wide sliding windows (all tenants merged); null when metrics
  /// are off, like the per-shard ones.
  std::unique_ptr<Shard::Windows> windows_;
  /// Evaluations the watchdog has flagged as stalled, cumulative. Kept as
  /// a plain atomic (not only a registry counter) so ObsReport and the
  /// metrics-off configuration still see it.
  std::atomic<uint64_t> watchdog_stall_count_{0};

  // The scheduler subsystem: a policy-driven multi-tenant queue (tenant =
  // setting shard) feeding the shared worker pool. Workers drain the queue
  // before honoring shutdown, so async submissions accepted before
  // destruction still resolve.
  sched::FairQueue queue_;
  std::vector<JoinableThread> workers_;

  // The sampler/watchdog thread, started after the workers when the
  // recorder or watchdog is configured and stopped FIRST in the
  // destructor (it reads members the teardown below dismantles). The wake
  // mutex exists only so shutdown can interrupt the tick sleep; the loop
  // never does work under it.
  mutable Mutex recorder_wake_mu_{LockRank::kObsRecorderWake,
                                  "CompletenessService::recorder_wake_mu_"};
  CondVar recorder_wake_cv_;
  bool recorder_stop_ GUARDED_BY(recorder_wake_mu_) = false;
  JoinableThread recorder_thread_;

  /// The live observability endpoint; null until ServeObs. Its handler
  /// threads call back into `this`, so the destructor stops it before
  /// ANY other teardown. Guarded for create/stop races; StopObs releases
  /// the lock before joining (handlers take registry_mu_ themselves).
  std::unique_ptr<obs::HttpEndpoint> obs_endpoint_ GUARDED_BY(registry_mu_);

  /// Construction instant, behind the uptime metric.
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_SERVICE_H_
