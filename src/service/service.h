// CompletenessService: the multi-setting decision service. Where the legacy
// CompletenessEngine serves one partially closed setting (Dm, V), the
// service hosts a registry of them — one per tenant / master-data snapshot —
// admitted via RegisterSetting (deduplicated by the stable setting
// fingerprint, refcounted, evicted by ReleaseSetting). Each registered
// setting backs a shard owning its PreparedSetting, LRU result cache, and
// counters; handle-carrying requests are routed to their shard and served
// over ONE worker pool shared by every setting, through three submission
// paths:
//
//   Decide       — one request, synchronously on the calling thread;
//   SubmitBatch  — a batch (possibly spanning settings), fanned out across
//                  the pool with dedup-aware planning: identical requests in
//                  one batch collapse to a single computation, the
//                  duplicates reporting from_cache = true with a note;
//   SubmitAsync  — fire-and-collect: returns a std::future<Decision> (or
//                  invokes a completion callback) resolved by the pool.
//
// Identical requests that are concurrently in flight — across batches and
// async submissions — coalesce too: the second occurrence waits on the
// first's slot instead of recomputing. Answers are deterministic:
// independent of worker count, scheduling, and coalescing; only the
// from_cache flags and coalescing notes may differ between runs.
#ifndef RELCOMP_SERVICE_SERVICE_H_
#define RELCOMP_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/prepared_setting.h"
#include "service/decision.h"
#include "service/lru_cache.h"

namespace relcomp {

/// Opaque ticket for a registered setting. Value-semantic and cheap; the
/// zero handle is invalid. Registering a fingerprint-identical setting
/// returns the SAME handle (with its refcount bumped), so handles are also
/// identity: two equal handles route to one shard and one cache.
struct SettingHandle {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
  friend bool operator==(SettingHandle a, SettingHandle b) {
    return a.id == b.id;
  }
  friend bool operator!=(SettingHandle a, SettingHandle b) {
    return a.id != b.id;
  }
};

/// One routed unit of service work: which setting, and what to decide.
struct ServiceRequest {
  SettingHandle setting;
  DecisionRequest request;
};

/// Service configuration. Workers are shared across all settings; the cache
/// capacity is per setting shard.
struct ServiceOptions {
  size_t num_workers = 4;       ///< shared pool; 0 = run everything inline
  size_t cache_capacity = 1024; ///< LRU entries per shard; 0 disables
  bool memoize = true;
  bool coalesce = true;         ///< dedup-aware planning + in-flight waits
};

class CompletenessService {
 public:
  explicit CompletenessService(ServiceOptions options = {});
  ~CompletenessService();
  CompletenessService(const CompletenessService&) = delete;
  CompletenessService& operator=(const CompletenessService&) = delete;

  const ServiceOptions& options() const { return options_; }

  /// Validates and prepares `setting`, or — when a live setting with the
  /// same stable fingerprint is already registered — bumps its refcount and
  /// returns its existing handle without re-preparing anything.
  Result<SettingHandle> RegisterSetting(PartiallyClosedSetting setting);

  /// Drops one registration. The shard (prepared setting, cache, counters)
  /// is evicted when the last registration is released; in-flight requests
  /// keep the shard alive until they finish. kNotFound for unknown or
  /// already fully released handles.
  Status ReleaseSetting(SettingHandle handle);

  /// Number of live (distinct) registered settings.
  size_t num_settings() const;

  /// The shard's prepared setting (a cheap shared handle).
  Result<PreparedSetting> prepared(SettingHandle handle) const;

  /// Stable memoization key of a request under `handle`'s setting (the
  /// primary digest of the dual-digest cache key).
  Result<uint64_t> FingerprintRequest(SettingHandle handle,
                                      const DecisionRequest& request) const;

  /// Decides one request synchronously on the calling thread (consulting
  /// and filling the shard cache, coalescing with in-flight identical
  /// requests). An invalid or released handle yields an error Decision, not
  /// a crash. Thread-safe.
  Decision Decide(const ServiceRequest& request);

  /// Same, without wrapping the request (no copy) — the adapter hot path.
  Decision Decide(SettingHandle handle, const DecisionRequest& request);

  /// Decides a batch; the result vector is parallel to `requests`. Requests
  /// may target different settings — each routes to its own shard — and are
  /// fanned out across the shared pool. Dedup-aware planning: identical
  /// requests (same shard, same cache key) collapse to one computation;
  /// duplicates report from_cache = true with a coalescing note. Multiple
  /// batches may be submitted concurrently. Thread-safe.
  std::vector<Decision> SubmitBatch(const std::vector<ServiceRequest>& requests);

  /// Single-setting batch without per-request handle plumbing (and without
  /// copying the requests into ServiceRequests) — the engine adapter's path.
  std::vector<Decision> SubmitBatch(SettingHandle handle,
                                    const std::vector<DecisionRequest>& requests);

  /// Async path: enqueues the request on the shared pool and returns a
  /// future for its decision. With 0 workers the request is decided inline
  /// and the future is already resolved. Thread-safe.
  std::future<Decision> SubmitAsync(ServiceRequest request);

  /// Callback flavor: `on_complete` is invoked with the decision, on a
  /// worker thread (or inline with 0 workers). Thread-safe. Submissions
  /// made from inside a callback (or any pool thread) execute inline — a
  /// worker parking on work only workers can drain would deadlock the
  /// pool — so callbacks may safely call back into the service.
  void SubmitAsync(ServiceRequest request,
                   std::function<void(Decision)> on_complete);

  /// Per-shard counters; kNotFound after release.
  Result<EngineCounters> counters(SettingHandle handle) const;

  /// Field-wise sum of every live shard's counters.
  EngineCounters TotalCounters() const;

  /// Drops the shard's memoized results (counters are preserved).
  Status ClearCache(SettingHandle handle);

 private:
  /// Dual-digest registry identity of a setting — the RequestCacheKey
  /// collision policy applied to registration: a single 64-bit fingerprint
  /// collision would silently route one tenant's requests to another
  /// tenant's shard, so dedup requires both digests to agree.
  using SettingKey = RequestCacheKey;
  using SettingKeyHash = RequestCacheKeyHash;

  /// One registered setting: prepared artifacts + cache + counters + the
  /// in-flight table used for request coalescing. Shared-ptr'd so requests
  /// already routed survive a concurrent ReleaseSetting.
  struct Shard {
    Shard(PreparedSetting prepared_setting, SettingKey key,
          size_t cache_capacity)
        : prepared(std::move(prepared_setting)),
          setting_key(key),
          cache(cache_capacity) {}

    PreparedSetting prepared;
    const SettingKey setting_key;
    uint64_t refcount = 1;  // guarded by registry_mu_

    mutable std::mutex mu;  // cache + counters + in_flight
    LruCache<RequestCacheKey, Decision, RequestCacheKeyHash> cache;
    EngineCounters counters;
    std::unordered_map<RequestCacheKey, std::shared_ptr<std::shared_future<Decision>>,
                       RequestCacheKeyHash>
        in_flight;
  };

  /// A request resolved to its shard (null when the handle is unknown).
  struct RoutedRequest {
    std::shared_ptr<Shard> shard;
    const DecisionRequest* request = nullptr;
    SettingHandle handle;
  };

  std::shared_ptr<Shard> FindShard(SettingHandle handle) const;
  static Decision UnknownHandleDecision(SettingHandle handle);

  /// Cache-through, coalescing evaluation on one shard + counter update.
  /// `precomputed` lets the batch planner hand over the cache key it
  /// already derived.
  Decision DecideOnShard(Shard& shard, const DecisionRequest& request,
                         const RequestCacheKey* precomputed = nullptr);

  /// Runs `jobs` to completion: inline with no workers, else enqueued on
  /// the shared pool and awaited.
  void RunJobs(std::vector<std::function<void()>> jobs);

  /// The shared planning/fan-out core of both SubmitBatch overloads.
  std::vector<Decision> SubmitBatchImpl(const std::vector<RoutedRequest>& routed);

  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  const ServiceOptions options_;

  // Registry: handle id → shard, plus the fingerprint dedup index.
  mutable std::mutex registry_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Shard>> shards_;
  std::unordered_map<SettingKey, uint64_t, SettingKeyHash>
      handle_by_fingerprint_;
  uint64_t next_handle_id_ = 1;

  // Shared worker pool. Workers drain the queue before honoring shutdown,
  // so async submissions accepted before destruction still resolve.
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool shutdown_ = false;
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_SERVICE_H_
