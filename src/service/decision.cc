#include "service/decision.h"

#include <algorithm>

#include "core/fingerprint.h"
#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"

namespace relcomp {

namespace {

/// kind ↔ name, indexed by the enum's underlying value. Extending
/// ProblemKind means adding one row here and one case to EvaluateRequest.
constexpr const char* kProblemKindNames[] = {
    "rcdp-strong", "rcdp-weak",   "rcdp-viable", "rcqp-strong",
    "rcqp-weak",   "minp-strong", "minp-viable", "minp-weak",
};
constexpr size_t kNumProblemKinds =
    sizeof(kProblemKindNames) / sizeof(kProblemKindNames[0]);

}  // namespace

const std::vector<ProblemKind>& AllProblemKinds() {
  static const std::vector<ProblemKind> kAll = [] {
    std::vector<ProblemKind> all;
    all.reserve(kNumProblemKinds);
    for (size_t i = 0; i < kNumProblemKinds; ++i) {
      all.push_back(static_cast<ProblemKind>(i));
    }
    return all;
  }();
  return kAll;
}

const char* ProblemKindName(ProblemKind kind) {
  const size_t index = static_cast<size_t>(kind);
  if (index < kNumProblemKinds) return kProblemKindNames[index];
  return "unknown";
}

Result<ProblemKind> ParseProblemKind(const std::string& name) {
  for (ProblemKind kind : AllProblemKinds()) {
    if (name == ProblemKindName(kind)) return kind;
  }
  std::string valid;
  for (ProblemKind kind : AllProblemKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += ProblemKindName(kind);
  }
  return Status::InvalidArgument("unknown problem kind '" + name +
                                 "' (valid kinds: " + valid + ")");
}

std::string Decision::ToString() const {
  // latency_micros stays out on purpose: ToString is compared across
  // submission modes (batch vs stream vs async) in tests and tooling, and
  // latency legitimately differs per delivery. The CLI prints it separately.
  if (!status.ok()) return "error[" + status.ToString() + "]";
  std::string out = answer ? "YES" : "no";
  if (from_cache) out += " (cached)";
  if (!note.empty()) out += " [" + note + "]";
  return out;
}

EngineCounters& EngineCounters::operator+=(const EngineCounters& other) {
  requests += other.requests;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  coalesced += other.coalesced;
  errors += other.errors;
  rejected += other.rejected;
  expired += other.expired;
  cancelled += other.cancelled;
  shed_running += other.shed_running;
  aborted_steps += other.aborted_steps;
  waited += other.waited;
  wait_micros += other.wait_micros;
  max_wait_micros = std::max(max_wait_micros, other.max_wait_micros);
  evictions += other.evictions;
  admission_rejects += other.admission_rejects;
  cache_bytes += other.cache_bytes;
  search += other.search;
  return *this;
}

std::string EngineCounters::ToString(bool verbose) const {
  if (verbose) {
    // Every raw field, declaration order, zeros included: two verbose dumps
    // diff line-for-line no matter which buckets moved between them.
    return "requests=" + std::to_string(requests) +
           " cache_hits=" + std::to_string(cache_hits) +
           " cache_misses=" + std::to_string(cache_misses) +
           " coalesced=" + std::to_string(coalesced) +
           " errors=" + std::to_string(errors) +
           " rejected=" + std::to_string(rejected) +
           " expired=" + std::to_string(expired) +
           " cancelled=" + std::to_string(cancelled) +
           " shed_running=" + std::to_string(shed_running) +
           " aborted_steps=" + std::to_string(aborted_steps) +
           " waited=" + std::to_string(waited) +
           " wait_micros=" + std::to_string(wait_micros) +
           " max_wait_micros=" + std::to_string(max_wait_micros) +
           " evictions=" + std::to_string(evictions) +
           " admission_rejects=" + std::to_string(admission_rejects) +
           " cache_bytes=" + std::to_string(cache_bytes) + " | " +
           search.ToString();
  }
  std::string out = "requests=" + std::to_string(requests) +
                    " cache_hits=" + std::to_string(cache_hits) +
                    " cache_misses=" + std::to_string(cache_misses) +
                    " coalesced=" + std::to_string(coalesced) +
                    " errors=" + std::to_string(errors);
  if (rejected != 0) out += " rejected=" + std::to_string(rejected);
  if (expired != 0) out += " expired=" + std::to_string(expired);
  if (cancelled != 0) out += " cancelled=" + std::to_string(cancelled);
  if (shed_running != 0) {
    out += " shed_running=" + std::to_string(shed_running) +
           " aborted_steps=" + std::to_string(aborted_steps);
  }
  if (waited != 0) {
    out += " avg_wait_us=" + std::to_string(wait_micros / waited) +
           " max_wait_us=" + std::to_string(max_wait_micros);
  }
  if (evictions != 0) out += " evictions=" + std::to_string(evictions);
  if (admission_rejects != 0) {
    out += " admission_rejects=" + std::to_string(admission_rejects);
  }
  if (cache_bytes != 0) out += " cache_bytes=" + std::to_string(cache_bytes);
  return out + " | " + search.ToString();
}

Decision EvaluateRequest(const DecisionRequest& request,
                         const PreparedSetting& prepared,
                         const SearchOptions* options_override) {
  const SearchOptions& options =
      options_override != nullptr ? *options_override : request.options;
  Decision decision;
  CompletenessWitness witness;
  CompletenessWitness* wp = request.want_witness ? &witness : nullptr;
  // Strong/weak RCDP fill `witness` on a "no"; the affirmative kinds below
  // set this flag themselves when they have a witness to attach.
  bool attach_on_no = false;
  bool attach = false;
  Result<bool> answer = true;
  switch (request.kind) {
    case ProblemKind::kRcdpStrong:
      answer = RcdpStrong(request.query, request.cinstance, prepared,
                          options, &decision.stats, wp);
      attach_on_no = true;
      break;
    case ProblemKind::kRcdpWeak:
      answer = RcdpWeak(request.query, request.cinstance, prepared,
                        options, &decision.stats, wp);
      attach_on_no = true;
      break;
    case ProblemKind::kRcdpViable: {
      Instance world;
      answer = RcdpViable(request.query, request.cinstance, prepared,
                          options, &decision.stats,
                          wp != nullptr ? &world : nullptr);
      if (wp != nullptr && answer.ok() && *answer) {
        witness.world = std::move(world);
        witness.note = "complete world of Mod(T, Dm, V) witnessing viability";
        attach = true;
      }
      break;
    }
    case ProblemKind::kRcqpStrong: {
      if (prepared.all_inds()) {
        // Corollary 7.2: all CCs are INDs — decide in PTIME (no witness
        // instance is materialized on this path).
        answer = RcqpStrongInd(request.query, prepared, options,
                               &decision.stats);
        break;
      }
      Result<RcqpSearchResult> found =
          RcqpStrongBounded(request.query, prepared, request.rcqp_max_tuples,
                            options, &decision.stats);
      if (!found.ok()) {
        answer = found.status();
        break;
      }
      answer = found->found;
      if (found->found && wp != nullptr) {
        witness.world = std::move(found->witness);
        witness.note = "complete instance witnessing RCQ(Q, Dm, V) ≠ ∅";
        attach = true;
      }
      if (!found->found && found->bound_exhausted) {
        decision.note = "no witness within " +
                        std::to_string(request.rcqp_max_tuples) +
                        " tuples (conclusive only if the NEXPTIME witness "
                        "bound fits)";
      }
      break;
    }
    case ProblemKind::kRcqpWeak:
      answer = RcqpWeak(request.query);
      break;
    case ProblemKind::kMinpStrong:
      answer = MinpStrong(request.query, request.cinstance, prepared,
                          options, &decision.stats);
      break;
    case ProblemKind::kMinpViable:
      answer = MinpViable(request.query, request.cinstance, prepared,
                          options, &decision.stats);
      break;
    case ProblemKind::kMinpWeak:
      // Lemma 5.7 dichotomy: CQ has a coDP fast path; the general subset
      // removal handles UCQ/∃FO⁺/FP.
      if (request.query.language() == QueryLanguage::kCQ) {
        answer = MinpWeakCq(request.query, request.cinstance, prepared,
                            options, &decision.stats);
      } else {
        answer = MinpWeak(request.query, request.cinstance, prepared,
                          options, &decision.stats);
      }
      break;
  }
  if (!answer.ok()) {
    decision.status = answer.status();
    return decision;
  }
  decision.answer = *answer;
  if (wp != nullptr && ((attach_on_no && !decision.answer) || attach)) {
    decision.witness =
        std::make_shared<const CompletenessWitness>(std::move(witness));
  }
  return decision;
}

Decision DecideCold(const DecisionRequest& request,
                    const PartiallyClosedSetting& setting) {
  return EvaluateRequest(request, PreparedSetting::Borrow(setting));
}

RequestCacheKey RequestKeyFor(const PreparedSetting& prepared,
                              const DecisionRequest& request) {
  // Serialize the request's canonical material once; both digests then mix
  // the same handful of words from independently-seeded states.
  const char* kind = ProblemKindName(request.kind);
  const uint64_t query_print = FingerprintQuery(request.query);
  // RCQP quantifies over all instances; leaving T out of its key lets
  // audits of different databases share one RCQP verdict per query.
  const bool keyed_on_instance = request.kind != ProblemKind::kRcqpStrong &&
                                 request.kind != ProblemKind::kRcqpWeak;
  const uint64_t cinstance_print =
      keyed_on_instance ? FingerprintCInstance(request.cinstance) : 0;

  auto digest = [&](StableHasher h) {
    h.Mix(prepared.fingerprint());
    h.Mix(kind);
    h.Mix(query_print);
    if (keyed_on_instance) h.Mix(cinstance_print);
    h.Mix(request.options.max_steps);
    h.Mix(static_cast<uint64_t>(request.want_witness ? 1 : 0));
    if (request.kind == ProblemKind::kRcqpStrong) {
      h.Mix(static_cast<uint64_t>(request.rcqp_max_tuples));
    }
    return h.digest();
  };
  RequestCacheKey key;
  key.primary = digest(StableHasher());
  key.check = digest(StableHasher(/*seed=*/0x5ca1ab1e5eed5ULL));
  return key;
}

}  // namespace relcomp
