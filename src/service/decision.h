// The decision vocabulary shared by the multi-setting CompletenessService
// and the legacy single-setting CompletenessEngine adapter: problem kinds,
// decision requests / answers (including counterexample witnesses), the
// aggregate counters, the stable request cache keys, and the ONE kind→decider
// dispatch table (EvaluateRequest) that every entry point — service shards,
// the engine adapter, and the cold per-call baseline — routes through.
#ifndef RELCOMP_SERVICE_DECISION_H_
#define RELCOMP_SERVICE_DECISION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/prepared_setting.h"
#include "core/types.h"

namespace relcomp {

/// The decision problems the service serves (problem × model).
enum class ProblemKind {
  kRcdpStrong,   ///< is T strongly complete for Q?           (Thm 4.1)
  kRcdpWeak,     ///< is T weakly complete for Q?             (Thm 5.1)
  kRcdpViable,   ///< is some world of T complete for Q?      (Thm 6.1)
  kRcqpStrong,   ///< does any complete instance exist?       (Thm 4.5/7.2)
  kRcqpWeak,     ///< ... in the weak model (O(1), Thm 5.4)
  kMinpStrong,   ///< is T minimally complete, all worlds?    (Thm 4.8)
  kMinpViable,   ///< ... in some world                       (Cor 6.3)
  kMinpWeak,     ///< ... in the weak model                   (Thm 5.6/5.7)
};

/// All problem kinds, in declaration order. The one list that drives
/// ProblemKindName, ParseProblemKind, and the CLI help text.
const std::vector<ProblemKind>& AllProblemKinds();

/// Human-readable kind name ("rcdp-strong", ...), matching the CLI flags.
const char* ProblemKindName(ProblemKind kind);

/// Parses a ProblemKindName string; kInvalidArgument (listing every valid
/// name) on unknown names.
Result<ProblemKind> ParseProblemKind(const std::string& name);

/// One unit of decision work: problem kind × query × audited c-instance ×
/// budget. RCQP kinds ignore `cinstance` (the problem quantifies over all
/// instances).
struct DecisionRequest {
  ProblemKind kind = ProblemKind::kRcdpStrong;
  Query query;
  CInstance cinstance;
  SearchOptions options;
  /// Witness-size bound for the non-IND RCQP search (Theorem 4.5 leaves the
  /// NEXPTIME bound exponential; callers pick a practical cutoff).
  size_t rcqp_max_tuples = 3;
  /// Ask the decider for a CompletenessWitness (Decision::witness): the
  /// incomplete world / missing tuple for RCDP strong/weak "no", the
  /// complete world for RCDP viable "YES", the witnessing instance for the
  /// bounded RCQP "YES". MINP and weak-model RCQP produce no witness. Part
  /// of the memoization key — witness-bearing runs are cached separately.
  bool want_witness = false;
};

/// The service's answer to one request.
struct Decision {
  Status status;           ///< decider outcome; `answer` meaningful iff ok()
  bool answer = false;     ///< the yes/no decision
  bool from_cache = false; ///< served from the cache or coalesced (see note)
  std::string note;        ///< qualifiers (RCQP bound exhausted, coalescing)
  SearchStats stats;       ///< work done; the original run's stats on hits
  /// Counterexample / witness, when `want_witness` was set and the decider
  /// produced one. Shared so cached and coalesced copies stay cheap.
  std::shared_ptr<const CompletenessWitness> witness;
  /// End-to-end latency, submit → delivery, stamped by the service at every
  /// delivery: a cache hit or coalesced waiter reports ITS OWN wait, not
  /// the original evaluation's (and a restored snapshot entry is re-stamped
  /// at serve time — the field is never persisted). 0 when the decision
  /// never went through the service (DecideCold, hand-built decisions).
  uint64_t latency_micros = 0;
  /// Per-loop search attribution for the evaluation that produced this
  /// decision (null on cache hits, coalesced copies, sheds, and decisions
  /// that never went through a service evaluation). Shared const: the
  /// profile is sealed (Finish) before it is attached.
  std::shared_ptr<const SearchProfile> profile;

  std::string ToString() const;
};

/// Aggregate counters, per setting shard (and summed service-wide).
/// `cache_misses` counts real decider evaluations (even with memoization
/// off); `cache_hits` counts requests served without recomputation — LRU
/// hits plus coalesced duplicates; `coalesced` is the subset of hits that
/// piggy-backed on an identical in-flight or same-batch request. The
/// scheduler outcomes partition the remainder: `rejected` (admission
/// control refused the request), `expired` (deadline passed — while queued
/// OR mid-evaluation at a cooperative checkpoint), `cancelled` (every
/// waiter cancelled — before evaluation OR while it ran). Every request
/// lands in exactly one bucket:
///   requests == cache_hits + cache_misses + rejected + expired + cancelled.
/// `shed_running` is the subset of expired + cancelled whose evaluation had
/// already started when it aborted, and `aborted_steps` the search work
/// those aborted runs burned before the checkpoint stopped them — together
/// they make mid-run shedding visible separately from queue-time shedding.
/// Wait-time counters cover scheduled tasks only (inline and coalesced
/// requests never sit in the queue): `wait_micros` sums queue residency
/// over `waited` tasks; `max_wait_micros` is the worst single wait.
///
/// The cache-lifecycle counters sit OUTSIDE the request partition — they
/// describe what happened to cache ENTRIES, not requests: `evictions`
/// counts entries removed by capacity or shared-budget pressure (possibly
/// triggered by ANOTHER shard's insert), `admission_rejects` counts
/// computed decisions the frequency-sketch filter or the byte budget
/// refused to cache (the request itself was still served, and counted as
/// a miss), and `cache_bytes` is a gauge: the shard cache's resident
/// bytes at read time (summed across shards by TotalCounters).
struct EngineCounters {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t coalesced = 0;
  uint64_t errors = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t cancelled = 0;
  uint64_t shed_running = 0;   ///< evaluations aborted after they started
  uint64_t aborted_steps = 0;  ///< search steps spent inside aborted runs
  uint64_t waited = 0;
  uint64_t wait_micros = 0;
  uint64_t max_wait_micros = 0;  ///< aggregated with max, not sum
  uint64_t evictions = 0;          ///< cache entries evicted (any pressure)
  uint64_t admission_rejects = 0;  ///< decisions the cache refused to admit
  uint64_t cache_bytes = 0;        ///< resident cache bytes (gauge)
  SearchStats search;  ///< per-request stats merged via SearchStats::Merge

  EngineCounters& operator+=(const EngineCounters& other);
  /// Compact mode (default) omits zero-valued optional fields and prints
  /// derived wait figures; verbose mode prints EVERY raw field, zeros
  /// included, so before/after counter diffs align column-for-column.
  std::string ToString(bool verbose = false) const;
};

/// THE kind→decider dispatch table: decides one request against a prepared
/// setting, with witness plumbing. No cache, no counters — service shards,
/// the engine adapter, and DecideCold all call this one function, so a new
/// ProblemKind is wired up in exactly one place. `options_override`, when
/// given, replaces the request's own SearchOptions for this evaluation —
/// the service uses it to inject per-submission deadlines, the coalesced
/// group's joint cancellation token, and per-shard step-budget defaults
/// without copying the (heavy) request.
Decision EvaluateRequest(const DecisionRequest& request,
                         const PreparedSetting& prepared,
                         const SearchOptions* options_override = nullptr);

/// Decides one request by per-call preparation of the raw setting — the
/// cold baseline the CLI's --compare mode and the batch benchmark measure
/// the service against.
Decision DecideCold(const DecisionRequest& request,
                    const PartiallyClosedSetting& setting);

/// Two independently-seeded digests of one request under one setting: a
/// 64-bit fingerprint alone would hand a colliding request another
/// request's verdict.
struct RequestCacheKey {
  uint64_t primary = 0;
  uint64_t check = 0;
  friend bool operator==(const RequestCacheKey& a, const RequestCacheKey& b) {
    return a.primary == b.primary && a.check == b.check;
  }
};
struct RequestCacheKeyHash {
  size_t operator()(const RequestCacheKey& k) const {
    return static_cast<size_t>(k.primary ^ (k.check * 0x9e3779b97f4a7c15ULL));
  }
};

/// Stable memoization / coalescing key of `request` under `prepared`.
/// RCQP kinds leave the audited instance out of the key (the problem
/// quantifies over all instances), so audits of different databases share
/// one RCQP verdict per query.
RequestCacheKey RequestKeyFor(const PreparedSetting& prepared,
                              const DecisionRequest& request);

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_DECISION_H_
