#include "sched/queue.h"

#include <algorithm>
#include <utility>

namespace relcomp {
namespace sched {

FairQueue::FairQueue(SchedPolicy policy, OverloadPolicy overload,
                     TenantOptions default_tenant)
    : policy_(policy),
      overload_(overload),
      default_tenant_(default_tenant) {}

void FairQueue::RegisterTenant(uint64_t tenant, TenantOptions options) {
  MutexLock lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (!inserted) {
    // First registration wins; a re-registration only revives a tenant
    // that was released (or implicitly created) but not yet drained.
    it->second.released = false;
    return;
  }
  InitTenant(it->second, options);
  it->second.released = false;  // explicit registrations live until released
}

void FairQueue::ReleaseTenant(uint64_t tenant) {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.released = true;
  GcTenant(tenant);
}

void FairQueue::InitTenant(Tenant& tenant, TenantOptions options) {
  tenant.options = options;
  tenant.stride = kStrideScale / std::max<uint32_t>(1, options.weight);
  tenant.pass = global_pass_;
  if (tenant.options.rate_per_sec > 0) {
    if (tenant.options.burst <= 0) {
      tenant.options.burst = std::max(1.0, tenant.options.rate_per_sec);
    }
    tenant.tokens = tenant.options.burst;  // start full: first burst is free
    tenant.refilled = Clock::now();
  }
}

FairQueue::Tenant& FairQueue::TenantFor(uint64_t id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  // Implicit registration. Tenant 0 (system work: batch fan-out plumbing)
  // is never limited; real tenants inherit the queue-wide defaults.
  // Implicit entries are born `released`, i.e. garbage-collected as soon
  // as they drain: a straggler push racing ReleaseSetting (or untenanted
  // system work) must not leak a permanent tenants_ entry.
  Tenant& tenant = tenants_[id];
  InitTenant(tenant, id == 0 ? TenantOptions{} : default_tenant_);
  tenant.released = true;
  return tenant;
}

bool FairQueue::HasRoom(const Tenant& tenant) const {
  return tenant.options.max_queue == 0 ||
         tenant.queued < tenant.options.max_queue;
}

std::chrono::nanoseconds FairQueue::TakeToken(Tenant& tenant, TimePoint now) {
  if (tenant.options.rate_per_sec <= 0) return std::chrono::nanoseconds(0);
  const double elapsed =
      std::chrono::duration<double>(now - tenant.refilled).count();
  tenant.tokens = std::min(tenant.options.burst,
                           tenant.tokens + elapsed * tenant.options.rate_per_sec);
  tenant.refilled = now;
  if (tenant.tokens >= 1.0) {
    tenant.tokens -= 1.0;
    return std::chrono::nanoseconds(0);
  }
  const double missing = 1.0 - tenant.tokens;
  return std::chrono::nanoseconds(static_cast<int64_t>(
      missing / tenant.options.rate_per_sec * 1e9) + 1);
}

bool FairQueue::Push(Task&& task) {
  MutexLock lock(mu_);
  TimePoint blocked_since{};
  bool blocked = false;
  for (;;) {
    if (shutdown_) return false;
    Tenant& tenant = TenantFor(task.tenant);
    if (HasRoom(tenant)) {
      const std::chrono::nanoseconds token_wait =
          TakeToken(tenant, Clock::now());
      if (token_wait.count() == 0) {
        // Admitted.
        task.enqueued = Clock::now();
        if (blocked && token_wait_hist_ != nullptr) {
          token_wait_hist_->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  task.enqueued - blocked_since)
                  .count()));
        }
        const size_t lane = static_cast<size_t>(task.priority);
        const bool was_idle = tenant.queued == 0;
        ++tenant.queued;
        ++depth_;
        if (policy_ == SchedPolicy::kFifo) {
          fifo_[lane].push_back(std::move(task));
        } else {
          if (was_idle) {
            // A tenant returning from idle joins at the current virtual
            // time instead of spending credit hoarded while away, and
            // enters the pass-ordered dispatch index.
            tenant.pass = std::max(tenant.pass, global_pass_);
            ready_.emplace(tenant.pass, task.tenant);
          }
          tenant.by_priority[lane].push_back(std::move(task));
        }
        work_cv_.NotifyOne();
        return true;
      }
      if (overload_ == OverloadPolicy::kReject) return false;
      // kBlock: rate-limited — sleep until the bucket refills (or space
      // frees up, which also re-checks the bucket).
      if (!blocked) {
        blocked = true;
        blocked_since = Clock::now();
      }
      space_cv_.WaitFor(mu_, token_wait);
      continue;
    }
    if (overload_ == OverloadPolicy::kReject) return false;
    if (!blocked) {
      blocked = true;
      blocked_since = Clock::now();
    }
    // Quota wait, as an explicit loop (the static analysis does not see
    // into predicate lambdas). Re-fetch the tenant each round: blocking
    // can outlive a released tenant's tenants_ entry.
    for (;;) {
      if (shutdown_) break;
      const Tenant& t = TenantFor(task.tenant);
      if (t.options.max_queue == 0 || t.queued < t.options.max_queue) break;
      space_cv_.Wait(mu_);
    }
  }
}

bool FairQueue::Pop(Task* task, TaskOutcome* outcome) {
  MutexLock lock(mu_);
  while (!shutdown_ && depth_ == 0) work_cv_.Wait(mu_);
  if (depth_ == 0) return false;  // shutdown with a drained queue

  if (policy_ == SchedPolicy::kFifo) {
    for (auto& lane : fifo_) {
      if (lane.empty()) continue;
      *task = std::move(lane.front());
      lane.pop_front();
      break;
    }
    auto it = tenants_.find(task->tenant);
    if (it != tenants_.end()) {
      --it->second.queued;
      GcTenant(task->tenant);
    }
  } else {
    // The dispatch index head is the backlogged tenant with the smallest
    // pass (ties: lowest id); depth_ > 0 guarantees it exists.
    const uint64_t id = ready_.begin()->second;
    ready_.erase(ready_.begin());
    Tenant& tenant = tenants_.at(id);
    for (auto& lane : tenant.by_priority) {
      if (lane.empty()) continue;
      *task = std::move(lane.front());
      lane.pop_front();
      break;
    }
    global_pass_ = tenant.pass;
    tenant.pass += tenant.stride;
    --tenant.queued;
    if (tenant.queued > 0) {
      ready_.emplace(tenant.pass, id);  // re-key at the advanced pass
    } else {
      GcTenant(id);
    }
  }
  --depth_;
  // NotifyAll, not NotifyOne: space_cv_ waiters have heterogeneous
  // predicates (per-tenant quota vs. token refill), so a single wakeup
  // could land on a producer whose own condition is still false while an
  // admissible one keeps sleeping.
  space_cv_.NotifyAll();

  const TimePoint now = Clock::now();
  task->wait = std::chrono::duration_cast<std::chrono::microseconds>(
      now - task->enqueued);
  if (queue_wait_hist_ != nullptr) {
    queue_wait_hist_->Record(static_cast<uint64_t>(task->wait.count()));
  }
  *outcome = task->deadline < now ? TaskOutcome::kExpired : TaskOutcome::kRun;
  return true;
}

void FairQueue::AttachMetrics(obs::Histogram* queue_wait,
                              obs::Histogram* token_wait) {
  MutexLock lock(mu_);
  queue_wait_hist_ = queue_wait;
  token_wait_hist_ = token_wait;
}

void FairQueue::GcTenant(uint64_t id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end() && it->second.released && it->second.queued == 0) {
    tenants_.erase(it);
  }
}

void FairQueue::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  space_cv_.NotifyAll();
}

size_t FairQueue::depth() const {
  MutexLock lock(mu_);
  return depth_;
}

size_t FairQueue::TenantDepth(uint64_t tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queued;
}

}  // namespace sched
}  // namespace relcomp
