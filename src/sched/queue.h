// FairQueue: the policy-driven multi-tenant work queue behind the service's
// shared worker pool. It replaces the raw std::deque + condition_variable
// with a first-class subsystem:
//
//   ordering    — kFifo (legacy strict arrival order) or kFairShare
//                 (stride scheduling: worker time proportional to tenant
//                 weights, so a cheap tenant interleaves with — instead of
//                 queueing behind — an expensive tenant's backlog);
//   priorities  — three classes per tenant; urgent work overtakes
//                 background work of the same tenant;
//   admission   — per-tenant bounded in-queue quota and token-bucket rate
//                 limit, with an explicit overload decision (block the
//                 producer vs. reject the push);
//   deadlines   — best-effort: a task whose deadline passed while queued is
//                 handed back with TaskOutcome::kExpired so the worker can
//                 shed it without evaluation.
//
// The queue schedules opaque closures tagged with a tenant id; it never
// runs user code under its own lock (expiry is decided here, but the task's
// callback — including shedding — always executes on the popping thread).
#ifndef RELCOMP_SCHED_QUEUE_H_
#define RELCOMP_SCHED_QUEUE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "obs/histogram.h"
#include "sched/policy.h"
#include "util/mutex.h"

namespace relcomp {
namespace sched {

/// How a popped task should be completed by the worker.
enum class TaskOutcome {
  kRun,      ///< execute normally
  kExpired,  ///< deadline passed while queued: shed without evaluating
  kRejected, ///< never admitted (assigned by the caller on Push failure;
             ///< Pop itself never returns this)
};

/// One schedulable unit. `fn` is invoked exactly once, with the outcome and
/// the time the task sat queued (negative when it never touched the queue —
/// run inline or rejected at admission).
struct Task {
  uint64_t tenant = 0;  ///< 0 = untenanted system work (never limited)
  Priority priority = Priority::kNormal;
  TimePoint deadline = kNoDeadline;
  std::function<void(TaskOutcome, std::chrono::microseconds)> fn;

  // Filled by the queue.
  TimePoint enqueued{};                      ///< set by Push
  std::chrono::microseconds wait{0};         ///< set by Pop
};

/// The `wait` value passed to Task::fn for work that never sat in the queue.
constexpr std::chrono::microseconds kNotQueued{-1};

class FairQueue {
 public:
  FairQueue(SchedPolicy policy, OverloadPolicy overload,
            TenantOptions default_tenant = {});
  ~FairQueue() = default;
  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Declares a tenant with explicit options. Idempotent per id: the first
  /// registration's options win (matching the service's setting dedup,
  /// where the first registration defines the shard). Pushing to an
  /// undeclared tenant implicitly registers it with the default options.
  void RegisterTenant(uint64_t tenant, TenantOptions options) EXCLUDES(mu_);

  /// Marks a tenant released; its state is garbage-collected once its
  /// queue drains. Queued tasks still run (they hold their own resources).
  void ReleaseTenant(uint64_t tenant) EXCLUDES(mu_);

  /// Admits a task. Returns false when the task was NOT admitted: the
  /// tenant is over quota / rate under OverloadPolicy::kReject, or the
  /// queue shut down (including while blocked under kBlock). The task is
  /// moved-from only on success, so on failure the caller still owns it
  /// and must complete it (typically task.fn(kRejected, kNotQueued)).
  bool Push(Task&& task) EXCLUDES(mu_);

  /// Blocks for the next task per policy. Returns false only on shutdown
  /// with an empty queue — every admitted task is handed out exactly once
  /// before workers are told to exit, preserving drain-before-shutdown.
  /// `*outcome` is kRun, or kExpired when the task's deadline has passed.
  bool Pop(Task* task, TaskOutcome* outcome) EXCLUDES(mu_);

  /// Wakes blocked producers and consumers; Pop drains remaining tasks
  /// then returns false; Push refuses new work.
  void Shutdown() EXCLUDES(mu_);

  size_t depth() const EXCLUDES(mu_);
  size_t TenantDepth(uint64_t tenant) const EXCLUDES(mu_);

  /// Points the queue at externally owned histograms (microsecond values):
  /// `queue_wait` records every popped task's in-queue residency;
  /// `token_wait` records the time a kBlock producer actually spent blocked
  /// on the rate limiter/quota before admission (recorded only when
  /// nonzero, so an uncontended queue stays silent). Either may be null.
  /// The histograms must outlive the queue; call before workers start.
  void AttachMetrics(obs::Histogram* queue_wait, obs::Histogram* token_wait)
      EXCLUDES(mu_);

 private:
  /// Stride scheduling granularity. Pass advances by kStrideScale/weight
  /// per dispatched task; a power of two keeps the division exact for
  /// power-of-two weights (the common 1:2:4 configurations).
  static constexpr uint64_t kStrideScale = 1 << 20;

  struct Tenant {
    TenantOptions options;
    uint64_t stride = kStrideScale;
    uint64_t pass = 0;       ///< virtual time consumed (kFairShare)
    size_t queued = 0;
    bool released = false;
    std::array<std::deque<Task>, kNumPriorities> by_priority;
    // Token bucket (rate_per_sec > 0 only).
    double tokens = 0;
    TimePoint refilled{};
  };

  void InitTenant(Tenant& tenant, TenantOptions options) REQUIRES(mu_);
  Tenant& TenantFor(uint64_t id) REQUIRES(mu_);
  /// Refills and tries to take one token; returns the wait until a token
  /// is available (zero when taken).
  std::chrono::nanoseconds TakeToken(Tenant& tenant, TimePoint now)
      REQUIRES(mu_);
  /// Whether `tenant` can admit one more task right now.
  bool HasRoom(const Tenant& tenant) const REQUIRES(mu_);
  void GcTenant(uint64_t id) REQUIRES(mu_);

  const SchedPolicy policy_;
  const OverloadPolicy overload_;
  const TenantOptions default_tenant_;

  mutable Mutex mu_{LockRank::kSchedQueue, "FairQueue::mu_"};
  CondVar work_cv_;   ///< waits in Pop
  CondVar space_cv_;  ///< waits in Push (kBlock overload)
  /// Ordered: deterministic tie-break.
  std::map<uint64_t, Tenant> tenants_ GUARDED_BY(mu_);
  /// kFairShare dispatch index: the backlogged tenants ordered by
  /// (pass, id). The head is the stride scheduler's pick in O(log n) —
  /// entries move only when a tenant's pass advances (one erase + insert
  /// per dispatch) or its backlog empties, so thousands of tenants cost a
  /// tree walk instead of the old linear min-pass scan. The id in the key
  /// keeps ties deterministic (lowest tenant id wins, as before).
  std::set<std::pair<uint64_t, uint64_t>> ready_ GUARDED_BY(mu_);
  /// kFifo dispatch order across all tenants, one lane per priority class.
  std::array<std::deque<Task>, kNumPriorities> fifo_ GUARDED_BY(mu_);
  /// Pass of the last dispatched tenant.
  uint64_t global_pass_ GUARDED_BY(mu_) = 0;
  size_t depth_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  obs::Histogram* queue_wait_hist_ GUARDED_BY(mu_) = nullptr;  ///< not owned
  obs::Histogram* token_wait_hist_ GUARDED_BY(mu_) = nullptr;  ///< not owned
};

}  // namespace sched
}  // namespace relcomp

#endif  // RELCOMP_SCHED_QUEUE_H_
