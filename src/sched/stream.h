// A small bounded multi-producer single-consumer stream, the delivery
// channel of the service's streaming submission path. Workers Publish()
// items as decisions complete; the consumer pulls them with Next()
// (iterator style) or drains them into a callback. A bounded capacity gives
// backpressure: producers block once the consumer falls `capacity` items
// behind, so a very large batch never materializes its whole result set.
//
// Generic on the item type so the sched/ layer stays below service/ (the
// service instantiates it with indexed Decisions).
#ifndef RELCOMP_SCHED_STREAM_H_
#define RELCOMP_SCHED_STREAM_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "util/mutex.h"

namespace relcomp {
namespace sched {

template <typename T>
class Stream {
 public:
  /// capacity 0 = unbounded (no backpressure). Inline submission (a
  /// service with zero workers, or a re-entrant submission on a worker
  /// thread) publishes the whole result set before the consumer runs, so
  /// it ignores the bound rather than deadlocking against its own caller.
  explicit Stream(size_t capacity = 0) : capacity_(capacity) {}
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Producer side: enqueues an item, blocking while the stream is at
  /// capacity (unless `ignore_bound`). Items published after Close() are
  /// dropped — the consumer already walked away.
  void Publish(T item, bool ignore_bound = false) {
    // Notifications stay under the lock: a consumer that saw the final
    // item may destroy the stream the moment it can reacquire the mutex,
    // so the cv must not be touched after the unlock.
    MutexLock lock(mu_);
    if (!ignore_bound && capacity_ > 0) {
      while (!closed_ && items_.size() >= capacity_) space_cv_.Wait(mu_);
    }
    if (closed_) return;
    items_.push_back(std::move(item));
    items_cv_.NotifyOne();
  }

  /// Producer side: no more items will be published. Idempotent.
  void Finish() {
    MutexLock lock(mu_);
    finished_ = true;
    items_cv_.NotifyAll();
  }

  /// Consumer side: blocks for the next item. Returns false once the
  /// stream is finished and drained (or closed).
  bool Next(T* out) {
    MutexLock lock(mu_);
    while (!closed_ && !finished_ && items_.empty()) items_cv_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    space_cv_.NotifyOne();
    return true;
  }

  /// Consumer side: drains every remaining item into `sink`, blocking
  /// until the stream finishes.
  template <typename Sink>
  void Drain(Sink&& sink) {
    T item;
    while (Next(&item)) sink(std::move(item));
  }

  /// Consumer side: abandon the stream; pending and future publishes are
  /// discarded and producers unblock.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    items_.clear();
    items_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }

  /// Consumer side: blocks until the producer side has called Finish() —
  /// the point after which no producer touches this stream again. A
  /// consumer that abandoned the stream with Close() must not destroy it
  /// before this returns (Close only unblocks producers; stragglers may
  /// still be publishing into the void), unless it otherwise knows every
  /// producer is gone — e.g. the owning service was already destroyed,
  /// draining its queue.
  void WaitProducersFinished() {
    MutexLock lock(mu_);
    while (!finished_) items_cv_.Wait(mu_);
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  Mutex mu_{LockRank::kSchedStream, "Stream::mu_"};
  CondVar items_cv_;
  CondVar space_cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool finished_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace sched
}  // namespace relcomp

#endif  // RELCOMP_SCHED_STREAM_H_
