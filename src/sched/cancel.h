// Cooperative cancellation for scheduled work. A CancelSource owns the
// cancelled bit; CancelTokens are cheap shared observers handed to
// submissions. Cancellation is a request, not an interrupt: the scheduler
// and the service check tokens at evaluation boundaries (admission, queue
// pop, publication), and the core search loops poll them at amortized
// checkpoints (SearchOptions::cancel), so a decider that has already
// started aborts at the next checkpoint instead of running to completion.
//
// Coalescing interacts through polling: a coalesced flight group is shed
// (queued) or aborted (running) only when EVERY member's token is
// cancelled — members without a token count as permanently interested.
// CancelGroup packages that rule as a single joint token the running
// evaluation can poll, with membership that may still grow while the
// computation runs.
#ifndef RELCOMP_SCHED_CANCEL_H_
#define RELCOMP_SCHED_CANCEL_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace relcomp {
namespace sched {

class CancelSource;
class CancelGroup;

/// Observer half: copyable, cheap, thread-safe. A default-constructed token
/// is "invalid" — it belongs to no source and never reports cancellation,
/// so plumbing that doesn't care about cancellation passes tokens around
/// for free.
class CancelToken {
 public:
  CancelToken() = default;

  /// Whether this token is connected to a source at all.
  bool valid() const { return state_ != nullptr; }

  /// Whether the owning source (or joint group) has requested cancellation.
  /// Invalid tokens are never cancelled.
  bool cancelled() const { return state_ != nullptr && state_->cancelled(); }

  /// Either-cancels composition: a token that reports cancellation when
  /// `a` OR `b` does (the service merges a request's own options.cancel
  /// with the submission's sched token this way). Degenerates to the other
  /// operand when one is invalid.
  static CancelToken AnyOf(CancelToken a, CancelToken b);

 private:
  friend class CancelSource;
  friend class CancelGroup;

  /// Pluggable observer state: a plain flipped-once bit (CancelSource) or a
  /// joint all-members poll (CancelGroup).
  struct State {
    virtual ~State() = default;
    virtual bool cancelled() const = 0;
  };

  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Owner half: Cancel() flips the shared bit exactly once; every token
/// minted from this source observes it. Destroying the source does NOT
/// cancel outstanding tokens (work keeps its meaning when the requester
/// merely goes away without asking to cancel).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<FlagState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  void Cancel() { state_->flag.store(true, std::memory_order_release); }

  bool cancelled() const {
    return state_->flag.load(std::memory_order_acquire);
  }

 private:
  struct FlagState : CancelToken::State {
    std::atomic<bool> flag{false};
    bool cancelled() const override {
      return flag.load(std::memory_order_acquire);
    }
  };

  std::shared_ptr<FlagState> state_;
};

/// Joint interest in one shared computation (a coalesced flight group or a
/// deduplicated batch slot group). Participants register their tokens with
/// Add; token() observes the group rule: cancelled only when the group has
/// at least one participant and EVERY participant's token is cancelled.
/// Adding an invalid token pins the group live forever (that participant
/// can never withdraw its interest), and participants may keep joining
/// while the computation runs — a late joiner revives a group whose earlier
/// members have all cancelled, provided the evaluation has not yet observed
/// the joint cancellation at a checkpoint.
///
/// Polls take a mutex; they are meant for amortized checkpoints and queue
/// boundaries, not per-step hot loops.
class CancelGroup {
 public:
  CancelGroup() : state_(std::make_shared<GroupState>()) {}

  /// Registers one participant. Thread-safe against token() polls.
  void Add(CancelToken member) {
    MutexLock lock(state_->mu);
    if (state_->pinned) return;
    if (!member.valid()) {
      state_->pinned = true;
      state_->members.clear();  // the poll can never succeed again
      return;
    }
    state_->members.push_back(std::move(member));
  }

  /// The joint observer token (cheap to copy; polls under the group lock).
  CancelToken token() const { return CancelToken(state_); }

  /// Whether every registered participant has cancelled (false while the
  /// group is empty or pinned).
  bool cancelled() const { return state_->cancelled(); }

 private:
  struct GroupState : CancelToken::State {
    mutable Mutex mu{LockRank::kCancelGroup, "CancelGroup::mu"};
    bool pinned GUARDED_BY(mu) = false;  ///< an uncancellable participant joined
    std::vector<CancelToken> members GUARDED_BY(mu);

    bool cancelled() const override {
      // Poll OUTSIDE the lock, over a snapshot: a member may itself be
      // another group's token (batch slot groups join flight groups), and
      // polling it under this group's mutex would nest two same-rank
      // mutexes. A participant Add racing the poll lands as if it joined
      // just after the snapshot — indistinguishable, under the old
      // hold-the-lock polling, from joining a moment later.
      std::vector<CancelToken> snapshot;
      {
        MutexLock lock(mu);
        if (pinned || members.empty()) return false;
        snapshot = members;
      }
      for (const CancelToken& member : snapshot) {
        if (!member.cancelled()) return false;
      }
      return true;
    }
  };

  std::shared_ptr<GroupState> state_;
};

inline CancelToken CancelToken::AnyOf(CancelToken a, CancelToken b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  struct EitherState : State {
    CancelToken first, second;
    EitherState(CancelToken f, CancelToken s)
        : first(std::move(f)), second(std::move(s)) {}
    bool cancelled() const override {
      return first.cancelled() || second.cancelled();
    }
  };
  return CancelToken(
      std::make_shared<const EitherState>(std::move(a), std::move(b)));
}

}  // namespace sched

// The cancellation vocabulary is used below the sched layer too (core
// search loops poll a token via SearchOptions), so the names are also
// exported at the relcomp level.
using sched::CancelGroup;
using sched::CancelSource;
using sched::CancelToken;

}  // namespace relcomp

#endif  // RELCOMP_SCHED_CANCEL_H_
