// Cooperative cancellation for scheduled work. A CancelSource owns the
// cancelled bit; CancelTokens are cheap shared observers handed to
// submissions. Cancellation is a request, not an interrupt: the scheduler
// and the service check tokens at evaluation boundaries (admission, queue
// pop, publication) and shed work that nobody is waiting for any more —
// a decider that has already started always runs to completion.
//
// Coalescing interacts through polling: a coalesced in-flight group is shed
// only when EVERY member's token is cancelled (members without a token
// count as permanently interested), which the service checks by iterating
// member tokens under its shard lock.
#ifndef RELCOMP_SCHED_CANCEL_H_
#define RELCOMP_SCHED_CANCEL_H_

#include <atomic>
#include <memory>
#include <utility>

namespace relcomp {
namespace sched {

class CancelSource;

/// Observer half: copyable, cheap, thread-safe. A default-constructed token
/// is "invalid" — it belongs to no source and never reports cancellation,
/// so plumbing that doesn't care about cancellation passes tokens around
/// for free.
class CancelToken {
 public:
  CancelToken() = default;

  /// Whether this token is connected to a source at all.
  bool valid() const { return state_ != nullptr; }

  /// Whether the owning source has requested cancellation. Invalid tokens
  /// are never cancelled.
  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<std::atomic<bool>> state_;
};

/// Owner half: Cancel() flips the shared bit exactly once; every token
/// minted from this source observes it. Destroying the source does NOT
/// cancel outstanding tokens (work keeps its meaning when the requester
/// merely goes away without asking to cancel).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  CancelToken token() const { return CancelToken(state_); }

  void Cancel() { state_->store(true, std::memory_order_release); }

  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace sched
}  // namespace relcomp

#endif  // RELCOMP_SCHED_CANCEL_H_
