// Scheduling vocabulary for the service's fair-share queue: which policy
// orders the shared worker queue, what happens on overload, per-tenant
// admission knobs, and the per-submission parameters (priority class,
// best-effort deadline, cancellation token) a request can carry.
//
// The sched/ layer is deliberately below service/: it schedules opaque
// tasks tagged with a tenant id and knows nothing about settings, queries,
// or decisions. The service maps setting shards onto tenants.
#ifndef RELCOMP_SCHED_POLICY_H_
#define RELCOMP_SCHED_POLICY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "sched/cancel.h"

namespace relcomp {
namespace sched {

/// Monotonic clock used for deadlines, token buckets, and wait-time
/// accounting. A wall clock would travel backwards under NTP slew and
/// resurrect expired requests.
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

/// "No deadline": requests default to waiting as long as it takes.
constexpr TimePoint kNoDeadline = TimePoint::max();

/// A deadline `ms` milliseconds from now (best-effort: requests still
/// queued past it are shed before evaluation, never aborted mid-decider).
inline TimePoint DeadlineAfterMs(uint64_t ms) {
  return Clock::now() + std::chrono::milliseconds(ms);
}

/// How the shared queue orders work across tenants.
enum class SchedPolicy {
  /// Strict global arrival order (the legacy service behavior). Priority
  /// classes still separate urgent from background work, but tenants share
  /// one lane: an expensive tenant's burst delays everyone behind it.
  kFifo,
  /// Stride scheduling across tenants: each tenant advances a virtual-time
  /// "pass" by kStrideScale / weight per dispatched task, and the queue
  /// always serves the smallest pass. Tenants receive worker time
  /// proportional to their weights regardless of how much they enqueue, so
  /// a cheap tenant is never starved behind a bulk tenant's backlog.
  kFairShare,
};

/// The explicit overload decision: what Push does when a tenant's in-queue
/// quota or token-bucket rate is exhausted.
enum class OverloadPolicy {
  /// Block the submitting thread until the tenant has room again —
  /// backpressure propagates to the producer (streaming submission relies
  /// on this to bound memory).
  kBlock,
  /// Refuse admission: Push fails and the service reports the request as
  /// rejected (a Decision with StatusCode::kUnavailable), never losing it
  /// silently.
  kReject,
};

/// Priority classes within a tenant: urgent work overtakes background work
/// belonging to the same tenant, but never steals another tenant's share.
/// Under kFifo with default (kNormal) priorities the queue is exactly the
/// legacy arrival order.
enum class Priority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
constexpr size_t kNumPriorities = 3;

/// Per-tenant admission-control and fairness knobs, fixed at tenant
/// registration (the service forwards them from ShardOptions).
struct TenantOptions {
  /// Fair-share weight: a weight-4 tenant receives 4x the worker time of a
  /// weight-1 tenant while both have work queued. Ignored under kFifo.
  /// Zero is coerced to 1.
  uint32_t weight = 1;
  /// Bounded in-queue quota: at most this many tasks of the tenant queued
  /// at once. 0 = unbounded. Excess triggers the OverloadPolicy.
  size_t max_queue = 0;
  /// Token-bucket admission rate in tasks/second; 0 = unlimited.
  double rate_per_sec = 0.0;
  /// Token-bucket burst capacity; 0 = max(1, rate_per_sec).
  double burst = 0.0;
};

/// Per-submission scheduling parameters, carried by a ServiceRequest.
/// Default-constructed params reproduce the legacy behavior exactly:
/// normal priority, no deadline, never cancelled.
struct SchedParams {
  Priority priority = Priority::kNormal;
  TimePoint deadline = kNoDeadline;
  CancelToken cancel;  ///< invalid (default) = not cancellable
};

}  // namespace sched
}  // namespace relcomp

#endif  // RELCOMP_SCHED_POLICY_H_
