// Byte-cost accounting for cached Decisions. The shard result caches were
// historically bounded by ENTRY COUNT, but a Decision carrying a
// CompletenessWitness (two instances, a valuation, schemas) can be orders of
// magnitude larger than a bare verdict, so "1024 entries" says nothing about
// memory. The weigher assigns every cached Decision a deterministic byte
// cost — struct sizes plus the owned heap payload (strings, tuple vectors,
// the deep witness) — which the byte-weighted ShardCache and the shared
// CacheBudget arbitrate on. Costs are approximations of resident heap bytes
// (std::string / std::vector size, not capacity), chosen to be stable across
// runs rather than allocator-exact.
#ifndef RELCOMP_CACHE_WEIGHER_H_
#define RELCOMP_CACHE_WEIGHER_H_

#include <cstddef>
#include <string>

#include "core/types.h"
#include "service/decision.h"

namespace relcomp {
namespace cache {

/// Fixed bookkeeping cost charged per cache entry on top of the Decision
/// payload: the segment list node, the index hash node, and the dual-digest
/// key they share.
constexpr size_t kEntryOverheadBytes = 96;

inline size_t WeighString(const std::string& s) { return s.size(); }

inline size_t WeighTuple(const Tuple& t) {
  return sizeof(Tuple) + t.size() * sizeof(Value);
}

inline size_t WeighDomain(const Domain& d) {
  return sizeof(Domain) + d.values().size() * sizeof(Value);
}

inline size_t WeighRelationSchema(const RelationSchema& schema) {
  size_t bytes = sizeof(RelationSchema) + WeighString(schema.name());
  for (const Attribute& attr : schema.attributes()) {
    bytes += sizeof(Attribute) + WeighString(attr.name) + WeighDomain(attr.domain);
  }
  return bytes;
}

inline size_t WeighSchema(const DatabaseSchema& schema) {
  size_t bytes = sizeof(DatabaseSchema);
  for (const RelationSchema& rel : schema.relations()) {
    bytes += WeighRelationSchema(rel);
  }
  return bytes;
}

inline size_t WeighRelation(const Relation& rel) {
  size_t bytes = sizeof(Relation) + WeighRelationSchema(rel.schema());
  for (const Tuple& row : rel.rows()) bytes += WeighTuple(row);
  return bytes;
}

inline size_t WeighInstance(const Instance& instance) {
  size_t bytes = sizeof(Instance) + WeighSchema(instance.schema());
  for (const Relation& rel : instance.relations()) {
    // The relation's schema copy is already counted via the instance schema;
    // counting it again per relation stays deterministic and errs toward
    // overcharging witness-heavy entries, which is the safe direction for a
    // memory bound.
    bytes += WeighRelation(rel);
  }
  return bytes;
}

inline size_t WeighValuation(const Valuation& mu) {
  return sizeof(Valuation) + mu.num_slots() * (sizeof(Value) + sizeof(bool));
}

inline size_t WeighWitness(const CompletenessWitness& witness) {
  return sizeof(CompletenessWitness) + WeighValuation(witness.world_valuation) +
         WeighInstance(witness.world) + WeighInstance(witness.extension) +
         WeighTuple(witness.answer) + WeighString(witness.note);
}

/// Total byte cost of one cached Decision: the struct, its owned strings,
/// and the deep witness payload. The witness is shared_ptr-shared with
/// caller copies, but the cache entry is what pins it resident, so the full
/// witness cost is charged to the entry.
inline size_t WeighDecision(const Decision& decision) {
  size_t bytes = sizeof(Decision) + WeighString(decision.status.message()) +
                 WeighString(decision.note);
  if (decision.witness != nullptr) bytes += WeighWitness(*decision.witness);
  return bytes;
}

}  // namespace cache
}  // namespace relcomp

#endif  // RELCOMP_CACHE_WEIGHER_H_
