#include "cache/persist.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/hash.h"

namespace relcomp {
namespace cache {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'C', 'S'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic, version, size, checksum

// ------------------------------------------------------------- encoding --

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }

  void Val(const Value& v) {
    if (v.is_int()) {
      U8(0);
      I64(v.as_int());
    } else {
      // Symbols travel as TEXT: interner ids are first-touch-ordered and
      // mean something else (or nothing) in the restoring process.
      U8(1);
      Str(v.sym_name());
    }
  }

  void Dom(const Domain& d) {
    U8(d.is_finite() ? 1 : 0);
    if (d.is_finite()) {
      U64(d.values().size());
      for (const Value& v : d.values()) Val(v);
    }
  }

  void RelSchema(const RelationSchema& schema) {
    Str(schema.name());
    U64(schema.arity());
    for (const Attribute& attr : schema.attributes()) {
      Str(attr.name);
      Dom(attr.domain);
    }
  }

  void DbSchema(const DatabaseSchema& schema) {
    U64(schema.relations().size());
    for (const RelationSchema& rel : schema.relations()) RelSchema(rel);
  }

  void Row(const Tuple& t) {
    for (const Value& v : t) Val(v);  // arity known from the schema
  }

  void Inst(const Instance& instance) {
    DbSchema(instance.schema());
    for (const Relation& rel : instance.relations()) {
      U64(rel.size());
      for (const Tuple& row : rel.rows()) Row(row);
    }
  }

  void Mu(const Valuation& mu) {
    U64(mu.num_slots());
    for (size_t i = 0; i < mu.num_slots(); ++i) {
      std::optional<Value> bound = mu.Get(VarId{static_cast<int32_t>(i)});
      U8(bound.has_value() ? 1 : 0);
      if (bound.has_value()) Val(*bound);
    }
  }

  void Dec(const Decision& decision) {
    U32(static_cast<uint32_t>(decision.status.code()));
    Str(decision.status.message());
    U8(decision.answer ? 1 : 0);
    Str(decision.note);
    U64(decision.stats.valuations);
    U64(decision.stats.worlds);
    U64(decision.stats.extensions);
    U64(decision.stats.cc_checks);
    U64(decision.stats.query_evals);
    U8(decision.witness != nullptr ? 1 : 0);
    if (decision.witness != nullptr) {
      const CompletenessWitness& w = *decision.witness;
      Mu(w.world_valuation);
      Inst(w.world);
      Inst(w.extension);
      U64(w.answer.size());
      Row(w.answer);
      Str(w.note);
    }
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// ------------------------------------------------------------- decoding --

Status Torn(const char* what) {
  return Status::ParseError(std::string("cache snapshot truncated while reading ") +
                            what);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Status U8(uint8_t* v, const char* what) {
    if (pos_ + 1 > size_) return Torn(what);
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status U32(uint32_t* v, const char* what) {
    if (pos_ + 4 > size_) return Torn(what);
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return Status::OK();
  }
  Status U64(uint64_t* v, const char* what) {
    if (pos_ + 8 > size_) return Torn(what);
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return Status::OK();
  }
  Status Str(std::string* s, const char* what) {
    uint64_t len = 0;
    RELCOMP_RETURN_IF_ERROR(U64(&len, what));
    if (len > size_ - pos_) return Torn(what);
    s->assign(data_ + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  Status Val(Value* v) {
    uint8_t kind = 0;
    RELCOMP_RETURN_IF_ERROR(U8(&kind, "value kind"));
    if (kind == 0) {
      uint64_t bits = 0;
      RELCOMP_RETURN_IF_ERROR(U64(&bits, "int value"));
      *v = Value::Int(static_cast<int64_t>(bits));
      return Status::OK();
    }
    if (kind == 1) {
      std::string name;
      RELCOMP_RETURN_IF_ERROR(Str(&name, "symbol value"));
      *v = Value::Sym(name);
      return Status::OK();
    }
    return Status::ParseError("cache snapshot: unknown value kind " +
                              std::to_string(kind));
  }

  Status Dom(Domain* d) {
    uint8_t finite = 0;
    RELCOMP_RETURN_IF_ERROR(U8(&finite, "domain kind"));
    if (finite == 0) {
      *d = Domain::Infinite();
      return Status::OK();
    }
    uint64_t count = 0;
    RELCOMP_RETURN_IF_ERROR(U64(&count, "domain size"));
    if (count > size_ - pos_) return Torn("domain values");
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      Value v;
      RELCOMP_RETURN_IF_ERROR(Val(&v));
      values.push_back(v);
    }
    *d = Domain::Finite(std::move(values));
    return Status::OK();
  }

  Status RelSchema(RelationSchema* schema) {
    std::string name;
    RELCOMP_RETURN_IF_ERROR(Str(&name, "relation name"));
    uint64_t arity = 0;
    RELCOMP_RETURN_IF_ERROR(U64(&arity, "relation arity"));
    if (arity > size_ - pos_) return Torn("relation attributes");
    std::vector<Attribute> attributes;
    attributes.reserve(static_cast<size_t>(arity));
    for (uint64_t i = 0; i < arity; ++i) {
      Attribute attr;
      RELCOMP_RETURN_IF_ERROR(Str(&attr.name, "attribute name"));
      RELCOMP_RETURN_IF_ERROR(Dom(&attr.domain));
      attributes.push_back(std::move(attr));
    }
    *schema = RelationSchema(std::move(name), std::move(attributes));
    return Status::OK();
  }

  Status DbSchema(DatabaseSchema* schema) {
    uint64_t count = 0;
    RELCOMP_RETURN_IF_ERROR(U64(&count, "schema size"));
    if (count > size_ - pos_) return Torn("relation schemas");
    *schema = DatabaseSchema();
    for (uint64_t i = 0; i < count; ++i) {
      RelationSchema rel;
      RELCOMP_RETURN_IF_ERROR(RelSchema(&rel));
      schema->AddRelation(std::move(rel));
    }
    return Status::OK();
  }

  Status Row(size_t arity, Tuple* t) {
    t->clear();
    t->reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      Value v;
      RELCOMP_RETURN_IF_ERROR(Val(&v));
      t->push_back(v);
    }
    return Status::OK();
  }

  Status Inst(Instance* instance) {
    DatabaseSchema schema;
    RELCOMP_RETURN_IF_ERROR(DbSchema(&schema));
    *instance = Instance(schema);
    for (const RelationSchema& rel : schema.relations()) {
      uint64_t rows = 0;
      RELCOMP_RETURN_IF_ERROR(U64(&rows, "relation row count"));
      if (rows > size_ - pos_) return Torn("relation rows");
      for (uint64_t r = 0; r < rows; ++r) {
        Tuple row;
        RELCOMP_RETURN_IF_ERROR(Row(rel.arity(), &row));
        instance->AddTuple(rel.name(), std::move(row));
      }
    }
    return Status::OK();
  }

  Status Mu(Valuation* mu) {
    uint64_t slots = 0;
    RELCOMP_RETURN_IF_ERROR(U64(&slots, "valuation size"));
    if (slots > size_ - pos_) return Torn("valuation slots");
    *mu = Valuation(static_cast<size_t>(slots));
    for (uint64_t i = 0; i < slots; ++i) {
      uint8_t bound = 0;
      RELCOMP_RETURN_IF_ERROR(U8(&bound, "valuation slot"));
      if (bound != 0) {
        Value v;
        RELCOMP_RETURN_IF_ERROR(Val(&v));
        mu->Bind(VarId{static_cast<int32_t>(i)}, v);
      }
    }
    return Status::OK();
  }

  Status Dec(Decision* decision) {
    uint32_t code = 0;
    RELCOMP_RETURN_IF_ERROR(U32(&code, "status code"));
    if (code > static_cast<uint32_t>(StatusCode::kCancelled)) {
      return Status::ParseError("cache snapshot: unknown status code " +
                                std::to_string(code));
    }
    std::string message;
    RELCOMP_RETURN_IF_ERROR(Str(&message, "status message"));
    decision->status = Status(static_cast<StatusCode>(code), std::move(message));
    uint8_t answer = 0;
    RELCOMP_RETURN_IF_ERROR(U8(&answer, "answer"));
    decision->answer = answer != 0;
    decision->from_cache = false;  // recomputed by the serving hit path
    RELCOMP_RETURN_IF_ERROR(Str(&decision->note, "note"));
    RELCOMP_RETURN_IF_ERROR(U64(&decision->stats.valuations, "stats"));
    RELCOMP_RETURN_IF_ERROR(U64(&decision->stats.worlds, "stats"));
    RELCOMP_RETURN_IF_ERROR(U64(&decision->stats.extensions, "stats"));
    RELCOMP_RETURN_IF_ERROR(U64(&decision->stats.cc_checks, "stats"));
    RELCOMP_RETURN_IF_ERROR(U64(&decision->stats.query_evals, "stats"));
    uint8_t has_witness = 0;
    RELCOMP_RETURN_IF_ERROR(U8(&has_witness, "witness flag"));
    if (has_witness != 0) {
      auto witness = std::make_shared<CompletenessWitness>();
      RELCOMP_RETURN_IF_ERROR(Mu(&witness->world_valuation));
      RELCOMP_RETURN_IF_ERROR(Inst(&witness->world));
      RELCOMP_RETURN_IF_ERROR(Inst(&witness->extension));
      uint64_t arity = 0;
      RELCOMP_RETURN_IF_ERROR(U64(&arity, "witness answer arity"));
      if (arity > size_ - pos_) return Torn("witness answer");
      RELCOMP_RETURN_IF_ERROR(Row(static_cast<size_t>(arity), &witness->answer));
      RELCOMP_RETURN_IF_ERROR(Str(&witness->note, "witness note"));
      decision->witness = std::move(witness);
    } else {
      decision->witness = nullptr;
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

uint64_t Checksum(const char* data, size_t size) {
  StableHasher hasher;
  hasher.Mix(data, size);
  return hasher.digest();
}

}  // namespace

std::string EncodeSnapshot(const Snapshot& snapshot) {
  Writer payload;
  payload.U64(snapshot.shards.size());
  for (const SnapshotShard& shard : snapshot.shards) {
    payload.U64(shard.setting_key.primary);
    payload.U64(shard.setting_key.check);
    payload.U64(shard.entries.size());
    for (const auto& [key, decision] : shard.entries) {
      payload.U64(key.primary);
      payload.U64(key.check);
      payload.Dec(decision);
    }
  }
  std::string body = payload.Take();

  Writer header;
  for (char c : kMagic) header.U8(static_cast<uint8_t>(c));
  header.U32(kVersion);
  header.U64(body.size());
  header.U64(Checksum(body.data(), body.size()));
  std::string out = header.Take();
  out += body;
  return out;
}

Result<Snapshot> DecodeSnapshot(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "cache snapshot: bad magic (not a relcomp cache snapshot)");
  }
  Reader header(bytes.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  uint32_t version = 0;
  uint64_t payload_size = 0, checksum = 0;
  RELCOMP_RETURN_IF_ERROR(header.U32(&version, "version"));
  RELCOMP_RETURN_IF_ERROR(header.U64(&payload_size, "payload size"));
  RELCOMP_RETURN_IF_ERROR(header.U64(&checksum, "checksum"));
  if (version != kVersion) {
    return Status::InvalidArgument("cache snapshot: unsupported version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kVersion) + ")");
  }
  if (bytes.size() - kHeaderBytes != payload_size) {
    return Status::InvalidArgument(
        "cache snapshot: payload size mismatch (file truncated or padded)");
  }
  // Checksum and parse in place — witness-heavy snapshots are large, and a
  // substr copy here would double peak memory during a warm start.
  const char* payload = bytes.data() + kHeaderBytes;
  const size_t payload_size_actual = bytes.size() - kHeaderBytes;
  if (Checksum(payload, payload_size_actual) != checksum) {
    return Status::InvalidArgument(
        "cache snapshot: checksum mismatch (file corrupted)");
  }

  Reader reader(payload, payload_size_actual);
  Snapshot snapshot;
  uint64_t shard_count = 0;
  RELCOMP_RETURN_IF_ERROR(reader.U64(&shard_count, "shard count"));
  if (shard_count > reader.remaining()) return Torn("shards");
  for (uint64_t s = 0; s < shard_count; ++s) {
    SnapshotShard shard;
    RELCOMP_RETURN_IF_ERROR(reader.U64(&shard.setting_key.primary,
                                       "setting fingerprint"));
    RELCOMP_RETURN_IF_ERROR(reader.U64(&shard.setting_key.check,
                                       "setting fingerprint"));
    uint64_t entry_count = 0;
    RELCOMP_RETURN_IF_ERROR(reader.U64(&entry_count, "entry count"));
    if (entry_count > reader.remaining()) return Torn("entries");
    shard.entries.reserve(static_cast<size_t>(entry_count));
    for (uint64_t e = 0; e < entry_count; ++e) {
      RequestCacheKey key;
      RELCOMP_RETURN_IF_ERROR(reader.U64(&key.primary, "entry key"));
      RELCOMP_RETURN_IF_ERROR(reader.U64(&key.check, "entry key"));
      Decision decision;
      RELCOMP_RETURN_IF_ERROR(reader.Dec(&decision));
      shard.entries.emplace_back(key, std::move(decision));
    }
    snapshot.shards.push_back(std::move(shard));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("cache snapshot: trailing bytes after payload");
  }
  return snapshot;
}

Status SaveSnapshot(const Snapshot& snapshot, const std::string& path) {
  const std::string bytes = EncodeSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

Result<Snapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read cache snapshot '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DecodeSnapshot(bytes);
}

}  // namespace cache
}  // namespace relcomp
