#include "cache/budget.h"

#include <algorithm>
#include <limits>

namespace relcomp {
namespace cache {

uint64_t NextTick() {
  static std::atomic<uint64_t> tick{1};
  return tick.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CacheBudget::Register(std::weak_ptr<ShardCache> cache,
                               size_t floor_bytes) {
  MutexLock lock(mu_);
  const uint64_t id = next_id_++;
  auto registration = std::make_unique<Registration>();
  registration->cache = std::move(cache);
  registration->floor_bytes = floor_bytes;
  registration->coldest.store(NextTick(), std::memory_order_relaxed);
  registrations_.emplace(id, std::move(registration));
  return id;
}

void CacheBudget::Deregister(uint64_t id) {
  MutexLock lock(mu_);
  auto it = registrations_.find(id);
  if (it == registrations_.end()) return;
  used_bytes_.fetch_sub(it->second->bytes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  registrations_.erase(it);
}

bool CacheBudget::TryCharge(uint64_t id, size_t bytes) {
  MutexLock lock(mu_);
  if (budget_bytes_ != 0 &&
      used_bytes_.load(std::memory_order_relaxed) + bytes > budget_bytes_) {
    return false;
  }
  auto it = registrations_.find(id);
  if (it == registrations_.end()) return false;
  it->second->bytes.fetch_add(bytes, std::memory_order_relaxed);
  used_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

void CacheBudget::Release(uint64_t id, size_t bytes) {
  MutexLock lock(mu_);
  auto it = registrations_.find(id);
  if (it == registrations_.end()) return;
  it->second->bytes.fetch_sub(bytes, std::memory_order_relaxed);
  used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void CacheBudget::UpdateColdness(uint64_t id, uint64_t tick) {
  MutexLock lock(mu_);
  auto it = registrations_.find(id);
  if (it == registrations_.end()) return;
  it->second->coldest.store(tick, std::memory_order_relaxed);
}

bool CacheBudget::PickVictim(uint64_t requester_id, size_t needed,
                             Victim* victim) {
  const size_t used = used_bytes_.load(std::memory_order_relaxed);
  if (budget_bytes_ == 0 || used + needed <= budget_bytes_) return false;
  const size_t excess = used + needed - budget_bytes_;

  MutexLock lock(mu_);
  // Coldest shard with evictable bytes above its floor — including the
  // requester, whose own cold tail is fair game like anyone else's.
  Registration* coldest = nullptr;
  uint64_t coldest_tick = std::numeric_limits<uint64_t>::max();
  for (auto& [id, registration] : registrations_) {
    const size_t bytes = registration->bytes.load(std::memory_order_relaxed);
    if (bytes <= registration->floor_bytes) continue;
    const uint64_t tick = registration->coldest.load(std::memory_order_relaxed);
    if (coldest == nullptr || tick < coldest_tick) {
      coldest = registration.get();
      coldest_tick = tick;
    }
  }
  if (coldest != nullptr) {
    std::shared_ptr<ShardCache> cache = coldest->cache.lock();
    if (cache != nullptr) {
      const size_t bytes = coldest->bytes.load(std::memory_order_relaxed);
      victim->cache = std::move(cache);
      victim->bytes = std::min(excess, bytes - coldest->floor_bytes);
      victim->floor_bytes = coldest->floor_bytes;
      return victim->bytes > 0;
    }
    // The shard died between release and deregistration; its accounting
    // disappears with Deregister — fall through to the self fallback.
  }
  // Everyone else sits at its floor: the requester digs into its own floor
  // (it cannot starve itself — the shed makes room for its own entry).
  auto self = registrations_.find(requester_id);
  if (self == registrations_.end()) return false;
  std::shared_ptr<ShardCache> cache = self->second->cache.lock();
  const size_t bytes = self->second->bytes.load(std::memory_order_relaxed);
  if (cache == nullptr || bytes == 0) return false;
  victim->cache = std::move(cache);
  victim->bytes = std::min(excess, bytes);
  victim->floor_bytes = 0;
  return victim->bytes > 0;
}

}  // namespace cache
}  // namespace relcomp
