// Versioned, checksummed binary snapshots of shard result caches, for
// warm-starting a restarted service: the decisions a previous process
// computed (verdict, stats, note, and the DEEP counterexample witness) are
// serialized keyed by (setting fingerprint, request cache key) and replayed
// into a fresh shard's cache when a setting with a MATCHING fingerprint
// registers — a stale snapshot (master data changed, so the fingerprint
// moved) is skipped rather than served.
//
// Format (all integers little-endian):
//   "RCCS" magic | u32 version | u64 payload size | u64 FNV-1a(payload)
//   payload: u64 shard count, then per shard:
//     setting fingerprint (2 × u64, the dual-digest registry key)
//     u64 entry count, then per entry:
//       request cache key (2 × u64)
//       the Decision: status (u32 code + string), answer, note, the five
//       SearchStats counters, and an optional CompletenessWitness — whose
//       instances serialize their schemas and every Value symbolically
//       (symbol TEXT, not interner id: interner ids are assigned in first-
//       touch order and do not survive a restart).
//
// Entries are ordered coldest → hottest so a restore replayed in file order
// reproduces the cache's recency order. Loading verifies magic, version,
// size, and checksum before trusting a single byte; any mismatch or
// truncation fails with a Status instead of a torn cache.
#ifndef RELCOMP_CACHE_PERSIST_H_
#define RELCOMP_CACHE_PERSIST_H_

#include <string>
#include <utility>
#include <vector>

#include "service/decision.h"

namespace relcomp {
namespace cache {

/// One shard's cache image: the owning setting's dual-digest fingerprint
/// and its entries, coldest first.
struct SnapshotShard {
  RequestCacheKey setting_key;
  std::vector<std::pair<RequestCacheKey, Decision>> entries;
};

/// A whole service's cache image.
struct Snapshot {
  std::vector<SnapshotShard> shards;

  size_t TotalEntries() const {
    size_t total = 0;
    for (const SnapshotShard& shard : shards) total += shard.entries.size();
    return total;
  }
};

/// Serializes `snapshot` to the in-memory format above.
std::string EncodeSnapshot(const Snapshot& snapshot);

/// Parses bytes produced by EncodeSnapshot; kInvalidArgument on a bad
/// magic/version/checksum, kParseError on a structurally torn payload.
Result<Snapshot> DecodeSnapshot(const std::string& bytes);

/// Writes the snapshot to `path` atomically (temp file + rename), so a
/// crash mid-save never leaves a torn snapshot at the target path.
Status SaveSnapshot(const Snapshot& snapshot, const std::string& path);

/// Reads and verifies a snapshot from `path`.
Result<Snapshot> LoadSnapshot(const std::string& path);

}  // namespace cache
}  // namespace relcomp

#endif  // RELCOMP_CACHE_PERSIST_H_
