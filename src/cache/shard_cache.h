// ShardCache: the byte-weighted result cache behind one setting shard,
// replacing the entry-count LruCache on the service hot path. Three ideas
// compose:
//
//   * SEGMENTED LRU — entries land in a probation segment and are promoted
//     to a protected segment on re-reference; eviction drains probation
//     first, so a one-shot scan churns probation while the re-referenced
//     working set rides out the flood in protected. The protected segment
//     is capped at a fraction of resident bytes (tail demoted back to
//     probation), so it cannot monopolize the cache.
//   * FREQUENCY-SKETCH ADMISSION — a count-min sketch of recent accesses
//     (4-bit counters, periodically halved) gatekeeps inserts under local
//     entry-capacity pressure: a candidate seen LESS often than the
//     eviction victim it would displace is refused admission (counted, not
//     an error — the decision was still computed, it just isn't worth
//     caching), so cold one-shot results cannot flush warmer ones.
//     Byte-budget pressure is NOT sketch-gated: there the displaced entry
//     lives in the globally coldest shard, and the CacheBudget arbiter
//     owns that trade.
//   * SHARED BYTE BUDGET — entry bytes (weigher.h) are charged to an
//     optional service-wide CacheBudget; when a charge overflows it, the
//     cache sheds the arbiter's chosen victims (the globally coldest
//     shards, floors respected) before making its own entry resident, so
//     total resident bytes across every shard never exceed the budget.
//
// Thread safety: fully internally synchronized — unlike the legacy
// LruCache, callers need no external lock, because budget pressure makes
// OTHER shards' caches shed entries concurrently with their owners' reads.
// The internal mutex is never held while acquiring another cache's mutex
// (see budget.h for the lock order), and Get copies the Decision out under
// the lock (a returned pointer could dangle the moment a peer shard sheds).
#ifndef RELCOMP_CACHE_SHARD_CACHE_H_
#define RELCOMP_CACHE_SHARD_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/budget.h"
#include "obs/metrics.h"
#include "service/decision.h"
#include "util/mutex.h"

namespace relcomp {
namespace cache {

/// Count-min sketch over 4-bit saturating counters with periodic aging
/// (every counter halved once the increment count reaches the sample
/// period), TinyLFU-style: approximate access frequency in O(1) space,
/// biased toward the recent past.
class FrequencySketch {
 public:
  /// Sizes the sketch for roughly `capacity_hint` distinct keys.
  explicit FrequencySketch(size_t capacity_hint);

  /// Records one access of the key with the given 64-bit hash.
  void Increment(uint64_t hash);
  /// Estimated access count (min over the hash rows, saturated at 15).
  uint32_t Estimate(uint64_t hash) const;

 private:
  static constexpr int kRows = 4;
  uint64_t CounterIndex(uint64_t hash, int row) const;

  std::vector<uint64_t> table_;  ///< 16 packed 4-bit counters per word
  uint64_t counter_mask_ = 0;    ///< counters per table == mask + 1
  uint64_t sample_period_ = 0;   ///< increments between agings
  uint64_t additions_ = 0;
};

/// Cumulative cache-local statistics (monotone except entries/bytes, which
/// are gauges). `hits`/`misses` count Get outcomes at THIS layer — unlike
/// EngineCounters::cache_hits, coalesced requests never reach it.
struct CacheStats {
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t protected_bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;          ///< entries removed by any pressure
  uint64_t admission_rejects = 0;  ///< inserts refused (sketch or budget)
  uint64_t restored = 0;           ///< entries inserted from a snapshot
  /// Lifetime Get hit ratio; 0 before the first lookup.
  double hit_ratio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Live metric instruments the cache reports events into, alongside its
/// own cumulative CacheStats. All pointers optional (null = unreported)
/// and externally owned (a MetricsRegistry's; must outlive the cache).
/// Counters fire at the event site; gauges are republished after every
/// mutation, so scrapes see resident bytes/entries without polling stats().
struct CacheEventSink {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Counter* admission_rejects = nullptr;
  obs::Gauge* resident_bytes = nullptr;
  obs::Gauge* resident_entries = nullptr;
};

struct ShardCacheOptions {
  /// Entry-count capacity (the legacy LruCache bound, still enforced);
  /// 0 disables the cache entirely — Put stores nothing, Get always misses.
  size_t max_entries = 0;
  /// Resident-byte share the protected segment may occupy before its tail
  /// is demoted back to probation.
  double protected_fraction = 0.8;
  /// Frequency-sketch admission under pressure; off = always admit (the
  /// legacy behavior, and what snapshot restores use).
  bool admission_filter = true;
};

class ShardCache {
 public:
  explicit ShardCache(ShardCacheOptions options);
  ~ShardCache();
  ShardCache(const ShardCache&) = delete;
  ShardCache& operator=(const ShardCache&) = delete;

  /// Joins the shared budget. Must be called before the first Put and
  /// requires `self` to be the shared_ptr owning this cache (the arbiter
  /// hands it to peer shards as a victim). `budget` must outlive this
  /// cache; the destructor deregisters.
  void AttachBudget(CacheBudget* budget, const std::shared_ptr<ShardCache>& self,
                    size_t floor_bytes) EXCLUDES(mu_);

  /// Points cache events at live metric instruments. Call before the cache
  /// is shared across threads (typically right after construction).
  void AttachEvents(const CacheEventSink& events) EXCLUDES(mu_);

  /// Copies the cached decision into `*out` and refreshes its recency
  /// (second touch promotes probation → protected). False on miss.
  bool Get(const RequestCacheKey& key, Decision* out) EXCLUDES(mu_);

  /// Inserts (or overwrites) a decision. Returns false when the entry was
  /// NOT admitted: the cache is disabled, the sketch refused a cold
  /// candidate under pressure, or the shared budget could not make room
  /// even after shedding. A refused insert leaves the cache unchanged
  /// except for the admission_rejects counter.
  bool Put(const RequestCacheKey& key, Decision value) EXCLUDES(mu_);

  /// Put without the admission filter, counted as `restored` — the
  /// snapshot warm-start path (entries earned their place in a previous
  /// process; refusing them on a cold sketch would defeat persistence).
  bool Restore(const RequestCacheKey& key, Decision value) EXCLUDES(mu_);

  /// Evicts coldest-first (probation tail, then protected tail) until
  /// `target_bytes` have been freed or evicting further would drop the
  /// resident total below `floor_bytes`. Returns bytes actually freed.
  /// Called by PEER shards under budget pressure; thread-safe.
  size_t ShedBytes(size_t target_bytes, size_t floor_bytes) EXCLUDES(mu_);

  /// Drops every entry (budget released, cumulative stats preserved).
  void Clear() EXCLUDES(mu_);

  /// Resident entries, coldest first (probation tail → head, then
  /// protected tail → head), so replaying the snapshot through Restore in
  /// order reproduces the recency order. Decisions are deep-copied.
  std::vector<std::pair<RequestCacheKey, Decision>> SnapshotEntries() const
      EXCLUDES(mu_);

  size_t capacity() const { return options_.max_entries; }
  size_t size() const EXCLUDES(mu_);
  size_t bytes() const EXCLUDES(mu_);
  CacheStats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    RequestCacheKey key;
    Decision value;
    size_t bytes = 0;
    uint64_t touch = 0;
    bool in_protected = false;
  };
  using EntryList = std::list<Entry>;

  bool PutInternal(const RequestCacheKey& key, Decision value, bool restore)
      EXCLUDES(mu_);
  /// Makes `bytes` admissible against the shared budget: charge, then shed
  /// the arbiter's victims until under budget. False = infeasible (charge
  /// rolled back).
  bool ReserveBudget(size_t bytes) EXCLUDES(mu_);

  void PromoteLocked(EntryList::iterator it) REQUIRES(mu_);
  void EnforceProtectedCapLocked() REQUIRES(mu_);
  /// Evicts one entry, coldest-first; returns its bytes (0 when empty).
  size_t EvictOneLocked() REQUIRES(mu_);
  void RemoveLocked(EntryList::iterator it) REQUIRES(mu_);
  /// Coldest resident stamp → budget registration (lock-free store).
  void PublishColdnessLocked() REQUIRES(mu_);
  /// Resident bytes/entries → the event sink's gauges.
  void PublishGaugesLocked() REQUIRES(mu_);
  const Entry* VictimLocked() const REQUIRES(mu_);

  const ShardCacheOptions options_;
  // Written once by AttachBudget before the cache is shared across threads,
  // then read without the lock (ReserveBudget and the destructor must call
  // the budget with mu_ released) — init-once, not mu_-guarded.
  CacheBudget* budget_ = nullptr;
  uint64_t budget_id_ = 0;

  mutable Mutex mu_{LockRank::kCache, "ShardCache::mu_"};
  CacheEventSink events_ GUARDED_BY(mu_);
  EntryList probation_ GUARDED_BY(mu_);
  EntryList protected_ GUARDED_BY(mu_);
  std::unordered_map<RequestCacheKey, EntryList::iterator, RequestCacheKeyHash>
      index_ GUARDED_BY(mu_);
  FrequencySketch sketch_ GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  size_t protected_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t admission_rejects_ GUARDED_BY(mu_) = 0;
  uint64_t restored_ GUARDED_BY(mu_) = 0;
};

}  // namespace cache
}  // namespace relcomp

#endif  // RELCOMP_CACHE_SHARD_CACHE_H_
