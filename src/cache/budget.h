// CacheBudget: the service-wide arbiter of ONE shared byte budget across
// every setting shard's result cache. Shard caches charge it on insert and
// release it on evict/clear; when a charge pushes the total over budget, the
// arbiter plans evictions from the globally COLDEST shard first (coldness =
// the age of a shard's least-recently-touched entry), never driving another
// tenant below its configured byte floor — so one witness-heavy tenant
// cannot starve the others, and an idle tenant's cold cache is reclaimed
// before anyone's hot entries.
//
// Locking contract (deadlock-freedom across shards): the budget mutex is a
// LEAF — the arbiter never calls into a shard cache while holding it.
// Charge/PickVictim only update accounting and return a plan; the CALLER
// (ShardCache::Put, holding no cache mutex of its own at that point) then
// sheds the planned victims one cache at a time. Cache mutexes are therefore
// never nested with each other, and the only lock order is
//   shard.mu → pressure_mu → cache.mu → budget.mu
// — now machine-checked: see the LockRank table in util/mutex.h
// (kShard < kCachePressure < kCache < kCacheBudget).
#ifndef RELCOMP_CACHE_BUDGET_H_
#define RELCOMP_CACHE_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "util/mutex.h"

namespace relcomp {
namespace cache {

class ShardCache;

/// Monotone global access clock shared by every shard cache: entries are
/// stamped on touch, and a shard's coldness is its coldest resident stamp.
/// Process-global so shards of different services stay comparable.
uint64_t NextTick();

class CacheBudget {
 public:
  /// A zero budget means unlimited: charges always succeed and no victim
  /// plans are ever produced (byte accounting still runs, for stats).
  explicit CacheBudget(size_t budget_bytes) : budget_bytes_(budget_bytes) {}
  CacheBudget(const CacheBudget&) = delete;
  CacheBudget& operator=(const CacheBudget&) = delete;

  /// One registered shard cache's accounting node. The cache holds the
  /// returned id and passes it back on every charge/release; its atomics
  /// are updated lock-free on the touch path.
  struct Registration {
    std::weak_ptr<ShardCache> cache;
    size_t floor_bytes = 0;
    std::atomic<size_t> bytes{0};      ///< charged (resident + reserved)
    std::atomic<uint64_t> coldest{0};  ///< tick of the oldest resident entry
  };

  /// Registers a shard cache with its starvation floor; the weak_ptr keeps
  /// victim plans safe against concurrent shard release.
  uint64_t Register(std::weak_ptr<ShardCache> cache, size_t floor_bytes)
      EXCLUDES(mu_);
  /// Drops a registration, releasing whatever bytes it still has charged.
  void Deregister(uint64_t id) EXCLUDES(mu_);

  /// Charges `bytes` to shard `id` ONLY IF the total stays within budget —
  /// so used_bytes() can never exceed budget_bytes(), and the resident
  /// total (always ≤ the charged total, since every entry is charged
  /// before it becomes resident) cannot either. On false the accounting is
  /// untouched; the caller sheds victims and retries.
  bool TryCharge(uint64_t id, size_t bytes) EXCLUDES(mu_);
  /// Releases `bytes` from shard `id` (entry evicted, cleared, or a failed
  /// reservation rolled back).
  void Release(uint64_t id, size_t bytes) EXCLUDES(mu_);

  /// Records shard `id`'s coldest resident entry stamp (lock-free).
  void UpdateColdness(uint64_t id, uint64_t tick) EXCLUDES(mu_);

  /// One step of the pressure plan for an insert of `needed` bytes: the
  /// coldest shard holding more than its floor, and how many bytes it
  /// should shed to make the insert fit. When every OTHER shard sits at
  /// its floor, the requester itself is picked with its floor waived (a
  /// tenant may always dig into its own entries to admit its own entry).
  /// Returns false when nothing evictable remains. `requester_id` is the
  /// charging shard's registration id.
  struct Victim {
    std::shared_ptr<ShardCache> cache;
    size_t bytes = 0;        ///< shed target
    size_t floor_bytes = 0;  ///< floor the shed must respect (0 = waived)
  };
  bool PickVictim(uint64_t requester_id, size_t needed, Victim* victim)
      EXCLUDES(mu_);

  /// Serializes over-budget negotiations (TryCharge failed → shed →
  /// retry): concurrent evictors would otherwise race each other's
  /// charged-but-not-yet-resident bytes and spuriously refuse inserts
  /// that fit serially. Held around the whole shed-retry loop; never held
  /// by the budget itself while calling into a cache.
  Mutex& pressure_mu() RETURN_CAPABILITY(pressure_mu_) { return pressure_mu_; }

  size_t budget_bytes() const { return budget_bytes_; }
  size_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const size_t budget_bytes_;
  std::atomic<size_t> used_bytes_{0};

  Mutex pressure_mu_{LockRank::kCachePressure, "CacheBudget::pressure_mu_"};
  /// Guards the registry map only; per-registration atomics are lock-free.
  mutable Mutex mu_{LockRank::kCacheBudget, "CacheBudget::mu_"};
  std::unordered_map<uint64_t, std::unique_ptr<Registration>> registrations_
      GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace cache
}  // namespace relcomp

#endif  // RELCOMP_CACHE_BUDGET_H_
