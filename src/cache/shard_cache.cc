#include "cache/shard_cache.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "cache/weigher.h"

namespace relcomp {
namespace cache {

namespace {

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t KeyHash(const RequestCacheKey& key) {
  return key.primary ^ (key.check * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

// ------------------------------------------------------- FrequencySketch --

FrequencySketch::FrequencySketch(size_t capacity_hint) {
  // ~2 counters per expected resident entry keeps estimate collisions rare
  // without letting a huge capacity hint balloon the sketch.
  const uint64_t counters = std::min<uint64_t>(
      NextPow2(std::max<uint64_t>(256, capacity_hint * 2)), 1ULL << 18);
  table_.assign(counters / 16, 0);  // 16 packed 4-bit counters per word
  counter_mask_ = counters - 1;
  sample_period_ = counters * 10;
}

uint64_t FrequencySketch::CounterIndex(uint64_t hash, int row) const {
  static constexpr uint64_t kSeeds[kRows] = {
      0xc3a5c85c97cb3127ULL, 0xb492b66fbe98f273ULL, 0x9ae16a3b2f90404fULL,
      0xcbf29ce484222325ULL};
  uint64_t h = (hash + static_cast<uint64_t>(row)) * kSeeds[row];
  h ^= h >> 32;
  return h & counter_mask_;
}

void FrequencySketch::Increment(uint64_t hash) {
  for (int row = 0; row < kRows; ++row) {
    const uint64_t index = CounterIndex(hash, row);
    uint64_t& word = table_[index >> 4];
    const int shift = static_cast<int>(index & 15) * 4;
    const uint64_t counter = (word >> shift) & 0xF;
    if (counter < 15) word += 1ULL << shift;  // saturate at 15
  }
  if (++additions_ >= sample_period_) {
    // Aging: halve every counter so the sketch tracks RECENT popularity —
    // without it, everything eventually saturates and admission degrades
    // to always-admit.
    for (uint64_t& word : table_) word = (word >> 1) & 0x7777777777777777ULL;
    additions_ /= 2;
  }
}

uint32_t FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t estimate = 15;
  for (int row = 0; row < kRows; ++row) {
    const uint64_t index = CounterIndex(hash, row);
    const uint64_t counter = (table_[index >> 4] >> ((index & 15) * 4)) & 0xF;
    estimate = std::min(estimate, static_cast<uint32_t>(counter));
  }
  return estimate;
}

// ------------------------------------------------------------ ShardCache --

ShardCache::ShardCache(ShardCacheOptions options)
    : options_(options), sketch_(options.max_entries) {}

ShardCache::~ShardCache() {
  if (budget_ != nullptr) budget_->Deregister(budget_id_);
}

void ShardCache::AttachBudget(CacheBudget* budget,
                              const std::shared_ptr<ShardCache>& self,
                              size_t floor_bytes) {
  budget_ = budget;
  budget_id_ = budget->Register(self, floor_bytes);
}

void ShardCache::AttachEvents(const CacheEventSink& events) {
  MutexLock lock(mu_);
  events_ = events;
  PublishGaugesLocked();
}

bool ShardCache::Get(const RequestCacheKey& key, Decision* out) {
  MutexLock lock(mu_);
  if (options_.max_entries == 0) return false;
  sketch_.Increment(KeyHash(key));
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (events_.misses != nullptr) events_.misses->Inc();
    return false;
  }
  Entry& entry = *it->second;
  entry.touch = NextTick();
  if (entry.in_protected) {
    protected_.splice(protected_.begin(), protected_, it->second);
  } else {
    PromoteLocked(it->second);
  }
  ++hits_;
  if (events_.hits != nullptr) events_.hits->Inc();
  *out = entry.value;
  PublishColdnessLocked();
  return true;
}

bool ShardCache::Put(const RequestCacheKey& key, Decision value) {
  return PutInternal(key, std::move(value), /*restore=*/false);
}

bool ShardCache::Restore(const RequestCacheKey& key, Decision value) {
  return PutInternal(key, std::move(value), /*restore=*/true);
}

bool ShardCache::PutInternal(const RequestCacheKey& key, Decision value,
                             bool restore) {
  if (options_.max_entries == 0) return false;
  const size_t entry_bytes = WeighDecision(value) + kEntryOverheadBytes;
  const uint64_t key_hash = KeyHash(key);
  // Budget reservation comes FIRST, and runs UNLOCKED: a refused insert
  // must leave this cache untouched (no entry may be sacrificed for an
  // insert that then never happens), and shedding the arbiter's victims
  // takes peer caches' mutexes — holding ours meanwhile could deadlock
  // two shards shedding into each other. An existing entry under the same
  // key stays resident (and charged) until the swap at the bottom, so a
  // refusal at any point leaves it serving; the transient old+new double
  // charge errs toward over-reservation, never under.
  if (budget_ != nullptr && !ReserveBudget(entry_bytes)) {
    MutexLock lock(mu_);
    ++admission_rejects_;
    if (events_.admission_rejects != nullptr) events_.admission_rejects->Inc();
    return false;
  }
  MutexLock lock(mu_);
  if (!restore) sketch_.Increment(key_hash);
  const bool overwrite = index_.find(key) != index_.end();
  if (!overwrite) {
    if (!restore && options_.admission_filter) {
      // Admission gate, only under LOCAL pressure (a full entry table): a
      // candidate accessed less often than the resident entry it would
      // displace is not worth displacing it for. Byte-budget pressure is
      // deliberately NOT gated here — the displaced entry then lives in
      // whatever shard is globally coldest, and the CacheBudget arbiter
      // (not this shard's sketch) is the judge of that trade.
      const bool pressure = index_.size() >= options_.max_entries;
      const Entry* victim = pressure ? VictimLocked() : nullptr;
      if (victim != nullptr &&
          sketch_.Estimate(key_hash) < sketch_.Estimate(KeyHash(victim->key))) {
        ++admission_rejects_;
        if (events_.admission_rejects != nullptr) {
          events_.admission_rejects->Inc();
        }
        if (budget_ != nullptr) budget_->Release(budget_id_, entry_bytes);
        return false;
      }
    }
    while (index_.size() >= options_.max_entries) {
      if (EvictOneLocked() == 0) break;
    }
  }
  auto raced = index_.find(key);
  if (raced != index_.end()) RemoveLocked(raced->second);  // swap in ours
  probation_.push_front(
      Entry{key, std::move(value), entry_bytes, NextTick(), false});
  index_[key] = probation_.begin();
  bytes_ += entry_bytes;
  if (restore) ++restored_;
  EnforceProtectedCapLocked();  // evictions above may have shrunk bytes_
  PublishColdnessLocked();
  PublishGaugesLocked();
  return true;
}

bool ShardCache::ReserveBudget(size_t bytes) {
  if (budget_->TryCharge(budget_id_, bytes)) return true;  // fast path
  if (bytes > budget_->budget_bytes()) return false;       // can never fit
  // Over-budget negotiation, SERIALIZED across shards: without it, two
  // concurrent first inserts would each see the other's charged-but-not-
  // yet-resident bytes as unshebbable pressure and spuriously refuse
  // inserts that fit one after the other. TryCharge admits only within
  // budget, so resident bytes can never exceed it — the loop just frees
  // room, it never "overdrafts".
  MutexLock pressure(budget_->pressure_mu());
  int empty_rounds = 0;
  for (int spins = 0; spins < 1024; ++spins) {
    if (budget_->TryCharge(budget_id_, bytes)) return true;
    CacheBudget::Victim victim;
    size_t freed = 0;
    if (budget_->PickVictim(budget_id_, bytes, &victim)) {
      freed = victim.cache->ShedBytes(victim.bytes, victim.floor_bytes);
    }
    if (freed == 0) {
      // Nothing shed this round — no victim, or a victim whose CHARGED
      // bytes are a peer's reservation that has not landed as a resident
      // (sheddable) entry yet. That peer charged on the fast path and
      // inserts without needing pressure_mu, so yielding lets it land;
      // a run of empty rounds means it is genuinely floors all the way
      // down, and the insert is refused.
      if (++empty_rounds > 16) return false;
      std::this_thread::yield();
    } else {
      empty_rounds = 0;
    }
  }
  return false;
}

size_t ShardCache::ShedBytes(size_t target_bytes, size_t floor_bytes) {
  MutexLock lock(mu_);
  size_t freed = 0;
  while (freed < target_bytes) {
    const Entry* victim = VictimLocked();
    if (victim == nullptr) break;
    // Never shed past the floor: whole-entry eviction is coarse, so the
    // check is against the post-eviction total, not the target.
    if (bytes_ < victim->bytes + floor_bytes) break;
    freed += EvictOneLocked();
  }
  // Eviction drains probation first; re-balance so a shrunken cache is not
  // left all-protected (every future insert would be its own next victim).
  EnforceProtectedCapLocked();
  PublishColdnessLocked();
  PublishGaugesLocked();
  return freed;
}

void ShardCache::Clear() {
  MutexLock lock(mu_);
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(budget_id_, bytes_);
  probation_.clear();
  protected_.clear();
  index_.clear();
  bytes_ = 0;
  protected_bytes_ = 0;
  PublishColdnessLocked();
  PublishGaugesLocked();
}

std::vector<std::pair<RequestCacheKey, Decision>> ShardCache::SnapshotEntries()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<RequestCacheKey, Decision>> entries;
  entries.reserve(index_.size());
  for (auto it = probation_.rbegin(); it != probation_.rend(); ++it) {
    entries.emplace_back(it->key, it->value);
  }
  for (auto it = protected_.rbegin(); it != protected_.rend(); ++it) {
    entries.emplace_back(it->key, it->value);
  }
  return entries;
}

size_t ShardCache::size() const {
  MutexLock lock(mu_);
  return index_.size();
}

size_t ShardCache::bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

CacheStats ShardCache::stats() const {
  MutexLock lock(mu_);
  CacheStats stats;
  stats.entries = index_.size();
  stats.bytes = bytes_;
  stats.protected_bytes = protected_bytes_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.admission_rejects = admission_rejects_;
  stats.restored = restored_;
  return stats;
}

void ShardCache::PromoteLocked(EntryList::iterator it) {
  Entry& entry = *it;
  protected_.splice(protected_.begin(), probation_, it);
  entry.in_protected = true;
  protected_bytes_ += entry.bytes;
  EnforceProtectedCapLocked();
}

void ShardCache::EnforceProtectedCapLocked() {
  const size_t cap =
      static_cast<size_t>(options_.protected_fraction *
                          static_cast<double>(bytes_));
  while (protected_bytes_ > cap && protected_.size() > 1) {
    auto tail = std::prev(protected_.end());
    tail->in_protected = false;
    protected_bytes_ -= tail->bytes;
    // Demoted to probation FRONT: it outlives genuinely cold probation
    // entries but is back in the eviction segment.
    probation_.splice(probation_.begin(), protected_, tail);
  }
}

const ShardCache::Entry* ShardCache::VictimLocked() const {
  if (!probation_.empty()) return &probation_.back();
  if (!protected_.empty()) return &protected_.back();
  return nullptr;
}

size_t ShardCache::EvictOneLocked() {
  EntryList::iterator victim;
  if (!probation_.empty()) {
    victim = std::prev(probation_.end());
  } else if (!protected_.empty()) {
    victim = std::prev(protected_.end());
  } else {
    return 0;
  }
  const size_t freed = victim->bytes;
  RemoveLocked(victim);
  ++evictions_;
  if (events_.evictions != nullptr) events_.evictions->Inc();
  return freed;
}

void ShardCache::RemoveLocked(EntryList::iterator it) {
  Entry& entry = *it;
  if (budget_ != nullptr) budget_->Release(budget_id_, entry.bytes);
  bytes_ -= entry.bytes;
  if (entry.in_protected) {
    protected_bytes_ -= entry.bytes;
    index_.erase(entry.key);
    protected_.erase(it);
  } else {
    index_.erase(entry.key);
    probation_.erase(it);
  }
}

void ShardCache::PublishColdnessLocked() {
  if (budget_ == nullptr) return;
  uint64_t coldest = std::numeric_limits<uint64_t>::max();  // empty: no victim
  if (!probation_.empty()) {
    coldest = probation_.back().touch;
  } else if (!protected_.empty()) {
    coldest = protected_.back().touch;
  }
  budget_->UpdateColdness(budget_id_, coldest);
}

void ShardCache::PublishGaugesLocked() {
  if (events_.resident_bytes != nullptr) {
    events_.resident_bytes->Set(static_cast<int64_t>(bytes_));
  }
  if (events_.resident_entries != nullptr) {
    events_.resident_entries->Set(static_cast<int64_t>(index_.size()));
  }
}

}  // namespace cache
}  // namespace relcomp
