#include "ctable/condition.h"

#include <cassert>

namespace relcomp {

std::string CTermToString(const CTerm& t) {
  if (std::holds_alternative<VarId>(t)) {
    return "x" + std::to_string(std::get<VarId>(t).id);
  }
  return std::get<Value>(t).ToString();
}

void Valuation::Bind(VarId var, const Value& value) {
  assert(var.id >= 0);
  if (static_cast<size_t>(var.id) >= slots_.size()) {
    slots_.resize(static_cast<size_t>(var.id) + 1);
  }
  slots_[static_cast<size_t>(var.id)] = value;
}

void Valuation::Unbind(VarId var) {
  if (var.id >= 0 && static_cast<size_t>(var.id) < slots_.size()) {
    slots_[static_cast<size_t>(var.id)].reset();
  }
}

std::optional<Value> Valuation::Get(VarId var) const {
  if (var.id < 0 || static_cast<size_t>(var.id) >= slots_.size()) {
    return std::nullopt;
  }
  return slots_[static_cast<size_t>(var.id)];
}

std::optional<Value> Valuation::Resolve(const CTerm& term) const {
  if (std::holds_alternative<Value>(term)) return std::get<Value>(term);
  return Get(std::get<VarId>(term));
}

std::string Valuation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].has_value()) continue;
    if (!first) out += ", ";
    first = false;
    out += "x" + std::to_string(i) + "=" + slots_[i]->ToString();
  }
  out += "}";
  return out;
}

std::string CondAtom::ToString() const {
  return CTermToString(lhs) + (neq ? " != " : " = ") + CTermToString(rhs);
}

Condition Condition::VarNeqConst(VarId v, Value c) {
  return Condition({CondAtom{v, true, c}});
}

Condition Condition::VarEqConst(VarId v, Value c) {
  return Condition({CondAtom{v, false, c}});
}

Condition Condition::VarNeqVar(VarId a, VarId b) {
  return Condition({CondAtom{a, true, b}});
}

std::optional<bool> Condition::Eval(const Valuation& mu) const {
  for (const CondAtom& atom : atoms_) {
    std::optional<Value> lhs = mu.Resolve(atom.lhs);
    std::optional<Value> rhs = mu.Resolve(atom.rhs);
    if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
    bool eq = (*lhs == *rhs);
    if (atom.neq ? eq : !eq) return false;
  }
  return true;
}

bool Condition::PossiblySatisfiable(const Valuation& mu) const {
  for (const CondAtom& atom : atoms_) {
    std::optional<Value> lhs = mu.Resolve(atom.lhs);
    std::optional<Value> rhs = mu.Resolve(atom.rhs);
    if (!lhs.has_value() || !rhs.has_value()) continue;  // unknown: keep going
    bool eq = (*lhs == *rhs);
    if (atom.neq ? eq : !eq) return false;
  }
  return true;
}

void Condition::CollectVars(std::vector<VarId>* vars) const {
  for (const CondAtom& atom : atoms_) {
    if (std::holds_alternative<VarId>(atom.lhs)) {
      vars->push_back(std::get<VarId>(atom.lhs));
    }
    if (std::holds_alternative<VarId>(atom.rhs)) {
      vars->push_back(std::get<VarId>(atom.rhs));
    }
  }
}

void Condition::CollectConstants(std::vector<Value>* consts) const {
  for (const CondAtom& atom : atoms_) {
    if (std::holds_alternative<Value>(atom.lhs)) {
      consts->push_back(std::get<Value>(atom.lhs));
    }
    if (std::holds_alternative<Value>(atom.rhs)) {
      consts->push_back(std::get<Value>(atom.rhs));
    }
  }
}

std::string Condition::ToString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " && ";
    out += atoms_[i].ToString();
  }
  return out;
}

}  // namespace relcomp
