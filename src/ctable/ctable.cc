#include "ctable/ctable.h"

#include <cassert>

namespace relcomp {

std::string CellToString(const Cell& cell) {
  if (std::holds_alternative<VarId>(cell)) {
    return "x" + std::to_string(std::get<VarId>(cell).id);
  }
  return std::get<Value>(cell).ToString();
}

std::string CRow::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += CellToString(cells[i]);
  }
  out += ")";
  if (!condition.IsTrivial()) {
    out += " if " + condition.ToString();
  }
  return out;
}

CTable CTable::FromRelation(const Relation& rel) {
  CTable table(rel.schema());
  for (const Tuple& t : rel.rows()) {
    std::vector<Cell> cells(t.begin(), t.end());
    table.AddRow(std::move(cells));
  }
  return table;
}

void CTable::AddRow(CRow row) {
  assert(row.cells.size() == schema_.arity());
  rows_.push_back(std::move(row));
}

void CTable::AddRow(std::vector<Cell> cells) {
  AddRow(CRow{std::move(cells), Condition::True()});
}

Result<Relation> CTable::Apply(const Valuation& mu) const {
  Relation out(schema_);
  for (const CRow& row : rows_) {
    std::optional<bool> keep = row.condition.Eval(mu);
    if (!keep.has_value()) {
      return Status::InvalidArgument(
          "valuation leaves a condition variable unbound in row " +
          row.ToString());
    }
    if (!*keep) continue;
    Tuple t;
    t.reserve(row.cells.size());
    bool complete = true;
    for (const Cell& cell : row.cells) {
      if (std::holds_alternative<Value>(cell)) {
        t.push_back(std::get<Value>(cell));
      } else {
        std::optional<Value> v = mu.Get(std::get<VarId>(cell));
        if (!v.has_value()) {
          complete = false;
          break;
        }
        t.push_back(*v);
      }
    }
    if (!complete) {
      return Status::InvalidArgument(
          "valuation leaves a cell variable unbound in row " + row.ToString());
    }
    out.Insert(std::move(t));
  }
  return out;
}

bool CTable::IsGround() const {
  for (const CRow& row : rows_) {
    if (!row.condition.IsTrivial()) return false;
    for (const Cell& cell : row.cells) {
      if (std::holds_alternative<VarId>(cell)) return false;
    }
  }
  return true;
}

void CTable::CollectVars(std::vector<VarId>* vars) const {
  for (const CRow& row : rows_) {
    for (const Cell& cell : row.cells) {
      if (std::holds_alternative<VarId>(cell)) {
        vars->push_back(std::get<VarId>(cell));
      }
    }
    row.condition.CollectVars(vars);
  }
}

void CTable::CollectConstants(std::vector<Value>* consts) const {
  for (const CRow& row : rows_) {
    for (const Cell& cell : row.cells) {
      if (std::holds_alternative<Value>(cell)) {
        consts->push_back(std::get<Value>(cell));
      }
    }
    row.condition.CollectConstants(consts);
  }
}

std::string CTable::ToString() const {
  std::string out = schema_.name() + "[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += "; ";
    out += rows_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace relcomp
