// C-instances: one c-table per relation schema. A c-instance T represents
// the set of ground instances { µ(T) } over all valuations µ; constrained by
// master data and CCs this becomes Mod(T, Dm, V) (Section 2.2).
#ifndef RELCOMP_CTABLE_CINSTANCE_H_
#define RELCOMP_CTABLE_CINSTANCE_H_

#include <string>
#include <vector>

#include "ctable/ctable.h"
#include "data/instance.h"
#include "data/schema.h"
#include "util/status.h"

namespace relcomp {

/// A c-instance T = (T1, ..., Tn) of a database schema.
class CInstance {
 public:
  CInstance() = default;
  /// Creates empty c-tables for every relation of `schema`.
  explicit CInstance(DatabaseSchema schema);

  /// Lifts a ground instance to a variable-free c-instance.
  static CInstance FromInstance(const Instance& instance);

  const DatabaseSchema& schema() const { return schema_; }
  const std::vector<CTable>& tables() const { return tables_; }
  std::vector<CTable>& tables() { return tables_; }

  /// C-table accessor by relation name; must exist.
  const CTable& at(const std::string& rel) const;
  CTable& at(const std::string& rel);

  /// Total number of rows across all c-tables (the paper's |T|).
  size_t TotalRows() const;

  /// µ(T): applies the valuation to every member table.
  Result<Instance> Apply(const Valuation& mu) const;

  /// True if every member table is ground.
  bool IsGround() const;

  /// Distinct variables used anywhere in the c-instance (sorted by id).
  std::vector<VarId> Vars() const;
  /// Constants used anywhere (sorted, unique).
  std::vector<Value> Constants() const;

  /// Number of variable slots to allocate for valuations (max id + 1).
  size_t VarUniverseSize() const;

  /// Enumerates all sub-c-instances obtained by deleting the rows at the
  /// given (table_index, row_index) positions. Used by MINP.
  CInstance RemoveRows(const std::vector<std::pair<int, int>>& rows) const;

  /// All (table_index, row_index) positions, in order.
  std::vector<std::pair<int, int>> AllRowPositions() const;

  std::string ToString() const;

 private:
  DatabaseSchema schema_;
  std::vector<CTable> tables_;  // parallel to schema_.relations()
};

}  // namespace relcomp

#endif  // RELCOMP_CTABLE_CINSTANCE_H_
