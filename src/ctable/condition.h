// Variables, valuations, and the local conditions ξ(t) of c-tables
// (Imielinski & Lipski / Grahne, as used in Section 2.2 of the paper).
// A condition is a conjunction of atoms x = y, x ≠ y, x = c, x ≠ c.
#ifndef RELCOMP_CTABLE_CONDITION_H_
#define RELCOMP_CTABLE_CONDITION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "data/value.h"

namespace relcomp {

/// A c-table variable (a "marked null"). Ids are dense and allocated by the
/// caller (typically sequentially per c-instance).
struct VarId {
  int32_t id = -1;

  friend bool operator==(VarId a, VarId b) { return a.id == b.id; }
  friend bool operator!=(VarId a, VarId b) { return a.id != b.id; }
  friend bool operator<(VarId a, VarId b) { return a.id < b.id; }
};

/// A term of a condition: a variable or a constant.
using CTerm = std::variant<VarId, Value>;

/// Renders a CTerm ("x3" or the constant).
std::string CTermToString(const CTerm& t);

/// A total or partial assignment of values to variables.
class Valuation {
 public:
  Valuation() = default;
  /// Pre-sizes storage for variables with ids in [0, num_vars).
  explicit Valuation(size_t num_vars) : slots_(num_vars) {}

  /// Binds `var` to `value` (overwrites).
  void Bind(VarId var, const Value& value);
  /// Removes the binding of `var`, if any.
  void Unbind(VarId var);
  /// The value bound to `var`, if bound.
  std::optional<Value> Get(VarId var) const;
  bool IsBound(VarId var) const { return Get(var).has_value(); }

  /// Resolves a term: constants map to themselves.
  std::optional<Value> Resolve(const CTerm& term) const;

  /// Number of allocated variable slots (max bound-or-presized id + 1).
  /// Bindings live at their VarId's index, so iterating [0, num_slots())
  /// with Get visits every binding — used by the cache weigher and the
  /// snapshot serializer.
  size_t num_slots() const { return slots_.size(); }

  std::string ToString() const;

 private:
  std::vector<std::optional<Value>> slots_;
};

/// One conjunct of a condition: `lhs op rhs` with op ∈ {=, ≠}.
struct CondAtom {
  CTerm lhs;
  bool neq = false;  // false: equality, true: inequality
  CTerm rhs;

  std::string ToString() const;
};

/// A conjunction of CondAtoms; the empty conjunction is `true`.
class Condition {
 public:
  Condition() = default;
  explicit Condition(std::vector<CondAtom> atoms) : atoms_(std::move(atoms)) {}

  /// The condition `true` (no conjuncts).
  static Condition True() { return Condition(); }

  /// Builder helpers.
  static Condition VarNeqConst(VarId v, Value c);
  static Condition VarEqConst(VarId v, Value c);
  static Condition VarNeqVar(VarId a, VarId b);

  void AddAtom(CondAtom atom) { atoms_.push_back(std::move(atom)); }
  const std::vector<CondAtom>& atoms() const { return atoms_; }
  bool IsTrivial() const { return atoms_.empty(); }

  /// Evaluates under a *total* (for the mentioned variables) valuation.
  /// Unbound variables make the result nullopt ("unknown").
  std::optional<bool> Eval(const Valuation& mu) const;

  /// Evaluates under a partial valuation with three-valued semantics:
  /// returns false only if some conjunct is definitely violated. Used for
  /// early pruning during valuation enumeration.
  bool PossiblySatisfiable(const Valuation& mu) const;

  /// Collects variables mentioned by the condition into `vars`.
  void CollectVars(std::vector<VarId>* vars) const;
  /// Collects constants mentioned by the condition into `consts`.
  void CollectConstants(std::vector<Value>* consts) const;

  std::string ToString() const;

 private:
  std::vector<CondAtom> atoms_;
};

}  // namespace relcomp

#endif  // RELCOMP_CTABLE_CONDITION_H_
