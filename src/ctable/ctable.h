// Conditional tables (c-tables): tableaux whose cells are constants or
// variables, each row guarded by a local condition ξ(t). Applying a valuation
// µ yields the ground relation µ(T) = { µ(t) | t ∈ T, ξ(µ(t)) true }.
#ifndef RELCOMP_CTABLE_CTABLE_H_
#define RELCOMP_CTABLE_CTABLE_H_

#include <string>
#include <variant>
#include <vector>

#include "ctable/condition.h"
#include "data/relation.h"
#include "data/schema.h"
#include "util/status.h"

namespace relcomp {

/// A tableau cell: constant or variable.
using Cell = std::variant<Value, VarId>;

/// Renders a cell ("x3" or the constant).
std::string CellToString(const Cell& cell);

/// One row of a c-table: a cell per attribute plus its local condition.
struct CRow {
  std::vector<Cell> cells;
  Condition condition;  // defaults to `true`

  std::string ToString() const;
};

/// A c-table (T, ξ) over a relation schema.
class CTable {
 public:
  CTable() = default;
  explicit CTable(RelationSchema schema) : schema_(std::move(schema)) {}

  /// Lifts a ground relation into a condition-free, variable-free c-table.
  static CTable FromRelation(const Relation& rel);

  const RelationSchema& schema() const { return schema_; }
  const std::vector<CRow>& rows() const { return rows_; }
  std::vector<CRow>& rows() { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Appends a row; arity must match the schema.
  void AddRow(CRow row);
  /// Convenience: appends a row of cells with condition `true`.
  void AddRow(std::vector<Cell> cells);

  /// µ(T): keeps rows whose condition holds under µ; all cells must resolve.
  /// Fails with kInvalidArgument if a variable in a kept row is unbound.
  Result<Relation> Apply(const Valuation& mu) const;

  /// True if no cell is a variable and every condition is trivial.
  bool IsGround() const;

  /// Collects all variables (cells + conditions) into `vars`.
  void CollectVars(std::vector<VarId>* vars) const;
  /// Collects all constants (cells + conditions) into `consts`.
  void CollectConstants(std::vector<Value>* consts) const;

  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<CRow> rows_;
};

}  // namespace relcomp

#endif  // RELCOMP_CTABLE_CTABLE_H_
