#include "ctable/cinstance.h"

#include <algorithm>
#include <cassert>

namespace relcomp {

CInstance::CInstance(DatabaseSchema schema) : schema_(std::move(schema)) {
  tables_.reserve(schema_.size());
  for (const RelationSchema& rel : schema_.relations()) {
    tables_.emplace_back(rel);
  }
}

CInstance CInstance::FromInstance(const Instance& instance) {
  CInstance out(instance.schema());
  for (size_t i = 0; i < instance.relations().size(); ++i) {
    out.tables_[i] = CTable::FromRelation(instance.relations()[i]);
  }
  return out;
}

const CTable& CInstance::at(const std::string& rel) const {
  for (const CTable& t : tables_) {
    if (t.schema().name() == rel) return t;
  }
  assert(false && "unknown relation");
  static CTable empty;
  return empty;
}

CTable& CInstance::at(const std::string& rel) {
  for (CTable& t : tables_) {
    if (t.schema().name() == rel) return t;
  }
  assert(false && "unknown relation");
  static CTable empty;
  return empty;
}

size_t CInstance::TotalRows() const {
  size_t n = 0;
  for (const CTable& t : tables_) n += t.size();
  return n;
}

Result<Instance> CInstance::Apply(const Valuation& mu) const {
  Instance out(schema_);
  for (size_t i = 0; i < tables_.size(); ++i) {
    Result<Relation> rel = tables_[i].Apply(mu);
    if (!rel.ok()) return rel.status();
    out.relations()[i] = std::move(rel).value();
  }
  return out;
}

bool CInstance::IsGround() const {
  for (const CTable& t : tables_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

std::vector<VarId> CInstance::Vars() const {
  std::vector<VarId> vars;
  for (const CTable& t : tables_) t.CollectVars(&vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::vector<Value> CInstance::Constants() const {
  std::vector<Value> consts;
  for (const CTable& t : tables_) t.CollectConstants(&consts);
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

size_t CInstance::VarUniverseSize() const {
  std::vector<VarId> vars = Vars();
  if (vars.empty()) return 0;
  return static_cast<size_t>(vars.back().id) + 1;
}

CInstance CInstance::RemoveRows(
    const std::vector<std::pair<int, int>>& rows) const {
  CInstance out(schema_);
  for (size_t ti = 0; ti < tables_.size(); ++ti) {
    for (size_t ri = 0; ri < tables_[ti].rows().size(); ++ri) {
      bool removed = false;
      for (const auto& pos : rows) {
        if (pos.first == static_cast<int>(ti) &&
            pos.second == static_cast<int>(ri)) {
          removed = true;
          break;
        }
      }
      if (!removed) out.tables_[ti].AddRow(tables_[ti].rows()[ri]);
    }
  }
  return out;
}

std::vector<std::pair<int, int>> CInstance::AllRowPositions() const {
  std::vector<std::pair<int, int>> positions;
  for (size_t ti = 0; ti < tables_.size(); ++ti) {
    for (size_t ri = 0; ri < tables_[ti].rows().size(); ++ri) {
      positions.emplace_back(static_cast<int>(ti), static_cast<int>(ri));
    }
  }
  return positions;
}

std::string CInstance::ToString() const {
  std::string out;
  for (const CTable& t : tables_) {
    if (!out.empty()) out += "\n";
    out += t.ToString();
  }
  return out;
}

}  // namespace relcomp
