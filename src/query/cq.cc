#include "query/cq.h"

#include <algorithm>

namespace relcomp {

std::string RelAtom::ToString() const {
  std::string out = rel + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += CTermToString(args[i]);
  }
  out += ")";
  return out;
}

Status ConjunctiveQuery::Validate(const DatabaseSchema& schema) const {
  std::vector<VarId> bound;
  for (const RelAtom& atom : atoms_) {
    const RelationSchema* rel = schema.Find(atom.rel);
    if (rel == nullptr) {
      return Status::NotFound("query references unknown relation '" +
                              atom.rel + "'");
    }
    if (rel->arity() != atom.args.size()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " has arity " +
          std::to_string(atom.args.size()) + ", schema expects " +
          std::to_string(rel->arity()));
    }
    for (const CTerm& t : atom.args) {
      if (std::holds_alternative<VarId>(t)) {
        bound.push_back(std::get<VarId>(t));
      }
    }
  }
  auto is_bound = [&bound](const CTerm& t) {
    if (!std::holds_alternative<VarId>(t)) return true;
    VarId v = std::get<VarId>(t);
    return std::find(bound.begin(), bound.end(), v) != bound.end();
  };
  for (const CTerm& t : head_) {
    if (!is_bound(t)) {
      return Status::InvalidArgument("unsafe head term " + CTermToString(t) +
                                     " in query " + ToString());
    }
  }
  for (const CondAtom& b : builtins_) {
    if (!is_bound(b.lhs) || !is_bound(b.rhs)) {
      return Status::InvalidArgument("unsafe builtin " + b.ToString() +
                                     " in query " + ToString());
    }
  }
  return Status::OK();
}

std::vector<VarId> ConjunctiveQuery::Vars() const {
  std::vector<VarId> vars;
  auto add_term = [&vars](const CTerm& t) {
    if (std::holds_alternative<VarId>(t)) vars.push_back(std::get<VarId>(t));
  };
  for (const CTerm& t : head_) add_term(t);
  for (const RelAtom& atom : atoms_) {
    for (const CTerm& t : atom.args) add_term(t);
  }
  for (const CondAtom& b : builtins_) {
    add_term(b.lhs);
    add_term(b.rhs);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::vector<Value> ConjunctiveQuery::Constants() const {
  std::vector<Value> consts;
  auto add_term = [&consts](const CTerm& t) {
    if (std::holds_alternative<Value>(t)) consts.push_back(std::get<Value>(t));
  };
  for (const CTerm& t : head_) add_term(t);
  for (const RelAtom& atom : atoms_) {
    for (const CTerm& t : atom.args) add_term(t);
  }
  for (const CondAtom& b : builtins_) {
    add_term(b.lhs);
    add_term(b.rhs);
  }
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

Result<Instance> ConjunctiveQuery::InstantiateTableau(
    const Valuation& nu, const DatabaseSchema& schema) const {
  Instance out(schema);
  for (const RelAtom& atom : atoms_) {
    Tuple t;
    t.reserve(atom.args.size());
    for (const CTerm& term : atom.args) {
      std::optional<Value> v = nu.Resolve(term);
      if (!v.has_value()) {
        return Status::InvalidArgument("unbound variable in tableau atom " +
                                       atom.ToString());
      }
      t.push_back(*v);
    }
    if (schema.Find(atom.rel) == nullptr) {
      return Status::NotFound("tableau atom over unknown relation '" +
                              atom.rel + "'");
    }
    out.AddTuple(atom.rel, std::move(t));
  }
  return out;
}

Result<Tuple> ConjunctiveQuery::InstantiateHead(const Valuation& nu) const {
  Tuple t;
  t.reserve(head_.size());
  for (const CTerm& term : head_) {
    std::optional<Value> v = nu.Resolve(term);
    if (!v.has_value()) {
      return Status::InvalidArgument("unbound head variable");
    }
    t.push_back(*v);
  }
  return t;
}

bool ConjunctiveQuery::BuiltinsPossiblySatisfied(const Valuation& nu) const {
  for (const CondAtom& b : builtins_) {
    std::optional<Value> lhs = nu.Resolve(b.lhs);
    std::optional<Value> rhs = nu.Resolve(b.rhs);
    if (!lhs.has_value() || !rhs.has_value()) continue;
    bool eq = (*lhs == *rhs);
    if (b.neq ? eq : !eq) return false;
  }
  return true;
}

Result<bool> ConjunctiveQuery::BuiltinsSatisfied(const Valuation& nu) const {
  for (const CondAtom& b : builtins_) {
    std::optional<Value> lhs = nu.Resolve(b.lhs);
    std::optional<Value> rhs = nu.Resolve(b.rhs);
    if (!lhs.has_value() || !rhs.has_value()) {
      return Status::InvalidArgument("unbound variable in builtin " +
                                     b.ToString());
    }
    bool eq = (*lhs == *rhs);
    if (b.neq ? eq : !eq) return false;
  }
  return true;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += CTermToString(head_[i]);
  }
  out += ") :- ";
  bool first = true;
  for (const RelAtom& atom : atoms_) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString();
  }
  for (const CondAtom& b : builtins_) {
    if (!first) out += ", ";
    first = false;
    out += b.ToString();
  }
  return out;
}

}  // namespace relcomp
