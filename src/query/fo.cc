#include "query/fo.h"

#include <algorithm>
#include <map>

namespace relcomp {

FoPtr FoFormula::Atom(RelAtom atom) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kAtom;
  f->atom_ = std::move(atom);
  return f;
}

FoPtr FoFormula::Eq(CTerm lhs, CTerm rhs) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kCmp;
  f->cmp_ = CondAtom{std::move(lhs), false, std::move(rhs)};
  return f;
}

FoPtr FoFormula::Neq(CTerm lhs, CTerm rhs) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kCmp;
  f->cmp_ = CondAtom{std::move(lhs), true, std::move(rhs)};
  return f;
}

FoPtr FoFormula::And(std::vector<FoPtr> children) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(children);
  return f;
}

FoPtr FoFormula::Or(std::vector<FoPtr> children) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(children);
  return f;
}

FoPtr FoFormula::Not(FoPtr child) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kNot;
  f->children_ = {std::move(child)};
  return f;
}

FoPtr FoFormula::Exists(std::vector<VarId> vars, FoPtr child) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kExists;
  f->bound_vars_ = std::move(vars);
  f->children_ = {std::move(child)};
  return f;
}

FoPtr FoFormula::Forall(std::vector<VarId> vars, FoPtr child) {
  auto f = std::shared_ptr<FoFormula>(new FoFormula());
  f->kind_ = Kind::kForall;
  f->bound_vars_ = std::move(vars);
  f->children_ = {std::move(child)};
  return f;
}

bool FoFormula::IsExistentialPositive() const {
  switch (kind_) {
    case Kind::kAtom:
    case Kind::kCmp:
      return true;
    case Kind::kNot:
    case Kind::kForall:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kExists:
      for (const FoPtr& child : children_) {
        if (!child->IsExistentialPositive()) return false;
      }
      return true;
  }
  return false;
}

void FoFormula::Collect(std::vector<Value>* consts,
                        std::vector<VarId>* vars) const {
  auto add_term = [&](const CTerm& t) {
    if (std::holds_alternative<Value>(t)) {
      if (consts != nullptr) consts->push_back(std::get<Value>(t));
    } else if (vars != nullptr) {
      vars->push_back(std::get<VarId>(t));
    }
  };
  switch (kind_) {
    case Kind::kAtom:
      for (const CTerm& t : atom_.args) add_term(t);
      break;
    case Kind::kCmp:
      add_term(cmp_.lhs);
      add_term(cmp_.rhs);
      break;
    default:
      break;
  }
  if (vars != nullptr) {
    vars->insert(vars->end(), bound_vars_.begin(), bound_vars_.end());
  }
  for (const FoPtr& child : children_) child->Collect(consts, vars);
}

std::string FoFormula::ToString() const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_.ToString();
    case Kind::kCmp:
      return cmp_.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string op = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += op;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "!" + children_[0]->ToString();
    case Kind::kExists:
    case Kind::kForall: {
      std::string out = kind_ == Kind::kExists ? "exists" : "forall";
      for (VarId v : bound_vars_) out += " x" + std::to_string(v.id);
      return out + " (" + children_[0]->ToString() + ")";
    }
  }
  return "?";
}

std::vector<Value> FoQuery::Constants() const {
  std::vector<Value> consts;
  if (formula_ != nullptr) formula_->Collect(&consts, nullptr);
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

namespace {

// A partial conjunct under construction during DNF expansion.
struct Conjunct {
  std::vector<RelAtom> atoms;
  std::vector<CondAtom> builtins;
};

// Renaming environment mapping original var ids to fresh ids.
using RenameEnv = std::map<int32_t, VarId>;

CTerm RenameTerm(const CTerm& t, const RenameEnv& env) {
  if (std::holds_alternative<Value>(t)) return t;
  VarId v = std::get<VarId>(t);
  auto it = env.find(v.id);
  return it == env.end() ? CTerm(v) : CTerm(it->second);
}

Status ExpandDnf(const FoFormula& f, const RenameEnv& env, int32_t* next_id,
                 std::vector<Conjunct>* out) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom: {
      RelAtom atom = f.atom();
      for (CTerm& t : atom.args) t = RenameTerm(t, env);
      out->push_back(Conjunct{{std::move(atom)}, {}});
      return Status::OK();
    }
    case FoFormula::Kind::kCmp: {
      CondAtom cmp = f.cmp();
      cmp.lhs = RenameTerm(cmp.lhs, env);
      cmp.rhs = RenameTerm(cmp.rhs, env);
      out->push_back(Conjunct{{}, {std::move(cmp)}});
      return Status::OK();
    }
    case FoFormula::Kind::kOr: {
      for (const FoPtr& child : f.children()) {
        RELCOMP_RETURN_IF_ERROR(ExpandDnf(*child, env, next_id, out));
      }
      return Status::OK();
    }
    case FoFormula::Kind::kAnd: {
      std::vector<Conjunct> acc = {Conjunct{}};
      for (const FoPtr& child : f.children()) {
        std::vector<Conjunct> child_dnf;
        RELCOMP_RETURN_IF_ERROR(ExpandDnf(*child, env, next_id, &child_dnf));
        std::vector<Conjunct> merged;
        for (const Conjunct& a : acc) {
          for (const Conjunct& b : child_dnf) {
            Conjunct m = a;
            m.atoms.insert(m.atoms.end(), b.atoms.begin(), b.atoms.end());
            m.builtins.insert(m.builtins.end(), b.builtins.begin(),
                              b.builtins.end());
            merged.push_back(std::move(m));
          }
        }
        acc = std::move(merged);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return Status::OK();
    }
    case FoFormula::Kind::kExists: {
      RenameEnv extended = env;
      for (VarId v : f.bound_vars()) {
        extended[v.id] = VarId{(*next_id)++};
      }
      return ExpandDnf(*f.children()[0], extended, next_id, out);
    }
    case FoFormula::Kind::kNot:
    case FoFormula::Kind::kForall:
      return Status::InvalidArgument(
          "formula is not existential-positive; cannot convert to UCQ");
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<UnionQuery> FoQuery::ToUcq() const {
  if (formula_ == nullptr) {
    return Status::InvalidArgument("empty FO query");
  }
  // Fresh ids start above every id mentioned in the formula or head.
  std::vector<VarId> vars;
  formula_->Collect(nullptr, &vars);
  vars.insert(vars.end(), head_.begin(), head_.end());
  int32_t next_id = 0;
  for (VarId v : vars) next_id = std::max(next_id, v.id + 1);

  std::vector<Conjunct> dnf;
  RELCOMP_RETURN_IF_ERROR(ExpandDnf(*formula_, RenameEnv{}, &next_id, &dnf));

  std::vector<CTerm> head;
  head.reserve(head_.size());
  for (VarId v : head_) head.push_back(v);

  UnionQuery ucq;
  for (Conjunct& c : dnf) {
    ucq.AddDisjunct(ConjunctiveQuery(head, std::move(c.atoms),
                                     std::move(c.builtins)));
  }
  return ucq;
}

std::string FoQuery::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "x" + std::to_string(head_[i].id);
  }
  out += ") := ";
  out += formula_ == nullptr ? "<empty>" : formula_->ToString();
  return out;
}

}  // namespace relcomp
