// FP: the paper's extension of ∃FO⁺ with an inflational fixpoint operator,
// i.e. datalog programs p(x⃗) ← p1(x⃗1), ..., pm(x⃗m) whose body predicates are
// EDB relations or IDB predicates, with =/≠ builtins allowed in rule bodies.
// Evaluation is the inflationary fixpoint lfp(Q′) of Section 5.4 / App. A.
#ifndef RELCOMP_QUERY_FP_H_
#define RELCOMP_QUERY_FP_H_

#include <string>
#include <vector>

#include "query/cq.h"

namespace relcomp {

/// One datalog rule: head(args) ← body atoms, builtins.
struct FpRule {
  RelAtom head;
  std::vector<RelAtom> body;
  std::vector<CondAtom> builtins;

  std::string ToString() const;
};

/// A datalog program with a designated output IDB predicate.
class FpProgram {
 public:
  FpProgram() = default;
  FpProgram(std::vector<FpRule> rules, std::string output)
      : rules_(std::move(rules)), output_(std::move(output)) {}

  const std::vector<FpRule>& rules() const { return rules_; }
  const std::string& output() const { return output_; }
  void AddRule(FpRule rule) { rules_.push_back(std::move(rule)); }
  void set_output(std::string output) { output_ = std::move(output); }

  /// Names of IDB predicates (those occurring in rule heads), sorted.
  std::vector<std::string> IdbPredicates() const;

  /// Arity of the output predicate (from its head occurrence); 0 if unknown.
  size_t OutputArity() const;

  /// Q(I): computes the inflationary fixpoint over EDB ∪ IDB and returns the
  /// output predicate's relation. Fails on arity clashes, head variables not
  /// bound in the body, or IDB/EDB name collisions.
  Result<Relation> Eval(const Instance& edb) const;

  /// Checks well-formedness against the EDB schema.
  Status Validate(const DatabaseSchema& edb_schema) const;

  /// Constants appearing in any rule (sorted, unique).
  std::vector<Value> Constants() const;

  std::string ToString() const;

 private:
  std::vector<FpRule> rules_;
  std::string output_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_FP_H_
