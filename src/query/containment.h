// Containment constraints (CCs): φ = q(R) ⊆ p(Rm) where q is a CQ (with
// =/≠) over the database schema and p is a projection over a master
// relation. (I, Dm) ⊨ φ iff q(I) ⊆ π_cols(Dm[master]). CCs bound part of a
// database by the closed-world master data; with ≠ they also express denial
// constraints, FDs and CFDs (Section 2.1 / Example 2.1).
#ifndef RELCOMP_QUERY_CONTAINMENT_H_
#define RELCOMP_QUERY_CONTAINMENT_H_

#include <string>
#include <vector>

#include "query/cq.h"

namespace relcomp {

/// A single containment constraint q(R) ⊆ π_cols(Rm).
class ContainmentConstraint {
 public:
  ContainmentConstraint() = default;
  ContainmentConstraint(std::string name, ConjunctiveQuery q,
                        std::string master_rel, std::vector<int> master_cols)
      : name_(std::move(name)),
        q_(std::move(q)),
        master_rel_(std::move(master_rel)),
        master_cols_(std::move(master_cols)) {}

  const std::string& name() const { return name_; }
  const ConjunctiveQuery& q() const { return q_; }
  const std::string& master_rel() const { return master_rel_; }
  const std::vector<int>& master_cols() const { return master_cols_; }

  /// (I, Dm) ⊨ φ.
  Result<bool> Satisfied(const Instance& instance, const Instance& dm) const;

  /// π_cols(Dm[master]) — the closed-world side of the constraint. Deciders
  /// recompute this on every CC check; a prepared setting caches it once.
  Result<Relation> ProjectMaster(const Instance& dm) const;

  /// (I, Dm) ⊨ φ with the master projection already computed; the hot path
  /// of every decider's extension/world enumeration.
  Result<bool> SatisfiedAgainst(const Instance& instance,
                                const Relation& projected_master) const;

  /// Validates the CC against database and master schemas (arity of head
  /// matches projection width, relations exist).
  Status Validate(const DatabaseSchema& schema,
                  const DatabaseSchema& master_schema) const;

  /// True if this CC is an inclusion dependency π_cols(R) ⊆ π_cols'(Rm):
  /// single relation atom, no builtins, head a list of distinct variables
  /// drawn from the atom. INDs make RCQP tractable (Corollary 7.2).
  bool IsInd() const;

  std::string ToString() const;

 private:
  std::string name_;
  ConjunctiveQuery q_;
  std::string master_rel_;
  std::vector<int> master_cols_;
};

/// A set V of CCs.
using CCSet = std::vector<ContainmentConstraint>;

/// (I, Dm) ⊨ V.
Result<bool> SatisfiesCCs(const Instance& instance, const Instance& dm,
                          const CCSet& ccs);

/// Constants mentioned by any CC body/head (sorted, unique).
std::vector<Value> CcConstants(const CCSet& ccs);

/// Largest variable id used by any CC, or -1.
int32_t CcMaxVarId(const CCSet& ccs);

/// True if every CC in V is an IND.
bool AllInds(const CCSet& ccs);

/// Encodes the FD `lhs → rhs` on relation `rel` as a CC whose body detects
/// violating tuple pairs and whose head must be contained in the empty
/// master relation `empty_master_rel` (arity 1), following Example 2.1.
/// `lhs` / `rhs` are attribute indices of `rel`.
Result<ContainmentConstraint> EncodeFdAsCc(const RelationSchema& rel,
                                           const std::vector<int>& lhs,
                                           int rhs,
                                           const std::string& empty_master_rel);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_CONTAINMENT_H_
