// Backtracking-join evaluator for conjunctive queries. Atoms are processed
// left to right; builtins are checked as soon as both sides are bound.
#include <optional>

#include "query/cq.h"

namespace relcomp {
namespace {

class CqEvaluator {
 public:
  CqEvaluator(const ConjunctiveQuery& q, const Instance& instance)
      : q_(q), instance_(instance) {}

  Result<Relation> Run() {
    RELCOMP_RETURN_IF_ERROR(q_.Validate(instance_.schema()));
    Relation out(RelationSchema::Anonymous("out", q_.OutputArity()));
    Status st = Recurse(0, &out);
    if (!st.ok()) return st;
    return out;
  }

 private:
  Status Recurse(size_t atom_index, Relation* out) {
    if (atom_index == q_.atoms().size()) {
      Result<bool> sat = q_.BuiltinsSatisfied(binding_);
      if (!sat.ok()) return sat.status();
      if (!*sat) return Status::OK();
      Result<Tuple> head = q_.InstantiateHead(binding_);
      if (!head.ok()) return head.status();
      out->Insert(std::move(head).value());
      return Status::OK();
    }
    const RelAtom& atom = q_.atoms()[atom_index];
    const Relation& rel = instance_.at(atom.rel);
    for (const Tuple& tuple : rel.rows()) {
      std::vector<VarId> newly_bound;
      if (!TryUnify(atom, tuple, &newly_bound)) {
        Rollback(newly_bound);
        continue;
      }
      if (!q_.BuiltinsPossiblySatisfied(binding_)) {
        Rollback(newly_bound);
        continue;
      }
      Status st = Recurse(atom_index + 1, out);
      Rollback(newly_bound);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  // Attempts to unify the atom's terms with a concrete tuple, extending the
  // current binding. Records freshly bound vars for rollback.
  bool TryUnify(const RelAtom& atom, const Tuple& tuple,
                std::vector<VarId>* newly_bound) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const CTerm& term = atom.args[i];
      if (std::holds_alternative<Value>(term)) {
        if (std::get<Value>(term) != tuple[i]) return false;
        continue;
      }
      VarId var = std::get<VarId>(term);
      std::optional<Value> bound = binding_.Get(var);
      if (bound.has_value()) {
        if (*bound != tuple[i]) return false;
      } else {
        binding_.Bind(var, tuple[i]);
        newly_bound->push_back(var);
      }
    }
    return true;
  }

  void Rollback(const std::vector<VarId>& vars) {
    for (VarId v : vars) binding_.Unbind(v);
  }

  const ConjunctiveQuery& q_;
  const Instance& instance_;
  Valuation binding_;
};

}  // namespace

Result<Relation> ConjunctiveQuery::Eval(const Instance& instance) const {
  CqEvaluator evaluator(*this, instance);
  return evaluator.Run();
}

}  // namespace relcomp
