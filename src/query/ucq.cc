#include "query/ucq.h"

#include <algorithm>

namespace relcomp {

Result<Relation> UnionQuery::Eval(const Instance& instance) const {
  Relation out(RelationSchema::Anonymous("out", OutputArity()));
  for (const ConjunctiveQuery& q : disjuncts_) {
    Result<Relation> part = q.Eval(instance);
    if (!part.ok()) return part.status();
    out.InsertAll(*part);
  }
  return out;
}

Status UnionQuery::Validate(const DatabaseSchema& schema) const {
  if (disjuncts_.empty()) {
    return Status::InvalidArgument("UCQ must have at least one disjunct");
  }
  size_t arity = disjuncts_.front().OutputArity();
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.OutputArity() != arity) {
      return Status::InvalidArgument("UCQ disjuncts have differing arities");
    }
    RELCOMP_RETURN_IF_ERROR(q.Validate(schema));
  }
  return Status::OK();
}

std::vector<Value> UnionQuery::Constants() const {
  std::vector<Value> consts;
  for (const ConjunctiveQuery& q : disjuncts_) {
    std::vector<Value> qc = q.Constants();
    consts.insert(consts.end(), qc.begin(), qc.end());
  }
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "  UNION  ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

}  // namespace relcomp
