// Conjunctive queries with equality and inequality (the paper's CQ): built
// from relation atoms, =, ≠, closed under ∧ and ∃. A CQ doubles as its own
// tableau query (T_Q, u_Q): `atoms()` is the tableau and `head()` the output
// summary, which is how the RCDP/MINP characterizations (Lemmas 4.2/4.3) use
// it to generate candidate extensions ν(T_Q).
#ifndef RELCOMP_QUERY_CQ_H_
#define RELCOMP_QUERY_CQ_H_

#include <string>
#include <vector>

#include "ctable/condition.h"
#include "data/instance.h"
#include "data/schema.h"
#include "util/status.h"

namespace relcomp {

/// A relation atom R(t1, ..., tk); terms are variables or constants.
struct RelAtom {
  std::string rel;
  std::vector<CTerm> args;

  std::string ToString() const;
};

/// A conjunctive query: head (output summary), relation atoms, and built-in
/// (in)equality atoms.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<CTerm> head, std::vector<RelAtom> atoms,
                   std::vector<CondAtom> builtins = {})
      : head_(std::move(head)),
        atoms_(std::move(atoms)),
        builtins_(std::move(builtins)) {}

  const std::vector<CTerm>& head() const { return head_; }
  const std::vector<RelAtom>& atoms() const { return atoms_; }
  const std::vector<CondAtom>& builtins() const { return builtins_; }
  size_t OutputArity() const { return head_.size(); }

  std::vector<CTerm>& mutable_head() { return head_; }
  std::vector<RelAtom>& mutable_atoms() { return atoms_; }
  std::vector<CondAtom>& mutable_builtins() { return builtins_; }

  /// Q(I): evaluates by backtracking join. Fails on unknown relations, arity
  /// mismatches, or unsafe queries (head/builtin variable not bound by any
  /// relation atom).
  Result<Relation> Eval(const Instance& instance) const;

  /// Checks well-formedness against `schema` (relations exist, arities match,
  /// safety). OK status if valid.
  Status Validate(const DatabaseSchema& schema) const;

  /// Distinct variables (head, atoms, builtins), sorted by id.
  std::vector<VarId> Vars() const;
  /// Constants appearing anywhere in the query (sorted, unique).
  std::vector<Value> Constants() const;

  /// ν(T_Q): instantiates the tableau under a total valuation, producing the
  /// set of ground tuples per relation as an Instance over `schema`.
  /// Fails if a variable is unbound.
  Result<Instance> InstantiateTableau(const Valuation& nu,
                                      const DatabaseSchema& schema) const;

  /// ν(u_Q): instantiates the head under a total valuation.
  Result<Tuple> InstantiateHead(const Valuation& nu) const;

  /// True if all builtins with both sides bound under `nu` hold; atoms with
  /// unbound sides are skipped (three-valued, used for pruning).
  bool BuiltinsPossiblySatisfied(const Valuation& nu) const;
  /// True if all builtins hold under a total valuation.
  Result<bool> BuiltinsSatisfied(const Valuation& nu) const;

  std::string ToString() const;

 private:
  std::vector<CTerm> head_;
  std::vector<RelAtom> atoms_;
  std::vector<CondAtom> builtins_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_CQ_H_
