#include "query/fp.h"

#include <algorithm>

namespace relcomp {

std::string FpRule::ToString() const {
  std::string out = head.ToString() + " :- ";
  bool first = true;
  for (const RelAtom& atom : body) {
    if (!first) out += ", ";
    first = false;
    out += atom.ToString();
  }
  for (const CondAtom& b : builtins) {
    if (!first) out += ", ";
    first = false;
    out += b.ToString();
  }
  return out;
}

std::vector<std::string> FpProgram::IdbPredicates() const {
  std::vector<std::string> idbs;
  for (const FpRule& rule : rules_) idbs.push_back(rule.head.rel);
  std::sort(idbs.begin(), idbs.end());
  idbs.erase(std::unique(idbs.begin(), idbs.end()), idbs.end());
  return idbs;
}

size_t FpProgram::OutputArity() const {
  for (const FpRule& rule : rules_) {
    if (rule.head.rel == output_) return rule.head.args.size();
  }
  return 0;
}

Status FpProgram::Validate(const DatabaseSchema& edb_schema) const {
  std::vector<std::string> idbs = IdbPredicates();
  auto is_idb = [&idbs](const std::string& name) {
    return std::binary_search(idbs.begin(), idbs.end(), name);
  };
  for (const std::string& idb : idbs) {
    if (edb_schema.Contains(idb)) {
      return Status::InvalidArgument("IDB predicate '" + idb +
                                     "' collides with an EDB relation");
    }
  }
  if (!is_idb(output_)) {
    return Status::InvalidArgument("output predicate '" + output_ +
                                   "' is not defined by any rule");
  }
  // IDB arities must be consistent across occurrences.
  std::vector<std::pair<std::string, size_t>> arities;
  auto check_arity = [&arities](const RelAtom& atom) -> Status {
    for (const auto& known : arities) {
      if (known.first == atom.rel) {
        if (known.second != atom.args.size()) {
          return Status::InvalidArgument("inconsistent arity for IDB '" +
                                         atom.rel + "'");
        }
        return Status::OK();
      }
    }
    arities.emplace_back(atom.rel, atom.args.size());
    return Status::OK();
  };
  for (const FpRule& rule : rules_) {
    RELCOMP_RETURN_IF_ERROR(check_arity(rule.head));
    for (const RelAtom& atom : rule.body) {
      if (is_idb(atom.rel)) {
        RELCOMP_RETURN_IF_ERROR(check_arity(atom));
      } else {
        const RelationSchema* rel = edb_schema.Find(atom.rel);
        if (rel == nullptr) {
          return Status::NotFound("rule body references unknown relation '" +
                                  atom.rel + "'");
        }
        if (rel->arity() != atom.args.size()) {
          return Status::InvalidArgument("arity mismatch in body atom " +
                                         atom.ToString());
        }
      }
    }
    // Safety: head variables must occur in the body.
    std::vector<VarId> body_vars;
    for (const RelAtom& atom : rule.body) {
      for (const CTerm& t : atom.args) {
        if (std::holds_alternative<VarId>(t)) {
          body_vars.push_back(std::get<VarId>(t));
        }
      }
    }
    for (const CTerm& t : rule.head.args) {
      if (std::holds_alternative<VarId>(t)) {
        VarId v = std::get<VarId>(t);
        if (std::find(body_vars.begin(), body_vars.end(), v) ==
            body_vars.end()) {
          return Status::InvalidArgument("unsafe rule (head var unbound): " +
                                         rule.ToString());
        }
      }
    }
  }
  return Status::OK();
}

std::vector<Value> FpProgram::Constants() const {
  std::vector<Value> consts;
  auto add_term = [&consts](const CTerm& t) {
    if (std::holds_alternative<Value>(t)) consts.push_back(std::get<Value>(t));
  };
  for (const FpRule& rule : rules_) {
    for (const CTerm& t : rule.head.args) add_term(t);
    for (const RelAtom& atom : rule.body) {
      for (const CTerm& t : atom.args) add_term(t);
    }
    for (const CondAtom& b : rule.builtins) {
      add_term(b.lhs);
      add_term(b.rhs);
    }
  }
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

std::string FpProgram::ToString() const {
  std::string out;
  for (const FpRule& rule : rules_) {
    out += rule.ToString() + ".\n";
  }
  out += "output " + output_ + ".";
  return out;
}

}  // namespace relcomp
