#include "query/containment.h"

#include <algorithm>

namespace relcomp {

Result<bool> ContainmentConstraint::Satisfied(const Instance& instance,
                                              const Instance& dm) const {
  Result<Relation> lhs = q_.Eval(instance);
  if (!lhs.ok()) return lhs.status();
  Result<Relation> rhs = ProjectMaster(dm);
  if (!rhs.ok()) return rhs.status();
  return lhs->IsSubsetOf(*rhs);
}

Result<Relation> ContainmentConstraint::ProjectMaster(
    const Instance& dm) const {
  const Relation* master = dm.Find(master_rel_);
  if (master == nullptr) {
    return Status::NotFound("CC '" + name_ + "' references unknown master '" +
                            master_rel_ + "'");
  }
  return master->Project(master_cols_);
}

Result<bool> ContainmentConstraint::SatisfiedAgainst(
    const Instance& instance, const Relation& projected_master) const {
  Result<Relation> lhs = q_.Eval(instance);
  if (!lhs.ok()) return lhs.status();
  return lhs->IsSubsetOf(projected_master);
}

Status ContainmentConstraint::Validate(
    const DatabaseSchema& schema, const DatabaseSchema& master_schema) const {
  RELCOMP_RETURN_IF_ERROR(q_.Validate(schema));
  const RelationSchema* master = master_schema.Find(master_rel_);
  if (master == nullptr) {
    return Status::NotFound("CC '" + name_ + "' references unknown master '" +
                            master_rel_ + "'");
  }
  if (master_cols_.size() != q_.OutputArity()) {
    return Status::InvalidArgument(
        "CC '" + name_ + "': head arity " + std::to_string(q_.OutputArity()) +
        " does not match projection width " +
        std::to_string(master_cols_.size()));
  }
  for (int c : master_cols_) {
    if (c < 0 || static_cast<size_t>(c) >= master->arity()) {
      return Status::InvalidArgument("CC '" + name_ +
                                     "': projection column out of range");
    }
  }
  return Status::OK();
}

bool ContainmentConstraint::IsInd() const {
  if (q_.atoms().size() != 1 || !q_.builtins().empty()) return false;
  const RelAtom& atom = q_.atoms()[0];
  std::vector<VarId> seen;
  for (const CTerm& t : q_.head()) {
    if (!std::holds_alternative<VarId>(t)) return false;
    VarId v = std::get<VarId>(t);
    if (std::find(seen.begin(), seen.end(), v) != seen.end()) return false;
    seen.push_back(v);
    bool in_atom = false;
    for (const CTerm& a : atom.args) {
      if (std::holds_alternative<VarId>(a) && std::get<VarId>(a) == v) {
        in_atom = true;
        break;
      }
    }
    if (!in_atom) return false;
  }
  return true;
}

std::string ContainmentConstraint::ToString() const {
  std::string out = name_.empty() ? "cc" : name_;
  out += ": " + q_.ToString() + "  SUBSETOF  " + master_rel_ + "[";
  for (size_t i = 0; i < master_cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(master_cols_[i]);
  }
  out += "]";
  return out;
}

Result<bool> SatisfiesCCs(const Instance& instance, const Instance& dm,
                          const CCSet& ccs) {
  for (const ContainmentConstraint& cc : ccs) {
    Result<bool> sat = cc.Satisfied(instance, dm);
    if (!sat.ok()) return sat.status();
    if (!*sat) return false;
  }
  return true;
}

std::vector<Value> CcConstants(const CCSet& ccs) {
  std::vector<Value> consts;
  for (const ContainmentConstraint& cc : ccs) {
    std::vector<Value> qc = cc.q().Constants();
    consts.insert(consts.end(), qc.begin(), qc.end());
  }
  std::sort(consts.begin(), consts.end());
  consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
  return consts;
}

int32_t CcMaxVarId(const CCSet& ccs) {
  int32_t mx = -1;
  for (const ContainmentConstraint& cc : ccs) {
    for (VarId v : cc.q().Vars()) mx = std::max(mx, v.id);
  }
  return mx;
}

bool AllInds(const CCSet& ccs) {
  for (const ContainmentConstraint& cc : ccs) {
    if (!cc.IsInd()) return false;
  }
  return true;
}

Result<ContainmentConstraint> EncodeFdAsCc(
    const RelationSchema& rel, const std::vector<int>& lhs, int rhs,
    const std::string& empty_master_rel) {
  size_t n = rel.arity();
  if (rhs < 0 || static_cast<size_t>(rhs) >= n) {
    return Status::InvalidArgument("FD rhs attribute index out of range");
  }
  for (int a : lhs) {
    if (a < 0 || static_cast<size_t>(a) >= n) {
      return Status::InvalidArgument("FD lhs attribute index out of range");
    }
  }
  // Two atoms over `rel` sharing variables on `lhs`, with distinct variables
  // y1 ≠ y2 at position `rhs`; all other positions get fresh variables.
  // Variables: [0, n) for the first atom; [n, 2n) for the second; shared on
  // lhs positions.
  std::vector<CTerm> args1, args2;
  args1.reserve(n);
  args2.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VarId v1{static_cast<int32_t>(i)};
    args1.push_back(v1);
    bool shared = std::find(lhs.begin(), lhs.end(), static_cast<int>(i)) !=
                  lhs.end();
    if (shared) {
      args2.push_back(v1);
    } else {
      args2.push_back(VarId{static_cast<int32_t>(n + i)});
    }
  }
  // The compared terms are whatever sits at the rhs position; if rhs ∈ lhs
  // they coincide and the ≠ builtin is unsatisfiable — the FD is trivial
  // and the CC can never fire, which is the correct semantics.
  CTerm y1 = args1[static_cast<size_t>(rhs)];
  CTerm y2 = args2[static_cast<size_t>(rhs)];
  ConjunctiveQuery q({y1},
                     {RelAtom{rel.name(), std::move(args1)},
                      RelAtom{rel.name(), std::move(args2)}},
                     {CondAtom{y1, true, y2}});
  std::string fd_name = "fd_" + rel.name() + "_" + std::to_string(rhs);
  return ContainmentConstraint(fd_name, std::move(q), empty_master_rel, {0});
}

}  // namespace relcomp
