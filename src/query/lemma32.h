// Lemma 3.2: every multi-relation setting collapses to a single relation via
// linear-time maps fD (instances), fQ (queries) and fC (CCs) such that
// Q(I) = fQ(Q)(fD(I)) and (I, Dm) ⊨ V ⇔ (fD(I), Dm) ⊨ fC(V). The collapsed
// schema extends a uniform schema with a finite-domain relation-tag attribute
// AR; narrower relations are padded with a designated constant.
#ifndef RELCOMP_QUERY_LEMMA32_H_
#define RELCOMP_QUERY_LEMMA32_H_

#include <string>

#include "data/instance.h"
#include "query/containment.h"
#include "query/query.h"

namespace relcomp {

/// The collapse transformation of Lemma 3.2 for a fixed database schema.
class SingleRelationCollapse {
 public:
  /// Prepares the collapse for `schema`; the collapsed relation is named
  /// `collapsed_name`.
  static Result<SingleRelationCollapse> Create(const DatabaseSchema& schema,
                                               std::string collapsed_name);

  /// The single-relation target schema (tag attribute first).
  const DatabaseSchema& collapsed_schema() const { return collapsed_schema_; }

  /// fD: maps an instance of the original schema to the collapsed schema.
  Result<Instance> MapInstance(const Instance& instance) const;

  /// fQ for CQ: rewrites every atom Ri(x⃗) to R(i, x⃗, pads...), allocating
  /// fresh pad variables starting at `*next_var`.
  Result<ConjunctiveQuery> MapCq(const ConjunctiveQuery& q,
                                 int32_t* next_var) const;

  /// fQ for any monotone query with disjuncts (CQ/UCQ/∃FO⁺ handled via
  /// disjunct mapping; FP rewrites EDB body atoms in place).
  Result<Query> MapQuery(const Query& q) const;

  /// fC: rewrites the body of every CC (master side is untouched).
  Result<CCSet> MapCcs(const CCSet& ccs) const;

  /// The padding constant used for missing columns.
  const Value& pad() const { return pad_; }

 private:
  DatabaseSchema original_schema_;
  DatabaseSchema collapsed_schema_;
  std::string collapsed_name_;
  size_t max_arity_ = 0;
  Value pad_ = Value::Sym("@pad");

  /// Tag value of relation `name` (its index in the original schema).
  Result<int> TagOf(const std::string& name) const;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_LEMMA32_H_
