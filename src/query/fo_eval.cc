// Active-domain evaluator for FO queries: quantifiers and free variables
// range over adom(I) ∪ constants(Q) ∪ extra_domain.
#include <algorithm>

#include "query/fo.h"

namespace relcomp {
namespace {

class FoEvaluator {
 public:
  FoEvaluator(const Instance& instance, std::vector<Value> domain)
      : instance_(instance), domain_(std::move(domain)) {}

  Result<bool> EvalFormula(const FoFormula& f, Valuation* binding) {
    switch (f.kind()) {
      case FoFormula::Kind::kAtom: {
        const Relation* rel = instance_.Find(f.atom().rel);
        if (rel == nullptr) {
          return Status::NotFound("FO atom over unknown relation '" +
                                  f.atom().rel + "'");
        }
        if (rel->arity() != f.atom().args.size()) {
          return Status::InvalidArgument("arity mismatch in FO atom " +
                                         f.atom().ToString());
        }
        Tuple t;
        t.reserve(f.atom().args.size());
        for (const CTerm& term : f.atom().args) {
          std::optional<Value> v = binding->Resolve(term);
          if (!v.has_value()) {
            return Status::InvalidArgument(
                "free variable in FO atom not covered by head/quantifier: " +
                f.atom().ToString());
          }
          t.push_back(*v);
        }
        return rel->Contains(t);
      }
      case FoFormula::Kind::kCmp: {
        std::optional<Value> lhs = binding->Resolve(f.cmp().lhs);
        std::optional<Value> rhs = binding->Resolve(f.cmp().rhs);
        if (!lhs.has_value() || !rhs.has_value()) {
          return Status::InvalidArgument("free variable in FO comparison");
        }
        bool eq = (*lhs == *rhs);
        return f.cmp().neq ? !eq : eq;
      }
      case FoFormula::Kind::kAnd: {
        for (const FoPtr& child : f.children()) {
          Result<bool> r = EvalFormula(*child, binding);
          if (!r.ok()) return r;
          if (!*r) return false;
        }
        return true;
      }
      case FoFormula::Kind::kOr: {
        for (const FoPtr& child : f.children()) {
          Result<bool> r = EvalFormula(*child, binding);
          if (!r.ok()) return r;
          if (*r) return true;
        }
        return false;
      }
      case FoFormula::Kind::kNot: {
        Result<bool> r = EvalFormula(*f.children()[0], binding);
        if (!r.ok()) return r;
        return !*r;
      }
      case FoFormula::Kind::kExists:
      case FoFormula::Kind::kForall: {
        bool exists = f.kind() == FoFormula::Kind::kExists;
        return EvalQuantifier(f, 0, exists, binding);
      }
    }
    return Status::Internal("unreachable FO kind");
  }

 private:
  Result<bool> EvalQuantifier(const FoFormula& f, size_t var_index,
                              bool exists, Valuation* binding) {
    if (var_index == f.bound_vars().size()) {
      return EvalFormula(*f.children()[0], binding);
    }
    VarId var = f.bound_vars()[var_index];
    for (const Value& v : domain_) {
      binding->Bind(var, v);
      Result<bool> r = EvalQuantifier(f, var_index + 1, exists, binding);
      binding->Unbind(var);
      if (!r.ok()) return r;
      if (exists && *r) return true;
      if (!exists && !*r) return false;
    }
    return !exists;
  }

  const Instance& instance_;
  std::vector<Value> domain_;
};

}  // namespace

Result<Relation> FoQuery::Eval(const Instance& instance,
                               const std::vector<Value>& extra_domain) const {
  if (formula_ == nullptr) {
    return Status::InvalidArgument("empty FO query");
  }
  std::vector<Value> domain = instance.ActiveDomain();
  std::vector<Value> consts = Constants();
  domain.insert(domain.end(), consts.begin(), consts.end());
  domain.insert(domain.end(), extra_domain.begin(), extra_domain.end());
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());

  FoEvaluator evaluator(instance, domain);
  Relation out(RelationSchema::Anonymous("out", head_.size()));

  // Enumerate assignments of the head variables over the domain.
  Valuation binding;
  Tuple current(head_.size());
  // Boolean query: no head variables.
  if (head_.empty()) {
    Result<bool> r = evaluator.EvalFormula(*formula_, &binding);
    if (!r.ok()) return r.status();
    if (*r) out.Insert(Tuple{});
    return out;
  }
  std::vector<size_t> idx(head_.size(), 0);
  if (domain.empty()) return out;
  while (true) {
    for (size_t i = 0; i < head_.size(); ++i) {
      binding.Bind(head_[i], domain[idx[i]]);
      current[i] = domain[idx[i]];
    }
    Result<bool> r = evaluator.EvalFormula(*formula_, &binding);
    if (!r.ok()) return r.status();
    if (*r) out.Insert(current);
    // Advance the odometer.
    size_t pos = 0;
    while (pos < idx.size()) {
      if (++idx[pos] < domain.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return out;
}

}  // namespace relcomp
