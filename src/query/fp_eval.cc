// Inflationary fixpoint evaluation: S0 = ∅; S_{j+1} = S_j ∪ Q′(S_j, I);
// iterate until convergence. Rule bodies are evaluated by the CQ engine over
// the combined EDB ∪ IDB instance.
#include "query/fp.h"

namespace relcomp {

Result<Relation> FpProgram::Eval(const Instance& edb) const {
  RELCOMP_RETURN_IF_ERROR(Validate(edb.schema()));

  // Build the combined schema: EDB relations plus one anonymous relation per
  // IDB predicate.
  DatabaseSchema combined_schema = edb.schema();
  std::vector<std::string> idbs = IdbPredicates();
  for (const std::string& idb : idbs) {
    size_t arity = 0;
    for (const FpRule& rule : rules_) {
      if (rule.head.rel == idb) {
        arity = rule.head.args.size();
        break;
      }
    }
    combined_schema.AddRelation(RelationSchema::Anonymous(idb, arity));
  }
  Instance combined(combined_schema);
  for (const Relation& rel : edb.relations()) {
    combined.at(rel.schema().name()) = rel;
  }

  // Precompile each rule body into a CQ whose head is the rule head's args.
  std::vector<ConjunctiveQuery> rule_queries;
  rule_queries.reserve(rules_.size());
  for (const FpRule& rule : rules_) {
    rule_queries.emplace_back(rule.head.args, rule.body, rule.builtins);
  }

  // Naive inflationary iteration.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      Result<Relation> derived = rule_queries[i].Eval(combined);
      if (!derived.ok()) return derived.status();
      Relation& idb_rel = combined.at(rules_[i].head.rel);
      for (const Tuple& t : derived->rows()) {
        if (idb_rel.Insert(t)) changed = true;
      }
    }
  }
  return combined.at(output_);
}

}  // namespace relcomp
