#include "query/lemma32.h"

#include <algorithm>

namespace relcomp {

Result<SingleRelationCollapse> SingleRelationCollapse::Create(
    const DatabaseSchema& schema, std::string collapsed_name) {
  if (schema.size() == 0) {
    return Status::InvalidArgument("cannot collapse an empty schema");
  }
  SingleRelationCollapse out;
  out.original_schema_ = schema;
  out.collapsed_name_ = collapsed_name;
  for (const RelationSchema& rel : schema.relations()) {
    out.max_arity_ = std::max(out.max_arity_, rel.arity());
  }
  // Tag attribute AR with finite domain [0, n).
  std::vector<Value> tags;
  for (size_t i = 0; i < schema.size(); ++i) {
    tags.push_back(Value::Int(static_cast<int64_t>(i)));
  }
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"AR", Domain::Finite(std::move(tags))});
  for (size_t i = 0; i < out.max_arity_; ++i) {
    attrs.push_back(Attribute{"a" + std::to_string(i), Domain::Infinite()});
  }
  DatabaseSchema collapsed;
  collapsed.AddRelation(
      RelationSchema(std::move(collapsed_name), std::move(attrs)));
  out.collapsed_schema_ = std::move(collapsed);
  return out;
}

Result<int> SingleRelationCollapse::TagOf(const std::string& name) const {
  for (size_t i = 0; i < original_schema_.size(); ++i) {
    if (original_schema_.relations()[i].name() == name) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("relation '" + name + "' not in original schema");
}

Result<Instance> SingleRelationCollapse::MapInstance(
    const Instance& instance) const {
  Instance out(collapsed_schema_);
  for (size_t i = 0; i < instance.relations().size(); ++i) {
    const Relation& rel = instance.relations()[i];
    for (const Tuple& t : rel.rows()) {
      Tuple mapped;
      mapped.reserve(max_arity_ + 1);
      mapped.push_back(Value::Int(static_cast<int64_t>(i)));
      mapped.insert(mapped.end(), t.begin(), t.end());
      while (mapped.size() < max_arity_ + 1) mapped.push_back(pad_);
      out.AddTuple(collapsed_name_, std::move(mapped));
    }
  }
  return out;
}

Result<ConjunctiveQuery> SingleRelationCollapse::MapCq(
    const ConjunctiveQuery& q, int32_t* next_var) const {
  std::vector<RelAtom> atoms;
  atoms.reserve(q.atoms().size());
  for (const RelAtom& atom : q.atoms()) {
    Result<int> tag = TagOf(atom.rel);
    if (!tag.ok()) return tag.status();
    RelAtom mapped;
    mapped.rel = collapsed_name_;
    mapped.args.push_back(Value::Int(*tag));
    mapped.args.insert(mapped.args.end(), atom.args.begin(), atom.args.end());
    while (mapped.args.size() < max_arity_ + 1) {
      mapped.args.push_back(VarId{(*next_var)++});
    }
    atoms.push_back(std::move(mapped));
  }
  return ConjunctiveQuery(q.head(), std::move(atoms), q.builtins());
}

Result<Query> SingleRelationCollapse::MapQuery(const Query& q) const {
  int32_t next_var = q.MaxVarId() + 1;
  switch (q.language()) {
    case QueryLanguage::kCQ: {
      Result<ConjunctiveQuery> mapped = MapCq(q.cq(), &next_var);
      if (!mapped.ok()) return mapped.status();
      return Query::Cq(std::move(mapped).value());
    }
    case QueryLanguage::kUCQ:
    case QueryLanguage::kEFOPlus: {
      Result<std::vector<ConjunctiveQuery>> disjuncts = q.Disjuncts();
      if (!disjuncts.ok()) return disjuncts.status();
      UnionQuery ucq;
      for (const ConjunctiveQuery& d : *disjuncts) {
        Result<ConjunctiveQuery> mapped = MapCq(d, &next_var);
        if (!mapped.ok()) return mapped.status();
        ucq.AddDisjunct(std::move(mapped).value());
      }
      return Query::Ucq(std::move(ucq));
    }
    case QueryLanguage::kFP: {
      FpProgram mapped;
      mapped.set_output(q.fp().output());
      std::vector<std::string> idbs = q.fp().IdbPredicates();
      auto is_idb = [&idbs](const std::string& name) {
        return std::binary_search(idbs.begin(), idbs.end(), name);
      };
      for (const FpRule& rule : q.fp().rules()) {
        FpRule new_rule;
        new_rule.head = rule.head;
        new_rule.builtins = rule.builtins;
        for (const RelAtom& atom : rule.body) {
          if (is_idb(atom.rel)) {
            new_rule.body.push_back(atom);
            continue;
          }
          Result<int> tag = TagOf(atom.rel);
          if (!tag.ok()) return tag.status();
          RelAtom mapped_atom;
          mapped_atom.rel = collapsed_name_;
          mapped_atom.args.push_back(Value::Int(*tag));
          mapped_atom.args.insert(mapped_atom.args.end(), atom.args.begin(),
                                  atom.args.end());
          while (mapped_atom.args.size() < max_arity_ + 1) {
            mapped_atom.args.push_back(VarId{next_var++});
          }
          new_rule.body.push_back(std::move(mapped_atom));
        }
        mapped.AddRule(std::move(new_rule));
      }
      return Query::Fp(std::move(mapped));
    }
    case QueryLanguage::kFO:
      return Status::InvalidArgument(
          "MapQuery supports CQ/UCQ/EFO+/FP; rewrite FO formulas manually");
  }
  return Status::Internal("unreachable");
}

Result<CCSet> SingleRelationCollapse::MapCcs(const CCSet& ccs) const {
  CCSet out;
  out.reserve(ccs.size());
  for (const ContainmentConstraint& cc : ccs) {
    int32_t next_var = 0;
    for (VarId v : cc.q().Vars()) next_var = std::max(next_var, v.id + 1);
    Result<ConjunctiveQuery> mapped = MapCq(cc.q(), &next_var);
    if (!mapped.ok()) return mapped.status();
    out.emplace_back(cc.name(), std::move(mapped).value(), cc.master_rel(),
                     cc.master_cols());
  }
  return out;
}

}  // namespace relcomp
