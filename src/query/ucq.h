// Unions of conjunctive queries (the paper's UCQ): Q1 ∪ ... ∪ Qk with all
// disjuncts of the same output arity.
#ifndef RELCOMP_QUERY_UCQ_H_
#define RELCOMP_QUERY_UCQ_H_

#include <vector>

#include "query/cq.h"

namespace relcomp {

/// A union of conjunctive queries.
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::vector<ConjunctiveQuery>& mutable_disjuncts() { return disjuncts_; }
  void AddDisjunct(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

  size_t OutputArity() const {
    return disjuncts_.empty() ? 0 : disjuncts_.front().OutputArity();
  }

  /// Q(I) = ⋃ Qi(I).
  Result<Relation> Eval(const Instance& instance) const;

  /// Validates every disjunct and that arities agree.
  Status Validate(const DatabaseSchema& schema) const;

  /// Constants across all disjuncts (sorted, unique).
  std::vector<Value> Constants() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_UCQ_H_
