// A small textual language for schemas, instances, queries (CQ/UCQ/FO/FP)
// and containment constraints, so examples and tools can define workloads
// declaratively. See examples/mdm_audit.cc for a complete program.
//
//   schema MVisit(nhs: sym, city: sym, yob: int, gd: {"M", "F"}).
//   master Patientm(nhs: sym, name: sym).
//   instance db { MVisit("915", "EDI", 2000, "M"). }
//   minstance dm { Patientm("915", "John"). }
//   query Q1(na) :- MVisit(n, na, c, y), n = "915", y = 2000.
//   cc C1(n, na) :- MVisit(n, na, c, y), c = "EDI" <= Patientm[nhs, name].
//   fo Q2(x) := exists y (R(x, y) & !(x = y)).
//   fp TC { T(x,y) :- E(x,y). T(x,y) :- T(x,z), E(z,y). output T. }
//
// Identifiers are variables inside query bodies; constants are numbers or
// double-quoted strings. Repeating `query` with the same name builds a UCQ.
#ifndef RELCOMP_QUERY_PARSER_H_
#define RELCOMP_QUERY_PARSER_H_

#include <map>
#include <string>

#include "data/instance.h"
#include "query/containment.h"
#include "query/query.h"

namespace relcomp {

/// Everything a parsed program declares.
struct ParsedProgram {
  DatabaseSchema schema;         ///< `schema` declarations.
  DatabaseSchema master_schema;  ///< `master` declarations.
  std::map<std::string, Instance> instances;   ///< `instance` blocks.
  std::map<std::string, Instance> minstances;  ///< `minstance` blocks.
  std::map<std::string, Query> queries;        ///< queries by name.
  CCSet ccs;                                   ///< containment constraints.
};

/// Parses a full program; fails with kParseError (line/column in message).
Result<ParsedProgram> ParseProgram(const std::string& text);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_PARSER_H_
