// First-order queries (the paper's FO) and their existential-positive
// fragment ∃FO⁺: atoms, =, ≠, ∧, ∨, ¬, ∃, ∀. Evaluated under active-domain
// semantics (quantifiers range over adom(I) ∪ constants of the query),
// which is the standard finite-model reading used by the paper.
#ifndef RELCOMP_QUERY_FO_H_
#define RELCOMP_QUERY_FO_H_

#include <memory>
#include <string>
#include <vector>

#include "query/cq.h"
#include "query/ucq.h"

namespace relcomp {

class FoFormula;
/// Shared immutable formula node.
using FoPtr = std::shared_ptr<const FoFormula>;

/// An FO formula node.
class FoFormula {
 public:
  enum class Kind { kAtom, kCmp, kAnd, kOr, kNot, kExists, kForall };

  Kind kind() const { return kind_; }
  const RelAtom& atom() const { return atom_; }
  const CondAtom& cmp() const { return cmp_; }
  const std::vector<FoPtr>& children() const { return children_; }
  const std::vector<VarId>& bound_vars() const { return bound_vars_; }

  /// Builders.
  static FoPtr Atom(RelAtom atom);
  static FoPtr Eq(CTerm lhs, CTerm rhs);
  static FoPtr Neq(CTerm lhs, CTerm rhs);
  static FoPtr And(std::vector<FoPtr> children);
  static FoPtr Or(std::vector<FoPtr> children);
  static FoPtr Not(FoPtr child);
  static FoPtr Exists(std::vector<VarId> vars, FoPtr child);
  static FoPtr Forall(std::vector<VarId> vars, FoPtr child);

  /// True if the formula avoids ¬ and ∀ (the ∃FO⁺ fragment; ≠ is allowed as
  /// an atomic predicate, as in the paper).
  bool IsExistentialPositive() const;

  /// Collects constants into `consts` and all variables into `vars`.
  void Collect(std::vector<Value>* consts, std::vector<VarId>* vars) const;

  std::string ToString() const;

 private:
  friend class FoQuery;
  FoFormula() = default;

  Kind kind_ = Kind::kAtom;
  RelAtom atom_;                // kAtom
  CondAtom cmp_;                // kCmp
  std::vector<FoPtr> children_; // kAnd/kOr/kNot
  std::vector<VarId> bound_vars_;  // kExists/kForall (child in children_[0])
};

/// An FO query: free (head) variables plus a formula.
class FoQuery {
 public:
  FoQuery() = default;
  FoQuery(std::vector<VarId> head, FoPtr formula)
      : head_(std::move(head)), formula_(std::move(formula)) {}

  const std::vector<VarId>& head() const { return head_; }
  const FoPtr& formula() const { return formula_; }
  size_t OutputArity() const { return head_.size(); }

  bool IsExistentialPositive() const {
    return formula_ != nullptr && formula_->IsExistentialPositive();
  }

  /// Q(I) under active-domain semantics. `extra_domain` values are added to
  /// the quantification range (used by the deciders so that quantifiers see
  /// the full Adom).
  Result<Relation> Eval(const Instance& instance,
                        const std::vector<Value>& extra_domain = {}) const;

  /// Constants of the formula (sorted, unique).
  std::vector<Value> Constants() const;

  /// Converts an ∃FO⁺ query to an equivalent UCQ by DNF expansion with
  /// quantified-variable renaming (may be exponential in the formula size).
  /// Fails with kInvalidArgument for non-∃FO⁺ formulas.
  Result<UnionQuery> ToUcq() const;

  std::string ToString() const;

 private:
  std::vector<VarId> head_;
  FoPtr formula_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_FO_H_
