#include "query/parser.h"

#include <cctype>
#include <vector>

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kColon,
  kColonDash,   // :-
  kColonEq,     // :=
  kSubsetOf,    // <=
  kEq,
  kNeq,         // !=
  kAmp,
  kPipe,
  kBang,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  int64_t number = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      Token tok;
      tok.line = line_;
      tok.col = col_;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = Tok::kIdent;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          tok.text += text_[pos_];
          Advance();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        tok.kind = Tok::kNumber;
        if (c == '-') {
          tok.text += c;
          Advance();
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          tok.text += text_[pos_];
          Advance();
        }
        tok.number = std::stoll(tok.text);
      } else if (c == '"') {
        tok.kind = Tok::kString;
        Advance();
        while (pos_ < text_.size() && text_[pos_] != '"') {
          tok.text += text_[pos_];
          Advance();
        }
        if (pos_ >= text_.size()) {
          return Err("unterminated string literal");
        }
        Advance();  // closing quote
      } else {
        switch (c) {
          case '(': tok.kind = Tok::kLParen; Advance(); break;
          case ')': tok.kind = Tok::kRParen; Advance(); break;
          case '{': tok.kind = Tok::kLBrace; Advance(); break;
          case '}': tok.kind = Tok::kRBrace; Advance(); break;
          case '[': tok.kind = Tok::kLBracket; Advance(); break;
          case ']': tok.kind = Tok::kRBracket; Advance(); break;
          case ',': tok.kind = Tok::kComma; Advance(); break;
          case '.': tok.kind = Tok::kDot; Advance(); break;
          case '&': tok.kind = Tok::kAmp; Advance(); break;
          case '|': tok.kind = Tok::kPipe; Advance(); break;
          case '=': tok.kind = Tok::kEq; Advance(); break;
          case ':':
            Advance();
            if (Peek() == '-') {
              tok.kind = Tok::kColonDash;
              Advance();
            } else if (Peek() == '=') {
              tok.kind = Tok::kColonEq;
              Advance();
            } else {
              tok.kind = Tok::kColon;
            }
            break;
          case '<':
            Advance();
            if (Peek() != '=') return Err("expected '<='");
            tok.kind = Tok::kSubsetOf;
            Advance();
            break;
          case '!':
            Advance();
            if (Peek() == '=') {
              tok.kind = Tok::kNeq;
              Advance();
            } else {
              tok.kind = Tok::kBang;
            }
            break;
          default:
            return Err(std::string("unexpected character '") + c + "'");
        }
      }
      out.push_back(std::move(tok));
    }
    Token end;
    end.kind = Tok::kEnd;
    end.line = line_;
    end.col = col_;
    out.push_back(end);
    return out;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void Advance() {
    if (pos_ < text_.size() && text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ":" + std::to_string(col_));
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedProgram> Run() {
    while (Cur().kind != Tok::kEnd) {
      if (Cur().kind != Tok::kIdent) return Err("expected a declaration");
      const std::string& kw = Cur().text;
      Status st;
      if (kw == "schema") {
        st = ParseSchema(&program_.schema);
      } else if (kw == "master") {
        st = ParseSchema(&program_.master_schema);
      } else if (kw == "instance") {
        st = ParseInstance(program_.schema, &program_.instances);
      } else if (kw == "minstance") {
        st = ParseInstance(program_.master_schema, &program_.minstances);
      } else if (kw == "query") {
        st = ParseQuery();
      } else if (kw == "cc") {
        st = ParseCc();
      } else if (kw == "fo") {
        st = ParseFo();
      } else if (kw == "fp") {
        st = ParseFp();
      } else {
        return Err("unknown declaration '" + kw + "'");
      }
      if (!st.ok()) return st;
    }
    return std::move(program_);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(Tok kind) {
    if (Cur().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(Tok kind, const char* what) {
    if (!Accept(kind)) return Err(std::string("expected ") + what);
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ":" + std::to_string(Cur().col));
  }

  // schema Rel(attr: type, ...).
  Status ParseSchema(DatabaseSchema* target) {
    Next();  // keyword
    if (Cur().kind != Tok::kIdent) return Err("expected relation name");
    std::string rel_name = Next().text;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    std::vector<Attribute> attrs;
    while (true) {
      if (Cur().kind != Tok::kIdent) return Err("expected attribute name");
      std::string attr_name = Next().text;
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kColon, "':'"));
      Domain domain = Domain::Infinite();
      if (Cur().kind == Tok::kIdent) {
        const std::string& type = Next().text;
        if (type != "int" && type != "sym") {
          return Err("expected 'int', 'sym' or a finite domain");
        }
      } else if (Accept(Tok::kLBrace)) {
        std::vector<Value> values;
        while (true) {
          Result<Value> v = ParseConstant();
          if (!v.ok()) return v.status();
          values.push_back(*v);
          if (!Accept(Tok::kComma)) break;
        }
        RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
        domain = Domain::Finite(std::move(values));
      } else {
        return Err("expected attribute type");
      }
      attrs.push_back(Attribute{std::move(attr_name), std::move(domain)});
      if (!Accept(Tok::kComma)) break;
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    target->AddRelation(RelationSchema(std::move(rel_name), std::move(attrs)));
    return Status::OK();
  }

  // instance name { Rel(c1, c2). ... }
  Status ParseInstance(const DatabaseSchema& schema,
                       std::map<std::string, Instance>* target) {
    Next();  // keyword
    if (Cur().kind != Tok::kIdent) return Err("expected instance name");
    std::string name = Next().text;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
    Instance instance(schema);
    while (!Accept(Tok::kRBrace)) {
      if (Cur().kind != Tok::kIdent) return Err("expected relation name");
      std::string rel = Next().text;
      if (schema.Find(rel) == nullptr) {
        return Err("unknown relation '" + rel + "' in instance");
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      Tuple t;
      if (!Accept(Tok::kRParen)) {
        while (true) {
          Result<Value> v = ParseConstant();
          if (!v.ok()) return v.status();
          t.push_back(*v);
          if (!Accept(Tok::kComma)) break;
        }
        RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
      if (t.size() != schema.Find(rel)->arity()) {
        return Err("arity mismatch for '" + rel + "'");
      }
      instance.AddTuple(rel, std::move(t));
    }
    target->emplace(std::move(name), std::move(instance));
    return Status::OK();
  }

  Result<Value> ParseConstant() {
    if (Cur().kind == Tok::kNumber) return Value::Int(Next().number);
    if (Cur().kind == Tok::kString) return Value::Sym(Next().text);
    return Err("expected a constant (number or \"string\")");
  }

  // Term inside a rule body: variable (identifier) or constant.
  Result<CTerm> ParseTerm(std::map<std::string, VarId>* vars,
                          int32_t* next_var) {
    if (Cur().kind == Tok::kIdent) {
      std::string name = Next().text;
      auto it = vars->find(name);
      if (it != vars->end()) return CTerm(it->second);
      VarId v{(*next_var)++};
      vars->emplace(std::move(name), v);
      return CTerm(v);
    }
    Result<Value> c = ParseConstant();
    if (!c.ok()) return c.status();
    return CTerm(*c);
  }

  // Body: atoms and builtins separated by commas, until a terminator.
  Status ParseBody(std::map<std::string, VarId>* vars, int32_t* next_var,
                   std::vector<RelAtom>* atoms,
                   std::vector<CondAtom>* builtins) {
    while (true) {
      if (Cur().kind == Tok::kIdent &&
          tokens_[pos_ + 1].kind == Tok::kLParen) {
        RelAtom atom;
        atom.rel = Next().text;
        Next();  // '('
        if (!Accept(Tok::kRParen)) {
          while (true) {
            Result<CTerm> t = ParseTerm(vars, next_var);
            if (!t.ok()) return t.status();
            atom.args.push_back(*t);
            if (!Accept(Tok::kComma)) break;
          }
          RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        }
        atoms->push_back(std::move(atom));
      } else {
        Result<CTerm> lhs = ParseTerm(vars, next_var);
        if (!lhs.ok()) return lhs.status();
        bool neq;
        if (Accept(Tok::kEq)) {
          neq = false;
        } else if (Accept(Tok::kNeq)) {
          neq = true;
        } else {
          return Err("expected '=' or '!=' in builtin");
        }
        Result<CTerm> rhs = ParseTerm(vars, next_var);
        if (!rhs.ok()) return rhs.status();
        builtins->push_back(CondAtom{*lhs, neq, *rhs});
      }
      if (!Accept(Tok::kComma)) break;
    }
    return Status::OK();
  }

  // query Name(terms) :- body.   (repeat name for UCQ)
  Status ParseQuery() {
    Next();  // 'query'
    if (Cur().kind != Tok::kIdent) return Err("expected query name");
    std::string name = Next().text;
    std::map<std::string, VarId> vars;
    int32_t next_var = 0;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    std::vector<CTerm> head;
    if (!Accept(Tok::kRParen)) {
      while (true) {
        Result<CTerm> t = ParseTerm(&vars, &next_var);
        if (!t.ok()) return t.status();
        head.push_back(*t);
        if (!Accept(Tok::kComma)) break;
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kColonDash, "':-'"));
    std::vector<RelAtom> atoms;
    std::vector<CondAtom> builtins;
    RELCOMP_RETURN_IF_ERROR(ParseBody(&vars, &next_var, &atoms, &builtins));
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    ConjunctiveQuery cq(std::move(head), std::move(atoms),
                        std::move(builtins));

    auto it = program_.queries.find(name);
    if (it == program_.queries.end()) {
      program_.queries.emplace(name, Query::Cq(std::move(cq)));
      return Status::OK();
    }
    // Same name again: widen to UCQ.
    Query& existing = it->second;
    UnionQuery ucq;
    if (existing.language() == QueryLanguage::kCQ) {
      ucq.AddDisjunct(existing.cq());
    } else if (existing.language() == QueryLanguage::kUCQ) {
      ucq = existing.ucq();
    } else {
      return Err("query '" + name + "' already declared as " +
                 QueryLanguageName(existing.language()));
    }
    ucq.AddDisjunct(std::move(cq));
    existing = Query::Ucq(std::move(ucq));
    return Status::OK();
  }

  // cc Name(terms) :- body <= Master[col, ...].
  Status ParseCc() {
    Next();  // 'cc'
    if (Cur().kind != Tok::kIdent) return Err("expected cc name");
    std::string name = Next().text;
    std::map<std::string, VarId> vars;
    int32_t next_var = 0;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    std::vector<CTerm> head;
    if (!Accept(Tok::kRParen)) {
      while (true) {
        Result<CTerm> t = ParseTerm(&vars, &next_var);
        if (!t.ok()) return t.status();
        head.push_back(*t);
        if (!Accept(Tok::kComma)) break;
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kColonDash, "':-'"));
    std::vector<RelAtom> atoms;
    std::vector<CondAtom> builtins;
    RELCOMP_RETURN_IF_ERROR(ParseBody(&vars, &next_var, &atoms, &builtins));
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kSubsetOf, "'<='"));
    if (Cur().kind != Tok::kIdent) return Err("expected master relation");
    std::string master = Next().text;
    const RelationSchema* master_schema = program_.master_schema.Find(master);
    if (master_schema == nullptr) {
      return Err("unknown master relation '" + master + "'");
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLBracket, "'['"));
    std::vector<int> cols;
    while (true) {
      if (Cur().kind == Tok::kNumber) {
        cols.push_back(static_cast<int>(Next().number));
      } else if (Cur().kind == Tok::kIdent) {
        int idx = master_schema->AttributeIndex(Next().text);
        if (idx < 0) return Err("unknown master attribute");
        cols.push_back(idx);
      } else {
        return Err("expected master column");
      }
      if (!Accept(Tok::kComma)) break;
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    ConjunctiveQuery cq(std::move(head), std::move(atoms),
                        std::move(builtins));
    program_.ccs.emplace_back(std::move(name), std::move(cq),
                              std::move(master), std::move(cols));
    return Status::OK();
  }

  // fo Name(vars) := formula.
  Status ParseFo() {
    Next();  // 'fo'
    if (Cur().kind != Tok::kIdent) return Err("expected query name");
    std::string name = Next().text;
    std::map<std::string, VarId> vars;
    int32_t next_var = 0;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    std::vector<VarId> head;
    if (!Accept(Tok::kRParen)) {
      while (true) {
        if (Cur().kind != Tok::kIdent) return Err("expected head variable");
        Result<CTerm> t = ParseTerm(&vars, &next_var);
        if (!t.ok()) return t.status();
        head.push_back(std::get<VarId>(*t));
        if (!Accept(Tok::kComma)) break;
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kColonEq, "':='"));
    Result<FoPtr> formula = ParseFoOr(&vars, &next_var);
    if (!formula.ok()) return formula.status();
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    program_.queries.emplace(
        std::move(name), Query::Fo(FoQuery(std::move(head), *formula)));
    return Status::OK();
  }

  Result<FoPtr> ParseFoOr(std::map<std::string, VarId>* vars,
                          int32_t* next_var) {
    Result<FoPtr> lhs = ParseFoAnd(vars, next_var);
    if (!lhs.ok()) return lhs;
    std::vector<FoPtr> parts = {*lhs};
    while (Accept(Tok::kPipe)) {
      Result<FoPtr> rhs = ParseFoAnd(vars, next_var);
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return FoFormula::Or(std::move(parts));
  }

  Result<FoPtr> ParseFoAnd(std::map<std::string, VarId>* vars,
                           int32_t* next_var) {
    Result<FoPtr> lhs = ParseFoUnary(vars, next_var);
    if (!lhs.ok()) return lhs;
    std::vector<FoPtr> parts = {*lhs};
    while (Accept(Tok::kAmp)) {
      Result<FoPtr> rhs = ParseFoUnary(vars, next_var);
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return FoFormula::And(std::move(parts));
  }

  Result<FoPtr> ParseFoUnary(std::map<std::string, VarId>* vars,
                             int32_t* next_var) {
    if (Accept(Tok::kBang)) {
      Result<FoPtr> child = ParseFoUnary(vars, next_var);
      if (!child.ok()) return child;
      return FoFormula::Not(*child);
    }
    if (Cur().kind == Tok::kIdent &&
        (Cur().text == "exists" || Cur().text == "forall")) {
      bool exists = Next().text == "exists";
      std::vector<VarId> bound;
      while (Cur().kind == Tok::kIdent && tokens_[pos_ + 1].kind != Tok::kLParen) {
        Result<CTerm> t = ParseTerm(vars, next_var);
        if (!t.ok()) return t.status();
        bound.push_back(std::get<VarId>(*t));
      }
      // Final bound variable may be followed by '(' of the body; require at
      // least one variable.
      if (Cur().kind == Tok::kIdent) {
        Result<CTerm> t = ParseTerm(vars, next_var);
        if (!t.ok()) return t.status();
        bound.push_back(std::get<VarId>(*t));
      }
      if (bound.empty()) return Err("quantifier needs at least one variable");
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      Result<FoPtr> body = ParseFoOr(vars, next_var);
      if (!body.ok()) return body;
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return exists ? FoFormula::Exists(std::move(bound), *body)
                    : FoFormula::Forall(std::move(bound), *body);
    }
    if (Accept(Tok::kLParen)) {
      Result<FoPtr> inner = ParseFoOr(vars, next_var);
      if (!inner.ok()) return inner;
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    // Atom or comparison.
    if (Cur().kind == Tok::kIdent && tokens_[pos_ + 1].kind == Tok::kLParen) {
      RelAtom atom;
      atom.rel = Next().text;
      Next();  // '('
      if (!Accept(Tok::kRParen)) {
        while (true) {
          Result<CTerm> t = ParseTerm(vars, next_var);
          if (!t.ok()) return t.status();
          atom.args.push_back(*t);
          if (!Accept(Tok::kComma)) break;
        }
        RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      }
      return FoFormula::Atom(std::move(atom));
    }
    Result<CTerm> lhs = ParseTerm(vars, next_var);
    if (!lhs.ok()) return lhs.status();
    bool neq;
    if (Accept(Tok::kEq)) {
      neq = false;
    } else if (Accept(Tok::kNeq)) {
      neq = true;
    } else {
      return Err("expected '=' or '!=' in FO comparison");
    }
    Result<CTerm> rhs = ParseTerm(vars, next_var);
    if (!rhs.ok()) return rhs.status();
    return neq ? FoFormula::Neq(*lhs, *rhs) : FoFormula::Eq(*lhs, *rhs);
  }

  // fp Name { rule. rule. output Idb. }
  Status ParseFp() {
    Next();  // 'fp'
    if (Cur().kind != Tok::kIdent) return Err("expected program name");
    std::string name = Next().text;
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
    FpProgram program;
    std::map<std::string, VarId> vars;  // shared namespace; rules rename below
    while (true) {
      if (Cur().kind == Tok::kIdent && Cur().text == "output") {
        Next();
        if (Cur().kind != Tok::kIdent) return Err("expected output predicate");
        program.set_output(Next().text);
        RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
        break;
      }
      // A rule; fresh variable scope per rule.
      std::map<std::string, VarId> rule_vars;
      int32_t next_var = 0;
      if (Cur().kind != Tok::kIdent) return Err("expected rule head");
      RelAtom head;
      head.rel = Next().text;
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      if (!Accept(Tok::kRParen)) {
        while (true) {
          Result<CTerm> t = ParseTerm(&rule_vars, &next_var);
          if (!t.ok()) return t.status();
          head.args.push_back(*t);
          if (!Accept(Tok::kComma)) break;
        }
        RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      }
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kColonDash, "':-'"));
      std::vector<RelAtom> body;
      std::vector<CondAtom> builtins;
      RELCOMP_RETURN_IF_ERROR(
          ParseBody(&rule_vars, &next_var, &body, &builtins));
      RELCOMP_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
      program.AddRule(FpRule{std::move(head), std::move(body),
                             std::move(builtins)});
    }
    RELCOMP_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
    program_.queries.emplace(std::move(name), Query::Fp(std::move(program)));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ParsedProgram program_;
};

}  // namespace

Result<ParsedProgram> ParseProgram(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace relcomp
