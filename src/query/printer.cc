#include "query/printer.h"

#include <algorithm>
#include <vector>

namespace relcomp {
namespace {

std::string AlignRow(const std::vector<std::string>& cells,
                     const std::vector<size_t>& widths) {
  std::string out = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    out += " " + cells[i];
    out += std::string(widths[i] - cells[i].size() + 1, ' ');
    out += "|";
  }
  return out;
}

std::string FormatGrid(const std::string& title,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t i = 0; i < header.size(); ++i) widths[i] = header[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out = title + "\n";
  out += AlignRow(header, widths) + "\n";
  std::string rule = "|";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows) out += AlignRow(row, widths) + "\n";
  return out;
}

}  // namespace

std::string FormatRelation(const Relation& rel) {
  std::vector<std::string> header;
  for (const Attribute& attr : rel.schema().attributes()) {
    header.push_back(attr.name);
  }
  std::vector<std::vector<std::string>> rows;
  for (const Tuple& t : rel.rows()) {
    std::vector<std::string> row;
    for (const Value& v : t) row.push_back(v.ToString());
    rows.push_back(std::move(row));
  }
  return FormatGrid(rel.schema().name(), header, rows);
}

std::string FormatInstance(const Instance& instance) {
  std::string out;
  for (const Relation& rel : instance.relations()) {
    out += FormatRelation(rel) + "\n";
  }
  return out;
}

std::string FormatCTable(const CTable& table) {
  std::vector<std::string> header;
  for (const Attribute& attr : table.schema().attributes()) {
    header.push_back(attr.name);
  }
  header.push_back("cond");
  std::vector<std::vector<std::string>> rows;
  for (const CRow& row : table.rows()) {
    std::vector<std::string> cells;
    for (const Cell& cell : row.cells) cells.push_back(CellToString(cell));
    cells.push_back(row.condition.IsTrivial() ? ""
                                              : row.condition.ToString());
    rows.push_back(std::move(cells));
  }
  return FormatGrid(table.schema().name(), header, rows);
}

std::string FormatCInstance(const CInstance& cinstance) {
  std::string out;
  for (const CTable& table : cinstance.tables()) {
    out += FormatCTable(table) + "\n";
  }
  return out;
}

}  // namespace relcomp
