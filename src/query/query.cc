#include "query/query.h"

#include <algorithm>

namespace relcomp {

const char* QueryLanguageName(QueryLanguage lang) {
  switch (lang) {
    case QueryLanguage::kCQ:
      return "CQ";
    case QueryLanguage::kUCQ:
      return "UCQ";
    case QueryLanguage::kEFOPlus:
      return "EFO+";
    case QueryLanguage::kFO:
      return "FO";
    case QueryLanguage::kFP:
      return "FP";
  }
  return "?";
}

Query Query::Cq(ConjunctiveQuery q) {
  Query out;
  out.language_ = QueryLanguage::kCQ;
  out.node_ = std::move(q);
  return out;
}

Query Query::Ucq(UnionQuery q) {
  Query out;
  out.language_ = QueryLanguage::kUCQ;
  out.node_ = std::move(q);
  return out;
}

Query Query::Fo(FoQuery q) {
  Query out;
  out.language_ = q.IsExistentialPositive() ? QueryLanguage::kEFOPlus
                                            : QueryLanguage::kFO;
  out.node_ = std::move(q);
  return out;
}

Query Query::Fp(FpProgram p) {
  Query out;
  out.language_ = QueryLanguage::kFP;
  out.node_ = std::move(p);
  return out;
}

size_t Query::OutputArity() const {
  switch (language_) {
    case QueryLanguage::kCQ:
      return cq().OutputArity();
    case QueryLanguage::kUCQ:
      return ucq().OutputArity();
    case QueryLanguage::kEFOPlus:
    case QueryLanguage::kFO:
      return fo().OutputArity();
    case QueryLanguage::kFP:
      return fp().OutputArity();
  }
  return 0;
}

Result<Relation> Query::Eval(const Instance& instance,
                             const std::vector<Value>& extra_domain) const {
  switch (language_) {
    case QueryLanguage::kCQ:
      return cq().Eval(instance);
    case QueryLanguage::kUCQ:
      return ucq().Eval(instance);
    case QueryLanguage::kEFOPlus:
    case QueryLanguage::kFO:
      return fo().Eval(instance, extra_domain);
    case QueryLanguage::kFP:
      return fp().Eval(instance);
  }
  return Status::Internal("unreachable");
}

std::vector<Value> Query::Constants() const {
  switch (language_) {
    case QueryLanguage::kCQ:
      return cq().Constants();
    case QueryLanguage::kUCQ:
      return ucq().Constants();
    case QueryLanguage::kEFOPlus:
    case QueryLanguage::kFO:
      return fo().Constants();
    case QueryLanguage::kFP:
      return fp().Constants();
  }
  return {};
}

Result<std::vector<ConjunctiveQuery>> Query::Disjuncts() const {
  switch (language_) {
    case QueryLanguage::kCQ:
      return std::vector<ConjunctiveQuery>{cq()};
    case QueryLanguage::kUCQ:
      return ucq().disjuncts();
    case QueryLanguage::kEFOPlus: {
      Result<UnionQuery> as_ucq = fo().ToUcq();
      if (!as_ucq.ok()) return as_ucq.status();
      return as_ucq->disjuncts();
    }
    case QueryLanguage::kFO:
    case QueryLanguage::kFP:
      return Status::InvalidArgument(
          std::string("no tableau disjuncts for language ") +
          QueryLanguageName(language_));
  }
  return Status::Internal("unreachable");
}

namespace {

int32_t MaxVar(const std::vector<VarId>& vars) {
  int32_t mx = -1;
  for (VarId v : vars) mx = std::max(mx, v.id);
  return mx;
}

}  // namespace

int32_t Query::MaxVarId() const {
  switch (language_) {
    case QueryLanguage::kCQ:
      return MaxVar(cq().Vars());
    case QueryLanguage::kUCQ: {
      int32_t mx = -1;
      for (const ConjunctiveQuery& q : ucq().disjuncts()) {
        mx = std::max(mx, MaxVar(q.Vars()));
      }
      return mx;
    }
    case QueryLanguage::kEFOPlus:
    case QueryLanguage::kFO: {
      std::vector<VarId> vars;
      if (fo().formula() != nullptr) fo().formula()->Collect(nullptr, &vars);
      vars.insert(vars.end(), fo().head().begin(), fo().head().end());
      return MaxVar(vars);
    }
    case QueryLanguage::kFP: {
      int32_t mx = -1;
      for (const FpRule& rule : fp().rules()) {
        auto scan = [&mx](const std::vector<CTerm>& terms) {
          for (const CTerm& t : terms) {
            if (std::holds_alternative<VarId>(t)) {
              mx = std::max(mx, std::get<VarId>(t).id);
            }
          }
        };
        scan(rule.head.args);
        for (const RelAtom& atom : rule.body) scan(atom.args);
      }
      return mx;
    }
  }
  return -1;
}

std::string Query::ToString() const {
  std::string prefix = std::string(QueryLanguageName(language_)) + " ";
  switch (language_) {
    case QueryLanguage::kCQ:
      return prefix + cq().ToString();
    case QueryLanguage::kUCQ:
      return prefix + ucq().ToString();
    case QueryLanguage::kEFOPlus:
    case QueryLanguage::kFO:
      return prefix + fo().ToString();
    case QueryLanguage::kFP:
      return prefix + fp().ToString();
  }
  return prefix;
}

}  // namespace relcomp
