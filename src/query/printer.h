// Pretty-printing helpers for relations, instances and c-tables: aligned
// text tables for examples and benchmark reports.
#ifndef RELCOMP_QUERY_PRINTER_H_
#define RELCOMP_QUERY_PRINTER_H_

#include <string>

#include "ctable/cinstance.h"
#include "data/instance.h"

namespace relcomp {

/// Renders a relation as an aligned table with a header row.
std::string FormatRelation(const Relation& rel);

/// Renders every relation of an instance.
std::string FormatInstance(const Instance& instance);

/// Renders a c-table with its conditions column (like Fig. 1 of the paper).
std::string FormatCTable(const CTable& table);

/// Renders every c-table of a c-instance.
std::string FormatCInstance(const CInstance& cinstance);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_PRINTER_H_
