// Uniform wrapper over the paper's five query languages
// LQ ∈ {CQ, UCQ, ∃FO⁺, FO, FP}. The deciders in core/ dispatch on language:
// monotone languages (all but FO) admit the small-extension property, and the
// tableau-based characterizations (Lemmas 4.2/4.3) need Disjuncts().
#ifndef RELCOMP_QUERY_QUERY_H_
#define RELCOMP_QUERY_QUERY_H_

#include <variant>
#include <vector>

#include "query/cq.h"
#include "query/fo.h"
#include "query/fp.h"
#include "query/ucq.h"

namespace relcomp {

/// The query language a Query belongs to.
enum class QueryLanguage { kCQ, kUCQ, kEFOPlus, kFO, kFP };

/// Human-readable language name ("CQ", "UCQ", "EFO+", "FO", "FP").
const char* QueryLanguageName(QueryLanguage lang);

/// A query in one of the five languages of the paper.
class Query {
 public:
  Query() = default;

  static Query Cq(ConjunctiveQuery q);
  static Query Ucq(UnionQuery q);
  /// Wraps an FO query; the language is kEFOPlus when the formula avoids
  /// ¬ and ∀, else kFO.
  static Query Fo(FoQuery q);
  static Query Fp(FpProgram p);

  QueryLanguage language() const { return language_; }
  /// Every language except full FO is monotone (Q(I) ⊆ Q(I') for I ⊆ I').
  bool IsMonotone() const { return language_ != QueryLanguage::kFO; }
  size_t OutputArity() const;

  /// Q(I). `extra_domain` extends the active domain for FO quantifiers so
  /// that deciders evaluate all worlds over the same Adom; monotone
  /// languages ignore it.
  Result<Relation> Eval(const Instance& instance,
                        const std::vector<Value>& extra_domain = {}) const;

  /// Constants appearing in the query (sorted, unique).
  std::vector<Value> Constants() const;

  /// The CQ disjuncts of the query: {Q} for CQ, the member CQs for UCQ, the
  /// DNF expansion for ∃FO⁺. Fails with kUndecidable-flavored
  /// kInvalidArgument for FO/FP, whose tableau form does not exist.
  Result<std::vector<ConjunctiveQuery>> Disjuncts() const;

  /// Largest variable id used anywhere in the query, or -1 if none.
  int32_t MaxVarId() const;

  /// Underlying nodes (valid only for the matching language).
  const ConjunctiveQuery& cq() const { return std::get<ConjunctiveQuery>(node_); }
  const UnionQuery& ucq() const { return std::get<UnionQuery>(node_); }
  const FoQuery& fo() const { return std::get<FoQuery>(node_); }
  const FpProgram& fp() const { return std::get<FpProgram>(node_); }

  std::string ToString() const;

 private:
  QueryLanguage language_ = QueryLanguage::kCQ;
  std::variant<ConjunctiveQuery, UnionQuery, FoQuery, FpProgram> node_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_QUERY_H_
