// The two basic analyses of Section 3 (Proposition 3.3, both Σp2-complete):
//  - consistency: is Mod(T, Dm, V) non-empty?
//  - extensibility: is Ext(I, Dm, V) non-empty?
// Both are decided by the paper's own algorithms: guess a valuation (resp. a
// single tuple) over Adom and check the CCs; the small-extension property of
// CQ-defined CCs makes one added tuple sufficient.
#ifndef RELCOMP_CORE_CONSISTENCY_H_
#define RELCOMP_CORE_CONSISTENCY_H_

#include <optional>
#include <string>

#include "core/adom.h"
#include "core/enumerate.h"
#include "core/types.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Decides whether Mod(T, Dm, V) ≠ ∅; optionally returns a witness world.
Result<bool> IsConsistent(const PreparedSetting& prepared,
                          const CInstance& cinstance,
                          const SearchOptions& options = {},
                          SearchStats* stats = nullptr,
                          Instance* witness_world = nullptr);
Result<bool> IsConsistent(const PartiallyClosedSetting& setting,
                          const CInstance& cinstance,
                          const SearchOptions& options = {},
                          SearchStats* stats = nullptr,
                          Instance* witness_world = nullptr);

/// A single-tuple extension witness.
struct ExtensionWitness {
  std::string relation;
  Tuple tuple;
};

/// Decides whether Ext(I, Dm, V) ≠ ∅ for a ground instance I.
Result<bool> IsExtensible(const PreparedSetting& prepared,
                          const Instance& instance,
                          const SearchOptions& options = {},
                          SearchStats* stats = nullptr,
                          ExtensionWitness* witness = nullptr);
Result<bool> IsExtensible(const PartiallyClosedSetting& setting,
                          const Instance& instance,
                          const SearchOptions& options = {},
                          SearchStats* stats = nullptr,
                          ExtensionWitness* witness = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_CONSISTENCY_H_
