#include "core/certain.h"

namespace relcomp {

Result<CertainAnswersResult> CertainAnswers(
    const Query& q, const CInstance& cinstance,
    const PreparedSetting& prepared, const AdomContext& adom,
    const SearchOptions& options, SearchStats* stats) {
  CertainAnswersResult result;
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Instance world;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    if (stats != nullptr) ++stats->query_evals;
    Result<Relation> answers = q.Eval(world, adom.values());
    if (!answers.ok()) return answers.status();
    if (!result.mod_nonempty) {
      result.mod_nonempty = true;
      result.answers = std::move(answers).value();
    } else {
      result.answers = result.answers.Intersect(*answers);
    }
    ++result.worlds;
    // An empty intersection can only stay empty.
    if (result.answers.empty()) break;
  }
  return result;
}

Result<CertainAnswersResult> CertainAnswers(
    const Query& q, const CInstance& cinstance,
    const PartiallyClosedSetting& setting, const AdomContext& adom,
    const SearchOptions& options, SearchStats* stats) {
  return CertainAnswers(q, cinstance, PreparedSetting::Borrow(setting), adom,
                        options, stats);
}

}  // namespace relcomp
