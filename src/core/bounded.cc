#include "core/bounded.h"

namespace relcomp {
namespace {

// DFS extension search around one ground instance. CC-violating nodes prune
// their subtree (CC bodies are monotone CQs, so violations persist).
class ExtensionSearcher {
 public:
  ExtensionSearcher(const Query& q, const PartiallyClosedSetting& setting,
                    const AdomContext& adom, size_t max_added,
                    const SearchOptions& options, SearchStats* stats)
      : q_(q),
        setting_(setting),
        adom_(adom),
        max_added_(max_added),
        options_(options),
        stats_(stats),
        checkpoint_(options_, "bounded incompleteness search", "bounded-dfs") {
    for (const RelationSchema& rel : setting.schema.relations()) {
      std::vector<Tuple> tuples;
      TupleEnumerator it(rel, adom);
      Tuple t;
      while (it.Next(&t)) tuples.push_back(t);
      candidates_.push_back(std::move(tuples));
    }
  }

  Result<BoundedSearchResult> Run(const Instance& base) {
    BoundedSearchResult result;
    if (stats_ != nullptr) ++stats_->query_evals;
    Result<Relation> base_answers = q_.Eval(base, adom_.values());
    if (!base_answers.ok()) return base_answers.status();
    Instance current = base;
    Status st = Explore(base, *base_answers, &current, 0, 0, 0, &result);
    if (!st.ok()) return st;
    return result;
  }

 private:
  Status Explore(const Instance& base, const Relation& base_answers,
                 Instance* current, size_t added, size_t rel_index,
                 size_t tuple_index, BoundedSearchResult* result) {
    if (result->witness_found) return Status::OK();
    RELCOMP_RETURN_IF_ERROR(checkpoint_.Tick());
    if (added > 0) {
      ++result->explored;
      if (stats_ != nullptr) {
        ++stats_->extensions;
        ++stats_->cc_checks;
      }
      Result<bool> closed = SatisfiesCCs(*current, setting_.dm, setting_.ccs);
      if (!closed.ok()) return closed.status();
      if (!*closed) return Status::OK();  // prune: supersets stay violated
      if (stats_ != nullptr) ++stats_->query_evals;
      Result<Relation> answers = q_.Eval(*current, adom_.values());
      if (!answers.ok()) return answers.status();
      if (*answers != base_answers) {
        result->witness_found = true;
        result->witness.world = base;
        result->witness.extension = *current;
        Relation gained = answers->Difference(base_answers);
        Relation lost = base_answers.Difference(*answers);
        if (!gained.empty()) {
          result->witness.answer = gained.rows().front();
          result->witness.note = "extension gains answer " +
                                 TupleToString(result->witness.answer);
        } else {
          result->witness.answer = lost.rows().front();
          result->witness.note = "extension loses answer " +
                                 TupleToString(result->witness.answer) +
                                 " (non-monotone query)";
        }
        return Status::OK();
      }
    }
    if (added >= max_added_) return Status::OK();
    for (size_t r = rel_index; r < candidates_.size(); ++r) {
      size_t start = (r == rel_index) ? tuple_index : 0;
      const std::string& rel_name = setting_.schema.relations()[r].name();
      const Relation& existing = current->at(rel_name);
      for (size_t ti = start; ti < candidates_[r].size(); ++ti) {
        if (existing.Contains(candidates_[r][ti])) continue;
        current->AddTuple(rel_name, candidates_[r][ti]);
        Status st = Explore(base, base_answers, current, added + 1, r, ti + 1,
                            result);
        current->RemoveTuple(rel_name, candidates_[r][ti]);
        if (!st.ok()) return st;
        if (result->witness_found) return Status::OK();
      }
    }
    return Status::OK();
  }

  const Query& q_;
  const PartiallyClosedSetting& setting_;
  const AdomContext& adom_;
  size_t max_added_;
  SearchOptions options_;
  SearchStats* stats_;
  std::vector<std::vector<Tuple>> candidates_;
  SearchCheckpoint checkpoint_;
};

}  // namespace

Result<BoundedSearchResult> SearchIncompletenessGround(
    const Query& q, const Instance& instance,
    const PartiallyClosedSetting& setting, size_t max_added_tuples,
    const SearchOptions& options, SearchStats* stats) {
  AdomContext adom = AdomContext::BuildForGround(setting, instance, &q);
  ExtensionSearcher searcher(q, setting, adom, max_added_tuples, options,
                             stats);
  return searcher.Run(instance);
}

Result<BoundedSearchResult> SearchIncompletenessStrong(
    const Query& q, const CInstance& cinstance,
    const PartiallyClosedSetting& setting, size_t max_added_tuples,
    const SearchOptions& options, SearchStats* stats) {
  AdomContext adom = AdomContext::Build(setting, cinstance, &q);
  ExtensionSearcher searcher(q, setting, adom, max_added_tuples, options,
                             stats);
  ModEnumerator worlds(cinstance, setting, adom, options, stats);
  Instance world;
  BoundedSearchResult aggregate;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    Result<BoundedSearchResult> result = searcher.Run(world);
    if (!result.ok()) return result.status();
    aggregate.explored += result->explored;
    if (result->witness_found) {
      aggregate.witness_found = true;
      aggregate.witness = result->witness;
      return aggregate;
    }
  }
  return aggregate;
}

}  // namespace relcomp
