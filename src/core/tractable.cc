#include "core/tractable.h"

namespace relcomp {
namespace {

Status RequireRegime(const Query& q, const CInstance& cinstance, int max_vars,
                     bool allow_fp) {
  TractabilityCheck check = CheckDataComplexityRegime(q, cinstance, max_vars);
  if (!check.ok) return Status::InvalidArgument(check.reason);
  if (!allow_fp && q.language() == QueryLanguage::kFP) {
    return Status::InvalidArgument(
        "FP is only tractable in the weak model (Corollary 7.1)");
  }
  return Status::OK();
}

}  // namespace

TractabilityCheck CheckDataComplexityRegime(const Query& q,
                                            const CInstance& cinstance,
                                            int max_vars) {
  TractabilityCheck check;
  if (q.language() == QueryLanguage::kFO) {
    check.reason = "FO stays undecidable under data complexity (Section 7)";
    return check;
  }
  size_t vars = cinstance.Vars().size();
  if (vars > static_cast<size_t>(max_vars)) {
    check.reason = "c-instance has " + std::to_string(vars) +
                   " variables, above the constant bound " +
                   std::to_string(max_vars);
    return check;
  }
  check.ok = true;
  check.reason = "fixed query and CCs, " + std::to_string(vars) +
                 " variables: PTIME data complexity";
  return check;
}

Result<bool> RcdpStrongTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars, const SearchOptions& options,
                                 SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, false));
  return RcdpStrong(q, cinstance, setting, options, stats);
}

Result<bool> RcdpViableTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars, const SearchOptions& options,
                                 SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, false));
  return RcdpViable(q, cinstance, setting, options, stats);
}

Result<bool> RcdpWeakTractable(const Query& q, const CInstance& cinstance,
                               const PartiallyClosedSetting& setting,
                               int max_vars, const SearchOptions& options,
                               SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, true));
  return RcdpWeak(q, cinstance, setting, options, stats);
}

Result<bool> MinpStrongTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars, const SearchOptions& options,
                                 SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, false));
  return MinpStrong(q, cinstance, setting, options, stats);
}

Result<bool> MinpViableTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars, const SearchOptions& options,
                                 SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, false));
  return MinpViable(q, cinstance, setting, options, stats);
}

Result<bool> MinpWeakCqTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars, const SearchOptions& options,
                                 SearchStats* stats) {
  RELCOMP_RETURN_IF_ERROR(RequireRegime(q, cinstance, max_vars, true));
  return MinpWeakCq(q, cinstance, setting, options, stats);
}

}  // namespace relcomp
