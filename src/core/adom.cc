#include "core/adom.h"

#include <algorithm>

namespace relcomp {
namespace {

void AddAll(std::vector<Value>* dst, const std::vector<Value>& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void SortUnique(std::vector<Value>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

}  // namespace

AdomContext AdomContext::Build(const PartiallyClosedSetting& setting,
                               const CInstance& cinstance, const Query* query,
                               AdomOptions options) {
  AdomContext ctx;

  // S: constants of T, Dm and V (plus the query's, per the Thm 4.1 Adom).
  std::vector<Value> base = cinstance.Constants();
  AddAll(&base, setting.dm.ActiveDomain());
  AddAll(&base, CcConstants(setting.ccs));
  if (query != nullptr) AddAll(&base, query->Constants());

  // df: all constants of finite attribute domains (database + master).
  for (const DatabaseSchema* schema : {&setting.schema,
                                       &setting.master_schema}) {
    for (const RelationSchema& rel : schema->relations()) {
      for (const Attribute& attr : rel.attributes()) {
        if (attr.domain.is_finite()) AddAll(&base, attr.domain.values());
      }
    }
  }
  SortUnique(&base);
  ctx.base_ = base;

  // New: one fresh constant per variable of T, V and the query, plus the
  // requested extras (e.g. one per column for extension tuples).
  size_t num_fresh = cinstance.Vars().size() + options.extra_fresh;
  num_fresh += static_cast<size_t>(CcMaxVarId(setting.ccs) + 1);
  if (query != nullptr) {
    num_fresh += static_cast<size_t>(query->MaxVarId() + 1);
  }
  size_t max_arity = 0;
  for (const RelationSchema& rel : setting.schema.relations()) {
    max_arity = std::max(max_arity, rel.arity());
  }
  num_fresh += max_arity;

  size_t counter = 0;
  while (ctx.fresh_.size() < num_fresh) {
    Value candidate = Value::Sym("@new" + std::to_string(counter++));
    if (!std::binary_search(base.begin(), base.end(), candidate)) {
      ctx.fresh_.push_back(candidate);
    }
  }

  ctx.values_ = base;
  AddAll(&ctx.values_, ctx.fresh_);
  SortUnique(&ctx.values_);
  return ctx;
}

AdomContext AdomContext::BuildForGround(const PartiallyClosedSetting& setting,
                                        const Instance& instance,
                                        const Query* query, AdomOptions options) {
  return Build(setting, CInstance::FromInstance(instance), query, options);
}

}  // namespace relcomp
