#include "core/adom.h"

#include <algorithm>

namespace relcomp {
namespace {

void AddAll(std::vector<Value>* dst, const std::vector<Value>& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void SortUnique(std::vector<Value>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

}  // namespace

AdomSeed AdomContext::SeedFor(const PartiallyClosedSetting& setting) {
  AdomSeed seed;

  // The setting's share of S: constants of Dm and V.
  seed.base = setting.dm.ActiveDomain();
  AddAll(&seed.base, CcConstants(setting.ccs));

  // df: all constants of finite attribute domains (database + master).
  for (const DatabaseSchema* schema : {&setting.schema,
                                       &setting.master_schema}) {
    for (const RelationSchema& rel : schema->relations()) {
      for (const Attribute& attr : rel.attributes()) {
        if (attr.domain.is_finite()) AddAll(&seed.base, attr.domain.values());
      }
    }
  }
  SortUnique(&seed.base);

  // The setting's share of New: one fresh constant per CC variable plus one
  // per column of the widest relation (for extension tuples).
  seed.fresh = static_cast<size_t>(CcMaxVarId(setting.ccs) + 1);
  size_t max_arity = 0;
  for (const RelationSchema& rel : setting.schema.relations()) {
    max_arity = std::max(max_arity, rel.arity());
  }
  seed.fresh += max_arity;
  return seed;
}

AdomContext AdomContext::Build(const PartiallyClosedSetting& setting,
                               const CInstance& cinstance, const Query* query,
                               AdomOptions options) {
  return BuildFromSeed(SeedFor(setting), cinstance, query, options);
}

AdomContext AdomContext::BuildFromSeed(const AdomSeed& seed,
                                       const CInstance& cinstance,
                                       const Query* query,
                                       AdomOptions options) {
  AdomContext ctx;

  // S: constants of T (plus the query's, per the Thm 4.1 Adom) on top of the
  // cached setting constants.
  std::vector<Value> base = cinstance.Constants();
  AddAll(&base, seed.base);
  if (query != nullptr) AddAll(&base, query->Constants());
  SortUnique(&base);
  ctx.base_ = base;

  // New: one fresh constant per variable of T and the query, plus the
  // requested extras, on top of the cached setting budget.
  size_t num_fresh = cinstance.Vars().size() + options.extra_fresh + seed.fresh;
  if (query != nullptr) {
    num_fresh += static_cast<size_t>(query->MaxVarId() + 1);
  }

  size_t counter = 0;
  while (ctx.fresh_.size() < num_fresh) {
    Value candidate = Value::Sym("@new" + std::to_string(counter++));
    if (!std::binary_search(base.begin(), base.end(), candidate)) {
      ctx.fresh_.push_back(candidate);
    }
  }

  ctx.values_ = base;
  AddAll(&ctx.values_, ctx.fresh_);
  SortUnique(&ctx.values_);
  return ctx;
}

AdomContext AdomContext::BuildForGround(const PartiallyClosedSetting& setting,
                                        const Instance& instance,
                                        const Query* query, AdomOptions options) {
  return Build(setting, CInstance::FromInstance(instance), query, options);
}

}  // namespace relcomp
