// Relative completeness for ground instances (strong ≡ viable on ground
// data, Section 2.2): I is complete for monotone Q relative to (Dm, V) iff I
// is partially closed and "bounded by (Dm, V)" — no Adom-valuation ν of any
// tableau disjunct (T_Qi, u_i) yields a partially closed I ∪ ν(T_Qi) with a
// new answer ν(u_i) ∉ Q(I). This is the Lemma 4.2 / 4.3 characterization.
#ifndef RELCOMP_CORE_GROUND_H_
#define RELCOMP_CORE_GROUND_H_

#include "core/adom.h"
#include "core/enumerate.h"
#include "core/types.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Is the ground instance I partially closed w.r.t. (Dm, V)?
Result<bool> IsPartiallyClosed(const PreparedSetting& prepared,
                               const Instance& instance);
Result<bool> IsPartiallyClosed(const PartiallyClosedSetting& setting,
                               const Instance& instance);

/// Is the ground instance I complete for the monotone query `q` relative to
/// (Dm, V)? Requires CQ/UCQ/∃FO⁺ (languages with tableau disjuncts); FO and
/// FP are undecidable here (Theorem 4.1) and yield kUndecidable.
/// `adom` must have been built with `q` folded in.
Result<bool> IsCompleteGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const AdomContext& adom,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr,
                              CompletenessWitness* witness = nullptr);
Result<bool> IsCompleteGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const AdomContext& adom,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr,
                              CompletenessWitness* witness = nullptr);

/// Convenience wrappers that build the Adom internally.
Result<bool> IsCompleteGroundAuto(const Query& q, const Instance& instance,
                                  const PreparedSetting& prepared,
                                  const SearchOptions& options = {},
                                  SearchStats* stats = nullptr,
                                  CompletenessWitness* witness = nullptr);
Result<bool> IsCompleteGroundAuto(const Query& q, const Instance& instance,
                                  const PartiallyClosedSetting& setting,
                                  const SearchOptions& options = {},
                                  SearchStats* stats = nullptr,
                                  CompletenessWitness* witness = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_GROUND_H_
