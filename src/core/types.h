// Shared types for the decision procedures: the partially closed setting
// (Dm, V), search budgets, statistics, and counterexample witnesses.
#ifndef RELCOMP_CORE_TYPES_H_
#define RELCOMP_CORE_TYPES_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "ctable/cinstance.h"
#include "data/instance.h"
#include "query/containment.h"
#include "query/query.h"
#include "sched/cancel.h"
#include "util/status.h"

namespace relcomp {

/// The fixed context of every decision problem: database schema R, master
/// schema Rm, master data Dm, and the set V of containment constraints.
struct PartiallyClosedSetting {
  DatabaseSchema schema;
  DatabaseSchema master_schema;
  Instance dm;
  CCSet ccs;

  /// Validates Dm against the master schema and every CC against both.
  Status Validate() const;
};

/// Budget and cooperative-abort controls for the (inherently exponential)
/// valuation searches. Every enumerated valuation / candidate tuple costs
/// one step; procedures fail with kResourceExhausted when the budget runs
/// out instead of hanging. A deadline or cancellation token makes a running
/// search *anytime*: the long enumeration loops poll both at amortized
/// checkpoints (every `checkpoint_interval` steps) and abort with
/// kDeadlineExceeded / kCancelled — distinct from kResourceExhausted —
/// leaving whatever SearchStats the aborted run accumulated in place.
struct SearchOptions {
  /// The built-in step budget; the service treats requests still carrying
  /// it as "no explicit budget" when a shard-level default is configured.
  static constexpr uint64_t kDefaultMaxSteps = 50'000'000ULL;
  uint64_t max_steps = kDefaultMaxSteps;
  /// Hard wall-clock bound for the whole search (steady clock; max() = no
  /// deadline). Unlike the scheduler's queued-request shedding, this is
  /// enforced *inside* a running evaluation.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation; an invalid (default) token never aborts.
  CancelToken cancel;
  /// Optional EXTENDABLE deadline, read afresh at every poll: the count of
  /// the steady clock's duration-since-epoch (max = no deadline), stored
  /// where another thread may push it later. The service points this at a
  /// coalesced flight group's shared run deadline, so a waiter that joins
  /// an already-running evaluation can extend (or lift) its deadline the
  /// same way a late joiner re-pins cancellation. The pointee must outlive
  /// the search. Enforced in addition to the fixed `deadline` above.
  const std::atomic<std::chrono::steady_clock::rep>* shared_deadline =
      nullptr;
  /// How many enumeration steps pass between deadline/cancellation polls
  /// (rounded up to a power of two so the hot-loop test is one AND). The
  /// interval bounds worst-case abort latency; 0 disables mid-run polling
  /// entirely (the pre-checkpoint behavior — the step budget still holds).
  uint64_t checkpoint_interval = 4096;
  /// Observation hook invoked from the checkpoint's cold path: once when a
  /// search loop starts (steps == 0) and again at every poll, with the
  /// loop's `what` phrase and the steps charged so far. The service points
  /// this at a sampled trace to turn checkpoint polls into evaluation-phase
  /// progress marks. Must be cheap-ish (it runs every checkpoint_interval
  /// steps) and must outlive the search; nullptr = no observation. Not part
  /// of the request cache key — observers never change answers.
  using SearchProgressFn = std::function<void(const char* what,
                                              uint64_t steps)>;
  const SearchProgressFn* progress = nullptr;
};

/// Amortized cooperative checkpoint threaded through every long enumeration
/// loop. Each loop constructs one checkpoint from its SearchOptions and
/// calls Tick() once per step: the hot path is a counter increment, the
/// budget compare, and one AND; the deadline clock read and the token's
/// atomic load run only every checkpoint_interval steps. Tick() returns the
/// abort reason — kResourceExhausted, kDeadlineExceeded, or kCancelled —
/// tagged with the loop's `what` phrase, or OK to keep searching.
class SearchCheckpoint {
 public:
  /// `what` names the enclosing search in abort messages; it must outlive
  /// the checkpoint (string literals in practice).
  SearchCheckpoint(const SearchOptions& options, const char* what);

  /// Charges one enumeration step.
  Status Tick() {
    ++steps_;
    if (steps_ > max_steps_) return Exhausted();
    if (poll_ && (steps_ & mask_) == 0) return Poll();
    return Status::OK();
  }

  /// Steps charged so far.
  uint64_t steps() const { return steps_; }

 private:
  Status Exhausted() const;
  Status Poll() const;  ///< the cold path: clock read + token load

  uint64_t steps_ = 0;
  uint64_t max_steps_;
  uint64_t mask_;
  bool poll_;
  std::chrono::steady_clock::time_point deadline_;
  const std::atomic<std::chrono::steady_clock::rep>* shared_deadline_;
  CancelToken cancel_;
  const SearchOptions::SearchProgressFn* progress_;
  const char* what_;
};

/// Counters reported by the deciders; benchmarks use them to show the
/// complexity-class shapes of Table I.
struct SearchStats {
  uint64_t valuations = 0;   ///< c-instance / tableau valuations enumerated
  uint64_t worlds = 0;       ///< worlds of Mod(T, Dm, V) visited
  uint64_t extensions = 0;   ///< candidate extensions examined
  uint64_t cc_checks = 0;    ///< CC satisfaction tests
  uint64_t query_evals = 0;  ///< full query evaluations

  /// Field-wise accumulation, for aggregating per-request stats.
  SearchStats& Merge(const SearchStats& other);
  SearchStats& operator+=(const SearchStats& other) { return Merge(other); }

  /// Total units of search work recorded — the "wasted steps" measure the
  /// service reports for aborted evaluations.
  uint64_t TotalSteps() const {
    return valuations + worlds + extensions + cc_checks + query_evals;
  }

  std::string ToString() const;
};

/// A counterexample produced by a decider: the world and extension that
/// break completeness, plus the answer tuple that appears or disappears.
struct CompletenessWitness {
  Valuation world_valuation;  ///< µ selecting the offending world
  Instance world;             ///< I = µ(T)
  Instance extension;         ///< I' ∈ Ext(I) with Q(I) ≠ Q(I')
  Tuple answer;               ///< tuple in Q(I') \ Q(I) (or certain-answer gap)
  std::string note;           ///< human-readable explanation

  std::string ToString() const;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_TYPES_H_
