// Shared types for the decision procedures: the partially closed setting
// (Dm, V), search budgets, statistics, and counterexample witnesses.
#ifndef RELCOMP_CORE_TYPES_H_
#define RELCOMP_CORE_TYPES_H_

#include <cstdint>
#include <string>

#include "ctable/cinstance.h"
#include "data/instance.h"
#include "query/containment.h"
#include "query/query.h"

namespace relcomp {

/// The fixed context of every decision problem: database schema R, master
/// schema Rm, master data Dm, and the set V of containment constraints.
struct PartiallyClosedSetting {
  DatabaseSchema schema;
  DatabaseSchema master_schema;
  Instance dm;
  CCSet ccs;

  /// Validates Dm against the master schema and every CC against both.
  Status Validate() const;
};

/// Budget for the (inherently exponential) valuation searches. Every
/// enumerated valuation / candidate tuple costs one step; procedures fail
/// with kResourceExhausted when the budget runs out instead of hanging.
struct SearchOptions {
  uint64_t max_steps = 50'000'000ULL;
};

/// Counters reported by the deciders; benchmarks use them to show the
/// complexity-class shapes of Table I.
struct SearchStats {
  uint64_t valuations = 0;   ///< c-instance / tableau valuations enumerated
  uint64_t worlds = 0;       ///< worlds of Mod(T, Dm, V) visited
  uint64_t extensions = 0;   ///< candidate extensions examined
  uint64_t cc_checks = 0;    ///< CC satisfaction tests
  uint64_t query_evals = 0;  ///< full query evaluations

  /// Field-wise accumulation, for aggregating per-request stats.
  SearchStats& Merge(const SearchStats& other);
  SearchStats& operator+=(const SearchStats& other) { return Merge(other); }

  std::string ToString() const;
};

/// A counterexample produced by a decider: the world and extension that
/// break completeness, plus the answer tuple that appears or disappears.
struct CompletenessWitness {
  Valuation world_valuation;  ///< µ selecting the offending world
  Instance world;             ///< I = µ(T)
  Instance extension;         ///< I' ∈ Ext(I) with Q(I) ≠ Q(I')
  Tuple answer;               ///< tuple in Q(I') \ Q(I) (or certain-answer gap)
  std::string note;           ///< human-readable explanation

  std::string ToString() const;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_TYPES_H_
