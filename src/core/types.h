// Shared types for the decision procedures: the partially closed setting
// (Dm, V), search budgets, statistics, and counterexample witnesses.
#ifndef RELCOMP_CORE_TYPES_H_
#define RELCOMP_CORE_TYPES_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ctable/cinstance.h"
#include "data/instance.h"
#include "query/containment.h"
#include "query/query.h"
#include "sched/cancel.h"
#include "util/status.h"

namespace relcomp {

/// The fixed context of every decision problem: database schema R, master
/// schema Rm, master data Dm, and the set V of containment constraints.
struct PartiallyClosedSetting {
  DatabaseSchema schema;
  DatabaseSchema master_schema;
  Instance dm;
  CCSet ccs;

  /// Validates Dm against the master schema and every CC against both.
  Status Validate() const;
};

/// Per-evaluation search attribution: which core search loops ran, for how
/// long, and how many steps each charged. A SearchProfile is a single-
/// threaded phase machine fed by the SearchCheckpoint RAII (construction
/// enters a loop, destruction exits it); nested loops pause the enclosing
/// loop's slice and reopen a fresh one on return, so the recorded slices
/// are non-overlapping and tile the time spent inside instrumented loops
/// exactly — the property that lets exported traces render per-loop
/// sub-slices whose durations sum to the evaluate span (gaps between
/// slices are evaluation work outside any instrumented loop).
///
/// NOT thread-safe by design: one evaluation runs on one thread, and the
/// profile becomes read-only (shared_ptr<const>) once the evaluation
/// finishes. Every time-taking method accepts an explicit time point so
/// tests can drive deterministic timelines.
class SearchProfile {
 public:
  using Clock = std::chrono::steady_clock;

  /// Slices beyond this cap are counted in dropped_slices() instead of
  /// stored; per-loop totals keep accumulating regardless.
  static constexpr size_t kMaxSlices = 96;

  /// One closed sub-slice: [start, end) microseconds relative to Start(),
  /// tagged with the loop's short stable name ("ground", "mod-enum", ...).
  /// `steps` is the search work observed during this slice (exact for a
  /// loop's final slice; a lower bound for slices paused by a nested loop,
  /// where steps are observed only at checkpoint polls).
  struct Slice {
    const char* loop = nullptr;
    uint64_t start_micros = 0;
    uint64_t end_micros = 0;
    uint64_t steps = 0;

    uint64_t duration_micros() const { return end_micros - start_micros; }
  };

  /// Per-loop rollup across every slice (and the dropped ones).
  struct LoopTotal {
    const char* loop = nullptr;
    uint64_t micros = 0;   ///< total time inside the loop
    uint64_t steps = 0;    ///< total steps the loop charged
    uint64_t entries = 0;  ///< times the loop was entered
  };

  /// Anchors the profile's epoch. The service passes the SAME instant it
  /// opens the trace's "evaluate" phase with, so slice offsets and the
  /// evaluate span share a coordinate system. Implicit on first EnterLoop
  /// when never called.
  void Start(Clock::time_point now = Clock::now());

  /// Opens a slice for `loop` (a string literal that must outlive the
  /// profile), pausing the enclosing loop's slice if one is open.
  void EnterLoop(const char* loop, Clock::time_point now = Clock::now());

  /// Updates the running loop's observed step count (checkpoint polls).
  void Heartbeat(uint64_t steps);

  /// Closes `loop`'s slice with its final step count and resumes the
  /// enclosing loop (a fresh slice at the same instant). Robust against
  /// mismatched nesting: intervening frames are closed too.
  void ExitLoop(const char* loop, uint64_t steps,
                Clock::time_point now = Clock::now());

  /// Seals the profile (closing any loops still open) and records the
  /// total evaluation time. Idempotent; the first Finish wins.
  void Finish(Clock::time_point now = Clock::now());

  bool finished() const { return finished_; }
  uint64_t total_micros() const { return total_micros_; }
  size_t dropped_slices() const { return dropped_; }
  const std::vector<Slice>& slices() const { return slices_; }
  /// Per-loop rollups, in first-entered order.
  const std::vector<LoopTotal>& totals() const { return totals_; }

  /// "total=1234us ground: 2 slices 900us 8192 steps; ..." — the compact
  /// attribution line embedded in slow-log entries and reports.
  std::string ToString() const;

 private:
  struct Frame {
    const char* loop = nullptr;
    uint64_t slice_start_micros = 0;
    uint64_t steps_observed = 0;       ///< latest heartbeat / exit count
    uint64_t steps_at_slice_open = 0;  ///< observed count when slice opened
  };

  uint64_t MicrosSinceStart(Clock::time_point now) const;
  void CloseTopSlice(uint64_t at);
  LoopTotal& TotalFor(const char* loop);

  Clock::time_point start_{};
  bool started_ = false;
  bool finished_ = false;
  uint64_t total_micros_ = 0;
  size_t dropped_ = 0;
  std::vector<Frame> stack_;
  std::vector<Slice> slices_;
  std::vector<LoopTotal> totals_;
};

/// Budget and cooperative-abort controls for the (inherently exponential)
/// valuation searches. Every enumerated valuation / candidate tuple costs
/// one step; procedures fail with kResourceExhausted when the budget runs
/// out instead of hanging. A deadline or cancellation token makes a running
/// search *anytime*: the long enumeration loops poll both at amortized
/// checkpoints (every `checkpoint_interval` steps) and abort with
/// kDeadlineExceeded / kCancelled — distinct from kResourceExhausted —
/// leaving whatever SearchStats the aborted run accumulated in place.
struct SearchOptions {
  /// The built-in step budget; the service treats requests still carrying
  /// it as "no explicit budget" when a shard-level default is configured.
  static constexpr uint64_t kDefaultMaxSteps = 50'000'000ULL;
  uint64_t max_steps = kDefaultMaxSteps;
  /// Hard wall-clock bound for the whole search (steady clock; max() = no
  /// deadline). Unlike the scheduler's queued-request shedding, this is
  /// enforced *inside* a running evaluation.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation; an invalid (default) token never aborts.
  CancelToken cancel;
  /// Optional EXTENDABLE deadline, read afresh at every poll: the count of
  /// the steady clock's duration-since-epoch (max = no deadline), stored
  /// where another thread may push it later. The service points this at a
  /// coalesced flight group's shared run deadline, so a waiter that joins
  /// an already-running evaluation can extend (or lift) its deadline the
  /// same way a late joiner re-pins cancellation. The pointee must outlive
  /// the search. Enforced in addition to the fixed `deadline` above.
  const std::atomic<std::chrono::steady_clock::rep>* shared_deadline =
      nullptr;
  /// How many enumeration steps pass between deadline/cancellation polls
  /// (rounded up to a power of two so the hot-loop test is one AND). The
  /// interval bounds worst-case abort latency; 0 disables mid-run polling
  /// entirely (the pre-checkpoint behavior — the step budget still holds).
  uint64_t checkpoint_interval = 4096;
  /// Observation hook invoked from the checkpoint's cold path: once when a
  /// search loop starts (steps == 0) and again at every poll, with the
  /// loop's `what` phrase and the steps charged so far. The service points
  /// this at a sampled trace to turn checkpoint polls into evaluation-phase
  /// progress marks. Must be cheap-ish (it runs every checkpoint_interval
  /// steps) and must outlive the search; nullptr = no observation. Not part
  /// of the request cache key — observers never change answers.
  using SearchProgressFn = std::function<void(const char* what,
                                              uint64_t steps)>;
  const SearchProgressFn* progress = nullptr;
  /// Per-evaluation search attribution sink. When set, every
  /// SearchCheckpoint scopes its loop into the profile (EnterLoop on
  /// construction, Heartbeat at polls, ExitLoop on destruction), yielding
  /// per-loop time/step slices for the whole evaluation. The profile is
  /// single-threaded (same thread as the search) and must outlive every
  /// checkpoint built from these options; nullptr = no attribution. Like
  /// `progress`, not part of the request cache key.
  SearchProfile* profile = nullptr;
};

/// Amortized cooperative checkpoint threaded through every long enumeration
/// loop. Each loop constructs one checkpoint from its SearchOptions and
/// calls Tick() once per step: the hot path is a counter increment, the
/// budget compare, and one AND; the deadline clock read and the token's
/// atomic load run only every checkpoint_interval steps. Tick() returns the
/// abort reason — kResourceExhausted, kDeadlineExceeded, or kCancelled —
/// tagged with the loop's `what` phrase, or OK to keep searching.
class SearchCheckpoint {
 public:
  /// `what` names the enclosing search in abort messages; `loop` is the
  /// short stable tag ("ground", "mod-enum", ...) used for profile slices
  /// and progress callbacks, defaulting to `what`. Both must outlive the
  /// checkpoint (string literals in practice). Construction enters the
  /// loop in the options' SearchProfile (if any); destruction exits it —
  /// the checkpoint IS the loop's profiling scope, so it is not copyable.
  SearchCheckpoint(const SearchOptions& options, const char* what,
                   const char* loop = nullptr);
  ~SearchCheckpoint();
  SearchCheckpoint(const SearchCheckpoint&) = delete;
  SearchCheckpoint& operator=(const SearchCheckpoint&) = delete;

  /// Charges one enumeration step.
  Status Tick() {
    ++steps_;
    if (steps_ > max_steps_) return Exhausted();
    if (poll_ && (steps_ & mask_) == 0) return Poll();
    return Status::OK();
  }

  /// Steps charged so far.
  uint64_t steps() const { return steps_; }

 private:
  Status Exhausted() const;
  Status Poll() const;  ///< the cold path: clock read + token load

  uint64_t steps_ = 0;
  uint64_t max_steps_;
  uint64_t mask_;
  bool poll_;
  std::chrono::steady_clock::time_point deadline_;
  const std::atomic<std::chrono::steady_clock::rep>* shared_deadline_;
  CancelToken cancel_;
  const SearchOptions::SearchProgressFn* progress_;
  SearchProfile* profile_;
  const char* what_;
  const char* loop_;
};

/// Counters reported by the deciders; benchmarks use them to show the
/// complexity-class shapes of Table I.
struct SearchStats {
  uint64_t valuations = 0;   ///< c-instance / tableau valuations enumerated
  uint64_t worlds = 0;       ///< worlds of Mod(T, Dm, V) visited
  uint64_t extensions = 0;   ///< candidate extensions examined
  uint64_t cc_checks = 0;    ///< CC satisfaction tests
  uint64_t query_evals = 0;  ///< full query evaluations

  /// Field-wise accumulation, for aggregating per-request stats.
  SearchStats& Merge(const SearchStats& other);
  SearchStats& operator+=(const SearchStats& other) { return Merge(other); }

  /// Total units of search work recorded — the "wasted steps" measure the
  /// service reports for aborted evaluations.
  uint64_t TotalSteps() const {
    return valuations + worlds + extensions + cc_checks + query_evals;
  }

  std::string ToString() const;
};

/// A counterexample produced by a decider: the world and extension that
/// break completeness, plus the answer tuple that appears or disappears.
struct CompletenessWitness {
  Valuation world_valuation;  ///< µ selecting the offending world
  Instance world;             ///< I = µ(T)
  Instance extension;         ///< I' ∈ Ext(I) with Q(I) ≠ Q(I')
  Tuple answer;               ///< tuple in Q(I') \ Q(I) (or certain-answer gap)
  std::string note;           ///< human-readable explanation

  std::string ToString() const;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_TYPES_H_
