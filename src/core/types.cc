#include "core/types.h"

namespace relcomp {

Status PartiallyClosedSetting::Validate() const {
  if (dm.schema().size() != master_schema.size()) {
    return Status::InvalidArgument(
        "master data does not match the master schema");
  }
  for (const ContainmentConstraint& cc : ccs) {
    RELCOMP_RETURN_IF_ERROR(cc.Validate(schema, master_schema));
  }
  return Status::OK();
}

namespace {

// Smallest (power of two) - 1 covering `interval`, so `steps & mask == 0`
// fires at most once per requested interval.
uint64_t PollMask(uint64_t interval) {
  uint64_t size = 1;
  while (size < interval && size < (uint64_t{1} << 62)) size <<= 1;
  return size - 1;
}

}  // namespace

SearchCheckpoint::SearchCheckpoint(const SearchOptions& options,
                                   const char* what)
    : max_steps_(options.max_steps),
      mask_(PollMask(options.checkpoint_interval)),
      poll_(options.checkpoint_interval > 0 &&
            (options.cancel.valid() || options.shared_deadline != nullptr ||
             options.progress != nullptr ||
             options.deadline !=
                 std::chrono::steady_clock::time_point::max())),
      deadline_(options.deadline),
      shared_deadline_(options.shared_deadline),
      cancel_(options.cancel),
      progress_(options.progress),
      what_(what) {
  // Announce the loop's start so an observer sees which search phase is
  // running even before the first poll interval elapses.
  if (progress_ != nullptr && *progress_) (*progress_)(what_, 0);
}

Status SearchCheckpoint::Exhausted() const {
  return Status::ResourceExhausted(std::string(what_) +
                                   " exceeded the step budget");
}

Status SearchCheckpoint::Poll() const {
  if (progress_ != nullptr && *progress_) (*progress_)(what_, steps_);
  if (cancel_.cancelled()) {
    return Status::Cancelled(std::string(what_) +
                             " aborted at a checkpoint: cancelled");
  }
  const auto now = std::chrono::steady_clock::now();
  // The shared deadline is re-read every poll: waiters joining a coalesced
  // evaluation mid-run may have extended (or lifted) it since the last one.
  const bool expired =
      now > deadline_ ||
      (shared_deadline_ != nullptr &&
       now.time_since_epoch().count() >
           shared_deadline_->load(std::memory_order_relaxed));
  if (expired) {
    return Status::DeadlineExceeded(std::string(what_) +
                                    " aborted at a checkpoint: deadline "
                                    "exceeded mid-evaluation");
  }
  return Status::OK();
}

SearchStats& SearchStats::Merge(const SearchStats& other) {
  valuations += other.valuations;
  worlds += other.worlds;
  extensions += other.extensions;
  cc_checks += other.cc_checks;
  query_evals += other.query_evals;
  return *this;
}

std::string SearchStats::ToString() const {
  return "valuations=" + std::to_string(valuations) +
         " worlds=" + std::to_string(worlds) +
         " extensions=" + std::to_string(extensions) +
         " cc_checks=" + std::to_string(cc_checks) +
         " query_evals=" + std::to_string(query_evals);
}

std::string CompletenessWitness::ToString() const {
  std::string out = note;
  if (!world.relations().empty()) {
    out += "\nworld I = " + world.ToString();
  }
  if (!extension.relations().empty()) {
    out += "\nextension I' = " + extension.ToString();
  }
  if (!answer.empty()) {
    out += "\nanswer tuple: " + TupleToString(answer);
  }
  return out;
}

}  // namespace relcomp
