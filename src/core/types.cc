#include "core/types.h"

#include <cstring>

namespace relcomp {

Status PartiallyClosedSetting::Validate() const {
  if (dm.schema().size() != master_schema.size()) {
    return Status::InvalidArgument(
        "master data does not match the master schema");
  }
  for (const ContainmentConstraint& cc : ccs) {
    RELCOMP_RETURN_IF_ERROR(cc.Validate(schema, master_schema));
  }
  return Status::OK();
}

namespace {

// Smallest (power of two) - 1 covering `interval`, so `steps & mask == 0`
// fires at most once per requested interval.
uint64_t PollMask(uint64_t interval) {
  uint64_t size = 1;
  while (size < interval && size < (uint64_t{1} << 62)) size <<= 1;
  return size - 1;
}

}  // namespace

void SearchProfile::Start(Clock::time_point now) {
  if (started_) return;
  started_ = true;
  start_ = now;
}

uint64_t SearchProfile::MicrosSinceStart(Clock::time_point now) const {
  if (now <= start_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
          .count());
}

SearchProfile::LoopTotal& SearchProfile::TotalFor(const char* loop) {
  for (LoopTotal& total : totals_) {
    // Loop tags are string literals, but compare contents too so the same
    // tag from different translation units still aggregates.
    if (total.loop == loop ||
        std::strcmp(total.loop, loop) == 0) {
      return total;
    }
  }
  totals_.push_back(LoopTotal{loop, 0, 0, 0});
  return totals_.back();
}

void SearchProfile::CloseTopSlice(uint64_t at) {
  Frame& frame = stack_.back();
  const uint64_t steps =
      frame.steps_observed > frame.steps_at_slice_open
          ? frame.steps_observed - frame.steps_at_slice_open
          : 0;
  LoopTotal& total = TotalFor(frame.loop);
  total.micros += at - frame.slice_start_micros;
  total.steps += steps;
  if (slices_.size() < kMaxSlices) {
    slices_.push_back(Slice{frame.loop, frame.slice_start_micros, at, steps});
  } else {
    ++dropped_;
  }
}

void SearchProfile::EnterLoop(const char* loop, Clock::time_point now) {
  if (finished_) return;
  Start(now);
  const uint64_t at = MicrosSinceStart(now);
  // Pause the enclosing loop: close its open slice; ExitLoop (or Finish)
  // will reopen a fresh one when this nested loop unwinds.
  if (!stack_.empty()) CloseTopSlice(at);
  TotalFor(loop).entries += 1;
  stack_.push_back(Frame{loop, at, 0, 0});
}

void SearchProfile::Heartbeat(uint64_t steps) {
  if (finished_ || stack_.empty()) return;
  stack_.back().steps_observed = steps;
}

void SearchProfile::ExitLoop(const char* loop, uint64_t steps,
                             Clock::time_point now) {
  if (finished_ || stack_.empty()) return;
  const uint64_t at = MicrosSinceStart(now);
  stack_.back().steps_observed = steps;
  // Defensive unwinding: if an intervening frame never exited (a loop that
  // returned without destroying its checkpoint cannot happen with the RAII,
  // but guard anyway), close everything down to — and including — `loop`.
  // Each pop resumes the newly exposed parent at the unwind instant —
  // NOT from its pre-pause slice start, which already closed when the
  // child entered; reusing it would double-charge the child's whole span
  // to the parent. The step baseline restarts from the parent's latest
  // observed count so paused and resumed slices never double-charge steps.
  while (!stack_.empty()) {
    const bool match = stack_.back().loop == loop ||
                       std::strcmp(stack_.back().loop, loop) == 0;
    CloseTopSlice(at);
    stack_.pop_back();
    if (!stack_.empty()) {
      Frame& parent = stack_.back();
      parent.slice_start_micros = at;
      parent.steps_at_slice_open = parent.steps_observed;
    }
    if (match) break;
  }
}

void SearchProfile::Finish(Clock::time_point now) {
  if (finished_) return;
  Start(now);
  const uint64_t at = MicrosSinceStart(now);
  // Unwind any loops still open (an evaluation cut short mid-search).
  // Only the top frame has an open slice — every lower frame was paused
  // when its child entered — so each exposed parent resumes at `at` and
  // closes immediately as a zero-length slice, keeping the slice set
  // non-overlapping instead of re-charging the children's spans.
  while (!stack_.empty()) {
    CloseTopSlice(at);
    stack_.pop_back();
    if (!stack_.empty()) {
      Frame& parent = stack_.back();
      parent.slice_start_micros = at;
      parent.steps_at_slice_open = parent.steps_observed;
    }
  }
  total_micros_ = at;
  finished_ = true;
}

std::string SearchProfile::ToString() const {
  std::string out = "total=" + std::to_string(total_micros_) + "us";
  for (const LoopTotal& total : totals_) {
    out += " ";
    out += total.loop;
    out += ": " + std::to_string(total.entries) +
           (total.entries == 1 ? " entry " : " entries ") +
           std::to_string(total.micros) + "us " +
           std::to_string(total.steps) + " steps;";
  }
  if (dropped_ > 0) {
    out += " (" + std::to_string(dropped_) + " slices dropped)";
  }
  return out;
}

SearchCheckpoint::SearchCheckpoint(const SearchOptions& options,
                                   const char* what, const char* loop)
    : max_steps_(options.max_steps),
      mask_(PollMask(options.checkpoint_interval)),
      poll_(options.checkpoint_interval > 0 &&
            (options.cancel.valid() || options.shared_deadline != nullptr ||
             options.progress != nullptr ||
             options.deadline !=
                 std::chrono::steady_clock::time_point::max())),
      deadline_(options.deadline),
      shared_deadline_(options.shared_deadline),
      cancel_(options.cancel),
      progress_(options.progress),
      profile_(options.profile),
      what_(what),
      loop_(loop != nullptr ? loop : what) {
  // The checkpoint IS the loop's profiling scope: slices open here and
  // close in the destructor, so attribution stays exact on every exit
  // path (normal return, budget exhaustion, cancellation, deadline).
  if (profile_ != nullptr) profile_->EnterLoop(loop_);
  // Announce the loop's start so an observer sees which search phase is
  // running even before the first poll interval elapses.
  if (progress_ != nullptr && *progress_) (*progress_)(loop_, 0);
}

SearchCheckpoint::~SearchCheckpoint() {
  if (profile_ != nullptr) profile_->ExitLoop(loop_, steps_);
}

Status SearchCheckpoint::Exhausted() const {
  return Status::ResourceExhausted(std::string(what_) +
                                   " exceeded the step budget");
}

Status SearchCheckpoint::Poll() const {
  if (profile_ != nullptr) profile_->Heartbeat(steps_);
  if (progress_ != nullptr && *progress_) (*progress_)(loop_, steps_);
  if (cancel_.cancelled()) {
    return Status::Cancelled(std::string(what_) +
                             " aborted at a checkpoint: cancelled");
  }
  const auto now = std::chrono::steady_clock::now();
  // The shared deadline is re-read every poll: waiters joining a coalesced
  // evaluation mid-run may have extended (or lifted) it since the last one.
  const bool expired =
      now > deadline_ ||
      (shared_deadline_ != nullptr &&
       now.time_since_epoch().count() >
           shared_deadline_->load(std::memory_order_relaxed));
  if (expired) {
    return Status::DeadlineExceeded(std::string(what_) +
                                    " aborted at a checkpoint: deadline "
                                    "exceeded mid-evaluation");
  }
  return Status::OK();
}

SearchStats& SearchStats::Merge(const SearchStats& other) {
  valuations += other.valuations;
  worlds += other.worlds;
  extensions += other.extensions;
  cc_checks += other.cc_checks;
  query_evals += other.query_evals;
  return *this;
}

std::string SearchStats::ToString() const {
  return "valuations=" + std::to_string(valuations) +
         " worlds=" + std::to_string(worlds) +
         " extensions=" + std::to_string(extensions) +
         " cc_checks=" + std::to_string(cc_checks) +
         " query_evals=" + std::to_string(query_evals);
}

std::string CompletenessWitness::ToString() const {
  std::string out = note;
  if (!world.relations().empty()) {
    out += "\nworld I = " + world.ToString();
  }
  if (!extension.relations().empty()) {
    out += "\nextension I' = " + extension.ToString();
  }
  if (!answer.empty()) {
    out += "\nanswer tuple: " + TupleToString(answer);
  }
  return out;
}

}  // namespace relcomp
