#include "core/types.h"

namespace relcomp {

Status PartiallyClosedSetting::Validate() const {
  if (dm.schema().size() != master_schema.size()) {
    return Status::InvalidArgument(
        "master data does not match the master schema");
  }
  for (const ContainmentConstraint& cc : ccs) {
    RELCOMP_RETURN_IF_ERROR(cc.Validate(schema, master_schema));
  }
  return Status::OK();
}

SearchStats& SearchStats::Merge(const SearchStats& other) {
  valuations += other.valuations;
  worlds += other.worlds;
  extensions += other.extensions;
  cc_checks += other.cc_checks;
  query_evals += other.query_evals;
  return *this;
}

std::string SearchStats::ToString() const {
  return "valuations=" + std::to_string(valuations) +
         " worlds=" + std::to_string(worlds) +
         " extensions=" + std::to_string(extensions) +
         " cc_checks=" + std::to_string(cc_checks) +
         " query_evals=" + std::to_string(query_evals);
}

std::string CompletenessWitness::ToString() const {
  std::string out = note;
  if (!world.relations().empty()) {
    out += "\nworld I = " + world.ToString();
  }
  if (!extension.relations().empty()) {
    out += "\nextension I' = " + extension.ToString();
  }
  if (!answer.empty()) {
    out += "\nanswer tuple: " + TupleToString(answer);
  }
  return out;
}

}  // namespace relcomp
