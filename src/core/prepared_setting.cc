#include "core/prepared_setting.h"

#include "core/fingerprint.h"
#include "query/containment.h"

namespace relcomp {

std::shared_ptr<PreparedSetting::Artifacts> PreparedSetting::Derive(
    const PartiallyClosedSetting& setting) {
  auto a = std::make_shared<Artifacts>();
  a->setting = &setting;
  a->all_inds = AllInds(setting.ccs);
  a->cc_projections.reserve(setting.ccs.size());
  a->cc_projection_ok.reserve(setting.ccs.size());
  for (const ContainmentConstraint& cc : setting.ccs) {
    Result<Relation> projected = cc.ProjectMaster(setting.dm);
    if (!projected.ok()) {
      // Unknown master in an unvalidated (borrowed) setting: fall back to
      // the unprepared check at use time so legacy error ordering — later
      // CCs untouched once an earlier one fails — is preserved exactly.
      a->cc_projections.emplace_back();
      a->cc_projection_ok.push_back(0);
      continue;
    }
    a->cc_projections.push_back(std::move(projected).value());
    a->cc_projection_ok.push_back(1);
  }
  return a;
}

Result<PreparedSetting> PreparedSetting::Prepare(
    PartiallyClosedSetting setting) {
  const uint64_t fingerprint = FingerprintSetting(setting);
  return Prepare(std::move(setting), fingerprint);
}

Result<PreparedSetting> PreparedSetting::Prepare(PartiallyClosedSetting setting,
                                                 uint64_t fingerprint) {
  auto owned =
      std::make_shared<const PartiallyClosedSetting>(std::move(setting));
  RELCOMP_RETURN_IF_ERROR(owned->Validate());
  std::shared_ptr<Artifacts> a = Derive(*owned);
  for (size_t i = 0; i < owned->ccs.size(); ++i) {
    // Validate() checks master relations exist, so projections succeed on
    // this path; re-surface the status if that invariant ever breaks.
    if (!a->cc_projection_ok[i]) {
      return owned->ccs[i].ProjectMaster(owned->dm).status();
    }
  }
  a->owned = owned;
  a->fingerprint = fingerprint;
  a->fingerprinted = true;
  PreparedSetting prepared(std::move(a));
  prepared.adom_seed();  // warm the seed: the engine serves many requests
  return prepared;
}

PreparedSetting PreparedSetting::Borrow(
    const PartiallyClosedSetting& setting) {
  return PreparedSetting(Derive(setting));
}

const AdomSeed& PreparedSetting::adom_seed() const {
  std::call_once(a_->seed_once, [this] {
    a_->adom_seed = AdomContext::SeedFor(*a_->setting);
  });
  return a_->adom_seed;
}

uint64_t PreparedSetting::fingerprint() const {
  if (a_->fingerprinted) return a_->fingerprint;
  return FingerprintSetting(*a_->setting);
}

Result<bool> PreparedSetting::SatisfiesCCs(const Instance& instance) const {
  const CCSet& ccs = a_->setting->ccs;
  for (size_t i = 0; i < ccs.size(); ++i) {
    Result<bool> sat =
        a_->cc_projection_ok[i]
            ? ccs[i].SatisfiedAgainst(instance, a_->cc_projections[i])
            : ccs[i].Satisfied(instance, a_->setting->dm);
    if (!sat.ok()) return sat.status();
    if (!*sat) return false;
  }
  return true;
}

AdomContext PreparedSetting::BuildAdomForGround(const Instance& instance,
                                                const Query* query,
                                                AdomOptions options) const {
  return BuildAdom(CInstance::FromInstance(instance), query, options);
}

}  // namespace relcomp
