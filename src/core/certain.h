// Certain answers over the worlds of a c-instance:
// certain(Q, T) = ⋂_{I ∈ Mod(T, Dm, V)} Q(I), computed over the finite Adom
// world set (sound and complete by the New-values argument of Lemma 5.2).
#ifndef RELCOMP_CORE_CERTAIN_H_
#define RELCOMP_CORE_CERTAIN_H_

#include "core/adom.h"
#include "core/enumerate.h"
#include "core/types.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Result of a certain-answer computation.
struct CertainAnswersResult {
  bool mod_nonempty = false;  ///< whether T is partially closed at all
  Relation answers;           ///< ⋂ Q(I); meaningless if !mod_nonempty
  uint64_t worlds = 0;        ///< distinct worlds intersected
};

/// Computes the certain answers of `q` over Mod(T, Dm, V).
Result<CertainAnswersResult> CertainAnswers(
    const Query& q, const CInstance& cinstance,
    const PreparedSetting& prepared, const AdomContext& adom,
    const SearchOptions& options = {}, SearchStats* stats = nullptr);
Result<CertainAnswersResult> CertainAnswers(
    const Query& q, const CInstance& cinstance,
    const PartiallyClosedSetting& setting, const AdomContext& adom,
    const SearchOptions& options = {}, SearchStats* stats = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_CERTAIN_H_
