// Bounded semi-decision procedures for the undecidable cells of Table I
// (FO and FP in the strong/viable models, FO in the weak model). The paper
// proves no complete algorithm exists: witness extensions have no
// computable size bound. These searches explore extensions of up to
// `max_added_tuples` tuples over the Adom — finding a witness refutes
// completeness soundly; finding none is inconclusive.
#ifndef RELCOMP_CORE_BOUNDED_H_
#define RELCOMP_CORE_BOUNDED_H_

#include <optional>

#include "core/adom.h"
#include "core/enumerate.h"
#include "core/types.h"

namespace relcomp {

/// Outcome of a bounded incompleteness search.
struct BoundedSearchResult {
  /// Whether an answer-changing partially closed extension was found.
  bool witness_found = false;
  CompletenessWitness witness;
  /// Extensions examined.
  uint64_t explored = 0;
};

/// Searches for a partially closed extension I' of the ground instance I,
/// |I'| ≤ |I| + max_added_tuples, with Q(I') ≠ Q(I). Works for every
/// language including FO/FP. A found witness proves I incomplete (strong
/// model); no witness is inconclusive for FO/FP and conclusive for
/// CQ/UCQ/∃FO⁺ only if the tableau fits in the bound.
Result<BoundedSearchResult> SearchIncompletenessGround(
    const Query& q, const Instance& instance,
    const PartiallyClosedSetting& setting, size_t max_added_tuples,
    const SearchOptions& options = {}, SearchStats* stats = nullptr);

/// C-instance version: searches every world of Mod(T); a witness in any
/// world refutes strong completeness.
Result<BoundedSearchResult> SearchIncompletenessStrong(
    const Query& q, const CInstance& cinstance,
    const PartiallyClosedSetting& setting, size_t max_added_tuples,
    const SearchOptions& options = {}, SearchStats* stats = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_BOUNDED_H_
