// Section 7: tractable special cases under data complexity. With Q and V
// fixed and c-instances restricted to a constant number of variables, the
// generic deciders of this library run in polynomial time in |T| + |Dm|:
// every enumeration loop is |Adom|^k for a constant k. These wrappers make
// the regime explicit — they verify the precondition and then delegate —
// and bench/bench_sec7_tractable measures the polynomial scaling.
#ifndef RELCOMP_CORE_TRACTABLE_H_
#define RELCOMP_CORE_TRACTABLE_H_

#include <string>

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"

namespace relcomp {

/// Whether the (Q, V, T) combination is in the Section-7 PTIME regime.
struct TractabilityCheck {
  bool ok = false;
  std::string reason;
};

/// Corollaries 7.1 / 7.3 regime: c-instance with at most `max_vars`
/// variables; the query language must be monotone (CQ/UCQ/∃FO⁺; FP is also
/// admitted for the weak model).
TractabilityCheck CheckDataComplexityRegime(const Query& q,
                                            const CInstance& cinstance,
                                            int max_vars);

/// Corollary 7.1: RCDP under data complexity. Same results as the general
/// deciders; fails with kInvalidArgument when outside the regime.
Result<bool> RcdpStrongTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars = 4,
                                 const SearchOptions& options = {},
                                 SearchStats* stats = nullptr);
Result<bool> RcdpViableTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars = 4,
                                 const SearchOptions& options = {},
                                 SearchStats* stats = nullptr);
Result<bool> RcdpWeakTractable(const Query& q, const CInstance& cinstance,
                               const PartiallyClosedSetting& setting,
                               int max_vars = 4,
                               const SearchOptions& options = {},
                               SearchStats* stats = nullptr);

/// Corollary 7.3: MINP under data complexity.
Result<bool> MinpStrongTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars = 4,
                                 const SearchOptions& options = {},
                                 SearchStats* stats = nullptr);
Result<bool> MinpViableTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars = 4,
                                 const SearchOptions& options = {},
                                 SearchStats* stats = nullptr);
Result<bool> MinpWeakCqTractable(const Query& q, const CInstance& cinstance,
                                 const PartiallyClosedSetting& setting,
                                 int max_vars = 4,
                                 const SearchOptions& options = {},
                                 SearchStats* stats = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_TRACTABLE_H_
