#include "core/enumerate.h"

#include <algorithm>
#include <map>

namespace relcomp {
namespace {

// Intersects `acc` with `other` (both sorted unique).
std::vector<Value> IntersectSorted(const std::vector<Value>& acc,
                                   const std::vector<Value>& other) {
  std::vector<Value> out;
  std::set_intersection(acc.begin(), acc.end(), other.begin(), other.end(),
                        std::back_inserter(out));
  return out;
}

// Accumulates a variable-to-finite-domain constraint map.
class DomainCollector {
 public:
  explicit DomainCollector(const AdomContext& adom) : adom_(adom) {}

  void Constrain(VarId var, const Domain& domain) {
    Touch(var);
    if (!domain.is_finite()) return;
    auto it = finite_.find(var.id);
    if (it == finite_.end()) {
      finite_.emplace(var.id, domain.values());
    } else {
      it->second = IntersectSorted(it->second, domain.values());
    }
  }

  void Touch(VarId var) { all_vars_.insert(var.id); }

  VarCandidateList Build() const {
    VarCandidateList out;
    for (int32_t id : all_vars_) {
      auto it = finite_.find(id);
      if (it != finite_.end()) {
        out.emplace_back(VarId{id}, it->second);
      } else {
        out.emplace_back(VarId{id}, adom_.values());
      }
    }
    return out;
  }

 private:
  const AdomContext& adom_;
  std::set<int32_t> all_vars_;
  std::map<int32_t, std::vector<Value>> finite_;
};

}  // namespace

VarCandidateList CInstanceVarCandidates(const CInstance& cinstance,
                                        const AdomContext& adom) {
  DomainCollector collector(adom);
  // LINT:waive(checkpoint-coverage, scans the input c-instance once)
  for (const CTable& table : cinstance.tables()) {
    for (const CRow& row : table.rows()) {
      for (size_t i = 0; i < row.cells.size(); ++i) {
        if (std::holds_alternative<VarId>(row.cells[i])) {
          collector.Constrain(std::get<VarId>(row.cells[i]),
                              table.schema().attribute(i).domain);
        }
      }
      std::vector<VarId> cond_vars;
      row.condition.CollectVars(&cond_vars);
      for (VarId v : cond_vars) collector.Touch(v);
    }
  }
  return collector.Build();
}

VarCandidateList CqVarCandidates(const ConjunctiveQuery& q,
                                 const DatabaseSchema& schema,
                                 const AdomContext& adom) {
  DomainCollector collector(adom);
  // LINT:waive(checkpoint-coverage, scans the query atoms once)
  for (const RelAtom& atom : q.atoms()) {
    const RelationSchema* rel = schema.Find(atom.rel);
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (std::holds_alternative<VarId>(atom.args[i])) {
        VarId v = std::get<VarId>(atom.args[i]);
        if (rel != nullptr && i < rel->arity()) {
          collector.Constrain(v, rel->attribute(i).domain);
        } else {
          collector.Touch(v);
        }
      }
    }
  }
  // LINT:waive(checkpoint-coverage, scans the query builtins once)
  for (const CondAtom& b : q.builtins()) {
    if (std::holds_alternative<VarId>(b.lhs)) {
      collector.Touch(std::get<VarId>(b.lhs));
    }
    if (std::holds_alternative<VarId>(b.rhs)) {
      collector.Touch(std::get<VarId>(b.rhs));
    }
  }
  // LINT:waive(checkpoint-coverage, scans the query head once)
  for (const CTerm& t : q.head()) {
    if (std::holds_alternative<VarId>(t)) {
      collector.Touch(std::get<VarId>(t));
    }
  }
  return collector.Build();
}

std::vector<OpenVarCandidate> CqVarCandidatesOpen(
    const ConjunctiveQuery& q, const DatabaseSchema& schema,
    const AdomContext& adom) {
  // Reuse the closed computation, then mark full-Adom lists as open.
  VarCandidateList closed = CqVarCandidates(q, schema, adom);
  std::vector<OpenVarCandidate> out;
  out.reserve(closed.size());
  // LINT:waive(checkpoint-coverage, one pass over the var candidates)
  for (auto& [var, values] : closed) {
    OpenVarCandidate entry;
    entry.var = var;
    entry.open = (values == adom.values());
    if (!entry.open) entry.values = std::move(values);
    out.push_back(std::move(entry));
  }
  return out;
}

CanonicalValuationEnumerator::CanonicalValuationEnumerator(
    std::vector<OpenVarCandidate> vars, std::vector<Value> base,
    std::vector<Value> fresh)
    : vars_(std::move(vars)),
      base_(std::move(base)),
      fresh_(std::move(fresh)),
      indices_(vars_.size(), 0),
      fresh_used_before_(vars_.size() + 1, 0) {
  // LINT:waive(checkpoint-coverage, constructor scan, bounded by #vars)
  for (const OpenVarCandidate& v : vars_) {
    if (!v.open && v.values.empty()) exhausted_ = true;
  }
  if (base_.empty() && fresh_.empty()) {
    // LINT:waive(checkpoint-coverage, constructor scan, bounded by #vars)
    for (const OpenVarCandidate& v : vars_) {
      if (v.open) exhausted_ = true;
    }
  }
}

size_t CanonicalValuationEnumerator::Limit(size_t level) const {
  const OpenVarCandidate& v = vars_[level];
  if (!v.open) return v.values.size();
  size_t fresh_avail =
      std::min(fresh_used_before_[level] + 1, fresh_.size());
  return base_.size() + fresh_avail;
}

Value CanonicalValuationEnumerator::At(size_t level, size_t index) const {
  const OpenVarCandidate& v = vars_[level];
  if (!v.open) return v.values[index];
  if (index < base_.size()) return base_[index];
  return fresh_[index - base_.size()];
}

void CanonicalValuationEnumerator::RecomputeFreshUsed() {
  fresh_used_before_[0] = 0;
  // LINT:waive(checkpoint-coverage, one pass over the variable levels)
  for (size_t i = 0; i < vars_.size(); ++i) {
    size_t used = fresh_used_before_[i];
    if (vars_[i].open && indices_[i] >= base_.size()) {
      used = std::max(used, indices_[i] - base_.size() + 1);
    }
    fresh_used_before_[i + 1] = used;
  }
}

bool CanonicalValuationEnumerator::Next(Valuation* mu) {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    std::fill(indices_.begin(), indices_.end(), 0);
    RecomputeFreshUsed();
    // LINT:waive(checkpoint-coverage, binds each variable once)
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (indices_[i] >= Limit(i)) {
        exhausted_ = true;
        return false;
      }
      mu->Bind(vars_[i].var, At(i, indices_[i]));
    }
    if (vars_.empty()) exhausted_ = true;
    return true;
  }
  size_t pos = vars_.size();
  // LINT:waive(checkpoint-coverage, radix carry bounded by the level count)
  while (pos > 0) {
    --pos;
    ++indices_[pos];
    RecomputeFreshUsed();
    if (indices_[pos] < Limit(pos)) {
      // Reset the suffix.
      bool ok = true;
      for (size_t j = pos + 1; j < vars_.size(); ++j) {
        indices_[j] = 0;
        RecomputeFreshUsed();
        if (indices_[j] >= Limit(j)) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        continue;  // suffix has an empty level; keep advancing at pos
      }
      RecomputeFreshUsed();
      for (size_t i = 0; i < vars_.size(); ++i) {
        mu->Bind(vars_[i].var, At(i, indices_[i]));
      }
      return true;
    }
    indices_[pos] = 0;
  }
  exhausted_ = true;
  return false;
}

CanonicalValuationEnumerator MakeCanonicalCqEnumerator(
    const ConjunctiveQuery& q, const DatabaseSchema& schema,
    const AdomContext& adom, const Instance& around) {
  // Values of `around` are pinned (they occur in the instance), so they
  // join the base; the remaining fresh constants stay interchangeable.
  std::vector<Value> base = adom.base();
  std::vector<Value> instance_values = around.ActiveDomain();
  base.insert(base.end(), instance_values.begin(), instance_values.end());
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  std::vector<Value> fresh;
  // LINT:waive(checkpoint-coverage, filters the fresh constants once)
  for (const Value& f : adom.fresh()) {
    if (!std::binary_search(base.begin(), base.end(), f)) fresh.push_back(f);
  }
  return CanonicalValuationEnumerator(CqVarCandidatesOpen(q, schema, adom),
                                      std::move(base), std::move(fresh));
}

ValuationEnumerator::ValuationEnumerator(VarCandidateList vars)
    : vars_(std::move(vars)), indices_(vars_.size(), 0) {
  // LINT:waive(checkpoint-coverage, constructor scan, bounded by #vars)
  for (const auto& [var, candidates] : vars_) {
    if (candidates.empty()) exhausted_ = true;
  }
}

bool ValuationEnumerator::Next(Valuation* mu) {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    // LINT:waive(checkpoint-coverage, binds each variable once)
    for (size_t i = 0; i < vars_.size(); ++i) {
      current_.Bind(vars_[i].first, vars_[i].second[0]);
    }
    if (vars_.empty()) exhausted_ = true;  // single empty valuation
    *mu = current_;
    return true;
  }
  size_t pos = 0;
  // LINT:waive(checkpoint-coverage, radix carry bounded by the level count)
  while (pos < vars_.size()) {
    if (++indices_[pos] < vars_[pos].second.size()) break;
    indices_[pos] = 0;
    ++pos;
  }
  if (pos == vars_.size()) {
    exhausted_ = true;
    return false;
  }
  // LINT:waive(checkpoint-coverage, rebinds a bounded prefix of variables)
  for (size_t i = 0; i <= pos; ++i) {
    current_.Bind(vars_[i].first, vars_[i].second[indices_[i]]);
  }
  *mu = current_;
  return true;
}

uint64_t ValuationEnumerator::TotalCount() const {
  uint64_t total = 1;
  // LINT:waive(checkpoint-coverage, product over the var list)
  for (const auto& [var, candidates] : vars_) {
    total *= candidates.size();
  }
  return total;
}

TupleEnumerator::TupleEnumerator(const RelationSchema& schema,
                                 const AdomContext& adom)
    : indices_(schema.arity(), 0) {
  // LINT:waive(checkpoint-coverage, constructor scan over the schema arity)
  for (const Attribute& attr : schema.attributes()) {
    candidates_.push_back(adom.Candidates(attr.domain));
    if (candidates_.back().empty()) exhausted_ = true;
  }
}

bool TupleEnumerator::Next(Tuple* t) {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    t->resize(candidates_.size());
    // LINT:waive(checkpoint-coverage, writes each tuple position once)
    for (size_t i = 0; i < candidates_.size(); ++i) {
      (*t)[i] = candidates_[i][0];
    }
    if (candidates_.empty()) exhausted_ = true;  // nullary: single tuple
    return true;
  }
  size_t pos = 0;
  // LINT:waive(checkpoint-coverage, radix carry bounded by the arity)
  while (pos < indices_.size()) {
    if (++indices_[pos] < candidates_[pos].size()) break;
    indices_[pos] = 0;
    ++pos;
  }
  if (pos == indices_.size()) {
    exhausted_ = true;
    return false;
  }
  t->resize(candidates_.size());
  // LINT:waive(checkpoint-coverage, writes each tuple position once)
  for (size_t i = 0; i < candidates_.size(); ++i) {
    (*t)[i] = candidates_[i][indices_[i]];
  }
  return true;
}

uint64_t TupleEnumerator::TotalCount() const {
  uint64_t total = 1;
  // LINT:waive(checkpoint-coverage, product over the arity)
  for (const auto& c : candidates_) total *= c.size();
  return total;
}

ModEnumerator::ModEnumerator(const CInstance& cinstance,
                             const PreparedSetting& prepared,
                             const AdomContext& adom,
                             const SearchOptions& options, SearchStats* stats)
    : cinstance_(cinstance),
      prepared_(prepared),
      options_(options),
      stats_(stats),
      valuations_(CInstanceVarCandidates(cinstance, adom)),
      checkpoint_(options_, "Mod(T, Dm, V) enumeration", "mod-enum") {}

ModEnumerator::ModEnumerator(const CInstance& cinstance,
                             const PartiallyClosedSetting& setting,
                             const AdomContext& adom,
                             const SearchOptions& options, SearchStats* stats)
    : ModEnumerator(cinstance, PreparedSetting::Borrow(setting), adom,
                    options, stats) {}

Result<bool> ModEnumerator::Next(Valuation* mu, Instance* world) {
  Valuation local_mu;
  Valuation* mu_ptr = mu != nullptr ? mu : &local_mu;
  while (valuations_.Next(mu_ptr)) {
    RELCOMP_RETURN_IF_ERROR(checkpoint_.Tick());
    if (stats_ != nullptr) ++stats_->valuations;
    Result<Instance> candidate = cinstance_.Apply(*mu_ptr);
    if (!candidate.ok()) return candidate.status();
    if (stats_ != nullptr) ++stats_->cc_checks;
    Result<bool> closed = prepared_.SatisfiesCCs(*candidate);
    if (!closed.ok()) return closed.status();
    if (!*closed) continue;
    std::string key = candidate->ToString();
    if (!seen_.insert(std::move(key)).second) continue;
    if (stats_ != nullptr) ++stats_->worlds;
    if (world != nullptr) *world = std::move(candidate).value();
    return true;
  }
  return false;
}

}  // namespace relcomp
