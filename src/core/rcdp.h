// RCDP — the relatively complete database problem — in the three models of
// the paper (Sections 4, 5, 6):
//   strong: every world of Mod(T, Dm, V) is complete          (Thm 4.1)
//   weak:   certain answers survive all partially closed
//           extensions of all worlds                           (Thm 5.1)
//   viable: some world is complete                             (Thm 6.1)
// Decidable cases follow the paper's algorithms (Adom valuation search with
// the Lemma 4.2/4.3 and Lemma 5.2 characterizations); undecidable cells of
// Table I return kUndecidable and point to core/bounded.h.
#ifndef RELCOMP_CORE_RCDP_H_
#define RELCOMP_CORE_RCDP_H_

#include "core/adom.h"
#include "core/certain.h"
#include "core/ground.h"
#include "core/types.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Strong model: is T strongly complete for q relative to (Dm, V)?
/// Decidable for CQ/UCQ/∃FO⁺ (Πp2-complete); kUndecidable for FO/FP.
/// Returns false when Mod(T) is empty (T is not partially closed).
/// Each decider has two entry points: the PreparedSetting overload reuses
/// the cached Adom seed and master projections (the engine's hot path); the
/// PartiallyClosedSetting overload prepares those artifacts per call.
Result<bool> RcdpStrong(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr,
                        CompletenessWitness* witness = nullptr);
Result<bool> RcdpStrong(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr,
                        CompletenessWitness* witness = nullptr);

/// Viable model: does some world of Mod(T) admit no answer-changing
/// partially closed extension? Decidable for CQ/UCQ/∃FO⁺ (Σp3-complete);
/// kUndecidable for FO/FP.
Result<bool> RcdpViable(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr,
                        Instance* witness_world = nullptr);
Result<bool> RcdpViable(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr,
                        Instance* witness_world = nullptr);

/// Weak model: are the certain answers over all partially closed extensions
/// already present in T? Decidable for every monotone language — CQ/UCQ/∃FO⁺
/// (Πp3-complete) and FP (coNEXPTIME-complete); kUndecidable for FO.
/// Uses the Lemma 5.2 characterization with single-tuple extensions (the
/// small-extension property of monotone queries).
Result<bool> RcdpWeak(const Query& q, const CInstance& cinstance,
                      const PreparedSetting& prepared,
                      const SearchOptions& options = {},
                      SearchStats* stats = nullptr,
                      CompletenessWitness* witness = nullptr);
Result<bool> RcdpWeak(const Query& q, const CInstance& cinstance,
                      const PartiallyClosedSetting& setting,
                      const SearchOptions& options = {},
                      SearchStats* stats = nullptr,
                      CompletenessWitness* witness = nullptr);

/// Ground-instance conveniences (strong ≡ viable on ground instances).
Result<bool> RcdpStrongGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr,
                              CompletenessWitness* witness = nullptr);
Result<bool> RcdpStrongGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr,
                              CompletenessWitness* witness = nullptr);
Result<bool> RcdpWeakGround(const Query& q, const Instance& instance,
                            const PreparedSetting& prepared,
                            const SearchOptions& options = {},
                            SearchStats* stats = nullptr,
                            CompletenessWitness* witness = nullptr);
Result<bool> RcdpWeakGround(const Query& q, const Instance& instance,
                            const PartiallyClosedSetting& setting,
                            const SearchOptions& options = {},
                            SearchStats* stats = nullptr,
                            CompletenessWitness* witness = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_RCDP_H_
