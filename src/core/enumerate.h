// Enumeration machinery shared by all deciders: per-variable candidate
// computation (respecting finite attribute domains), odometer-style
// valuation enumeration, candidate-tuple enumeration, and the Mod(T, Dm, V)
// world enumerator.
#ifndef RELCOMP_CORE_ENUMERATE_H_
#define RELCOMP_CORE_ENUMERATE_H_

#include <set>
#include <utility>
#include <vector>

#include "core/adom.h"
#include "core/types.h"
#include "core/prepared_setting.h"
#include "query/cq.h"

namespace relcomp {

/// A variable together with its candidate value list.
using VarCandidateList = std::vector<std::pair<VarId, std::vector<Value>>>;

/// Candidates for every variable of a c-instance: the intersection of the
/// finite domains of the columns the variable occurs in, or the full Adom if
/// all its columns are infinite. Variables occurring only in conditions get
/// the full Adom.
VarCandidateList CInstanceVarCandidates(const CInstance& cinstance,
                                        const AdomContext& adom);

/// Candidates for the variables of a CQ tableau, typed by the schema
/// attributes at the positions where each variable occurs.
VarCandidateList CqVarCandidates(const ConjunctiveQuery& q,
                                 const DatabaseSchema& schema,
                                 const AdomContext& adom);

/// Odometer over the candidate lists; the zero-variable case yields exactly
/// one (empty) valuation.
class ValuationEnumerator {
 public:
  explicit ValuationEnumerator(VarCandidateList vars);

  /// Produces the next valuation into `mu`; false when exhausted.
  bool Next(Valuation* mu);

  /// Product of candidate-list sizes (0 if some variable has none).
  uint64_t TotalCount() const;

 private:
  VarCandidateList vars_;
  std::vector<size_t> indices_;
  Valuation current_;
  bool started_ = false;
  bool exhausted_ = false;
};

/// Enumerates all tuples of a relation schema over Adom candidates.
class TupleEnumerator {
 public:
  TupleEnumerator(const RelationSchema& schema, const AdomContext& adom);

  /// Produces the next tuple into `t`; false when exhausted.
  bool Next(Tuple* t);

  /// Number of candidate tuples.
  uint64_t TotalCount() const;

 private:
  std::vector<std::vector<Value>> candidates_;  // per position
  std::vector<size_t> indices_;
  bool started_ = false;
  bool exhausted_ = false;
};

/// A variable for the symmetry-broken enumerator: either a closed candidate
/// list (finite attribute domain) or "open" (infinite domain).
struct OpenVarCandidate {
  VarId var;
  std::vector<Value> values;  ///< closed candidates; ignored when open
  bool open = false;
};

/// Open-variable candidates for a CQ tableau (closed lists for finite-domain
/// columns, open otherwise).
std::vector<OpenVarCandidate> CqVarCandidatesOpen(
    const ConjunctiveQuery& q, const DatabaseSchema& schema,
    const AdomContext& adom);

/// Symmetry-broken valuation enumerator for *existential* searches over
/// Adom: fresh ("New") constants are interchangeable — they appear nowhere
/// in Dm, V, Q or the base values — so an open variable may take any base
/// value, any fresh value already introduced by an earlier variable, or the
/// single next unused fresh value. This enumerates one representative per
/// isomorphism class (Bell-number growth instead of |Adom|^k) and is sound
/// and complete for "does a valuation with property P exist" whenever P is
/// invariant under permuting unused fresh values.
class CanonicalValuationEnumerator {
 public:
  CanonicalValuationEnumerator(std::vector<OpenVarCandidate> vars,
                               std::vector<Value> base,
                               std::vector<Value> fresh);

  /// Produces the next valuation; false when exhausted.
  bool Next(Valuation* mu);

 private:
  size_t Limit(size_t level) const;
  Value At(size_t level, size_t index) const;
  void RecomputeFreshUsed();

  std::vector<OpenVarCandidate> vars_;
  std::vector<Value> base_;
  std::vector<Value> fresh_;
  std::vector<size_t> indices_;
  std::vector<size_t> fresh_used_before_;  // per level
  bool started_ = false;
  bool exhausted_ = false;
};

/// Builds a canonical enumerator for a CQ's variables around a concrete
/// instance: values appearing in `around` are part of the base (they are
/// not interchangeable), remaining fresh constants form the symmetric pool.
CanonicalValuationEnumerator MakeCanonicalCqEnumerator(
    const ConjunctiveQuery& q, const DatabaseSchema& schema,
    const AdomContext& adom, const Instance& around);

/// Enumerates the worlds of ModAdom(T, Dm, V): valuations µ over Adom whose
/// µ(T) satisfies the CCs. Deduplicates worlds (different valuations can
/// yield the same ground instance).
class ModEnumerator {
 public:
  ModEnumerator(const CInstance& cinstance, const PreparedSetting& prepared,
                const AdomContext& adom, const SearchOptions& options,
                SearchStats* stats);
  /// Legacy entry point; prepares the setting artifacts internally.
  ModEnumerator(const CInstance& cinstance,
                const PartiallyClosedSetting& setting, const AdomContext& adom,
                const SearchOptions& options, SearchStats* stats);

  /// Produces the next distinct world; `mu` and/or `world` may be null.
  /// Returns false when exhausted; fails with kResourceExhausted if the
  /// step budget runs out, or kDeadlineExceeded / kCancelled when a
  /// checkpoint observes the options' deadline or cancellation token.
  Result<bool> Next(Valuation* mu, Instance* world);

 private:
  const CInstance& cinstance_;
  PreparedSetting prepared_;
  SearchOptions options_;
  SearchStats* stats_;
  ValuationEnumerator valuations_;
  std::set<std::string> seen_;
  SearchCheckpoint checkpoint_;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_ENUMERATE_H_
