#include "core/consistency.h"

namespace relcomp {

Result<bool> IsConsistent(const PreparedSetting& prepared,
                          const CInstance& cinstance,
                          const SearchOptions& options, SearchStats* stats,
                          Instance* witness_world) {
  AdomContext adom = prepared.BuildAdom(cinstance, nullptr);
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Result<bool> got = worlds.Next(nullptr, witness_world);
  if (!got.ok()) return got.status();
  return *got;
}

Result<bool> IsConsistent(const PartiallyClosedSetting& setting,
                          const CInstance& cinstance,
                          const SearchOptions& options, SearchStats* stats,
                          Instance* witness_world) {
  return IsConsistent(PreparedSetting::Borrow(setting), cinstance, options,
                      stats, witness_world);
}

Result<bool> IsExtensible(const PreparedSetting& prepared,
                          const Instance& instance,
                          const SearchOptions& options, SearchStats* stats,
                          ExtensionWitness* witness) {
  AdomContext adom = prepared.BuildAdomForGround(instance, nullptr);
  SearchCheckpoint checkpoint(options, "extensibility search", "consistency");
  for (const RelationSchema& rel : prepared.schema().relations()) {
    const Relation& existing = instance.at(rel.name());
    TupleEnumerator tuples(rel, adom);
    Tuple t;
    while (tuples.Next(&t)) {
      RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
      if (stats != nullptr) ++stats->extensions;
      if (existing.Contains(t)) continue;
      Instance extended = instance;
      extended.AddTuple(rel.name(), t);
      if (stats != nullptr) ++stats->cc_checks;
      Result<bool> closed = prepared.SatisfiesCCs(extended);
      if (!closed.ok()) return closed.status();
      if (*closed) {
        if (witness != nullptr) {
          witness->relation = rel.name();
          witness->tuple = t;
        }
        return true;
      }
    }
  }
  return false;
}

Result<bool> IsExtensible(const PartiallyClosedSetting& setting,
                          const Instance& instance,
                          const SearchOptions& options, SearchStats* stats,
                          ExtensionWitness* witness) {
  return IsExtensible(PreparedSetting::Borrow(setting), instance, options,
                      stats, witness);
}

}  // namespace relcomp
