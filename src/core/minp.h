// MINP — the minimality problem: is T a minimal-size instance complete for Q
// relative to (Dm, V)?
//  - Strong/viable models go through Lemma 4.7: a complete ground instance
//    is non-minimal iff removing a single tuple leaves it complete; for a
//    c-instance, strong minimality quantifies over all worlds (Πp3 — Thm
//    4.8) and viable minimality over some world (Σp3 — Cor 6.3).
//  - Weak model: the general subset-removal algorithm (Πp4 for UCQ/∃FO⁺,
//    coNEXPTIME for FP — Thm 5.6) plus the coDP dichotomy for CQ
//    (Lemma 5.7).
#ifndef RELCOMP_CORE_MINP_H_
#define RELCOMP_CORE_MINP_H_

#include "core/rcdp.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Ground strong (≡ viable) minimality — the Dp2 case of Theorem 4.8:
/// I complete and no I \ {t} complete. As in core/rcdp.h, every decider has
/// a PreparedSetting overload (cached artifacts, the engine hot path) and a
/// PartiallyClosedSetting overload that prepares per call.
Result<bool> MinpStrongGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr);
Result<bool> MinpStrongGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const SearchOptions& options = {},
                              SearchStats* stats = nullptr);

/// Strong c-instance minimality (Πp3): every world of Mod(T) is a minimal
/// complete ground instance.
Result<bool> MinpStrong(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);
Result<bool> MinpStrong(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);

/// Viable c-instance minimality (Σp3): some world of Mod(T) is a minimal
/// complete ground instance.
Result<bool> MinpViable(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);
Result<bool> MinpViable(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);

/// Weak-model minimality by subset removal (the paper's Πp4 / coNEXPTIME
/// algorithms): T weakly complete and no proper row-subset weakly complete.
/// Exponential in the number of rows of T.
Result<bool> MinpWeak(const Query& q, const CInstance& cinstance,
                      const PreparedSetting& prepared,
                      const SearchOptions& options = {},
                      SearchStats* stats = nullptr);
Result<bool> MinpWeak(const Query& q, const CInstance& cinstance,
                      const PartiallyClosedSetting& setting,
                      const SearchOptions& options = {},
                      SearchStats* stats = nullptr);

/// Weak-model minimality for CQ via the Lemma 5.7 dichotomy (coDP): if the
/// empty instance is weakly complete, T is minimal iff T is empty; otherwise
/// T is minimal iff T is a consistent singleton.
Result<bool> MinpWeakCq(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);
Result<bool> MinpWeakCq(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options = {},
                        SearchStats* stats = nullptr);

}  // namespace relcomp

#endif  // RELCOMP_CORE_MINP_H_
