#include "core/rcdp.h"

namespace relcomp {
namespace {

Status RequireTableauLanguage(const Query& q, const char* problem) {
  if (q.language() == QueryLanguage::kFO ||
      q.language() == QueryLanguage::kFP) {
    return Status::Undecidable(
        std::string(problem) + " is undecidable for " +
        QueryLanguageName(q.language()) +
        " (Table I); use the bounded procedures in core/bounded.h");
  }
  return Status::OK();
}

}  // namespace

Result<bool> RcdpStrong(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options, SearchStats* stats,
                        CompletenessWitness* witness) {
  RELCOMP_RETURN_IF_ERROR(RequireTableauLanguage(q, "RCDP (strong model)"));
  AdomContext adom = prepared.BuildAdom(cinstance, &q);
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Valuation mu;
  Instance world;
  bool any = false;
  while (true) {
    Result<bool> got = worlds.Next(&mu, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    any = true;
    Result<bool> complete =
        IsCompleteGround(q, world, prepared, adom, options, stats, witness);
    if (!complete.ok()) return complete.status();
    if (!*complete) {
      if (witness != nullptr) {
        witness->world_valuation = mu;
        witness->note =
            "world " + mu.ToString() + " is incomplete: " + witness->note;
      }
      return false;
    }
  }
  if (!any) {
    if (witness != nullptr) {
      witness->note = "Mod(T, Dm, V) is empty: T is not partially closed";
    }
    return false;
  }
  return true;
}

Result<bool> RcdpStrong(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options, SearchStats* stats,
                        CompletenessWitness* witness) {
  return RcdpStrong(q, cinstance, PreparedSetting::Borrow(setting), options,
                    stats, witness);
}

Result<bool> RcdpViable(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options, SearchStats* stats,
                        Instance* witness_world) {
  RELCOMP_RETURN_IF_ERROR(RequireTableauLanguage(q, "RCDP (viable model)"));
  AdomContext adom = prepared.BuildAdom(cinstance, &q);
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Instance world;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    Result<bool> complete =
        IsCompleteGround(q, world, prepared, adom, options, stats, nullptr);
    if (!complete.ok()) return complete.status();
    if (*complete) {
      if (witness_world != nullptr) *witness_world = world;
      return true;
    }
  }
  return false;
}

Result<bool> RcdpViable(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options, SearchStats* stats,
                        Instance* witness_world) {
  return RcdpViable(q, cinstance, PreparedSetting::Borrow(setting), options,
                    stats, witness_world);
}

Result<bool> RcdpWeak(const Query& q, const CInstance& cinstance,
                      const PreparedSetting& prepared,
                      const SearchOptions& options, SearchStats* stats,
                      CompletenessWitness* witness) {
  if (q.language() == QueryLanguage::kFO) {
    return Status::Undecidable(
        "RCDP (weak model) is undecidable for FO (Theorem 5.1); use the "
        "bounded procedures in core/bounded.h");
  }
  // One extra fresh constant per column of the widest relation backs the
  // fresh-variable row of the Lemma 5.2 characterization.
  AdomContext adom = prepared.BuildAdom(cinstance, &q);

  // Pass 1: certain answers over Mod(T).
  Result<CertainAnswersResult> certain =
      CertainAnswers(q, cinstance, prepared, adom, options, stats);
  if (!certain.ok()) return certain.status();
  if (!certain->mod_nonempty) {
    if (witness != nullptr) {
      witness->note = "Mod(T, Dm, V) is empty: T is not partially closed";
    }
    return false;
  }

  // Pass 2: certain answers over all single-tuple partially closed
  // extensions of all worlds (sufficient by monotonicity).
  bool any_extension = false;
  Relation extension_certain;
  SearchCheckpoint checkpoint(options, "weak-model extension enumeration", "weak-ext");

  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Valuation mu;
  Instance world;
  while (true) {
    Result<bool> got = worlds.Next(&mu, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    for (const RelationSchema& rel : prepared.schema().relations()) {
      const Relation& existing = world.at(rel.name());
      TupleEnumerator tuples(rel, adom);
      Tuple t;
      while (tuples.Next(&t)) {
        RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
        if (stats != nullptr) ++stats->extensions;
        if (existing.Contains(t)) continue;
        Instance extended = world;
        extended.AddTuple(rel.name(), t);
        if (stats != nullptr) ++stats->cc_checks;
        Result<bool> closed = prepared.SatisfiesCCs(extended);
        if (!closed.ok()) return closed.status();
        if (!*closed) continue;
        if (stats != nullptr) ++stats->query_evals;
        Result<Relation> answers = q.Eval(extended, adom.values());
        if (!answers.ok()) return answers.status();
        if (!any_extension) {
          any_extension = true;
          extension_certain = std::move(answers).value();
        } else {
          extension_certain = extension_certain.Intersect(*answers);
        }
        // Early exit: once the extension-certain set shrinks into the
        // certain answers, it can never escape them again.
        if (extension_certain.IsSubsetOf(certain->answers)) {
          return true;
        }
      }
    }
  }

  if (!any_extension) {
    // Ext(I) = ∅ for every world: weakly complete by definition.
    return true;
  }
  Relation gap = extension_certain.Difference(certain->answers);
  if (gap.empty()) return true;
  if (witness != nullptr) {
    witness->answer = gap.rows().front();
    witness->note =
        "tuple " + TupleToString(witness->answer) +
        " is certain over all partially closed extensions but is not a "
        "certain answer of T";
  }
  return false;
}

Result<bool> RcdpWeak(const Query& q, const CInstance& cinstance,
                      const PartiallyClosedSetting& setting,
                      const SearchOptions& options, SearchStats* stats,
                      CompletenessWitness* witness) {
  return RcdpWeak(q, cinstance, PreparedSetting::Borrow(setting), options,
                  stats, witness);
}

Result<bool> RcdpStrongGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const SearchOptions& options, SearchStats* stats,
                              CompletenessWitness* witness) {
  RELCOMP_RETURN_IF_ERROR(
      RequireTableauLanguage(q, "RCDP (strong model, ground)"));
  return IsCompleteGroundAuto(q, instance, prepared, options, stats, witness);
}

Result<bool> RcdpStrongGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const SearchOptions& options, SearchStats* stats,
                              CompletenessWitness* witness) {
  return RcdpStrongGround(q, instance, PreparedSetting::Borrow(setting),
                          options, stats, witness);
}

Result<bool> RcdpWeakGround(const Query& q, const Instance& instance,
                            const PreparedSetting& prepared,
                            const SearchOptions& options, SearchStats* stats,
                            CompletenessWitness* witness) {
  return RcdpWeak(q, CInstance::FromInstance(instance), prepared, options,
                  stats, witness);
}

Result<bool> RcdpWeakGround(const Query& q, const Instance& instance,
                            const PartiallyClosedSetting& setting,
                            const SearchOptions& options, SearchStats* stats,
                            CompletenessWitness* witness) {
  return RcdpWeakGround(q, instance, PreparedSetting::Borrow(setting),
                        options, stats, witness);
}

}  // namespace relcomp
