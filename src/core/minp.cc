#include "core/minp.h"

#include "core/consistency.h"

namespace relcomp {
namespace {

// Is the ground world `instance` a *minimal* complete instance? Uses
// Lemma 4.7(b): it suffices to test single-tuple removals.
Result<bool> MinimalCompleteWorld(const Query& q, const Instance& instance,
                                  const PreparedSetting& prepared,
                                  const AdomContext& adom,
                                  const SearchOptions& options,
                                  SearchStats* stats) {
  Result<bool> complete =
      IsCompleteGround(q, instance, prepared, adom, options, stats, nullptr);
  if (!complete.ok()) return complete.status();
  if (!*complete) return false;
  SearchCheckpoint checkpoint(options, "minimality single-removal sweep", "minp-sweep");
  for (const Relation& rel : instance.relations()) {
    for (const Tuple& t : rel.rows()) {
      RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
      Instance smaller = instance;
      smaller.RemoveTuple(rel.schema().name(), t);
      Result<bool> sub_complete = IsCompleteGround(q, smaller, prepared, adom,
                                                   options, stats, nullptr);
      if (!sub_complete.ok()) return sub_complete.status();
      if (*sub_complete) return false;  // a smaller complete instance exists
    }
  }
  return true;
}

}  // namespace

Result<bool> MinpStrongGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const SearchOptions& options,
                              SearchStats* stats) {
  AdomContext adom = prepared.BuildAdomForGround(instance, &q);
  return MinimalCompleteWorld(q, instance, prepared, adom, options, stats);
}

Result<bool> MinpStrongGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const SearchOptions& options,
                              SearchStats* stats) {
  return MinpStrongGround(q, instance, PreparedSetting::Borrow(setting),
                          options, stats);
}

Result<bool> MinpStrong(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options, SearchStats* stats) {
  AdomContext adom = prepared.BuildAdom(cinstance, &q);
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Instance world;
  bool any = false;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    any = true;
    Result<bool> minimal =
        MinimalCompleteWorld(q, world, prepared, adom, options, stats);
    if (!minimal.ok()) return minimal.status();
    if (!*minimal) return false;
  }
  return any;
}

Result<bool> MinpStrong(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options, SearchStats* stats) {
  return MinpStrong(q, cinstance, PreparedSetting::Borrow(setting), options,
                    stats);
}

Result<bool> MinpViable(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options, SearchStats* stats) {
  AdomContext adom = prepared.BuildAdom(cinstance, &q);
  ModEnumerator worlds(cinstance, prepared, adom, options, stats);
  Instance world;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    if (!got.ok()) return got.status();
    if (!*got) break;
    Result<bool> minimal =
        MinimalCompleteWorld(q, world, prepared, adom, options, stats);
    if (!minimal.ok()) return minimal.status();
    if (*minimal) return true;
  }
  return false;
}

Result<bool> MinpViable(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options, SearchStats* stats) {
  return MinpViable(q, cinstance, PreparedSetting::Borrow(setting), options,
                    stats);
}

Result<bool> MinpWeak(const Query& q, const CInstance& cinstance,
                      const PreparedSetting& prepared,
                      const SearchOptions& options, SearchStats* stats) {
  Result<bool> complete = RcdpWeak(q, cinstance, prepared, options, stats);
  if (!complete.ok()) return complete.status();
  if (!*complete) return false;
  std::vector<std::pair<int, int>> positions = cinstance.AllRowPositions();
  if (positions.size() > 24) {
    return Status::ResourceExhausted(
        "MinpWeak enumerates all row subsets; 2^" +
        std::to_string(positions.size()) + " is too many");
  }
  uint64_t combos = uint64_t{1} << positions.size();
  SearchCheckpoint checkpoint(options, "weak-model minimality enumeration", "minp-weak");
  // Skip the empty removal (∆ = ∅); every other subset is removed.
  for (uint64_t mask = 1; mask < combos; ++mask) {
    RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
    std::vector<std::pair<int, int>> removal;
    for (size_t i = 0; i < positions.size(); ++i) {
      if ((mask >> i) & 1) removal.push_back(positions[i]);
    }
    CInstance smaller = cinstance.RemoveRows(removal);
    Result<bool> sub = RcdpWeak(q, smaller, prepared, options, stats);
    if (!sub.ok()) return sub.status();
    if (*sub) return false;
  }
  return true;
}

Result<bool> MinpWeak(const Query& q, const CInstance& cinstance,
                      const PartiallyClosedSetting& setting,
                      const SearchOptions& options, SearchStats* stats) {
  return MinpWeak(q, cinstance, PreparedSetting::Borrow(setting), options,
                  stats);
}

Result<bool> MinpWeakCq(const Query& q, const CInstance& cinstance,
                        const PreparedSetting& prepared,
                        const SearchOptions& options, SearchStats* stats) {
  if (q.language() != QueryLanguage::kCQ) {
    return Status::InvalidArgument(
        "MinpWeakCq implements the Lemma 5.7 dichotomy for CQ only");
  }
  CInstance empty(prepared.schema());
  Result<bool> empty_complete =
      RcdpWeak(q, empty, prepared, options, stats);
  if (!empty_complete.ok()) return empty_complete.status();
  if (*empty_complete) {
    return cinstance.TotalRows() == 0;
  }
  if (cinstance.TotalRows() != 1) return false;
  return IsConsistent(prepared, cinstance, options, stats);
}

Result<bool> MinpWeakCq(const Query& q, const CInstance& cinstance,
                        const PartiallyClosedSetting& setting,
                        const SearchOptions& options, SearchStats* stats) {
  return MinpWeakCq(q, cinstance, PreparedSetting::Borrow(setting), options,
                    stats);
}

}  // namespace relcomp
