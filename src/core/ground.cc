#include "core/ground.h"

namespace relcomp {

Result<bool> IsPartiallyClosed(const PreparedSetting& prepared,
                               const Instance& instance) {
  return prepared.SatisfiesCCs(instance);
}

Result<bool> IsPartiallyClosed(const PartiallyClosedSetting& setting,
                               const Instance& instance) {
  // One-shot check: deriving the prepared artifacts (Adom seed, master
  // projections) would cost more than the single CC pass they amortize.
  return SatisfiesCCs(instance, setting.dm, setting.ccs);
}

Result<bool> IsCompleteGround(const Query& q, const Instance& instance,
                              const PreparedSetting& prepared,
                              const AdomContext& adom,
                              const SearchOptions& options, SearchStats* stats,
                              CompletenessWitness* witness) {
  if (q.language() == QueryLanguage::kFO ||
      q.language() == QueryLanguage::kFP) {
    return Status::Undecidable(
        std::string("RCDP in the strong/viable model is undecidable for ") +
        QueryLanguageName(q.language()) +
        " (Theorem 4.1); use the bounded search in core/bounded.h");
  }
  Result<bool> closed = IsPartiallyClosed(prepared, instance);
  if (!closed.ok()) return closed.status();
  if (!*closed) {
    if (witness != nullptr) {
      witness->note = "instance is not partially closed: a CC is violated";
    }
    return false;
  }

  if (stats != nullptr) ++stats->query_evals;
  Result<Relation> answers = q.Eval(instance, adom.values());
  if (!answers.ok()) return answers.status();

  Result<std::vector<ConjunctiveQuery>> disjuncts = q.Disjuncts();
  if (!disjuncts.ok()) return disjuncts.status();

  SearchCheckpoint checkpoint(options, "ground completeness search", "ground");
  for (const ConjunctiveQuery& disjunct : *disjuncts) {
    // Fresh constants are interchangeable in this existential search, so a
    // symmetry-broken enumeration suffices (values of I stay pinned).
    CanonicalValuationEnumerator nus =
        MakeCanonicalCqEnumerator(disjunct, prepared.schema(), adom, instance);
    Valuation nu;
    while (nus.Next(&nu)) {
      RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
      if (stats != nullptr) ++stats->valuations;
      // The canonical extension only produces a new answer if the builtins
      // hold under ν.
      Result<bool> builtins_ok = disjunct.BuiltinsSatisfied(nu);
      if (!builtins_ok.ok()) return builtins_ok.status();
      if (!*builtins_ok) continue;
      // Cheap test first: the candidate new answer ν(u_Q).
      Result<Tuple> head = disjunct.InstantiateHead(nu);
      if (!head.ok()) return head.status();
      if (answers->Contains(*head)) continue;
      // Build I ∪ ν(T_Q) and check partial closure.
      Result<Instance> tableau =
          disjunct.InstantiateTableau(nu, prepared.schema());
      if (!tableau.ok()) return tableau.status();
      Instance extended = instance.Union(*tableau);
      if (stats != nullptr) {
        ++stats->extensions;
        ++stats->cc_checks;
      }
      Result<bool> ext_closed = prepared.SatisfiesCCs(extended);
      if (!ext_closed.ok()) return ext_closed.status();
      if (!*ext_closed) continue;
      if (witness != nullptr) {
        witness->world = instance;
        witness->extension = std::move(extended);
        witness->answer = *head;
        witness->note =
            "partially closed extension adds answer " + TupleToString(*head);
      }
      return false;
    }
  }
  return true;
}

Result<bool> IsCompleteGround(const Query& q, const Instance& instance,
                              const PartiallyClosedSetting& setting,
                              const AdomContext& adom,
                              const SearchOptions& options, SearchStats* stats,
                              CompletenessWitness* witness) {
  return IsCompleteGround(q, instance, PreparedSetting::Borrow(setting), adom,
                          options, stats, witness);
}

Result<bool> IsCompleteGroundAuto(const Query& q, const Instance& instance,
                                  const PreparedSetting& prepared,
                                  const SearchOptions& options,
                                  SearchStats* stats,
                                  CompletenessWitness* witness) {
  AdomContext adom = prepared.BuildAdomForGround(instance, &q);
  return IsCompleteGround(q, instance, prepared, adom, options, stats,
                          witness);
}

Result<bool> IsCompleteGroundAuto(const Query& q, const Instance& instance,
                                  const PartiallyClosedSetting& setting,
                                  const SearchOptions& options,
                                  SearchStats* stats,
                                  CompletenessWitness* witness) {
  return IsCompleteGroundAuto(q, instance, PreparedSetting::Borrow(setting),
                              options, stats, witness);
}

}  // namespace relcomp
