// The active domain Adom = S ∪ New ∪ df of the Prop 3.3 / Thm 4.1 proofs:
// all constants of T, Dm, V (and the query), plus one fresh ("New") constant
// per variable, plus every finite-domain constant. All decision procedures
// enumerate valuations over Adom only — the paper's finite-model argument
// shows this is sound and complete.
#ifndef RELCOMP_CORE_ADOM_H_
#define RELCOMP_CORE_ADOM_H_

#include <vector>

#include "core/types.h"

namespace relcomp {

/// Options for Adom construction.
struct AdomOptions {
  /// Extra fresh constants beyond the per-variable ones (e.g. for the
  /// fresh-variable row of Lemma 5.2).
  size_t extra_fresh = 0;
};

/// The setting-level contribution to every Adom built over one (Dm, V):
/// the constants of Dm, V and the finite attribute domains, plus the fresh
/// budget owed to CC variables and the widest relation. Computing this is
/// linear in |Dm|; a prepared setting caches it so per-query Adom builds
/// only fold in the query and instance constants.
struct AdomSeed {
  std::vector<Value> base;  ///< sorted, unique setting constants
  size_t fresh = 0;         ///< setting-level fresh-constant budget
};

/// The finite active domain for a given (T, Dm, V, Q) combination.
class AdomContext {
 public:
  /// Builds Adom for c-instance `T` in `setting`, optionally folding in the
  /// constants and variables of `query`.
  static AdomContext Build(const PartiallyClosedSetting& setting,
                           const CInstance& cinstance, const Query* query,
                           AdomOptions options = {});

  /// Precomputes the setting-level seed used by BuildFromSeed.
  static AdomSeed SeedFor(const PartiallyClosedSetting& setting);

  /// Builds Adom from a cached seed plus the per-call contributions of the
  /// c-instance and query. Equivalent to Build when the seed matches the
  /// setting.
  static AdomContext BuildFromSeed(const AdomSeed& seed,
                                   const CInstance& cinstance,
                                   const Query* query, AdomOptions options = {});

  /// Convenience overload for ground instances.
  static AdomContext BuildForGround(const PartiallyClosedSetting& setting,
                                    const Instance& instance,
                                    const Query* query,
                                    AdomOptions options = {});

  /// S ∪ New ∪ df, sorted and unique.
  const std::vector<Value>& values() const { return values_; }
  /// The fresh ("New") constants only.
  const std::vector<Value>& fresh() const { return fresh_; }
  /// S ∪ df (no fresh constants).
  const std::vector<Value>& base() const { return base_; }

  /// Candidate values for a position typed by `domain`: the finite domain's
  /// values if finite, the full Adom otherwise.
  const std::vector<Value>& Candidates(const Domain& domain) const {
    return domain.is_finite() ? domain.values() : values_;
  }

 private:
  std::vector<Value> values_;
  std::vector<Value> fresh_;
  std::vector<Value> base_;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_ADOM_H_
