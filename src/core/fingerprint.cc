#include "core/fingerprint.h"

namespace relcomp {
namespace {

void MixValue(StableHasher* h, const Value& v) {
  // Tag + canonical text: symbol ids are interning-order dependent, so
  // symbols hash by name.
  if (v.is_int()) {
    h->Mix(uint64_t{0});
    h->Mix(static_cast<uint64_t>(v.as_int()));
  } else {
    h->Mix(uint64_t{1});
    h->Mix(v.sym_name());
  }
}

void MixDomain(StableHasher* h, const Domain& domain) {
  if (!domain.is_finite()) {
    h->Mix("inf");
    return;
  }
  h->Mix(static_cast<uint64_t>(domain.values().size()));
  for (const Value& v : domain.values()) MixValue(h, v);
}

void MixSchema(StableHasher* h, const DatabaseSchema& schema) {
  h->Mix(static_cast<uint64_t>(schema.size()));
  for (const RelationSchema& rel : schema.relations()) {
    h->Mix(rel.name());
    h->Mix(static_cast<uint64_t>(rel.arity()));
    for (const Attribute& attr : rel.attributes()) {
      h->Mix(attr.name);
      MixDomain(h, attr.domain);
    }
  }
}

void MixInstance(StableHasher* h, const Instance& instance) {
  // Relations follow schema order; rows are kept sorted — deterministic.
  for (const Relation& rel : instance.relations()) {
    h->Mix(rel.schema().name());
    h->Mix(static_cast<uint64_t>(rel.size()));
    for (const Tuple& t : rel.rows()) {
      for (const Value& v : t) MixValue(h, v);
    }
  }
}

}  // namespace

uint64_t FingerprintSchema(const DatabaseSchema& schema) {
  StableHasher h;
  MixSchema(&h, schema);
  return h.digest();
}

uint64_t FingerprintInstance(const Instance& instance) {
  StableHasher h;
  MixInstance(&h, instance);
  return h.digest();
}

uint64_t FingerprintCInstance(const CInstance& cinstance) {
  // The textual rendering covers rows, variables and conditions; row order
  // within a c-table is load order, which is part of identity here (the
  // engine memoizes per concrete request object).
  StableHasher h;
  MixSchema(&h, cinstance.schema());
  h.Mix(cinstance.ToString());
  return h.digest();
}

uint64_t FingerprintQuery(const Query& query) {
  StableHasher h;
  h.Mix(QueryLanguageName(query.language()));
  h.Mix(query.ToString());
  return h.digest();
}

namespace {

void MixSetting(StableHasher* h, const PartiallyClosedSetting& setting) {
  MixSchema(h, setting.schema);
  MixSchema(h, setting.master_schema);
  MixInstance(h, setting.dm);
  h->Mix(static_cast<uint64_t>(setting.ccs.size()));
  for (const ContainmentConstraint& cc : setting.ccs) {
    h->Mix(cc.ToString());
  }
}

}  // namespace

uint64_t FingerprintSetting(const PartiallyClosedSetting& setting) {
  StableHasher h;
  MixSetting(&h, setting);
  return h.digest();
}

uint64_t FingerprintSettingSeeded(const PartiallyClosedSetting& setting,
                                  uint64_t seed) {
  StableHasher h(seed);
  MixSetting(&h, setting);
  return h.digest();
}

}  // namespace relcomp
