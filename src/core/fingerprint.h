// Stable fingerprints of settings, c-instances and queries, used as engine
// memoization keys. Fingerprints are built from canonical text renderings
// (symbol names, not interner ids) so they are reproducible across runs and
// independent of interning order.
#ifndef RELCOMP_CORE_FINGERPRINT_H_
#define RELCOMP_CORE_FINGERPRINT_H_

#include <cstdint>

#include "core/types.h"
#include "util/hash.h"

namespace relcomp {

/// Fingerprint of a database schema (relation names, attributes, domains).
uint64_t FingerprintSchema(const DatabaseSchema& schema);

/// Fingerprint of a ground instance (schema-ordered, rows are sorted).
uint64_t FingerprintInstance(const Instance& instance);

/// Fingerprint of a c-instance including conditions.
uint64_t FingerprintCInstance(const CInstance& cinstance);

/// Fingerprint of a query (language tag + canonical rendering).
uint64_t FingerprintQuery(const Query& query);

/// Fingerprint of the whole partially closed setting (R, Rm, Dm, V).
uint64_t FingerprintSetting(const PartiallyClosedSetting& setting);

/// Independently-seeded variant, for wide (dual-digest) identity keys —
/// e.g. the service's setting registry, where a single 64-bit collision
/// would route one tenant's requests to another tenant's shard.
uint64_t FingerprintSettingSeeded(const PartiallyClosedSetting& setting,
                                  uint64_t seed);

}  // namespace relcomp

#endif  // RELCOMP_CORE_FINGERPRINT_H_
