// RCQP — the relatively complete query problem: does ANY instance complete
// for Q relative to (Dm, V) exist?
//  - Weak model: trivially true (O(1)) for every monotone language
//    (Theorem 5.4); undecidable for FO.
//  - Strong/viable models: c-instances and ground instances coincide
//    (Lemma 4.4); NEXPTIME-complete for CQ/UCQ/∃FO⁺ (Thm 4.5 / Cor 6.2),
//    implemented as (a) the PTIME boundedness test when all CCs are INDs
//    (Corollary 7.2, after Fan & Geerts 2009 Prop. 4.3) and (b) a bounded
//    exhaustive witness search that mirrors the NEXPTIME upper-bound proof
//    with the exponential size bound made an explicit parameter.
#ifndef RELCOMP_CORE_RCQP_H_
#define RELCOMP_CORE_RCQP_H_

#include <optional>

#include "core/adom.h"
#include "core/ground.h"
#include "core/types.h"
#include "core/prepared_setting.h"

namespace relcomp {

/// Weak model: O(1) — always true for CQ/UCQ/∃FO⁺/FP; kUndecidable for FO.
Result<bool> RcqpWeak(const Query& q);

/// Outcome of the bounded strong/viable-model search.
struct RcqpSearchResult {
  bool found = false;            ///< a complete instance was found
  Instance witness;              ///< the instance, if found
  bool bound_exhausted = false;  ///< searched every instance up to the bound
};

/// Strong (≡ viable, by Lemma 4.4) model: searches for a complete ground
/// instance with at most `max_tuples` tuples over the Adom. `found == false`
/// with `bound_exhausted == true` means no witness up to the bound — only
/// conclusive if the caller knows the NEXPTIME witness bound fits.
Result<RcqpSearchResult> RcqpStrongBounded(const Query& q,
                                           const PreparedSetting& prepared,
                                           size_t max_tuples,
                                           const SearchOptions& options = {},
                                           SearchStats* stats = nullptr);
Result<RcqpSearchResult> RcqpStrongBounded(const Query& q,
                                           const PartiallyClosedSetting& setting,
                                           size_t max_tuples,
                                           const SearchOptions& options = {},
                                           SearchStats* stats = nullptr);

/// PTIME decision when every CC in V is an IND (Corollary 7.2): RCQ is
/// non-empty iff every disjunct of Q is either bounded by (Dm, V) or has no
/// valid valuation. Fails with kInvalidArgument if some CC is not an IND or
/// the language has no tableau form.
Result<bool> RcqpStrongInd(const Query& q,
                           const PreparedSetting& prepared,
                           const SearchOptions& options = {},
                           SearchStats* stats = nullptr);
Result<bool> RcqpStrongInd(const Query& q,
                           const PartiallyClosedSetting& setting,
                           const SearchOptions& options = {},
                           SearchStats* stats = nullptr);

/// Boundedness of one disjunct (Fan & Geerts 2009): every head variable
/// either sits in a finite-domain column or in a column covered by an IND CC
/// into master data.
bool IsBoundedDisjunct(const ConjunctiveQuery& disjunct,
                       const DatabaseSchema& schema, const CCSet& ccs);

}  // namespace relcomp

#endif  // RELCOMP_CORE_RCQP_H_
