// PreparedSetting: a partially closed setting (Dm, V) validated once, with
// every derived artifact the deciders otherwise recompute per call cached up
// front — the setting-level Adom seed, the IND classification of the CCs
// (Corollary 7.2), and the projected master relations π_cols(Dm[Rm]) used on
// the hot path of every CC check. The core deciders accept a PreparedSetting
// directly; the legacy PartiallyClosedSetting entry points wrap their
// argument in a borrowed (unvalidated) PreparedSetting, so both APIs share
// one implementation. The batch engine (src/engine/) serves many requests
// over one PreparedSetting.
//
// A PreparedSetting is a cheap, shareable handle (copying copies one
// shared_ptr); it is immutable after construction and safe to use from many
// threads concurrently.
#ifndef RELCOMP_CORE_PREPARED_SETTING_H_
#define RELCOMP_CORE_PREPARED_SETTING_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/adom.h"
#include "core/types.h"

namespace relcomp {

class PreparedSetting {
 public:
  /// Validates `setting` (schema/CC well-formedness) and prepares all
  /// derived artifacts. The setting is copied into the handle, so the
  /// result is self-contained — the right entry point for engines serving
  /// many requests.
  static Result<PreparedSetting> Prepare(PartiallyClosedSetting setting);

  /// Same, reusing a FingerprintSetting digest the caller already computed
  /// (the service registry fingerprints the setting for dedup before
  /// preparing; re-scanning Dm and every CC here would triple that cost).
  static Result<PreparedSetting> Prepare(PartiallyClosedSetting setting,
                                         uint64_t fingerprint);

  /// Prepares the artifacts without validating and without copying the
  /// setting; `setting` must outlive the handle. Used by the legacy
  /// PartiallyClosedSetting decider entry points, which historically did not
  /// validate either.
  static PreparedSetting Borrow(const PartiallyClosedSetting& setting);

  const PartiallyClosedSetting& setting() const { return *a_->setting; }
  const DatabaseSchema& schema() const { return a_->setting->schema; }
  const DatabaseSchema& master_schema() const {
    return a_->setting->master_schema;
  }
  const Instance& dm() const { return a_->setting->dm; }
  const CCSet& ccs() const { return a_->setting->ccs; }

  /// True iff every CC in V is an IND (enables the PTIME RCQP of Cor 7.2).
  bool all_inds() const { return a_->all_inds; }

  /// Cached setting-level Adom contribution. Computed on first use (and
  /// eagerly by Prepare): legacy one-shot paths that only need CC checks —
  /// e.g. a ModEnumerator built around an existing AdomContext — never pay
  /// the O(|Dm| log |Dm|) constant scan. Thread-safe.
  const AdomSeed& adom_seed() const;

  /// Cached π_cols(Dm[Rm]) per CC, parallel to ccs(). Entries whose
  /// projection failed (unknown master in a borrowed, unvalidated setting)
  /// are empty; SatisfiesCCs falls back to the unprepared check for those.
  const std::vector<Relation>& cc_projections() const {
    return a_->cc_projections;
  }

  /// Stable fingerprint of (R, Rm, Dm, V); memoization key component.
  uint64_t fingerprint() const;

  /// (I, Dm) ⊨ V using the cached master projections — the prepared
  /// replacement for SatisfiesCCs(I, dm(), ccs()).
  Result<bool> SatisfiesCCs(const Instance& instance) const;

  /// Adom builds reusing the cached seed.
  AdomContext BuildAdom(const CInstance& cinstance, const Query* query,
                        AdomOptions options = {}) const {
    return AdomContext::BuildFromSeed(adom_seed(), cinstance, query, options);
  }
  AdomContext BuildAdomForGround(const Instance& instance, const Query* query,
                                 AdomOptions options = {}) const;

 private:
  struct Artifacts {
    std::shared_ptr<const PartiallyClosedSetting> owned;  // null when borrowed
    const PartiallyClosedSetting* setting = nullptr;
    mutable std::once_flag seed_once;  // lazy: many one-shot users skip it
    mutable AdomSeed adom_seed;
    std::vector<Relation> cc_projections;
    std::vector<char> cc_projection_ok;  // parallel; false → fall back
    bool all_inds = false;
    uint64_t fingerprint = 0;
    bool fingerprinted = false;
  };

  explicit PreparedSetting(std::shared_ptr<const Artifacts> a)
      : a_(std::move(a)) {}

  static std::shared_ptr<Artifacts> Derive(
      const PartiallyClosedSetting& setting);

  std::shared_ptr<const Artifacts> a_;
};

}  // namespace relcomp

#endif  // RELCOMP_CORE_PREPARED_SETTING_H_
