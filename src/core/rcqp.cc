#include "core/rcqp.h"

#include <algorithm>

namespace relcomp {

Result<bool> RcqpWeak(const Query& q) {
  if (q.language() == QueryLanguage::kFO) {
    return Status::Undecidable(
        "RCQP (weak model) is undecidable for FO over ground instances "
        "(Theorem 5.4); the c-instance case is open in the paper");
  }
  // Theorem 5.4: for monotone languages a weakly complete instance always
  // exists (constructed as a maximal Adom instance in the proof).
  return true;
}

namespace {

// DFS over ground instances: tuples are added in a canonical order (relation
// index, then tuple order) so each instance is generated once. CC violations
// prune the subtree (CC bodies are monotone CQs).
class RcqpSearcher {
 public:
  RcqpSearcher(const Query& q, const PreparedSetting& prepared,
               const AdomContext& adom, size_t max_tuples,
               const SearchOptions& options, SearchStats* stats)
      : q_(q),
        prepared_(prepared),
        adom_(adom),
        max_tuples_(max_tuples),
        options_(options),
        stats_(stats),
        checkpoint_(options_, "RCQP search", "rcqp-dfs") {
    // Materialize candidate tuples per relation.
    for (const RelationSchema& rel : prepared.schema().relations()) {
      std::vector<Tuple> tuples;
      TupleEnumerator it(rel, adom);
      Tuple t;
      while (it.Next(&t)) tuples.push_back(t);
      candidates_.push_back(std::move(tuples));
    }
  }

  Result<RcqpSearchResult> Run() {
    Instance empty(prepared_.schema());
    RcqpSearchResult result;
    Result<bool> done = Explore(&empty, 0, 0, &result);
    if (!done.ok()) return done.status();
    if (!result.found) result.bound_exhausted = true;
    return result;
  }

 private:
  // Explores instances extending `current` by adding tuples at position ≥
  // (rel_index, tuple_index).
  Result<bool> Explore(Instance* current, size_t rel_index,
                       size_t tuple_index, RcqpSearchResult* result) {
    RELCOMP_RETURN_IF_ERROR(checkpoint_.Tick());
    // Check the current instance.
    Result<bool> closed = IsPartiallyClosed(prepared_, *current);
    if (!closed.ok()) return closed.status();
    if (!*closed) return false;  // supersets can only stay violated
    Result<bool> complete = IsCompleteGround(q_, *current, prepared_, adom_,
                                             options_, stats_, nullptr);
    if (!complete.ok()) return complete.status();
    if (*complete) {
      result->found = true;
      result->witness = *current;
      return true;
    }
    if (current->TotalTuples() >= max_tuples_) return false;
    // Extend.
    for (size_t r = rel_index; r < candidates_.size(); ++r) {
      size_t start = (r == rel_index) ? tuple_index : 0;
      const std::string& rel_name =
          prepared_.schema().relations()[r].name();
      for (size_t ti = start; ti < candidates_[r].size(); ++ti) {
        current->AddTuple(rel_name, candidates_[r][ti]);
        Result<bool> found = Explore(current, r, ti + 1, result);
        current->RemoveTuple(rel_name, candidates_[r][ti]);
        if (!found.ok()) return found.status();
        if (*found) return true;
      }
    }
    return false;
  }

  const Query& q_;
  const PreparedSetting& prepared_;
  const AdomContext& adom_;
  size_t max_tuples_;
  SearchOptions options_;
  SearchStats* stats_;
  std::vector<std::vector<Tuple>> candidates_;
  SearchCheckpoint checkpoint_;
};

}  // namespace

Result<RcqpSearchResult> RcqpStrongBounded(
    const Query& q, const PreparedSetting& prepared, size_t max_tuples,
    const SearchOptions& options, SearchStats* stats) {
  if (q.language() == QueryLanguage::kFO ||
      q.language() == QueryLanguage::kFP) {
    return Status::Undecidable(
        std::string("RCQP (strong/viable model) is undecidable for ") +
        QueryLanguageName(q.language()) + " (Theorem 4.5)");
  }
  CInstance empty(prepared.schema());
  AdomContext adom = prepared.BuildAdom(empty, &q);
  RcqpSearcher searcher(q, prepared, adom, max_tuples, options, stats);
  return searcher.Run();
}

Result<RcqpSearchResult> RcqpStrongBounded(
    const Query& q, const PartiallyClosedSetting& setting, size_t max_tuples,
    const SearchOptions& options, SearchStats* stats) {
  return RcqpStrongBounded(q, PreparedSetting::Borrow(setting), max_tuples,
                           options, stats);
}

bool IsBoundedDisjunct(const ConjunctiveQuery& disjunct,
                       const DatabaseSchema& schema, const CCSet& ccs) {
  // Positions of `var` in the tableau: (relation, column) pairs.
  auto positions = [&](VarId var) {
    std::vector<std::pair<std::string, size_t>> out;
    // LINT:waive(checkpoint-coverage, scans the disjunct atoms once)
    for (const RelAtom& atom : disjunct.atoms()) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (std::holds_alternative<VarId>(atom.args[i]) &&
            std::get<VarId>(atom.args[i]) == var) {
          out.emplace_back(atom.rel, i);
        }
      }
    }
    return out;
  };
  // Is column (rel, col) covered by some IND CC into master data?
  auto ind_covered = [&ccs](const std::string& rel, size_t col) {
    // LINT:waive(checkpoint-coverage, scans the CC set once)
    for (const ContainmentConstraint& cc : ccs) {
      if (!cc.IsInd()) continue;
      const RelAtom& atom = cc.q().atoms()[0];
      if (atom.rel != rel || col >= atom.args.size()) continue;
      if (!std::holds_alternative<VarId>(atom.args[col])) continue;
      VarId at_col = std::get<VarId>(atom.args[col]);
      for (const CTerm& h : cc.q().head()) {
        if (std::holds_alternative<VarId>(h) &&
            std::get<VarId>(h) == at_col) {
          return true;
        }
      }
    }
    return false;
  };
  // LINT:waive(checkpoint-coverage, static boundedness check over the head)
  for (const CTerm& head_term : disjunct.head()) {
    if (std::holds_alternative<Value>(head_term)) continue;  // constant
    VarId var = std::get<VarId>(head_term);
    bool bounded = false;
    for (const auto& [rel, col] : positions(var)) {
      const RelationSchema* rs = schema.Find(rel);
      if (rs != nullptr && col < rs->arity() &&
          rs->attribute(col).domain.is_finite()) {
        bounded = true;
        break;
      }
      if (ind_covered(rel, col)) {
        bounded = true;
        break;
      }
    }
    if (!bounded) return false;
  }
  return true;
}

Result<bool> RcqpStrongInd(const Query& q,
                           const PreparedSetting& prepared,
                           const SearchOptions& options, SearchStats* stats) {
  if (!prepared.all_inds()) {
    return Status::InvalidArgument(
        "RcqpStrongInd requires every CC to be an IND (Corollary 7.2)");
  }
  Result<std::vector<ConjunctiveQuery>> disjuncts = q.Disjuncts();
  if (!disjuncts.ok()) return disjuncts.status();

  CInstance empty(prepared.schema());
  AdomContext adom = prepared.BuildAdom(empty, &q);

  SearchCheckpoint checkpoint(options, "IND RCQP valuation search", "rcqp-ind");
  for (const ConjunctiveQuery& disjunct : *disjuncts) {
    if (IsBoundedDisjunct(disjunct, prepared.schema(), prepared.ccs())) {
      continue;
    }
    // Unbounded disjunct: RCQ is still non-empty iff it has no valid
    // valuation (no partially closed canonical instance with an answer).
    bool has_valid = false;
    Instance empty_instance(prepared.schema());
    CanonicalValuationEnumerator nus = MakeCanonicalCqEnumerator(
        disjunct, prepared.schema(), adom, empty_instance);
    Valuation nu;
    while (nus.Next(&nu)) {
      RELCOMP_RETURN_IF_ERROR(checkpoint.Tick());
      if (stats != nullptr) ++stats->valuations;
      Result<bool> builtins_ok = disjunct.BuiltinsSatisfied(nu);
      if (!builtins_ok.ok()) return builtins_ok.status();
      if (!*builtins_ok) continue;
      Result<Instance> canonical =
          disjunct.InstantiateTableau(nu, prepared.schema());
      if (!canonical.ok()) return canonical.status();
      if (stats != nullptr) ++stats->cc_checks;
      Result<bool> closed = prepared.SatisfiesCCs(*canonical);
      if (!closed.ok()) return closed.status();
      if (*closed) {
        has_valid = true;
        break;
      }
    }
    if (has_valid) return false;
  }
  return true;
}

Result<bool> RcqpStrongInd(const Query& q,
                           const PartiallyClosedSetting& setting,
                           const SearchOptions& options, SearchStats* stats) {
  return RcqpStrongInd(q, PreparedSetting::Borrow(setting), options, stats);
}

}  // namespace relcomp
