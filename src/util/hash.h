// Stable 64-bit hashing (FNV-1a) for fingerprints that must be reproducible
// across processes and runs: std::hash is implementation-defined and symbol
// interning ids depend on interning order, so fingerprints are always built
// from canonical byte sequences (digits, symbol text, separators).
#ifndef RELCOMP_UTIL_HASH_H_
#define RELCOMP_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace relcomp {

/// Incremental FNV-1a hasher. Feed canonical bytes, then read digest().
class StableHasher {
 public:
  StableHasher() = default;
  /// Starts from a caller-chosen seed mixed into the FNV basis, so two
  /// hashers over the same bytes yield independent-looking digests (used
  /// for wide cache keys).
  explicit StableHasher(uint64_t seed) { Mix(seed); }

  /// Mixes raw bytes.
  StableHasher& Mix(const void* data, size_t len);
  /// Mixes the characters of `s` plus a terminator (so "ab","c" != "a","bc").
  StableHasher& Mix(std::string_view s);
  /// Mixes a little-endian 64-bit word.
  StableHasher& Mix(uint64_t v);

  uint64_t digest() const { return state_; }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience: stable hash of a string.
uint64_t StableHash(std::string_view s);

}  // namespace relcomp

#endif  // RELCOMP_UTIL_HASH_H_
