// Status / Result<T> error handling, in the style used by database engines
// (RocksDB / Arrow): no exceptions on core paths, explicit error codes.
#ifndef RELCOMP_UTIL_STATUS_H_
#define RELCOMP_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace relcomp {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (bad arity, unknown relation, unsafe query, ...).
  kInvalidArgument,
  /// The requested analysis is undecidable for this query language / model
  /// combination (Table I of the paper); a bounded procedure must be used.
  kUndecidable,
  /// An enumeration budget was exhausted before the search finished.
  kResourceExhausted,
  /// Referenced entity (relation, attribute, query) does not exist.
  kNotFound,
  /// Parse error in the textual query / schema language.
  kParseError,
  /// Internal invariant violation.
  kInternal,
  /// The service refused admission (per-tenant quota or rate exceeded
  /// under OverloadPolicy::kReject). Distinct from kResourceExhausted,
  /// which reports a decider's own search budget running out.
  kUnavailable,
  /// A deadline passed: either while the request was still queued (shed
  /// before evaluation) or mid-run, observed by a cooperative checkpoint
  /// inside the search loops (the evaluation aborted with partial stats).
  kDeadlineExceeded,
  /// Every waiter cancelled the request — before evaluation started, or
  /// while it ran (the search observed the joint cancellation at a
  /// checkpoint and aborted).
  kCancelled,
};

/// Human-readable name of a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Undecidable(std::string msg) {
    return Status(StatusCode::kUndecidable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome. On success holds a T, otherwise a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define RELCOMP_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::relcomp::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace relcomp

#endif  // RELCOMP_UTIL_STATUS_H_
