#include "util/mutex.h"

#include <atomic>

namespace relcomp {
namespace {

std::atomic<AbortReportFn> g_abort_report_hook{nullptr};

}  // namespace

void SetLockRankAbortHook(AbortReportFn fn) {
  g_abort_report_hook.store(fn, std::memory_order_release);
}

namespace lockrank_internal {

void RunAbortReportHook() {
  if (AbortReportFn fn =
          g_abort_report_hook.load(std::memory_order_acquire)) {
    fn();
  }
}

}  // namespace lockrank_internal
}  // namespace relcomp

#if RELCOMP_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define RELCOMP_HAVE_BACKTRACE 1
#endif
#endif

namespace relcomp {
namespace lockrank_internal {
namespace {

// Fixed-capacity thread-local stack of the locks this thread holds. The
// deepest real chain today is four (registry → shard → pressure → cache →
// budget is the longest path and releases before re-entering); 16 leaves
// generous headroom and keeps lock/unlock allocation-free.
constexpr int kMaxHeld = 16;

struct Held {
  const void* mu;
  int rank;
  const char* name;
};

struct HeldStack {
  Held entries[kMaxHeld];
  int depth = 0;
};

HeldStack& Stack() {
  thread_local HeldStack stack;
  return stack;
}

void DumpHeldStack(const HeldStack& stack) {
  std::fprintf(stderr, "  locks held by this thread (acquisition order):\n");
  for (int i = 0; i < stack.depth; ++i) {
    std::fprintf(stderr, "    #%d \"%s\" (rank %d)\n", i,
                 stack.entries[i].name, stack.entries[i].rank);
  }
}

void DumpCallStack() {
#ifdef RELCOMP_HAVE_BACKTRACE
  void* frames[32];
  const int n = backtrace(frames, 32);
  std::fprintf(stderr, "  call stack:\n");
  backtrace_symbols_fd(frames, n, /*fd=*/2);
#endif
}

[[noreturn]] void Die(const HeldStack& stack) {
  DumpHeldStack(stack);
  DumpCallStack();
  // Last-gasp forensics: let the obs layer dump its pre-rendered report
  // (flight-recorder ring, active evaluations) before the process dies.
  RunAbortReportHook();
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void CheckAcquire(const void* mu, int rank, const char* name) {
  HeldStack& stack = Stack();
  for (int i = 0; i < stack.depth; ++i) {
    if (stack.entries[i].mu == mu) {
      std::fprintf(stderr,
                   "relcomp: recursive acquisition of mutex \"%s\" (rank %d)\n",
                   name, rank);
      Die(stack);
    }
    if (stack.entries[i].rank >= rank) {
      std::fprintf(
          stderr,
          "relcomp: lock-rank violation: acquiring \"%s\" (rank %d) while "
          "already holding \"%s\" (rank %d)\n",
          name, rank, stack.entries[i].name, stack.entries[i].rank);
      Die(stack);
    }
  }
}

void CheckTryAcquire(const void* mu, int rank, const char* name) {
  HeldStack& stack = Stack();
  for (int i = 0; i < stack.depth; ++i) {
    if (stack.entries[i].mu == mu) {
      std::fprintf(stderr,
                   "relcomp: recursive acquisition of mutex \"%s\" (rank %d) "
                   "via TryLock\n",
                   name, rank);
      Die(stack);
    }
  }
}

void PushHeld(const void* mu, int rank, const char* name) {
  HeldStack& stack = Stack();
  if (stack.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "relcomp: lock-rank checker: more than %d locks held while "
                 "acquiring \"%s\"\n",
                 kMaxHeld, name);
    Die(stack);
  }
  stack.entries[stack.depth++] = Held{mu, rank, name};
}

void PopHeld(const void* mu, const char* name) {
  HeldStack& stack = Stack();
  // Search from the top: releases are LIFO in practice, but a condition
  // variable relocking after a spurious-wakeup race keeps this general.
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < stack.depth; ++j) {
      stack.entries[j] = stack.entries[j + 1];
    }
    --stack.depth;
    return;
  }
  std::fprintf(stderr,
               "relcomp: releasing mutex \"%s\" that this thread does not "
               "hold\n",
               name);
  Die(stack);
}

}  // namespace lockrank_internal
}  // namespace relcomp

#endif  // RELCOMP_LOCK_RANK_CHECKS
