#include "util/status.h"

namespace relcomp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUndecidable:
      return "Undecidable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace relcomp
