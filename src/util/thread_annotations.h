// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These attach the locking contract to the code itself so that
// `clang++ -Wthread-safety -Werror` can PROVE, at compile time, that every
// access to a guarded member happens with the right mutex held — instead of
// the contract living in comments and being re-checked by whichever
// interleaving a TSan run happens to hit. The vocabulary follows the Clang
// thread-safety analysis documentation (and abseil's macro set):
//
//   CAPABILITY          — the class is a lockable resource (relcomp::Mutex)
//   SCOPED_CAPABILITY   — RAII object that acquires/releases a capability
//   GUARDED_BY(mu)      — the member may only be touched while mu is held
//   PT_GUARDED_BY(mu)   — same, for the pointee of a pointer member
//   REQUIRES(mu)        — the function must be called with mu already held
//   EXCLUDES(mu)        — the function must be called with mu NOT held
//   ACQUIRE / RELEASE   — the function takes / drops the capability
//   TRY_ACQUIRE(b, mu)  — conditional acquire, returning `b` on success
//   RETURN_CAPABILITY   — the function returns a reference to a capability
//   NO_THREAD_SAFETY_ANALYSIS — opt a function out (deliberate violations,
//                               e.g. the lock-rank checker's death tests)
//
// GCC compiles the attributes away entirely, so the annotated build and the
// unannotated build are the same code; only the clang CI job enforces them.
#ifndef RELCOMP_UTIL_THREAD_ANNOTATIONS_H_
#define RELCOMP_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RELCOMP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RELCOMP_THREAD_ANNOTATION
#define RELCOMP_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define CAPABILITY(x) RELCOMP_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY RELCOMP_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) RELCOMP_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) RELCOMP_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  RELCOMP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  RELCOMP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  RELCOMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  RELCOMP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  RELCOMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  RELCOMP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  RELCOMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  RELCOMP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  RELCOMP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  RELCOMP_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) RELCOMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) RELCOMP_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) RELCOMP_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  RELCOMP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // RELCOMP_UTIL_THREAD_ANNOTATIONS_H_
