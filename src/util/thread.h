// relcomp::JoinableThread — the project's only sanctioned thread handle.
//
// A thin wrapper over std::thread whose destructor joins instead of calling
// std::terminate, so a thread member can never outlive the object whose
// state it touches just because a destructor forgot the join. Raw
// std::thread is a banned construct outside src/util/ (relcomp_lint rule
// `banned-constructs`): every long-lived thread in the system goes through
// this wrapper, which keeps "who joins this and when" a type-level property
// instead of a per-destructor convention.
//
// Deliberately minimal: no detach (a detached thread cannot be proven quiet
// at shutdown, which is exactly the bug class this wrapper removes), no
// interruption (the codebase signals shutdown through its own flags and
// CondVars), movable so it can live in containers.
#ifndef RELCOMP_UTIL_THREAD_H_
#define RELCOMP_UTIL_THREAD_H_

#include <thread>
#include <utility>

namespace relcomp {

class JoinableThread {
 public:
  /// An empty handle; joinable() is false until a thread is assigned.
  JoinableThread() = default;

  /// Starts a thread running `fn(args...)`, exactly like std::thread.
  template <class Fn, class... Args>
  explicit JoinableThread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  JoinableThread(JoinableThread&& other) noexcept = default;

  /// Move-assignment joins the currently held thread first (std::thread
  /// would terminate), so overwriting a live handle is safe, just blocking.
  JoinableThread& operator=(JoinableThread&& other) noexcept {
    if (this != &other) {
      Join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  JoinableThread(const JoinableThread&) = delete;
  JoinableThread& operator=(const JoinableThread&) = delete;

  ~JoinableThread() { Join(); }

  bool joinable() const { return thread_.joinable(); }

  /// Joins if joinable; no-op (not an error) on an empty or already-joined
  /// handle, so shutdown paths can call it unconditionally.
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

}  // namespace relcomp

#endif  // RELCOMP_UTIL_THREAD_H_
