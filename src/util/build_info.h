// Build identity for the running binary, surfaced by the
// relcomp_build_info metric so a scrape can tell WHICH relcomp answered
// it. The values are compile-time: CMake passes the git revision via
// -DRELCOMP_GIT_REV (falling back to "unknown" outside a git checkout)
// and the project version via -DRELCOMP_VERSION.
#ifndef RELCOMP_UTIL_BUILD_INFO_H_
#define RELCOMP_UTIL_BUILD_INFO_H_

#ifndef RELCOMP_VERSION
#define RELCOMP_VERSION "0.0.0-dev"
#endif
#ifndef RELCOMP_GIT_REV
#define RELCOMP_GIT_REV "unknown"
#endif

namespace relcomp {

inline const char* BuildVersion() { return RELCOMP_VERSION; }
inline const char* BuildGitRevision() { return RELCOMP_GIT_REV; }

}  // namespace relcomp

#endif  // RELCOMP_UTIL_BUILD_INFO_H_
