// Global symbol interner: maps strings to dense 32-bit ids so that Value can
// be a cheap, trivially-copyable 64-bit word. Database constants (patient
// names, city names, ...) are interned once and compared by id thereafter.
#ifndef RELCOMP_UTIL_INTERNER_H_
#define RELCOMP_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace relcomp {

/// Dense id of an interned symbol.
using SymbolId = uint32_t;

/// Interns `name`, returning its stable id. Idempotent.
SymbolId InternSymbol(std::string_view name);

/// Returns the string for an id previously returned by InternSymbol.
const std::string& SymbolName(SymbolId id);

/// Number of symbols interned so far (monotone; used by tests).
size_t InternedSymbolCount();

}  // namespace relcomp

#endif  // RELCOMP_UTIL_INTERNER_H_
