#include "util/interner.h"

#include <cassert>
#include <deque>
#include <unordered_map>

#include "util/mutex.h"

namespace relcomp {
namespace {

// A single process-wide table. Deque gives pointer stability for names.
struct InternTable {
  Mutex mu{LockRank::kInterner, "InternTable::mu"};
  std::unordered_map<std::string_view, SymbolId> index GUARDED_BY(mu);
  std::deque<std::string> names GUARDED_BY(mu);
};

InternTable& Table() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace

SymbolId InternSymbol(std::string_view name) {
  InternTable& t = Table();
  MutexLock lock(t.mu);
  auto it = t.index.find(name);
  if (it != t.index.end()) return it->second;
  t.names.emplace_back(name);
  SymbolId id = static_cast<SymbolId>(t.names.size() - 1);
  t.index.emplace(std::string_view(t.names.back()), id);
  return id;
}

const std::string& SymbolName(SymbolId id) {
  InternTable& t = Table();
  // Resolve under the lock, return outside it: deque elements are
  // pointer-stable and immutable once interned, so the reference stays
  // valid forever — only the container itself needs the mutex.
  const std::string* name;
  {
    MutexLock lock(t.mu);
    assert(id < t.names.size());
    name = &t.names[id];
  }
  return *name;
}

size_t InternedSymbolCount() {
  InternTable& t = Table();
  MutexLock lock(t.mu);
  return t.names.size();
}

}  // namespace relcomp
