#include "util/interner.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace relcomp {
namespace {

// A single process-wide table. Deque gives pointer stability for names.
struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string_view, SymbolId> index;
  std::deque<std::string> names;
};

InternTable& Table() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace

SymbolId InternSymbol(std::string_view name) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(name);
  if (it != t.index.end()) return it->second;
  t.names.emplace_back(name);
  SymbolId id = static_cast<SymbolId>(t.names.size() - 1);
  t.index.emplace(std::string_view(t.names.back()), id);
  return id;
}

const std::string& SymbolName(SymbolId id) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  assert(id < t.names.size());
  return t.names[id];
}

size_t InternedSymbolCount() {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names.size();
}

}  // namespace relcomp
