// relcomp::Mutex — an annotated, ranked mutex.
//
// Two enforcement layers ride on this wrapper:
//
//   1. Static: the CAPABILITY / GUARDED_BY annotations (see
//      thread_annotations.h) let `clang++ -Wthread-safety -Werror` prove at
//      compile time that guarded members are only touched under their mutex.
//
//   2. Dynamic: every Mutex declares a LockRank. In checked builds
//      (RELCOMP_LOCK_RANK_CHECKS=1, the default outside Release) a
//      thread-local held-lock stack verifies that ranks are acquired in
//      strictly ascending order and aborts — printing the held-lock stack
//      and a call backtrace — on any out-of-order or recursive acquisition.
//      This turns a potential deadlock (which a test only hits under the
//      right interleaving) into a deterministic failure on ANY interleaving
//      that merely acquires the locks in the wrong order. Release builds
//      compile the checker out entirely: Mutex is then exactly a std::mutex.
//
// The rank table below encodes the real acquisition order of the codebase
// (outermost first). A thread may only acquire a mutex whose rank is
// STRICTLY GREATER than every mutex it already holds; equal ranks never
// nest. The same table is documented for humans in README.md
// ("Correctness tooling").
#ifndef RELCOMP_UTIL_MUTEX_H_
#define RELCOMP_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

#ifndef RELCOMP_LOCK_RANK_CHECKS
#define RELCOMP_LOCK_RANK_CHECKS 0
#endif

namespace relcomp {

// Lock acquisition order, outermost (acquired first) to innermost. Gaps
// leave room for future layers (e.g. network sharding) without renumbering.
enum class LockRank : int {
  // CompletenessService::registry_mu_ — held across shard registration,
  // which reaches into the queue, the cache (warm restore), and the
  // metrics registry, so it is the outermost lock in the system.
  kServiceRegistry = 10,
  // CompletenessService::Shard::mu — per-shard counters + in-flight map;
  // held while talking to the shard's cache and to traces/cancel groups.
  kShard = 20,
  // CacheBudget::pressure_mu_ — serializes over-budget reservations; held
  // while charging the budget and shedding bytes from peer caches.
  kCachePressure = 30,
  // ShardCache::mu_ — one shard's LRU segments, index, and stats.
  kCache = 40,
  // CacheBudget::mu_ — the budget's registration map; leaf of the cache
  // chain (never held while calling back into a cache).
  kCacheBudget = 50,
  // net::HttpServer::mu_ — the pending-connection queue of the embedded
  // observability endpoint. Workers pop a connection under this lock and
  // release it before parsing or invoking a handler, so the rank never
  // nests with the service/obs locks the handlers take.
  kNetHttpServer = 56,
  // CompletenessService::recorder_wake_mu_ — the sampler thread's sleep
  // mutex. The sampler does all its work (scans, renders, metric reads)
  // strictly outside this lock; it exists only to make shutdown wake the
  // WaitFor. Kept below the obs leaves so the wait itself can never
  // invert against them even if the loop is later restructured.
  kObsRecorderWake = 58,
  // FairQueue::mu_ — scheduler queue state; leaf (tasks run unlocked).
  kSchedQueue = 60,
  // Stream<T>::mu_ — per-stream channel state; leaf.
  kSchedStream = 65,
  // WindowedCounter/WindowedHistogram::mu_ — sliding-window slot rings;
  // leaf (Record/Snapshot touch only the ring).
  kObsWindow = 67,
  // ActiveEvaluations::mu_ — the registry of running evaluations the stall
  // watchdog scans; leaf (per-record heartbeats are lock-free atomics).
  kObsActive = 68,
  // FlightRecorder::mu_ — the bounded ring of periodic samples; leaf.
  kObsRecorder = 69,
  // SlowDecisionLog::mu_ — holds plain SlowEntry values (the trace inside
  // an entry is only read, never locked, under this mutex); ranked below
  // the obs leaves it historically preceded.
  kObsSlowLog = 70,
  // TraceSink::mu_ — the bounded ring of finished trace records; leaf
  // (records are offered after the trace is sealed and the export renderer
  // reads traces outside this lock).
  kObsTraceSink = 72,
  // MetricsRegistry::mu_ — instrument family map; leaf (instrument
  // updates themselves are lock-free atomics).
  kObsMetrics = 75,
  // Trace::mu_ — per-request span buffer; acquired under Shard::mu (phase
  // annotations mid-decision) and under SlowDecisionLog::mu_.
  kObsTrace = 80,
  // CancelGroup::GroupState::mu — joint-cancellation member list; leaf
  // (members are polled on a snapshot taken outside the lock).
  kCancelGroup = 90,
  // The process-wide symbol intern table; leaf.
  kInterner = 95,
};

/// Hook run from the lock-rank checker's abort path, after the held-lock
/// and call stacks print but before std::abort(), so a higher layer can
/// dump last-gasp forensics (the obs layer registers a flight-recorder /
/// ObsReport dump). The hook runs on the dying thread which may hold
/// arbitrary locks — it must not lock, allocate, or block; in practice it
/// fwrites a pre-rendered buffer. A plain function pointer (not
/// std::function) because util cannot depend on obs and the call site must
/// stay allocation-free. Registration is accepted even when
/// RELCOMP_LOCK_RANK_CHECKS is off (the hook just never fires).
using AbortReportFn = void (*)();
void SetLockRankAbortHook(AbortReportFn fn);

#if RELCOMP_LOCK_RANK_CHECKS
namespace lockrank_internal {
// Validates rank order / non-recursion against the calling thread's
// held-lock stack; aborts with both stacks on violation. Called BEFORE
// blocking on the underlying mutex so the diagnostic fires even when the
// bad acquisition would deadlock rather than proceed.
void CheckAcquire(const void* mu, int rank, const char* name);
// Recursion check only — try-locks never block, so out-of-order try
// acquisition cannot deadlock, but try-locking a mutex the thread already
// holds is UB on std::mutex and always a bug.
void CheckTryAcquire(const void* mu, int rank, const char* name);
void PushHeld(const void* mu, int rank, const char* name);
void PopHeld(const void* mu, const char* name);
}  // namespace lockrank_internal
#endif

class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name)
#if RELCOMP_LOCK_RANK_CHECKS
      : rank_(static_cast<int>(rank)), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if RELCOMP_LOCK_RANK_CHECKS
    lockrank_internal::CheckAcquire(this, rank_, name_);
    mu_.lock();
    lockrank_internal::PushHeld(this, rank_, name_);
#else
    mu_.lock();
#endif
  }

  void Unlock() RELEASE() {
#if RELCOMP_LOCK_RANK_CHECKS
    lockrank_internal::PopHeld(this, name_);
#endif
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
#if RELCOMP_LOCK_RANK_CHECKS
    lockrank_internal::CheckTryAcquire(this, rank_, name_);
    const bool acquired = mu_.try_lock();
    if (acquired) lockrank_internal::PushHeld(this, rank_, name_);
    return acquired;
#else
    return mu_.try_lock();
#endif
  }

  // BasicLockable spelling so std::condition_variable_any can wait on a
  // Mutex directly (CondVar below) and re-enter the rank checker on relock.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
#if RELCOMP_LOCK_RANK_CHECKS
  const int rank_;
  const char* const name_;
#endif
};

// RAII lock for a relcomp::Mutex. SCOPED_CAPABILITY tells the static
// analysis that construction acquires and destruction releases.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on a relcomp::Mutex. Waiting re-acquires
// through Mutex::lock(), so the rank checker also validates the relock;
// that holds because every wait site in the codebase holds no other ranked
// lock while waiting (blocking with a lower-rank lock held would starve
// the system anyway).
//
// Note: the static analysis does not propagate lock state into lambdas, so
// wait sites use explicit `while (!pred) cv.Wait(mu);` loops rather than
// the predicate overloads of std::condition_variable.
class CondVar {
 public:
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace relcomp

#endif  // RELCOMP_UTIL_MUTEX_H_
