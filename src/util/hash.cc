#include "util/hash.h"

namespace relcomp {

StableHasher& StableHasher::Mix(const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state_ ^= bytes[i];
    state_ *= kPrime;
  }
  return *this;
}

StableHasher& StableHasher::Mix(std::string_view s) {
  Mix(s.data(), s.size());
  // Terminator byte keeps concatenated strings from colliding.
  unsigned char terminator = 0xff;
  return Mix(&terminator, 1);
}

StableHasher& StableHasher::Mix(uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return Mix(bytes, 8);
}

uint64_t StableHash(std::string_view s) {
  return StableHasher().Mix(s).digest();
}

}  // namespace relcomp
