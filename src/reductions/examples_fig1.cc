#include "reductions/examples_fig1.h"

namespace relcomp {
namespace {

Value S(const char* text) { return Value::Sym(text); }

// Variable ids of the Fig. 1 c-table.
constexpr VarId kX{0};  // t2[name]
constexpr VarId kZ{1};  // t2[yob], z ≠ 2001
constexpr VarId kW{2};  // t3[city], w ≠ EDI
constexpr VarId kU{3};  // t3[DrID]

DatabaseSchema MakeSchema() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "MVisit",
      {Attribute{"NHS", Domain::Infinite()},
       Attribute{"name", Domain::Infinite()},
       Attribute{"city", Domain::Finite({S("EDI"), S("LON"), S("GLA")})},
       Attribute{"yob", Domain::IntRange(1999, 2002)},
       Attribute{"GD", Domain::Finite({S("M"), S("F")})},
       Attribute{"Date",
                 Domain::Finite({S("15/03/2015"), S("16/03/2015")})},
       Attribute{"Diag",
                 Domain::Finite({S("Flu"), S("Diabetes"), S("Influenza")})},
       Attribute{"DrID", Domain::Finite({S("01"), S("02"), S("03")})}}));
  return schema;
}

DatabaseSchema MakeMasterSchema() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "Patientm",
      {Attribute{"NHS", Domain::Infinite()},
       Attribute{"name", Domain::Infinite()},
       Attribute{"yob", Domain::IntRange(1999, 2002)},
       Attribute{"zip", Domain::Infinite()},
       Attribute{"GD", Domain::Finite({S("M"), S("F")})}}));
  schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"W", Domain::Infinite()}}));
  return schema;
}

CCSet MakeCcs(const DatabaseSchema& schema) {
  CCSet ccs;
  // Example 2.1's q_y for every year of the finite yob range: Edinburgh
  // patients born in [1999, 2002] must appear in the master data.
  for (int year = 1999; year <= 2002; ++year) {
    // head (n, na, y, g); body MVisit(n, na, c, y, g, d, di, i) with
    // c = 'EDI' and y = year.
    std::vector<CTerm> args = {VarId{0}, VarId{1}, VarId{2}, VarId{3},
                               VarId{4}, VarId{5}, VarId{6}, VarId{7}};
    ConjunctiveQuery q(
        {CTerm(VarId{0}), CTerm(VarId{1}), CTerm(VarId{3}), CTerm(VarId{4})},
        {RelAtom{"MVisit", std::move(args)}},
        {CondAtom{VarId{2}, false, S("EDI")},
         CondAtom{VarId{3}, false, Value::Int(year)}});
    ccs.emplace_back("edi_" + std::to_string(year), std::move(q), "Patientm",
                     std::vector<int>{0, 1, 2, 4});
  }
  // FD NHS → name and NHS → GD (Example 2.1).
  const RelationSchema* mvisit = schema.Find("MVisit");
  Result<ContainmentConstraint> fd_name = EncodeFdAsCc(*mvisit, {0}, 1,
                                                       "Empty1");
  Result<ContainmentConstraint> fd_gd = EncodeFdAsCc(*mvisit, {0}, 4,
                                                     "Empty1");
  if (fd_name.ok()) ccs.push_back(std::move(fd_name).value());
  if (fd_gd.ok()) ccs.push_back(std::move(fd_gd).value());
  return ccs;
}

// Q(na) with the given constant constraints; unconstrained positions get
// distinct fresh variables. Positions: NHS=0, name=1, city=2, yob=3, GD=4,
// Date=5, Diag=6, DrID=7.
Query MakePatientQuery(std::vector<std::pair<int, Value>> pinned) {
  std::vector<CTerm> args;
  for (int i = 0; i < 8; ++i) args.push_back(VarId{i});
  for (const auto& [pos, value] : pinned) {
    args[static_cast<size_t>(pos)] = value;
  }
  return Query::Cq(ConjunctiveQuery({CTerm(VarId{1})},
                                    {RelAtom{"MVisit", std::move(args)}}));
}

}  // namespace

PatientsFixture MakePatientsFixture() {
  PatientsFixture fx;
  DatabaseSchema schema = MakeSchema();
  DatabaseSchema master_schema = MakeMasterSchema();

  fx.setting.schema = schema;
  fx.setting.master_schema = master_schema;
  fx.setting.dm = Instance(master_schema);
  fx.setting.dm.AddTuple(
      "Patientm", {S("915-15-335"), S("John"), Value::Int(2000), S("EH8 9AB"),
                   S("M")});
  // Both names are admissible for NHS 915-15-356: worlds may instantiate
  // t2[name] as John or Bob (Example 2.3's µ / µ').
  fx.setting.dm.AddTuple(
      "Patientm", {S("915-15-356"), S("John"), Value::Int(2000), S("EH8 9AB"),
                   S("F")});
  fx.setting.dm.AddTuple(
      "Patientm", {S("915-15-356"), S("Bob"), Value::Int(2000), S("EH8 9AB"),
                   S("F")});
  fx.setting.ccs = MakeCcs(schema);

  fx.acquisition = fx.setting;
  fx.acquisition.dm.AddTuple(
      "Patientm", {S("915-15-321"), S("Alice"), Value::Int(2000), S("EH1 1AA"),
                   S("F")});

  // The Fig. 1 c-table.
  fx.ctable = CInstance(schema);
  CTable& t = fx.ctable.at("MVisit");
  t.AddRow({S("915-15-335"), S("John"), S("EDI"), Value::Int(2000), S("M"),
            S("15/03/2015"), S("Flu"), S("01")});
  t.AddRow(CRow{{S("915-15-356"), kX, S("EDI"), kZ, S("F"), S("15/03/2015"),
                 S("Diabetes"), S("01")},
                Condition::VarNeqConst(kZ, Value::Int(2001))});
  t.AddRow(CRow{{S("915-15-357"), S("Mary"), kW, Value::Int(2000), S("F"),
                 S("15/03/2015"), S("Influenza"), kU},
                Condition::VarNeqConst(kW, S("EDI"))});
  t.AddRow({S("915-15-358"), S("Jack"), S("LON"), Value::Int(2000), S("M"),
            S("15/03/2015"), S("Influenza"), S("02")});
  t.AddRow({S("915-15-359"), S("Louis"), S("LON"), Value::Int(2000), S("M"),
            S("15/03/2015"), S("Diabetes"), S("03")});

  // Ground rows only (t1, t4, t5) — the Example 2.2 database D.
  fx.ground = Instance(schema);
  fx.ground.AddTuple("MVisit",
                     {S("915-15-335"), S("John"), S("EDI"), Value::Int(2000),
                      S("M"), S("15/03/2015"), S("Flu"), S("01")});
  fx.ground.AddTuple("MVisit",
                     {S("915-15-358"), S("Jack"), S("LON"), Value::Int(2000),
                      S("M"), S("15/03/2015"), S("Influenza"), S("02")});
  fx.ground.AddTuple("MVisit",
                     {S("915-15-359"), S("Louis"), S("LON"), Value::Int(2000),
                      S("M"), S("15/03/2015"), S("Diabetes"), S("03")});

  fx.q1 = MakePatientQuery({{0, S("915-15-335")},
                            {2, S("EDI")},
                            {3, Value::Int(2000)}});
  fx.q2 = MakePatientQuery({{0, S("915-15-321")}, {3, Value::Int(2000)}});
  fx.q3 = MakePatientQuery({{6, S("Diabetes")}, {3, Value::Int(2000)}});
  fx.q4 = MakePatientQuery({{2, S("EDI")},
                            {3, Value::Int(2000)},
                            {5, S("15/03/2015")}});
  return fx;
}

PatientsFixture MakeScaledPatientsFixture(int num_patients, int num_vars) {
  PatientsFixture fx = MakePatientsFixture();
  // Extra closed-world London patients: unconstrained by the EDI CCs, they
  // inflate |T| and |Dm| without changing the Q1/Q4 claims.
  for (int i = 0; i < num_patients; ++i) {
    std::string nhs = "999-00-" + std::to_string(i);
    std::string name = "P" + std::to_string(i);
    fx.ctable.at("MVisit").AddRow(
        {S(nhs.c_str()), S(name.c_str()), S("LON"), Value::Int(1999), S("M"),
         S("16/03/2015"), S("Flu"), S("02")});
    fx.ground.AddTuple("MVisit", {S(nhs.c_str()), S(name.c_str()), S("LON"),
                                  Value::Int(1999), S("M"), S("16/03/2015"),
                                  S("Flu"), S("02")});
    fx.setting.dm.AddTuple("Patientm",
                           {S(nhs.c_str()), S(name.c_str()), Value::Int(1999),
                            S("ZZ1"), S("M")});
  }
  // Extra missing values: DrID variables on fresh rows (finite domain, so
  // each adds a factor of 3 to the world count).
  for (int i = 0; i < num_vars; ++i) {
    std::string nhs = "888-00-" + std::to_string(i);
    std::string name = "V" + std::to_string(i);
    fx.ctable.at("MVisit").AddRow(
        {S(nhs.c_str()), S(name.c_str()), S("LON"), Value::Int(1999), S("F"),
         S("16/03/2015"), S("Flu"), Cell(VarId{10 + i})});
  }
  return fx;
}

}  // namespace relcomp
