// Theorem 5.6(4): coDP-hardness of MINP(CQ) in the weak model, by reduction
// from the complement of SAT-UNSAT. The schema R(X1..Xn, X'1..X'n, Y) is
// constrained so that every tuple's X-part satisfies φ, and tuples with
// Y = 1 additionally satisfy φ' on the X'-part; the query projects Y.
// Claim: I = ∅ is a minimal weakly complete instance ⇔ ¬(φ sat ∧ φ' unsat).
#ifndef RELCOMP_REDUCTIONS_THM56_MINPW_H_
#define RELCOMP_REDUCTIONS_THM56_MINPW_H_

#include "logic/cnf.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the SAT-UNSAT gadget; both formulas range over `num_vars`
/// variables (pad the smaller one). `ground` is the empty instance.
GadgetProblem BuildSatUnsatGadget(const Cnf3& phi, const Cnf3& phi_prime,
                                  int num_vars);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THM56_MINPW_H_
