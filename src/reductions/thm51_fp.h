// Theorem 5.1(2): coNEXPTIME-hardness of RCDP(FP) in the weak model, by
// reduction from SUCCINCT-TAUT. A 31-column relation R(A0..A30) juxtaposes
// the Fig. 2 gadget tables in a single tuple; the FP program decodes them
// through IDB predicates and evaluates the circuit on every input; the only
// partially closed extension flips A0 to 0, which makes the query return
// every input vector. Claim: C is a tautology ⇔ I is weakly complete.
#ifndef RELCOMP_REDUCTIONS_THM51_FP_H_
#define RELCOMP_REDUCTIONS_THM51_FP_H_

#include "logic/circuit.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the SUCCINCT-TAUT gadget for `circuit` (inputs ≤ ~8 practical).
GadgetProblem BuildSuccinctTautGadget(const Circuit& circuit);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THM51_FP_H_
