// Theorem 6.1 / Corollary 6.3: Σp3-hardness of RCDP and MINP in the viable
// model. The construction is the Thm 4.8 gadget with Is = {(1)}:
//   ϕ = ∃X∀Y∃Zψ is TRUE ⇔ T is viably complete
//                        ⇔ T is a minimal viably complete c-instance.
#ifndef RELCOMP_REDUCTIONS_THM61_VIABLE_H_
#define RELCOMP_REDUCTIONS_THM61_VIABLE_H_

#include "logic/qbf.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the viable-model gadget for a three-block ∃∀∃ formula.
GadgetProblem BuildViableGadget(const Qbf& qbf);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THM61_VIABLE_H_
