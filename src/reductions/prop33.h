// Proposition 3.3: Σp2-hardness of consistency and extensibility, by
// reduction from ∀∗∃∗3SAT. Given ϕ = ∀X ∃Y ψ:
//  - consistency gadget: a c-instance T whose RX c-table row carries the X
//    variables; the CC q(w) ⊆ Rm∅ rejects any X-assignment for which some
//    Y-assignment satisfies ψ. Claim: ϕ is FALSE ⇔ Mod(T, Dm, V) ≠ ∅.
//  - extensibility gadget: the ground instance I0 with RX empty.
//    Claim: ϕ is TRUE ⇔ Ext(I0, Dm, V) = ∅.
#ifndef RELCOMP_REDUCTIONS_PROP33_H_
#define RELCOMP_REDUCTIONS_PROP33_H_

#include "logic/qbf.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the Prop 3.3 consistency gadget for ∀X ∃Y ψ; `qbf` must be a
/// two-block ∀∃ formula. The query field is unused.
GadgetProblem BuildConsistencyGadget(const Qbf& qbf);

/// Builds the Prop 3.3 extensibility gadget (ground instance with RX = ∅).
GadgetProblem BuildExtensibilityGadget(const Qbf& qbf);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_PROP33_H_
