// Proposition 3.1: with FDs (and INDs) as additional constraints, RCDP
// embeds the implication problem. For the decidable FD-only fragment the
// reduction is executable end-to-end: given FDs Θ and a candidate FD
// φ : X → A over R, build the violation-detecting Boolean CQ and encode Θ as
// denial CCs. Claim: Θ ⊨ φ ⇔ the empty instance I∅ is complete for Q
// relative to (Dm, V(Θ)). Tests validate this against Armstrong closure.
#ifndef RELCOMP_REDUCTIONS_PROP31_FD_H_
#define RELCOMP_REDUCTIONS_PROP31_FD_H_

#include "logic/fd.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the Prop 3.1 gadget: schema R with `num_attrs` attributes, the
/// FD set `theta` encoded as CCs, and the CQ detecting violations of `phi`.
/// `ground` is the empty instance I∅.
GadgetProblem BuildFdImplicationGadget(const std::vector<Fd>& theta,
                                       const Fd& phi, int num_attrs);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_PROP31_FD_H_
