// Shared output bundle for the executable reductions of the paper's
// hardness proofs. Each builder constructs the schemas, (c-)instance, master
// data, CCs and query of one reduction; tests validate the claimed
// equivalence against brute-force logic oracles, and benchmarks use the
// same constructions as workload generators.
#ifndef RELCOMP_REDUCTIONS_REDUCTION_H_
#define RELCOMP_REDUCTIONS_REDUCTION_H_

#include "core/types.h"

namespace relcomp {

/// A constructed decision-problem instance.
struct GadgetProblem {
  PartiallyClosedSetting setting;
  CInstance cinstance;  ///< used by c-instance reductions
  Instance ground;      ///< used by ground-instance reductions
  Query query;
};

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_REDUCTION_H_
