// Theorem 4.8 (and Thm 6.1 / Cor 6.3 share the construction): hardness of
// MINP in the strong model, and of RCDP/MINP in the viable model, by
// reduction from ∃X ∀Y ∃Z ψ. The c-instance carries the X-assignment as a
// variable row; the Rs relation controls which truth values the query may
// inspect, and Qall pins the gadget tuples so that single-tuple removals
// break the query. Claims:
//   Thm 4.8 variant (Is = {0, 1}):  ϕ false ⇔ T minimal strongly complete.
//   Thm 6.1 variant (Is = {1}):     ϕ true  ⇔ T viably complete
//                                   ϕ true  ⇔ T minimal viably complete.
#ifndef RELCOMP_REDUCTIONS_THM48_MINPS_H_
#define RELCOMP_REDUCTIONS_THM48_MINPS_H_

#include "logic/qbf.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the ∃∀∃ gadget; `qbf` must be a three-block ∃∀∃ formula.
/// `full_rs` selects Is = {(0), (1)} (Thm 4.8) vs Is = {(1)} (Thm 6.1).
GadgetProblem BuildSigma3Gadget(const Qbf& qbf, bool full_rs);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THM48_MINPS_H_
