#include "reductions/thm56_minpw.h"

namespace relcomp {
namespace {

// A denial CC forbidding tuples of R that match the clause-falsifying
// pattern: positions of the clause's literals fixed to the falsifying
// values, plus optionally Y = 1.
ContainmentConstraint ClauseDenial(const std::string& name,
                                   const Clause3& clause, int col_offset,
                                   int num_vars, bool require_y1) {
  int arity = 2 * num_vars + 1;
  std::vector<CTerm> args;
  for (int i = 0; i < arity; ++i) args.push_back(VarId{i});
  // A literal is falsified when the column holds the literal's negation.
  for (const Lit& lit : clause) {
    args[static_cast<size_t>(col_offset + lit.var)] =
        Value::Int(lit.neg ? 1 : 0);
  }
  if (require_y1) {
    args[static_cast<size_t>(arity - 1)] = Value::Int(1);
  }
  // Project some variable column as the (never-to-match) head.
  std::vector<CTerm> head_terms;
  for (int i = 0; i < arity; ++i) {
    if (std::holds_alternative<VarId>(args[static_cast<size_t>(i)])) {
      head_terms = {args[static_cast<size_t>(i)]};
      break;
    }
  }
  ConjunctiveQuery q(std::move(head_terms), {RelAtom{"R", std::move(args)}});
  return ContainmentConstraint(name, std::move(q), "Rempty", {0});
}

}  // namespace

GadgetProblem BuildSatUnsatGadget(const Cnf3& phi, const Cnf3& phi_prime,
                                  int num_vars) {
  GadgetProblem out;
  int arity = 2 * num_vars + 1;

  // Schema: R(X1..Xn, X'1..X'n, Y), all Boolean columns.
  std::vector<Attribute> attrs;
  for (int i = 0; i < num_vars; ++i) {
    attrs.push_back(Attribute{"X" + std::to_string(i), Domain::Boolean()});
  }
  for (int i = 0; i < num_vars; ++i) {
    attrs.push_back(Attribute{"Xp" + std::to_string(i), Domain::Boolean()});
  }
  attrs.push_back(Attribute{"Y", Domain::Boolean()});
  out.setting.schema.AddRelation(RelationSchema("R", std::move(attrs)));

  // Master schema: Boolean bound + empty unary relation.
  out.setting.master_schema.AddRelation(
      RelationSchema("R01m", {Attribute{"x", Domain::Boolean()}}));
  out.setting.master_schema.AddRelation(
      RelationSchema("Rempty", {Attribute{"W", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);
  out.setting.dm.AddTuple("R01m", {Value::Int(0)});
  out.setting.dm.AddTuple("R01m", {Value::Int(1)});

  // V: every attribute in {0,1} (redundant with the finite domains, kept
  // for faithfulness) ...
  for (int i = 0; i < arity; ++i) {
    std::vector<CTerm> args;
    for (int j = 0; j < arity; ++j) args.push_back(VarId{j});
    ConjunctiveQuery q({CTerm(VarId{i})}, {RelAtom{"R", std::move(args)}});
    out.setting.ccs.emplace_back("bool_" + std::to_string(i), std::move(q),
                                 "R01m", std::vector<int>{0});
  }
  // ... φ clauses on the X columns (any Y) ...
  for (size_t c = 0; c < phi.clauses.size(); ++c) {
    out.setting.ccs.push_back(ClauseDenial("phi_" + std::to_string(c),
                                           phi.clauses[c], 0, num_vars,
                                           /*require_y1=*/false));
  }
  // ... φ' clauses on the X' columns, active when Y = 1.
  for (size_t c = 0; c < phi_prime.clauses.size(); ++c) {
    out.setting.ccs.push_back(ClauseDenial("phip_" + std::to_string(c),
                                           phi_prime.clauses[c], num_vars,
                                           num_vars, /*require_y1=*/true));
  }

  // I = ∅.
  out.ground = Instance(out.setting.schema);
  out.cinstance = CInstance::FromInstance(out.ground);

  // Q(y) = πY(R).
  std::vector<CTerm> args;
  for (int i = 0; i < arity; ++i) args.push_back(VarId{i});
  ConjunctiveQuery q({CTerm(VarId{arity - 1})},
                     {RelAtom{"R", std::move(args)}});
  out.query = Query::Cq(std::move(q));
  return out;
}

}  // namespace relcomp
