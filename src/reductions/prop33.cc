#include "reductions/prop33.h"

#include <cassert>

#include "logic/gadgets.h"

namespace relcomp {
namespace {

// Shared scaffolding for both gadgets: gadget relations + RX(X1..Xn), the
// master copies plus the arity-1 empty relation, and the CC set.
GadgetProblem BuildBase(const Qbf& qbf) {
  assert(qbf.blocks.size() == 2 && qbf.blocks[0].forall &&
         !qbf.blocks[1].forall && "expected a \\forall\\exists formula");
  int nx = qbf.blocks[0].size;
  int ny = qbf.blocks[1].size;

  GadgetProblem out;
  GadgetNames names;
  GadgetNames master_names = names.WithSuffix("m");

  // Database schema: gadgets + RX(X1..Xn) over Boolean columns.
  AddGadgetSchemas(&out.setting.schema, names);
  std::vector<Attribute> rx_attrs;
  for (int i = 0; i < nx; ++i) {
    rx_attrs.push_back(
        Attribute{"X" + std::to_string(i), Domain::Boolean()});
  }
  out.setting.schema.AddRelation(RelationSchema("RX", std::move(rx_attrs)));

  // Master schema: gadget copies + empty unary Rempty.
  AddGadgetSchemas(&out.setting.master_schema, master_names);
  out.setting.master_schema.AddRelation(RelationSchema(
      "Rempty", {Attribute{"W", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);
  FillGadgetInstance(&out.setting.dm, master_names);

  // V: gadget bounds; ∃-projections of RX into Rm01; the ψ-rejection CC.
  out.setting.ccs = GadgetBoundCcs(names, master_names);
  for (int i = 0; i < nx; ++i) {
    std::vector<CTerm> args;
    for (int j = 0; j < nx; ++j) args.push_back(VarId{j});
    ConjunctiveQuery qi({CTerm(VarId{i})}, {RelAtom{"RX", std::move(args)}});
    out.setting.ccs.emplace_back("rx_bool_" + std::to_string(i),
                                 std::move(qi), master_names.r01,
                                 std::vector<int>{0});
  }
  // q(w) ⊆ Rempty: QX picks the X-assignment from RX, QY generates all
  // Y-assignments, Qψ evaluates ψ, and w = 1 is required.
  {
    int32_t next_var = 0;
    std::vector<CTerm> x_terms, y_terms;
    std::vector<RelAtom> atoms;
    std::vector<CTerm> rx_args;
    for (int i = 0; i < nx; ++i) {
      VarId v{next_var++};
      x_terms.push_back(v);
      rx_args.push_back(v);
    }
    atoms.push_back(RelAtom{"RX", std::move(rx_args)});
    for (int j = 0; j < ny; ++j) {
      VarId v{next_var++};
      y_terms.push_back(v);
    }
    AppendBooleanGenerators(y_terms, names, &atoms);
    std::vector<CTerm> var_terms = x_terms;
    var_terms.insert(var_terms.end(), y_terms.begin(), y_terms.end());
    CTerm w = AppendCnfEvaluation(qbf.matrix, var_terms, names, &next_var,
                                  &atoms);
    ConjunctiveQuery q({w}, std::move(atoms),
                       {CondAtom{w, false, Value::Int(1)}});
    out.setting.ccs.emplace_back("reject_sat", std::move(q), "Rempty",
                                 std::vector<int>{0});
  }
  return out;
}

}  // namespace

GadgetProblem BuildConsistencyGadget(const Qbf& qbf) {
  GadgetProblem out = BuildBase(qbf);
  int nx = qbf.blocks[0].size;
  // T: ground gadget tables + the variable row (x1, ..., xn) in RX.
  Instance ground(out.setting.schema);
  FillGadgetInstance(&ground, GadgetNames{});
  out.cinstance = CInstance::FromInstance(ground);
  std::vector<Cell> row;
  for (int i = 0; i < nx; ++i) row.push_back(VarId{i});
  out.cinstance.at("RX").AddRow(std::move(row));
  return out;
}

GadgetProblem BuildExtensibilityGadget(const Qbf& qbf) {
  GadgetProblem out = BuildBase(qbf);
  // I0: ground gadget tables, RX empty.
  out.ground = Instance(out.setting.schema);
  FillGadgetInstance(&out.ground, GadgetNames{});
  return out;
}

}  // namespace relcomp
