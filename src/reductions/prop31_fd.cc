#include "reductions/prop31_fd.h"

#include <algorithm>

namespace relcomp {

GadgetProblem BuildFdImplicationGadget(const std::vector<Fd>& theta,
                                       const Fd& phi, int num_attrs) {
  GadgetProblem out;

  // Database schema: a single relation R with `num_attrs` columns.
  std::vector<Attribute> attrs;
  for (int i = 0; i < num_attrs; ++i) {
    attrs.push_back(Attribute{"a" + std::to_string(i), Domain::Infinite()});
  }
  RelationSchema r("R", std::move(attrs));
  out.setting.schema.AddRelation(r);

  // Master schema: only the empty unary relation used by denial CCs.
  out.setting.master_schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"W", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);

  // V: each FD of Θ as a denial CC.
  for (const Fd& fd : theta) {
    Result<ContainmentConstraint> cc = EncodeFdAsCc(r, fd.lhs, fd.rhs,
                                                    "Empty1");
    if (cc.ok()) out.setting.ccs.push_back(std::move(cc).value());
  }

  // Q: Boolean CQ detecting violations of φ — two atoms sharing the X
  // positions, with w ≠ w' at position A.
  std::vector<CTerm> args1, args2;
  for (int i = 0; i < num_attrs; ++i) {
    VarId v1{i};
    args1.push_back(v1);
    bool shared =
        std::find(phi.lhs.begin(), phi.lhs.end(), i) != phi.lhs.end();
    args2.push_back(shared ? CTerm(v1) : CTerm(VarId{num_attrs + i}));
  }
  CTerm w = args1[static_cast<size_t>(phi.rhs)];
  CTerm w_prime = args2[static_cast<size_t>(phi.rhs)];
  ConjunctiveQuery q({}, {RelAtom{"R", std::move(args1)},
                          RelAtom{"R", std::move(args2)}},
                     {CondAtom{w, true, w_prime}});
  out.query = Query::Cq(std::move(q));

  // I∅: the empty instance.
  out.ground = Instance(out.setting.schema);
  return out;
}

}  // namespace relcomp
