#include "reductions/thm61_viable.h"

#include "reductions/thm48_minps.h"

namespace relcomp {

GadgetProblem BuildViableGadget(const Qbf& qbf) {
  return BuildSigma3Gadget(qbf, /*full_rs=*/false);
}

}  // namespace relcomp
