// The paper's running example (Fig. 1, Examples 1.1–2.4): the MVisit
// c-table of UK patient visits, Patientm master data, the year-range CCs of
// Example 2.1 plus the FD NHS → name, GD encoded as CCs, and queries Q1–Q4.
//
// The master data is engineered so that the paper's claims hold exactly:
//  - T is strongly complete for Q1 (Example 2.3);
//  - T is weakly and viably but NOT strongly complete for Q4: the master
//    associates both names John and Bob with NHS 915-15-356, so worlds
//    disagree on t2's name (the paper's µ(x) ∈ {John, Bob});
//  - with the acquisition master (adds NHS 915-15-321/Alice), the ground
//    instance D is incomplete for Q2 but becomes complete after adding one
//    tuple, and can never be complete for Q3 (Example 2.2).
#ifndef RELCOMP_REDUCTIONS_EXAMPLES_FIG1_H_
#define RELCOMP_REDUCTIONS_EXAMPLES_FIG1_H_

#include "core/types.h"

namespace relcomp {

/// The Fig. 1 workload.
struct PatientsFixture {
  PartiallyClosedSetting setting;      ///< Fig. 1 master (Q1/Q4 claims)
  PartiallyClosedSetting acquisition;  ///< + Alice row (Q2/Q3 claims)
  CInstance ctable;                    ///< the Fig. 1 c-table (t1..t5)
  Instance ground;                     ///< the ground rows only (t1, t4, t5)
  Query q1;  ///< patients named ... with NHS 915-15-335, EDI, born 2000
  Query q2;  ///< patients born 2000 with NHS 915-15-321
  Query q3;  ///< diabetics born 2000, any city (not completable)
  Query q4;  ///< EDI patients born 2000 who visited on 15/03/2015
};

/// Builds the fixture.
PatientsFixture MakePatientsFixture();

/// A scaled synthetic variant for benchmarks: `num_patients` extra ground
/// rows and `num_vars` missing values spread over extra rows.
PatientsFixture MakeScaledPatientsFixture(int num_patients, int num_vars);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_EXAMPLES_FIG1_H_
