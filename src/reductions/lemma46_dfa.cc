#include "reductions/lemma46_dfa.h"

namespace relcomp {
namespace {

// Appends α(pos_var) atoms for one head reading `sym`:
//   sym = 0/1: the head's position has a successor and carries the letter;
//   sym = ε:   the head sits on the final position (ΠS(y, y)).
void AppendAlpha(HeadSymbol sym, VarId pos, int32_t* next_var,
                 std::vector<RelAtom>* body,
                 std::vector<CondAtom>* builtins) {
  if (sym == HeadSymbol::kEpsilon) {
    // S(1, y, y): the unique final marker.
    body->push_back(RelAtom{"S", {Value::Int(1), pos, pos}});
    return;
  }
  VarId w{(*next_var)++};
  VarId succ{(*next_var)++};
  body->push_back(RelAtom{"S", {w, pos, succ}});
  builtins->push_back(CondAtom{pos, true, succ});
  body->push_back(RelAtom{
      "P", {Value::Int(sym == HeadSymbol::kOne ? 1 : 0), pos}});
}

// Appends β(pos, pos') atoms for one head's move; returns the term for the
// head's next position.
CTerm AppendBeta(int move, VarId pos, int32_t* next_var,
                 std::vector<RelAtom>* body,
                 std::vector<CondAtom>* builtins) {
  if (move == 0) return pos;
  VarId w{(*next_var)++};
  VarId next{(*next_var)++};
  body->push_back(RelAtom{"S", {w, pos, next}});
  builtins->push_back(CondAtom{pos, true, next});
  return next;
}

}  // namespace

GadgetProblem BuildDfaSatisfiabilityGadget(const TwoHeadDfa& dfa) {
  GadgetProblem out;

  // Schema: P(V, A) and S(W, A1, A2).
  out.setting.schema.AddRelation(RelationSchema(
      "P", {Attribute{"V", Domain::Boolean()},
            Attribute{"A", Domain::Infinite()}}));
  out.setting.schema.AddRelation(RelationSchema(
      "S", {Attribute{"W", Domain::Infinite()},
            Attribute{"A1", Domain::Infinite()},
            Attribute{"A2", Domain::Infinite()}}));

  // Master: empty unary relation for the FD denials.
  out.setting.master_schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"W", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);

  // FDs as denial CCs: A → V on P; A1 → A2, W → A1, W → A2 on S.
  const RelationSchema* p = out.setting.schema.Find("P");
  const RelationSchema* s = out.setting.schema.Find("S");
  auto add_fd = [&out](const RelationSchema& rel, std::vector<int> lhs,
                       int rhs) {
    Result<ContainmentConstraint> cc =
        EncodeFdAsCc(rel, lhs, rhs, "Empty1");
    if (cc.ok()) out.setting.ccs.push_back(std::move(cc).value());
  };
  add_fd(*p, {1}, 0);
  add_fd(*s, {1}, 2);
  add_fd(*s, {0}, 1);
  add_fd(*s, {0}, 2);

  // FP program: Config(s, y, z) closure over the transitions, with the
  // Πini/Πfin conjuncts folded into the accepting rule.
  FpProgram program;
  {
    // Config(s0, 0, 0) ← S(w, 0, x): the initial configuration, guarded by
    // the existence of an initial edge.
    FpRule r;
    r.head = RelAtom{"Config",
                     {Value::Int(dfa.initial_state()), Value::Int(0),
                      Value::Int(0)}};
    r.body = {RelAtom{"S", {VarId{0}, Value::Int(0), VarId{1}}}};
    program.AddRule(std::move(r));
  }
  for (const auto& [state, in1, in2, tr] : dfa.Transitions()) {
    int32_t next_var = 10;
    VarId y{0}, z{1};
    FpRule r;
    std::vector<RelAtom> body;
    std::vector<CondAtom> builtins;
    body.push_back(RelAtom{"Config", {Value::Int(state), y, z}});
    AppendAlpha(in1, y, &next_var, &body, &builtins);
    AppendAlpha(in2, z, &next_var, &body, &builtins);
    CTerm y_next = AppendBeta(tr.move1, y, &next_var, &body, &builtins);
    CTerm z_next = AppendBeta(tr.move2, z, &next_var, &body, &builtins);
    r.head = RelAtom{"Config", {Value::Int(tr.next_state), y_next, z_next}};
    r.body = std::move(body);
    r.builtins = std::move(builtins);
    program.AddRule(std::move(r));
  }
  {
    // Accept() ← Config(s_acc, y, z), S(w, 0, x), S(1, f, f).
    FpRule r;
    r.head = RelAtom{"Accept", {}};
    r.body = {
        RelAtom{"Config", {Value::Int(dfa.accepting_state()), VarId{0},
                           VarId{1}}},
        RelAtom{"S", {VarId{2}, Value::Int(0), VarId{3}}},
        RelAtom{"S", {Value::Int(1), VarId{4}, VarId{4}}},
    };
    program.AddRule(std::move(r));
  }
  program.set_output("Accept");
  out.query = Query::Fp(std::move(program));

  out.ground = Instance(out.setting.schema);
  return out;
}

Instance EncodeWord(const DatabaseSchema& schema, const std::string& word) {
  Instance out(schema);
  int len = static_cast<int>(word.size());
  for (int i = 0; i < len; ++i) {
    out.AddTuple("P", {Value::Int(word[static_cast<size_t>(i)] == '1' ? 1 : 0),
                       Value::Int(i)});
  }
  for (int i = 0; i < len; ++i) {
    // Distinct W tags keep the FDs W → A1, A2 satisfied.
    out.AddTuple("S", {Value::Int(100 + i), Value::Int(i), Value::Int(i + 1)});
  }
  out.AddTuple("S", {Value::Int(1), Value::Int(len), Value::Int(len)});
  return out;
}

}  // namespace relcomp
