#include "reductions/thm51_fp.h"

#include <cassert>

namespace relcomp {
namespace {

// The 30 gadget values juxtaposed in columns A1..A30:
// A1..A2   : I(0,1) = (1, 0)
// A3..A14  : I∨ rows (0,0,0), (0,1,1), (1,0,1), (1,1,1)
// A15..A26 : I∧ rows (0,0,0), (0,1,0), (1,0,0), (1,1,1)
// A27..A30 : I¬ rows (0,1), (1,0)
std::vector<int64_t> GadgetColumnValues() {
  std::vector<int64_t> v = {1, 0};
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      v.push_back(a);
      v.push_back(b);
      v.push_back(a | b);
    }
  }
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      v.push_back(a);
      v.push_back(b);
      v.push_back(a & b);
    }
  }
  v.push_back(0);
  v.push_back(1);
  v.push_back(1);
  v.push_back(0);
  return v;
}

// An R atom with fresh variables everywhere except the pinned positions.
RelAtom RAtom(const std::vector<std::pair<int, CTerm>>& pinned,
              int32_t* next_var) {
  RelAtom atom;
  atom.rel = "R";
  atom.args.resize(31);
  for (int i = 0; i < 31; ++i) atom.args[i] = VarId{(*next_var)++};
  for (const auto& [pos, term] : pinned) atom.args[static_cast<size_t>(pos)] = term;
  return atom;
}

}  // namespace

GadgetProblem BuildSuccinctTautGadget(const Circuit& circuit) {
  assert(circuit.Validate().ok());
  int n = circuit.NumInputs();
  std::vector<int64_t> cols = GadgetColumnValues();

  GadgetProblem out;

  // Database schema: R(A0..A30). A0 is Boolean; A1..A30 carry singleton
  // domains pinning the gadget encoding (the paper uses CCs for the same
  // restriction; finite domains express it directly and keep the extension
  // space the paper intends: the A0 = 0 twin of t).
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"A0", Domain::Boolean()});
  for (int i = 0; i < 30; ++i) {
    attrs.push_back(Attribute{
        "A" + std::to_string(i + 1),
        Domain::Finite({Value::Int(cols[static_cast<size_t>(i)])})});
  }
  out.setting.schema.AddRelation(RelationSchema("R", std::move(attrs)));

  // Master schema: the A1..A30 core row and the Boolean A0 bound.
  {
    std::vector<Attribute> mattrs;
    for (int i = 0; i < 30; ++i) {
      mattrs.push_back(
          Attribute{"A" + std::to_string(i + 1), Domain::Infinite()});
    }
    out.setting.master_schema.AddRelation(
        RelationSchema("Rcore", std::move(mattrs)));
    out.setting.master_schema.AddRelation(
        RelationSchema("R01m", {Attribute{"x", Domain::Boolean()}}));
    out.setting.dm = Instance(out.setting.master_schema);
    Tuple core;
    for (int i = 0; i < 30; ++i) core.push_back(Value::Int(cols[static_cast<size_t>(i)]));
    out.setting.dm.AddTuple("Rcore", std::move(core));
    out.setting.dm.AddTuple("R01m", {Value::Int(0)});
    out.setting.dm.AddTuple("R01m", {Value::Int(1)});
  }

  // V: π(A1..A30)(R) ⊆ Rcore and π(A0)(R) ⊆ R01m.
  {
    std::vector<CTerm> head;
    std::vector<CTerm> args;
    std::vector<int> proj;
    args.push_back(VarId{0});
    for (int i = 1; i <= 30; ++i) {
      args.push_back(VarId{i});
      head.push_back(VarId{i});
      proj.push_back(i - 1);
    }
    ConjunctiveQuery q(std::move(head), {RelAtom{"R", std::move(args)}});
    out.setting.ccs.emplace_back("core_bound", std::move(q), "Rcore",
                                 std::move(proj));
  }
  {
    std::vector<CTerm> args;
    for (int i = 0; i <= 30; ++i) args.push_back(VarId{i});
    ConjunctiveQuery q({CTerm(VarId{0})}, {RelAtom{"R", std::move(args)}});
    out.setting.ccs.emplace_back("a0_bool", std::move(q), "R01m",
                                 std::vector<int>{0});
  }

  // I: the single tuple t with A0 = 1.
  out.ground = Instance(out.setting.schema);
  {
    Tuple t;
    t.push_back(Value::Int(1));
    for (int i = 0; i < 30; ++i) t.push_back(Value::Int(cols[static_cast<size_t>(i)]));
    out.ground.AddTuple("R", std::move(t));
  }

  // The FP program.
  FpProgram program;
  int32_t next_var = 1000;  // fresh-variable pool for R-atom padding

  // I(x) ← R(_, x, _, ...) and I(x) ← R(_, _, x, ...).
  {
    VarId x{0};
    FpRule r1;
    r1.head = RelAtom{"Ival", {x}};
    r1.body = {RAtom({{1, x}}, &next_var)};
    program.AddRule(std::move(r1));
    FpRule r2;
    r2.head = RelAtom{"Ival", {x}};
    r2.body = {RAtom({{2, x}}, &next_var)};
    program.AddRule(std::move(r2));
  }
  // RXin(x1..xn) ← Ival(x1), ..., Ival(xn).
  {
    FpRule r;
    std::vector<CTerm> head_args;
    for (int i = 0; i < n; ++i) {
      VarId xi{i};
      head_args.push_back(xi);
      r.body.push_back(RelAtom{"Ival", {xi}});
    }
    r.head = RelAtom{"RXin", std::move(head_args)};
    program.AddRule(std::move(r));
  }
  // Gate rules.
  const std::vector<Gate>& gates = circuit.gates();
  int input_index = 0;
  auto gate_pred = [](int g) { return "G" + std::to_string(g); };
  auto x_vec = [n]() {
    std::vector<CTerm> xs;
    for (int i = 0; i < n; ++i) xs.push_back(VarId{i});
    return xs;
  };
  for (size_t g = 0; g < gates.size(); ++g) {
    const Gate& gate = gates[g];
    switch (gate.type) {
      case GateType::kIn: {
        // Gg(x_j, ~x) ← RXin(~x).
        FpRule r;
        std::vector<CTerm> head_args = {CTerm(VarId{input_index})};
        auto xs = x_vec();
        head_args.insert(head_args.end(), xs.begin(), xs.end());
        r.head = RelAtom{gate_pred(static_cast<int>(g)),
                         std::move(head_args)};
        r.body = {RelAtom{"RXin", x_vec()}};
        program.AddRule(std::move(r));
        ++input_index;
        break;
      }
      case GateType::kOr:
      case GateType::kAnd: {
        // One rule per truth-table row, binding (b1, b2, b) at the row's
        // columns of R.
        int base = gate.type == GateType::kOr ? 3 : 15;
        for (int row = 0; row < 4; ++row) {
          VarId b1{100}, b2{101}, b{102};
          FpRule r;
          std::vector<CTerm> head_args = {CTerm(b)};
          auto xs = x_vec();
          head_args.insert(head_args.end(), xs.begin(), xs.end());
          r.head = RelAtom{gate_pred(static_cast<int>(g)),
                           std::move(head_args)};
          std::vector<CTerm> in1_args = {CTerm(b1)};
          auto xs1 = x_vec();
          in1_args.insert(in1_args.end(), xs1.begin(), xs1.end());
          r.body.push_back(RelAtom{gate_pred(gate.in1), std::move(in1_args)});
          std::vector<CTerm> in2_args = {CTerm(b2)};
          auto xs2 = x_vec();
          in2_args.insert(in2_args.end(), xs2.begin(), xs2.end());
          r.body.push_back(RelAtom{gate_pred(gate.in2), std::move(in2_args)});
          r.body.push_back(RAtom({{base + 3 * row, CTerm(b1)},
                                  {base + 3 * row + 1, CTerm(b2)},
                                  {base + 3 * row + 2, CTerm(b)}},
                                 &next_var));
          program.AddRule(std::move(r));
        }
        break;
      }
      case GateType::kNot: {
        for (int row = 0; row < 2; ++row) {
          VarId b1{100}, b{102};
          FpRule r;
          std::vector<CTerm> head_args = {CTerm(b)};
          auto xs = x_vec();
          head_args.insert(head_args.end(), xs.begin(), xs.end());
          r.head = RelAtom{gate_pred(static_cast<int>(g)),
                           std::move(head_args)};
          std::vector<CTerm> in1_args = {CTerm(b1)};
          auto xs1 = x_vec();
          in1_args.insert(in1_args.end(), xs1.begin(), xs1.end());
          r.body.push_back(RelAtom{gate_pred(gate.in1), std::move(in1_args)});
          r.body.push_back(RAtom({{27 + 2 * row, CTerm(b1)},
                                  {27 + 2 * row + 1, CTerm(b)}},
                                 &next_var));
          program.AddRule(std::move(r));
        }
        break;
      }
    }
  }
  // G(~x) ← G_M(b, ~x), R(0, ...); and G(~x) ← G_M(1, ~x).
  {
    int output_gate = static_cast<int>(gates.size()) - 1;
    FpRule r1;
    r1.head = RelAtom{"Gout", x_vec()};
    VarId b{100};
    std::vector<CTerm> gm_args = {CTerm(b)};
    auto xs = x_vec();
    gm_args.insert(gm_args.end(), xs.begin(), xs.end());
    r1.body.push_back(RelAtom{gate_pred(output_gate), std::move(gm_args)});
    r1.body.push_back(RAtom({{0, CTerm(Value::Int(0))}}, &next_var));
    program.AddRule(std::move(r1));

    FpRule r2;
    r2.head = RelAtom{"Gout", x_vec()};
    std::vector<CTerm> gm1_args = {CTerm(Value::Int(1))};
    auto xs2 = x_vec();
    gm1_args.insert(gm1_args.end(), xs2.begin(), xs2.end());
    r2.body.push_back(RelAtom{gate_pred(output_gate), std::move(gm1_args)});
    program.AddRule(std::move(r2));
  }
  program.set_output("Gout");
  out.query = Query::Fp(std::move(program));
  return out;
}

}  // namespace relcomp
