// Lemma 4.6: satisfiability of FP under (fixed) FDs is undecidable, by
// reduction from 2-head DFA emptiness. The executable construction builds
// the schema {P(V,A), S(W,A1,A2)}, the FDs (as denial CCs), the FP query Π
// simulating the automaton over the word encoded in (P, S), and the word
// encoder. Claim (validated per word): A accepts w ⇔ the encoding I_w
// satisfies the FDs and Π(I_w) ≠ ∅.
//
// Note on determinism: the datalog simulation fires every transition whose
// guard matches a reachable configuration, i.e. it computes the closure of
// the transition *relation*; it coincides with the deterministic run when
// at most one guard applies per configuration (the automata used in tests
// have non-overlapping guards).
#ifndef RELCOMP_REDUCTIONS_LEMMA46_DFA_H_
#define RELCOMP_REDUCTIONS_LEMMA46_DFA_H_

#include <string>

#include "logic/two_head_dfa.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the FP query + FD-CC setting for `dfa`. `ground` is left empty;
/// use EncodeWord to materialize word instances.
GadgetProblem BuildDfaSatisfiabilityGadget(const TwoHeadDfa& dfa);

/// Encodes a binary word into the (P, S) representation: letters at
/// positions 0..|w|-1, successor edges with distinct W tags, the W=1 final
/// marker at position |w|.
Instance EncodeWord(const DatabaseSchema& schema, const std::string& word);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_LEMMA46_DFA_H_
