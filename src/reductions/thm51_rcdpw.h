// Theorem 5.1(3): Πp3-hardness of RCDP in the weak model, by reduction from
// the complement of ∃X ∀Y ∃Z 3SAT. The ground instance leaves RY empty; CCs
// force any extension of RY to be a single valid Y-assignment; the query
// returns the X-assignments for which some Z makes ψ true.
// Claim: ϕ = ∃X∀Y∃Zψ is TRUE ⇔ I is NOT weakly complete.
#ifndef RELCOMP_REDUCTIONS_THM51_RCDPW_H_
#define RELCOMP_REDUCTIONS_THM51_RCDPW_H_

#include "logic/qbf.h"
#include "reductions/reduction.h"

namespace relcomp {

/// Builds the Thm 5.1(3) gadget; `qbf` must be a three-block ∃∀∃ formula.
GadgetProblem BuildRcdpWeakGadget(const Qbf& qbf);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THM51_RCDPW_H_
