#include "reductions/thm51_rcdpw.h"

#include <cassert>

#include "logic/gadgets.h"

namespace relcomp {

GadgetProblem BuildRcdpWeakGadget(const Qbf& qbf) {
  assert(qbf.blocks.size() == 3 && !qbf.blocks[0].forall &&
         qbf.blocks[1].forall && !qbf.blocks[2].forall &&
         "expected an \\exists\\forall\\exists formula");
  int nx = qbf.blocks[0].size;
  int ny = qbf.blocks[1].size;
  int nz = qbf.blocks[2].size;

  GadgetProblem out;
  GadgetNames names;
  GadgetNames master_names = names.WithSuffix("m");

  // Database schema: gadgets + RY(Y1..Ym) over Boolean columns.
  AddGadgetSchemas(&out.setting.schema, names);
  std::vector<Attribute> ry_attrs;
  for (int j = 0; j < ny; ++j) {
    ry_attrs.push_back(
        Attribute{"Y" + std::to_string(j), Domain::Boolean()});
  }
  out.setting.schema.AddRelation(RelationSchema("RY", std::move(ry_attrs)));

  // Master schema: gadget copies + binary empty relation.
  AddGadgetSchemas(&out.setting.master_schema, master_names);
  out.setting.master_schema.AddRelation(RelationSchema(
      "Rempty2",
      {Attribute{"W", Domain::Infinite()}, Attribute{"W2", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);
  FillGadgetInstance(&out.setting.dm, master_names);

  // V: gadget bounds; φi projections of RY into Rm01; φ'i "at most one row".
  out.setting.ccs = GadgetBoundCcs(names, master_names);
  for (int j = 0; j < ny; ++j) {
    std::vector<CTerm> args;
    for (int l = 0; l < ny; ++l) args.push_back(VarId{l});
    ConjunctiveQuery q({CTerm(VarId{j})}, {RelAtom{"RY", std::move(args)}});
    out.setting.ccs.emplace_back("ry_bool_" + std::to_string(j),
                                 std::move(q), master_names.r01,
                                 std::vector<int>{0});
  }
  for (int j = 0; j < ny; ++j) {
    // Two distinct RY rows differing at column j are forbidden.
    std::vector<CTerm> args1, args2;
    for (int l = 0; l < ny; ++l) args1.push_back(VarId{l});
    for (int l = 0; l < ny; ++l) args2.push_back(VarId{ny + l});
    ConjunctiveQuery q({CTerm(VarId{j}), CTerm(VarId{ny + j})},
                       {RelAtom{"RY", std::move(args1)},
                        RelAtom{"RY", std::move(args2)}},
                       {CondAtom{VarId{j}, true, VarId{ny + j}}});
    out.setting.ccs.emplace_back("ry_single_" + std::to_string(j),
                                 std::move(q), "Rempty2",
                                 std::vector<int>{0, 1});
  }

  // I: ground gadgets, RY empty.
  out.ground = Instance(out.setting.schema);
  FillGadgetInstance(&out.ground, names);

  // Q(~x) = ∃~y, ~z (QX ∧ RY(~y) ∧ QZ ∧ Qψ ∧ w = 1).
  {
    int32_t next_var = 0;
    std::vector<CTerm> x_terms, y_terms, z_terms;
    std::vector<RelAtom> atoms;
    for (int i = 0; i < nx; ++i) x_terms.push_back(VarId{next_var++});
    for (int j = 0; j < ny; ++j) y_terms.push_back(VarId{next_var++});
    for (int k = 0; k < nz; ++k) z_terms.push_back(VarId{next_var++});
    AppendBooleanGenerators(x_terms, names, &atoms);
    {
      std::vector<CTerm> args(y_terms.begin(), y_terms.end());
      atoms.push_back(RelAtom{"RY", std::move(args)});
    }
    AppendBooleanGenerators(z_terms, names, &atoms);
    std::vector<CTerm> var_terms = x_terms;
    var_terms.insert(var_terms.end(), y_terms.begin(), y_terms.end());
    var_terms.insert(var_terms.end(), z_terms.begin(), z_terms.end());
    CTerm w = AppendCnfEvaluation(qbf.matrix, var_terms, names, &next_var,
                                  &atoms);
    std::vector<CTerm> head(x_terms.begin(), x_terms.end());
    out.query = Query::Cq(ConjunctiveQuery(
        std::move(head), std::move(atoms),
        {CondAtom{w, false, Value::Int(1)}}));
  }
  return out;
}

}  // namespace relcomp
