#include "reductions/thm48_minps.h"

#include <cassert>

#include "logic/gadgets.h"

namespace relcomp {

GadgetProblem BuildSigma3Gadget(const Qbf& qbf, bool full_rs) {
  assert(qbf.blocks.size() == 3 && !qbf.blocks[0].forall &&
         qbf.blocks[1].forall && !qbf.blocks[2].forall &&
         "expected an \\exists\\forall\\exists formula");
  int nx = qbf.blocks[0].size;
  int ny = qbf.blocks[1].size;
  int nz = qbf.blocks[2].size;

  GadgetProblem out;
  GadgetNames names;
  GadgetNames master_names = names.WithSuffix("m");

  // Database schema: gadgets + RX(id, X) + Rs(W), all Boolean-ish columns.
  AddGadgetSchemas(&out.setting.schema, names);
  out.setting.schema.AddRelation(RelationSchema(
      "RX", {Attribute{"id", Domain::IntRange(1, nx)},
             Attribute{"X", Domain::Boolean()}}));
  out.setting.schema.AddRelation(
      RelationSchema("Rs", {Attribute{"W", Domain::Boolean()}}));

  // Master schema: gadget copies + empty unary relation.
  AddGadgetSchemas(&out.setting.master_schema, master_names);
  out.setting.master_schema.AddRelation(
      RelationSchema("Rempty", {Attribute{"W", Domain::Infinite()}}));
  out.setting.dm = Instance(out.setting.master_schema);
  FillGadgetInstance(&out.setting.dm, master_names);

  // V: gadget bounds; Rs ⊆ Rm01; RX values in Rm01; id a key for RX.
  out.setting.ccs = GadgetBoundCcs(names, master_names);
  {
    ConjunctiveQuery q({CTerm(VarId{0})}, {RelAtom{"Rs", {VarId{0}}}});
    out.setting.ccs.emplace_back("rs_bool", std::move(q), master_names.r01,
                                 std::vector<int>{0});
  }
  {
    ConjunctiveQuery q({CTerm(VarId{1})},
                       {RelAtom{"RX", {VarId{0}, VarId{1}}}});
    out.setting.ccs.emplace_back("rx_bool", std::move(q), master_names.r01,
                                 std::vector<int>{0});
  }
  {
    // qid(x) = ∃y, y' (RX(x, y) ∧ RX(x, y') ∧ y ≠ y') ⊆ Rempty.
    ConjunctiveQuery q({CTerm(VarId{0})},
                       {RelAtom{"RX", {VarId{0}, VarId{1}}},
                        RelAtom{"RX", {VarId{0}, VarId{2}}}},
                       {CondAtom{VarId{1}, true, VarId{2}}});
    out.setting.ccs.emplace_back("rx_key", std::move(q), "Rempty",
                                 std::vector<int>{0});
  }

  // T: ground gadgets + TX rows (i, x_i) + Is.
  Instance ground(out.setting.schema);
  FillGadgetInstance(&ground, names);
  ground.AddTuple("Rs", {Value::Int(1)});
  if (full_rs) ground.AddTuple("Rs", {Value::Int(0)});
  out.cinstance = CInstance::FromInstance(ground);
  for (int i = 0; i < nx; ++i) {
    out.cinstance.at("RX").AddRow({Cell(Value::Int(i + 1)), Cell(VarId{i})});
  }

  // Q(~y) = ∃~x, ~z (QX ∧ QY ∧ QZ ∧ Qψ ∧ Rs(w) ∧ Qall).
  {
    int32_t next_var = 0;
    std::vector<CTerm> x_terms, y_terms, z_terms;
    std::vector<RelAtom> atoms;
    for (int i = 0; i < nx; ++i) {
      VarId v{next_var++};
      x_terms.push_back(v);
      atoms.push_back(RelAtom{"RX", {Value::Int(i + 1), v}});
    }
    for (int j = 0; j < ny; ++j) y_terms.push_back(VarId{next_var++});
    for (int k = 0; k < nz; ++k) z_terms.push_back(VarId{next_var++});
    AppendBooleanGenerators(y_terms, names, &atoms);
    AppendBooleanGenerators(z_terms, names, &atoms);
    std::vector<CTerm> var_terms = x_terms;
    var_terms.insert(var_terms.end(), y_terms.begin(), y_terms.end());
    var_terms.insert(var_terms.end(), z_terms.begin(), z_terms.end());
    CTerm w = AppendCnfEvaluation(qbf.matrix, var_terms, names, &next_var,
                                  &atoms);
    atoms.push_back(RelAtom{"Rs", {w}});
    AppendQallAtoms(names, &atoms);
    std::vector<CTerm> head(y_terms.begin(), y_terms.end());
    out.query = Query::Cq(
        ConjunctiveQuery(std::move(head), std::move(atoms), {}));
  }
  return out;
}

}  // namespace relcomp
