// A small dependency-free HTTP/1.1 server: one accept-loop thread, a
// bounded pool of connection workers, and a caller-supplied handler.
// This is the serving substrate for the observability endpoint
// (obs/http_endpoint.h) and, deliberately, for the future
// relcomp_server front door — nothing in here knows about metrics or
// the service.
//
// Threading/locking: the only lock is the pending-connection queue
// (LockRank::kNetHttpServer). Workers pop a connection under it and
// release it before any parsing or handler work, so handler code may
// take arbitrary service/obs locks without ordering constraints
// against the server. The handler must be thread-safe: up to
// `worker_threads` invocations run concurrently.
//
// Shutdown: Stop() (also run by the destructor) closes the listener,
// wakes every worker, abandons queued-but-unserved connections, and
// joins all threads. In-flight connections notice the stop flag at
// their next readiness poll (≤100 ms) and close after the response in
// progress is written — graceful for the sub-second handlers this
// serves, with no unbounded linger.
#ifndef RELCOMP_NET_HTTP_SERVER_H_
#define RELCOMP_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/socket.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread.h"

namespace relcomp {
namespace net {

struct HttpServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with HttpServer::port().
  uint16_t port = 0;
  /// Concurrent connection workers (min 1).
  size_t worker_threads = 2;
  /// Accepted connections waiting for a worker; beyond this the server
  /// answers 503 and closes instead of queueing unboundedly.
  size_t max_pending_connections = 64;
  /// Request head cap (431 beyond it).
  size_t max_head_bytes = 16 * 1024;
  /// A keep-alive connection idle longer than this is closed.
  uint64_t idle_timeout_ms = 5000;
};

/// Maps one parsed request to a response. Invoked concurrently.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop + workers. One-shot:
  /// a started (even a stopped) server is not restartable.
  Status Start(const HttpServerOptions& options, HttpHandler handler);

  /// Graceful shutdown; idempotent, safe on a never-started server.
  void Stop();

  /// The bound port (resolves port 0), valid after a successful Start.
  uint16_t port() const { return port_; }

  bool serving() const { return serving_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(Socket conn);

  HttpServerOptions options_;
  HttpHandler handler_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> serving_{false};

  mutable Mutex mu_{LockRank::kNetHttpServer, "HttpServer::mu_"};
  CondVar pending_cv_;
  std::deque<Socket> pending_ GUARDED_BY(mu_);

  JoinableThread acceptor_;
  std::vector<JoinableThread> workers_;
};

}  // namespace net
}  // namespace relcomp

#endif  // RELCOMP_NET_HTTP_SERVER_H_
