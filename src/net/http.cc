#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace relcomp {
namespace net {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

bool IsMethodToken(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
}

/// Position just past the blank line ending the head, or npos. Accepts
/// CRLF (the wire form) and bare LF (hand-typed clients, tests).
size_t FindHeadEnd(const std::string& buffer) {
  const size_t crlf = buffer.find("\r\n\r\n");
  const size_t lf = buffer.find("\n\n");
  if (crlf == std::string::npos && lf == std::string::npos) {
    return std::string::npos;
  }
  if (crlf == std::string::npos) return lf + 2;
  if (lf == std::string::npos) return crlf + 4;
  return lf + 1 < crlf ? lf + 2 : crlf + 4;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && Lower(*connection) == "keep-alive";
  }
  return connection == nullptr || Lower(*connection) != "close";
}

std::string HttpRequest::Path() const {
  const size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

ParseState HttpRequestParser::Feed(const char* data, size_t n) {
  if (state_ == ParseState::kError) return state_;
  if (n > 0) buffer_.append(data, n);
  if (state_ == ParseState::kComplete) return state_;  // awaiting Consume
  return TryParse();
}

ParseState HttpRequestParser::Consume() {
  if (state_ != ParseState::kComplete) return state_;
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  request_ = HttpRequest{};
  state_ = ParseState::kNeedMore;
  return TryParse();
}

ParseState HttpRequestParser::Fail(int code, std::string message) {
  state_ = ParseState::kError;
  error_code_ = code;
  error_message_ = std::move(message);
  return state_;
}

ParseState HttpRequestParser::TryParse() {
  const size_t head_end = FindHeadEnd(buffer_);
  if (head_end == std::string::npos) {
    if (buffer_.size() > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) + " bytes");
    }
    return state_;  // kNeedMore
  }
  if (head_end > limits_.max_head_bytes) {
    return Fail(431, "request head exceeds " +
                         std::to_string(limits_.max_head_bytes) + " bytes");
  }

  // Split the head into lines; tolerate both CRLF and bare LF.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < head_end) {
    size_t eol = buffer_.find('\n', pos);
    if (eol == std::string::npos || eol >= head_end) break;
    size_t len = eol - pos;
    if (len > 0 && buffer_[pos + len - 1] == '\r') --len;
    lines.push_back(buffer_.substr(pos, len));
    pos = eol + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    return Fail(400, "empty request line");
  }

  HttpRequest request;
  {
    const std::string& line = lines[0];
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
      return Fail(400, "malformed request line: \"" + line + "\"");
    }
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    request.version = line.substr(sp2 + 1);
    if (!IsMethodToken(request.method) || request.target.empty()) {
      return Fail(400, "malformed request line: \"" + line + "\"");
    }
    if (request.version.rfind("HTTP/", 0) != 0) {
      return Fail(400, "malformed HTTP version: \"" + request.version + "\"");
    }
    if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
      return Fail(505, "unsupported HTTP version: " + request.version);
    }
  }

  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;  // the blank terminator line
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Fail(400, "malformed header line: \"" + line + "\"");
    }
    std::string name = Lower(Trim(line.substr(0, colon)));
    std::string value = Trim(line.substr(colon + 1));
    if (name == "transfer-encoding") {
      return Fail(501, "transfer-encoding is not supported");
    }
    if (name == "content-length") {
      content_length = 0;
      if (value.empty()) return Fail(400, "empty content-length");
      for (const char c : value) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
          return Fail(400, "malformed content-length: \"" + value + "\"");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
        if (content_length > limits_.max_body_bytes) {
          return Fail(413, "request body exceeds " +
                               std::to_string(limits_.max_body_bytes) +
                               " bytes");
        }
      }
    }
    request.headers.emplace_back(std::move(name), std::move(value));
  }

  if (buffer_.size() < head_end + content_length) {
    return state_;  // kNeedMore: body still in flight
  }
  request.body = buffer_.substr(head_end, content_length);
  consumed_ = head_end + content_length;
  request_ = std::move(request);
  state_ = ParseState::kComplete;
  return state_;
}

const char* HttpStatusReason(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool head_only,
                              bool keep_alive) {
  std::string out;
  out.reserve(128 + (head_only ? 0 : response.body.size()));
  out += "HTTP/1.1 " + std::to_string(response.code) + " " +
         HttpStatusReason(response.code) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

}  // namespace net
}  // namespace relcomp
