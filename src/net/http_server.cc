#include "net/http_server.h"

#include <utility>

namespace relcomp {
namespace net {

namespace {

/// Poll slice for every blocking wait: the longest a thread stays blind
/// to the stop flag.
constexpr int kPollSliceMs = 100;

HttpResponse ErrorResponse(int code, const std::string& detail) {
  HttpResponse response;
  response.code = code;
  response.body =
      std::to_string(code) + " " + HttpStatusReason(code) + "\n" + detail;
  if (!detail.empty() && detail.back() != '\n') response.body += '\n';
  return response;
}

}  // namespace

Status HttpServer::Start(const HttpServerOptions& options,
                         HttpHandler handler) {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("HttpServer::Start called twice");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("HttpServer::Start needs a handler");
  }
  options_ = options;
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  handler_ = std::move(handler);
  Result<Socket> listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = LocalPort(*listener);
  if (!port.ok()) return port.status();
  listener_ = std::move(listener).value();
  port_ = *port;
  serving_.store(true, std::memory_order_release);
  workers_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = JoinableThread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) return;  // second Stop
    stop_.store(true, std::memory_order_release);
  }
  pending_cv_.NotifyAll();
  // Wake the acceptor out of its readiness poll right away rather than
  // after the current slice.
  listener_.ShutdownBoth();
  acceptor_.Join();
  for (JoinableThread& worker : workers_) worker.Join();
  {
    // Queued-but-unserved connections are abandoned: their Socket
    // destructors close them (the peer sees a reset, which is the
    // honest signal — no one was ever going to answer).
    MutexLock lock(mu_);
    pending_.clear();
  }
  listener_.Close();
  serving_.store(false, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<bool> readable = listener_.WaitReadable(kPollSliceMs);
    if (!readable.ok()) return;  // listener shut down or broken
    if (!*readable) continue;
    Result<Socket> conn = AcceptOn(listener_);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kUnavailable) continue;
      return;
    }
    bool reject = false;
    {
      MutexLock lock(mu_);
      if (stop_.load(std::memory_order_relaxed)) return;
      if (pending_.size() >= options_.max_pending_connections) {
        reject = true;
      } else {
        pending_.push_back(std::move(conn).value());
      }
    }
    if (reject) {
      // Shed load at the door instead of queueing unboundedly; the
      // write is best-effort (a peer that already left gets the reset).
      const std::string wire = SerializeResponse(
          ErrorResponse(503, "connection queue full"), /*head_only=*/false,
          /*keep_alive=*/false);
      conn->WriteAll(wire.data(), wire.size());
      continue;
    }
    pending_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    Socket conn;
    {
      MutexLock lock(mu_);
      while (pending_.empty() && !stop_.load(std::memory_order_relaxed)) {
        pending_cv_.Wait(mu_);
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn));
  }
}

void HttpServer::ServeConnection(Socket conn) {
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = options_.max_head_bytes;
  HttpRequestParser parser(limits);
  uint64_t idle_ms = 0;
  char buf[4096];
  while (!stop_.load(std::memory_order_acquire)) {
    Result<bool> readable = conn.WaitReadable(kPollSliceMs);
    if (!readable.ok()) return;
    if (!*readable) {
      idle_ms += kPollSliceMs;
      if (idle_ms >= options_.idle_timeout_ms) return;
      continue;
    }
    idle_ms = 0;
    Result<size_t> got = conn.Read(buf, sizeof(buf));
    if (!got.ok() || *got == 0) return;  // error or orderly EOF

    ParseState state = parser.Feed(buf, *got);
    while (state == ParseState::kComplete) {
      const HttpRequest& request = parser.request();
      const bool keep_alive = request.KeepAlive();
      const bool head_only = request.method == "HEAD";
      const std::string wire = SerializeResponse(handler_(request), head_only,
                                                 keep_alive);
      if (!conn.WriteAll(wire.data(), wire.size()).ok()) return;
      if (!keep_alive) return;
      state = parser.Consume();  // pipelining: next request, same bytes
    }
    if (state == ParseState::kError) {
      const std::string wire = SerializeResponse(
          ErrorResponse(parser.error_code(), parser.error_message()),
          /*head_only=*/false, /*keep_alive=*/false);
      conn.WriteAll(wire.data(), wire.size());
      return;
    }
  }
}

}  // namespace net
}  // namespace relcomp
