#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace relcomp {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Builds a sockaddr_in from a numeric IPv4 address; no resolver.
Status FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: \"" + host +
                                   "\" (the net layer has no resolver; use "
                                   "e.g. 127.0.0.1 or 0.0.0.0)");
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<size_t> Socket::Read(char* buf, size_t n) {
  if (fd_ < 0) return Status::Internal("Read on a closed socket");
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    return Status::Internal(Errno("recv"));
  }
}

Status Socket::WriteAll(const char* data, size_t n) {
  if (fd_ < 0) return Status::Internal("WriteAll on a closed socket");
  size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return Status::Internal(Errno("send"));
  }
  return Status::OK();
}

Result<bool> Socket::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::Internal("WaitReadable on a closed socket");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno == EINTR) continue;
    return Status::Internal(Errno("poll"));
  }
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  sockaddr_in addr;
  RELCOMP_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Status::Internal(Errno("socket"));
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Status::Internal(Errno("setsockopt(SO_REUSEADDR)"));
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal(Errno("bind " + host + ":" +
                                  std::to_string(port)));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::Internal(Errno("listen"));
  }
  return sock;
}

Result<Socket> AcceptOn(Socket& listener) {
  for (;;) {
    const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // The ready connection can vanish before accept (peer reset) or be
    // taken by a concurrent acceptor; the caller just polls again.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept: connection no longer pending");
    }
    return Status::Internal(Errno("accept"));
  }
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(Errno("getsockname"));
  }
  return ntohs(addr.sin_port);
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  RELCOMP_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Status::Internal(Errno("socket"));
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    return Status::Internal(Errno("connect " + host + ":" +
                                  std::to_string(port)));
  }
}

void SleepForMs(uint64_t ms) {
  // poll with no fds is the portable "nanosleep without <thread>". EINTR
  // retries the same slice (overshoot is fine for a serve-loop linger,
  // an undershot wait is not); any other failure gives up rather than spin.
  uint64_t remaining = ms;
  while (remaining > 0) {
    const int slice =
        remaining > 1000000000ULL ? 1000000000 : static_cast<int>(remaining);
    const int rc = ::poll(nullptr, 0, slice);
    if (rc == 0) {
      remaining -= static_cast<uint64_t>(slice);
      continue;
    }
    if (errno != EINTR) return;
  }
}

}  // namespace net
}  // namespace relcomp
