// HTTP/1.1 message types, an incremental request parser, and response
// serialization. The parser is a byte-feed state machine: bytes arrive
// in whatever segmentation the kernel produced (torn reads, several
// pipelined requests per read), and the parser only ever consumes
// complete syntactic units, so callers never re-frame the stream.
//
// Scope is deliberately what an operational endpoint needs and nothing
// more: GET/HEAD-style requests with optional Content-Length bodies.
// Chunked transfer encoding is rejected as unsupported (501).
#ifndef RELCOMP_NET_HTTP_H_
#define RELCOMP_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace relcomp {
namespace net {

/// One parsed request. Header names are lower-cased at parse time so
/// lookups are case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;   ///< as sent, e.g. "GET"
  std::string target;   ///< request-target, e.g. "/metrics?name=x"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// The value of `lower_name` (must be lower case), or null.
  const std::string* FindHeader(const std::string& lower_name) const;

  /// Connection persistence: HTTP/1.1 defaults to keep-alive unless the
  /// client sent "Connection: close"; HTTP/1.0 defaults to close.
  bool KeepAlive() const;

  /// `target` with any query string stripped: "/metrics?x=1" → "/metrics".
  std::string Path() const;
};

/// Incremental HTTP/1.1 request parser.
///
///   HttpRequestParser parser;
///   ParseState st = parser.Feed(buf, n);
///   while (st == ParseState::kComplete) {
///     Respond(parser.request());
///     st = parser.Consume();  // re-parses any pipelined remainder
///   }
///   if (st == ParseState::kError) { Respond(parser.error_code()); close; }
///
/// Feed never throws away unconsumed bytes: a request torn across reads
/// completes on a later Feed, and bytes after a complete request wait
/// for Consume. An error state is terminal for the connection.
enum class ParseState { kNeedMore, kComplete, kError };

class HttpRequestParser {
 public:
  struct Limits {
    /// Request line + headers cap; exceeding it is 431.
    size_t max_head_bytes = 16 * 1024;
    /// Content-Length cap; exceeding it is 413.
    size_t max_body_bytes = 1 << 20;
  };

  HttpRequestParser() : HttpRequestParser(Limits{}) {}
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Appends `n` bytes and attempts to complete a request. n == 0 is a
  /// pure re-parse of buffered bytes.
  ParseState Feed(const char* data, size_t n);

  /// Drops the completed request and re-parses the retained remainder
  /// (pipelining). Only valid in kComplete.
  ParseState Consume();

  ParseState state() const { return state_; }

  /// Valid in kComplete.
  const HttpRequest& request() const { return request_; }

  /// Valid in kError: the HTTP status to answer before closing
  /// (400 malformed, 413 body too large, 431 head too large,
  /// 501 unsupported transfer encoding, 505 unsupported version).
  int error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }

 private:
  ParseState Fail(int code, std::string message);
  ParseState TryParse();

  Limits limits_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ the completed request used
  HttpRequest request_;
  ParseState state_ = ParseState::kNeedMore;
  int error_code_ = 0;
  std::string error_message_;
};

/// One response; the server serializes it (net/http_server.h).
struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers beyond Content-Type/Content-Length/Connection
  /// (e.g. "Allow" on a 405).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// The canonical reason phrase ("OK", "Not Found", ...).
const char* HttpStatusReason(int code);

/// Full wire form. `head_only` omits the body (HEAD) but keeps the
/// Content-Length the GET would have carried.
std::string SerializeResponse(const HttpResponse& response, bool head_only,
                              bool keep_alive);

}  // namespace net
}  // namespace relcomp

#endif  // RELCOMP_NET_HTTP_H_
