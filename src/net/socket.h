// Thin RAII wrappers over the POSIX TCP socket API. This is the ONLY
// place in src/ (outside src/util/) allowed to touch raw socket
// syscalls — relcomp_lint rule `banned-constructs` confines
// socket/bind/listen/accept/recv/send/poll and friends to src/net/, so
// every networked subsystem (the observability endpoint today, the
// relcomp_server binary protocol tomorrow) goes through these wrappers
// and inherits the same EINTR, SIGPIPE, and shutdown discipline.
//
// Deliberately dependency-free and minimal: numeric IPv4 addresses only
// (no resolver), blocking I/O with poll-based readiness waits. Callers
// provide their own threading (see net/http_server.h).
#ifndef RELCOMP_NET_SOCKET_H_
#define RELCOMP_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace relcomp {
namespace net {

/// An owned socket file descriptor; closes on destruction, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

  /// Shuts down both directions without closing the descriptor: any
  /// thread blocked reading or writing this socket wakes immediately
  /// (the close itself stays with the owner, so no fd reuse races).
  void ShutdownBoth();

  /// Reads up to `n` bytes. Returns the byte count, 0 on orderly EOF.
  /// EINTR is retried; other errors surface as a non-OK status.
  Result<size_t> Read(char* buf, size_t n);

  /// Writes all `n` bytes (short writes are resumed, EINTR retried,
  /// SIGPIPE suppressed — a vanished peer is a Status, not a signal).
  Status WriteAll(const char* data, size_t n);

  /// Blocks until the socket is readable (data or EOF pending), up to
  /// `timeout_ms`. Returns true when readable, false on timeout.
  Result<bool> WaitReadable(int timeout_ms);

 private:
  int fd_ = -1;
};

/// Opens a listening TCP socket on `host:port` (numeric IPv4 only,
/// e.g. "127.0.0.1" or "0.0.0.0"; port 0 picks an ephemeral port —
/// read it back with LocalPort). SO_REUSEADDR is set so restarts do
/// not fight TIME_WAIT.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog = 64);

/// Accepts one pending connection; call after WaitReadable on the
/// listener. An accept race lost to another thread is a retryable
/// condition, reported as kUnavailable.
Result<Socket> AcceptOn(Socket& listener);

/// The locally bound port (resolves port 0 after ListenTcp).
Result<uint16_t> LocalPort(const Socket& socket);

/// Connects to `host:port` (numeric IPv4 only). Used by benches and
/// tests to drive a server through a real kernel socketpair.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Blocks the calling thread for `ms` milliseconds (poll-based; no
/// std::this_thread). For front-end serve loops like the CLI's
/// --serve-ms linger — NOT for in-service threads, which must sleep on
/// a CondVar so shutdown can wake them.
void SleepForMs(uint64_t ms);

}  // namespace net
}  // namespace relcomp

#endif  // RELCOMP_NET_SOCKET_H_
