// Relation: a set of ground tuples under a relation schema. The deciders in
// core/ are set-algebra heavy (Q(I) = Q(I'), subset tests, intersections), so
// tuples are kept sorted and unique for deterministic iteration and O(log n)
// membership.
#ifndef RELCOMP_DATA_RELATION_H_
#define RELCOMP_DATA_RELATION_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "data/tuple.h"

namespace relcomp {

/// A finite set of tuples over a RelationSchema.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Sorted, unique tuple storage.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Inserts a tuple; returns true if it was new. Arity must match.
  bool Insert(Tuple t);
  /// Inserts every tuple of `other` (schemas assumed compatible).
  void InsertAll(const Relation& other);
  /// Removes a tuple; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;
  /// True if every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;
  /// True if subset and strictly smaller.
  bool IsProperSubsetOf(const Relation& other) const {
    return size() < other.size() && IsSubsetOf(other);
  }

  /// Set intersection (schemas assumed compatible; keeps this->schema()).
  Relation Intersect(const Relation& other) const;
  /// Set union (keeps this->schema()).
  Relation Union(const Relation& other) const;
  /// Set difference this \ other.
  Relation Difference(const Relation& other) const;
  /// Projection onto the given column indices.
  Relation Project(const std::vector<int>& columns) const;

  /// Equality as tuple sets (schema names ignored).
  friend bool operator==(const Relation& a, const Relation& b) {
    return a.rows_ == b.rows_;
  }
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }

  /// "Rel{(..), (..)}" for debugging and witnesses.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;  // sorted, unique
};

}  // namespace relcomp

#endif  // RELCOMP_DATA_RELATION_H_
