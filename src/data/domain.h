// Attribute domains dom(A): either countably infinite, or an explicit finite
// set of constants. Finite domains matter throughout the paper: valuations of
// variables in a finite-domain column must draw from that domain, and the
// active-domain set Adom includes all finite-domain constants (df).
#ifndef RELCOMP_DATA_DOMAIN_H_
#define RELCOMP_DATA_DOMAIN_H_

#include <algorithm>
#include <vector>

#include "data/value.h"

namespace relcomp {

/// The domain of an attribute: infinite, or an explicit finite value set.
class Domain {
 public:
  /// A countably infinite domain (ints / symbols).
  static Domain Infinite() { return Domain(); }

  /// A finite domain containing exactly `values` (deduplicated, sorted).
  static Domain Finite(std::vector<Value> values);

  /// Convenience: the Boolean domain {0, 1} used by the Fig. 2 gadgets.
  static Domain Boolean() {
    return Finite({Value::Int(0), Value::Int(1)});
  }

  /// Convenience: finite integer range [lo, hi].
  static Domain IntRange(int64_t lo, int64_t hi);

  bool is_finite() const { return finite_; }
  /// Values of a finite domain (sorted, unique); empty for infinite domains.
  const std::vector<Value>& values() const { return values_; }

  /// True if `v` is an element of this domain (always true when infinite).
  bool Contains(const Value& v) const {
    if (!finite_) return true;
    return std::binary_search(values_.begin(), values_.end(), v);
  }

  friend bool operator==(const Domain& a, const Domain& b) {
    return a.finite_ == b.finite_ && a.values_ == b.values_;
  }

 private:
  Domain() : finite_(false) {}
  bool finite_;
  std::vector<Value> values_;
};

}  // namespace relcomp

#endif  // RELCOMP_DATA_DOMAIN_H_
