#include "data/schema.h"

namespace relcomp {

RelationSchema RelationSchema::Anonymous(std::string name, size_t arity) {
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back(Attribute{"a" + std::to_string(i), Domain::Infinite()});
  }
  return RelationSchema(std::move(name), std::move(attrs));
}

int RelationSchema::AttributeIndex(const std::string& attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr) return static_cast<int>(i);
  }
  return -1;
}

void DatabaseSchema::AddRelation(RelationSchema schema) {
  for (auto& existing : relations_) {
    if (existing.name() == schema.name()) {
      existing = std::move(schema);
      return;
    }
  }
  relations_.push_back(std::move(schema));
}

const RelationSchema* DatabaseSchema::Find(const std::string& name) const {
  for (const auto& rel : relations_) {
    if (rel.name() == name) return &rel;
  }
  return nullptr;
}

Result<RelationSchema> DatabaseSchema::Get(const std::string& name) const {
  const RelationSchema* found = Find(name);
  if (found == nullptr) {
    return Status::NotFound("no relation schema named '" + name + "'");
  }
  return *found;
}

}  // namespace relcomp
