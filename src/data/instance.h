// Instance: a ground database instance I = (I1, ..., In) of a DatabaseSchema.
// Master data Dm is itself an Instance (of the master schema Rm). The paper's
// extension order I ⊊ I' (relation-wise subset, at least one proper) is
// implemented here.
#ifndef RELCOMP_DATA_INSTANCE_H_
#define RELCOMP_DATA_INSTANCE_H_

#include <string>
#include <vector>

#include "data/relation.h"
#include "data/schema.h"
#include "util/status.h"

namespace relcomp {

/// A ground database instance: one Relation per relation schema.
class Instance {
 public:
  Instance() = default;
  /// Creates empty relations for every schema in `schema`.
  explicit Instance(DatabaseSchema schema);

  const DatabaseSchema& schema() const { return schema_; }
  const std::vector<Relation>& relations() const { return relations_; }
  std::vector<Relation>& relations() { return relations_; }

  /// Relation accessor by name; must exist.
  const Relation& at(const std::string& rel) const;
  Relation& at(const std::string& rel);
  /// Relation accessor by name; nullptr if absent.
  const Relation* Find(const std::string& rel) const;

  /// Inserts a tuple into relation `rel`; true if new.
  bool AddTuple(const std::string& rel, Tuple t);
  /// Removes a tuple from relation `rel`; true if it was present.
  bool RemoveTuple(const std::string& rel, const Tuple& t);

  /// Total number of tuples across all relations (the paper's |I|).
  size_t TotalTuples() const;
  bool Empty() const { return TotalTuples() == 0; }

  /// Relation-wise subset test: I ⊆ I'.
  bool IsSubsetOf(const Instance& other) const;
  /// The paper's I ⊊ I': subset and strictly fewer tuples somewhere.
  bool IsProperSubsetOf(const Instance& other) const;

  /// Relation-wise union (schemas must agree).
  Instance Union(const Instance& other) const;

  /// All constants appearing in any tuple (sorted, unique).
  std::vector<Value> ActiveDomain() const;

  /// Equality as families of tuple sets.
  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

  std::string ToString() const;

 private:
  DatabaseSchema schema_;
  std::vector<Relation> relations_;  // parallel to schema_.relations()
};

}  // namespace relcomp

#endif  // RELCOMP_DATA_INSTANCE_H_
