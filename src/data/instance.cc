#include "data/instance.h"

#include <algorithm>
#include <cassert>

namespace relcomp {

Instance::Instance(DatabaseSchema schema) : schema_(std::move(schema)) {
  relations_.reserve(schema_.size());
  for (const RelationSchema& rel : schema_.relations()) {
    relations_.emplace_back(rel);
  }
}

const Relation& Instance::at(const std::string& rel) const {
  const Relation* found = Find(rel);
  assert(found != nullptr && "unknown relation");
  return *found;
}

Relation& Instance::at(const std::string& rel) {
  for (Relation& r : relations_) {
    if (r.schema().name() == rel) return r;
  }
  assert(false && "unknown relation");
  static Relation empty;
  return empty;
}

const Relation* Instance::Find(const std::string& rel) const {
  for (const Relation& r : relations_) {
    if (r.schema().name() == rel) return &r;
  }
  return nullptr;
}

bool Instance::AddTuple(const std::string& rel, Tuple t) {
  return at(rel).Insert(std::move(t));
}

bool Instance::RemoveTuple(const std::string& rel, const Tuple& t) {
  return at(rel).Erase(t);
}

size_t Instance::TotalTuples() const {
  size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (!relations_[i].IsSubsetOf(other.relations_[i])) return false;
  }
  return true;
}

bool Instance::IsProperSubsetOf(const Instance& other) const {
  return TotalTuples() < other.TotalTuples() && IsSubsetOf(other);
}

Instance Instance::Union(const Instance& other) const {
  Instance out = *this;
  assert(relations_.size() == other.relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    out.relations_[i].InsertAll(other.relations_[i]);
  }
  return out;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::vector<Value> values;
  for (const Relation& r : relations_) {
    for (const Tuple& t : r.rows()) {
      values.insert(values.end(), t.begin(), t.end());
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::string Instance::ToString() const {
  std::string out;
  for (const Relation& r : relations_) {
    if (!out.empty()) out += "\n";
    out += r.ToString();
  }
  return out;
}

}  // namespace relcomp
