#include "data/domain.h"

namespace relcomp {

Domain Domain::Finite(std::vector<Value> values) {
  Domain d;
  d.finite_ = true;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.values_ = std::move(values);
  return d;
}

Domain Domain::IntRange(int64_t lo, int64_t hi) {
  std::vector<Value> vals;
  for (int64_t v = lo; v <= hi; ++v) vals.push_back(Value::Int(v));
  return Finite(std::move(vals));
}

}  // namespace relcomp
