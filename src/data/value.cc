#include "data/value.h"

namespace relcomp {

std::string Value::ToString() const {
  if (is_int()) return std::to_string(as_int());
  return sym_name();
}

}  // namespace relcomp
