// Value: a constant of the database domain `dom(A)` — either a 64-bit-ish
// integer or an interned symbol. Trivially copyable, totally ordered, cheap
// to hash; relations store sorted tuples of Values.
#ifndef RELCOMP_DATA_VALUE_H_
#define RELCOMP_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/interner.h"

namespace relcomp {

/// A ground constant: integer or interned symbol.
class Value {
 public:
  /// Default-constructs the integer 0 (needed for container use).
  Value() : kind_(Kind::kInt), payload_(0) {}

  /// An integer constant.
  static Value Int(int64_t v) { return Value(Kind::kInt, v); }
  /// A symbolic constant, interned globally.
  static Value Sym(std::string_view name) {
    return Value(Kind::kSym, static_cast<int64_t>(InternSymbol(name)));
  }
  /// A symbolic constant from an already-interned id.
  static Value SymId(SymbolId id) {
    return Value(Kind::kSym, static_cast<int64_t>(id));
  }

  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_sym() const { return kind_ == Kind::kSym; }

  /// Integer payload; requires is_int().
  int64_t as_int() const { return payload_; }
  /// Symbol id; requires is_sym().
  SymbolId sym_id() const { return static_cast<SymbolId>(payload_); }
  /// Symbol text; requires is_sym().
  const std::string& sym_name() const { return SymbolName(sym_id()); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.payload_ == b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.payload_ < b.payload_;
  }

  /// Renders ints as digits and symbols as their text.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const {
    return std::hash<int64_t>()(payload_ * 2 +
                                (kind_ == Kind::kSym ? 1 : 0));
  }

 private:
  enum class Kind : uint8_t { kInt = 0, kSym = 1 };
  Value(Kind kind, int64_t payload) : kind_(kind), payload_(payload) {}

  Kind kind_;
  int64_t payload_;
};

}  // namespace relcomp

namespace std {
template <>
struct hash<relcomp::Value> {
  size_t operator()(const relcomp::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // RELCOMP_DATA_VALUE_H_
