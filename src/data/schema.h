// Relation and database schemas. A database schema R = (R1, ..., Rn) is a
// list of relation schemas, each over named, domain-typed attributes.
#ifndef RELCOMP_DATA_SCHEMA_H_
#define RELCOMP_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "data/domain.h"
#include "util/status.h"

namespace relcomp {

/// A named, typed attribute of a relation schema.
struct Attribute {
  std::string name;
  Domain domain = Domain::Infinite();
};

/// Schema of a single relation: name plus attribute list.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  /// Schema whose attributes are all infinite-domain, named a0..a{n-1}.
  static RelationSchema Anonymous(std::string name, size_t arity);

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `attr`, or -1 if absent.
  int AttributeIndex(const std::string& attr) const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// Schema of a database: an ordered collection of relation schemas.
class DatabaseSchema {
 public:
  DatabaseSchema() = default;
  explicit DatabaseSchema(std::vector<RelationSchema> relations)
      : relations_(std::move(relations)) {}

  /// Appends a relation schema; replaces any previous one with the same name.
  void AddRelation(RelationSchema schema);

  const std::vector<RelationSchema>& relations() const { return relations_; }
  size_t size() const { return relations_.size(); }

  /// Lookup by name; nullptr if absent.
  const RelationSchema* Find(const std::string& name) const;
  /// Lookup by name; error status if absent.
  Result<RelationSchema> Get(const std::string& name) const;
  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

 private:
  std::vector<RelationSchema> relations_;
};

}  // namespace relcomp

#endif  // RELCOMP_DATA_SCHEMA_H_
