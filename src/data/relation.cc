#include "data/relation.h"

#include <algorithm>
#include <cassert>

namespace relcomp {

bool Relation::Insert(Tuple t) {
  assert(schema_.arity() == 0 || t.size() == schema_.arity());
  auto it = std::lower_bound(rows_.begin(), rows_.end(), t);
  if (it != rows_.end() && *it == t) return false;
  rows_.insert(it, std::move(t));
  return true;
}

void Relation::InsertAll(const Relation& other) {
  for (const Tuple& t : other.rows_) Insert(t);
}

bool Relation::Erase(const Tuple& t) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), t);
  if (it == rows_.end() || *it != t) return false;
  rows_.erase(it);
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(rows_.begin(), rows_.end(), t);
}

bool Relation::IsSubsetOf(const Relation& other) const {
  return std::includes(other.rows_.begin(), other.rows_.end(), rows_.begin(),
                       rows_.end());
}

Relation Relation::Intersect(const Relation& other) const {
  Relation out(schema_);
  std::set_intersection(rows_.begin(), rows_.end(), other.rows_.begin(),
                        other.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Relation Relation::Union(const Relation& other) const {
  Relation out(schema_);
  std::set_union(rows_.begin(), rows_.end(), other.rows_.begin(),
                 other.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Relation Relation::Difference(const Relation& other) const {
  Relation out(schema_);
  std::set_difference(rows_.begin(), rows_.end(), other.rows_.begin(),
                      other.rows_.end(), std::back_inserter(out.rows_));
  return out;
}

Relation Relation::Project(const std::vector<int>& columns) const {
  std::vector<Attribute> attrs;
  for (int c : columns) {
    attrs.push_back(schema_.attribute(static_cast<size_t>(c)));
  }
  Relation out(RelationSchema(schema_.name() + "_proj", std::move(attrs)));
  for (const Tuple& t : rows_) {
    Tuple projected;
    projected.reserve(columns.size());
    for (int c : columns) projected.push_back(t[static_cast<size_t>(c)]);
    out.Insert(std::move(projected));
  }
  return out;
}

std::string Relation::ToString() const {
  std::string out = schema_.name() + "{";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += TupleToString(rows_[i]);
  }
  out += "}";
  return out;
}

}  // namespace relcomp
