// Tuples are flat vectors of Values; relations keep them sorted and unique.
#ifndef RELCOMP_DATA_TUPLE_H_
#define RELCOMP_DATA_TUPLE_H_

#include <string>
#include <vector>

#include "data/value.h"

namespace relcomp {

/// A ground tuple: fixed-arity row of constants.
using Tuple = std::vector<Value>;

/// Renders "(v1, v2, ...)".
inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace relcomp

#endif  // RELCOMP_DATA_TUPLE_H_
