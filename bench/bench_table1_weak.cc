// Experiment T1-W (Table I, weak-model row):
//   RCDPʷ  — Πp3-complete for CQ/UCQ/∃FO⁺ (Thm 5.1(3) gadget family),
//            coNEXPTIME-complete for FP (SUCCINCT-TAUT circuits, Thm 5.1(2))
//   RCQPʷ  — O(1) for every monotone language (Theorem 5.4)
//   MINPʷ  — coDP-complete for CQ vs Πp4-complete for UCQ/∃FO⁺ (Thm 5.6):
//            the CQ dichotomy stays flat while subset-removal explodes.
#include <benchmark/benchmark.h>

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "reductions/thm51_fp.h"
#include "reductions/thm51_rcdpw.h"
#include "reductions/thm56_minpw.h"

namespace relcomp {
namespace {

SearchOptions BigBudget() {
  SearchOptions o;
  o.max_steps = 1ull << 42;
  return o;
}

void BM_RcdpWeak_Sigma3Gadget(benchmark::State& state) {
  int ny = static_cast<int>(state.range(0));
  Qbf qbf = MakeExistsForallExists(1, ny, 1, RandomCnf3(ny + 2, 2, 13));
  GadgetProblem gadget = BuildRcdpWeakGadget(qbf);
  for (auto _ : state) {
    SearchStats stats;
    auto r = RcdpWeakGround(gadget.query, gadget.ground, gadget.setting,
                            BigBudget(), &stats);
    benchmark::DoNotOptimize(r);
    state.counters["extensions"] = static_cast<double>(stats.extensions);
  }
}
BENCHMARK(BM_RcdpWeak_Sigma3Gadget)->DenseRange(1, 4, 1);

void BM_RcdpWeak_FpCircuit(benchmark::State& state) {
  // SUCCINCT-TAUT: the FP query evaluates the circuit on all 2^n inputs.
  int inputs = static_cast<int>(state.range(0));
  Circuit c = RandomCircuit(inputs, 5, 17, /*force_taut=*/true);
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  for (auto _ : state) {
    auto r = RcdpWeakGround(gadget.query, gadget.ground, gadget.setting,
                            BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RcdpWeak_FpCircuit)->DenseRange(1, 5, 1);

void BM_RcqpWeak_ConstantTime(benchmark::State& state) {
  // O(1) regardless of the query size (Theorem 5.4).
  int size = static_cast<int>(state.range(0));
  UnionQuery ucq;
  for (int i = 0; i < size; ++i) {
    ucq.AddDisjunct(ConjunctiveQuery(
        {CTerm(VarId{0})}, {RelAtom{"E", {VarId{0}, Value::Int(i)}}}));
  }
  Query q = Query::Ucq(ucq);
  for (auto _ : state) {
    auto r = RcqpWeak(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RcqpWeak_ConstantTime)->Range(1, 4096);

void BM_MinpWeak_CqDichotomy(benchmark::State& state) {
  // Lemma 5.7: the coDP decision stays cheap as the SAT-UNSAT instance
  // grows — one empty-instance weak check plus a singleton test.
  int n = static_cast<int>(state.range(0));
  GadgetProblem gadget = BuildSatUnsatGadget(RandomCnf3(n, 2, 19),
                                             RandomCnf3(n, 2, 23), n);
  for (auto _ : state) {
    auto r = MinpWeakCq(gadget.query, gadget.cinstance, gadget.setting,
                        BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MinpWeak_CqDichotomy)->DenseRange(2, 5, 1);

void BM_MinpWeak_SubsetRemoval(benchmark::State& state) {
  // The general Πp4-style algorithm: 2^rows weak re-checks.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "B", {Attribute{"x", Domain::Boolean()}, Attribute{"y",
                                                         Domain::Boolean()}}));
  setting.master_schema.AddRelation(RelationSchema(
      "Bm", {Attribute{"x", Domain::Boolean()},
             Attribute{"y", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      setting.dm.AddTuple("Bm", {Value::Int(a), Value::Int(b)});
    }
  }
  ConjunctiveQuery cc_q({CTerm(VarId{0}), CTerm(VarId{1})},
                        {RelAtom{"B", {VarId{0}, VarId{1}}}});
  setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                           std::vector<int>{0, 1});
  UnionQuery ucq;
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(VarId{0})},
                                   {RelAtom{"B", {VarId{0}, VarId{1}}}}));
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(VarId{1})},
                                   {RelAtom{"B", {VarId{0}, VarId{1}}}}));
  Query q = Query::Ucq(ucq);
  int rows = static_cast<int>(state.range(0));
  CInstance t(setting.schema);
  for (int i = 0; i < rows; ++i) {
    t.at("B").AddRow({Cell(Value::Int(i % 2)), Cell(Value::Int((i / 2) % 2))});
  }
  for (auto _ : state) {
    auto r = MinpWeak(q, t, setting, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MinpWeak_SubsetRemoval)->DenseRange(1, 4, 1);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
