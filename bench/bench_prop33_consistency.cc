// Experiment P33 (Proposition 3.3): consistency and extensibility are
// Σp2-complete. The ∀∃3SAT gadget family shows the exponential growth in the
// number of quantified variables (the combined-complexity hardness), while
// the data-size sweep shows polynomial growth for a fixed gadget (the
// Section 7 data-complexity contrast).
#include <benchmark/benchmark.h>

#include "core/consistency.h"
#include "reductions/prop33.h"

namespace relcomp {
namespace {

void BM_ConsistencyVsQuantifiedVars(benchmark::State& state) {
  int nx = static_cast<int>(state.range(0));
  Qbf qbf = MakeForallExists(nx, 2, RandomCnf3(nx + 2, 3, 7));
  GadgetProblem gadget = BuildConsistencyGadget(qbf);
  SearchOptions options;
  options.max_steps = 1ull << 40;
  for (auto _ : state) {
    SearchStats stats;
    auto r = IsConsistent(gadget.setting, gadget.cinstance, options, &stats);
    benchmark::DoNotOptimize(r);
    state.counters["valuations"] = static_cast<double>(stats.valuations);
  }
}
BENCHMARK(BM_ConsistencyVsQuantifiedVars)->DenseRange(1, 6, 1);

void BM_ExtensibilityVsQuantifiedVars(benchmark::State& state) {
  int nx = static_cast<int>(state.range(0));
  Qbf qbf = MakeForallExists(nx, 2, RandomCnf3(nx + 2, 3, 7));
  GadgetProblem gadget = BuildExtensibilityGadget(qbf);
  for (auto _ : state) {
    SearchStats stats;
    auto r = IsExtensible(gadget.setting, gadget.ground, {}, &stats);
    benchmark::DoNotOptimize(r);
    state.counters["extensions"] = static_cast<double>(stats.extensions);
  }
}
BENCHMARK(BM_ExtensibilityVsQuantifiedVars)->DenseRange(1, 6, 1);

void BM_ConsistencyVsExistsBlock(benchmark::State& state) {
  // Growth in the ∃ block inflates the CC query, not the world count.
  int ny = static_cast<int>(state.range(0));
  Qbf qbf = MakeForallExists(2, ny, RandomCnf3(2 + ny, 3, 11));
  GadgetProblem gadget = BuildConsistencyGadget(qbf);
  for (auto _ : state) {
    auto r = IsConsistent(gadget.setting, gadget.cinstance);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConsistencyVsExistsBlock)->DenseRange(1, 5, 1);

void BM_ConsistencyDataComplexity(benchmark::State& state) {
  // Fixed 2-variable gadget; grow the master data through a relation no CC
  // touches — combined complexity stays put, data size grows.
  Qbf qbf = MakeForallExists(2, 2, RandomCnf3(4, 3, 3));
  GadgetProblem gadget = BuildConsistencyGadget(qbf);
  gadget.setting.master_schema.AddRelation(
      RelationSchema("PadM", {Attribute{"x", Domain::Infinite()}}));
  Instance padded(gadget.setting.master_schema);
  for (const Relation& rel : gadget.setting.dm.relations()) {
    padded.at(rel.schema().name()) = rel;
  }
  int pad = static_cast<int>(state.range(0));
  for (int i = 0; i < pad; ++i) {
    padded.AddTuple("PadM", {Value::Sym("pad" + std::to_string(i))});
  }
  gadget.setting.dm = std::move(padded);
  for (auto _ : state) {
    auto r = IsConsistent(gadget.setting, gadget.cinstance);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConsistencyDataComplexity)->Range(8, 1024)->Complexity();

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
