// Experiment T1-S (Table I, strong-model row):
//   RCDPˢ   — Πp2-complete for CQ/UCQ/∃FO⁺       (Theorem 4.1)
//   RCQPˢ   — NEXPTIME-complete                   (Theorem 4.5)
//   MINPˢ   — Πp3-complete (c-inst), Dp2 (ground) (Theorem 4.8)
// Workloads are the paper's own gadget families; series grow the number of
// quantified variables, so each curve's exponential slope exhibits its
// complexity class. The ground-vs-c-instance pair shows the Dp2 / Πp3 gap.
#include <benchmark/benchmark.h>

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "reductions/examples_fig1.h"
#include "reductions/thm48_minps.h"

namespace relcomp {
namespace {

SearchOptions BigBudget() {
  SearchOptions o;
  o.max_steps = 1ull << 42;
  return o;
}

void BM_RcdpStrong_PatientsVsVars(benchmark::State& state) {
  // Fig. 1 family: each extra missing value multiplies the world count.
  PatientsFixture fx =
      MakeScaledPatientsFixture(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SearchStats stats;
    auto r = RcdpStrong(fx.q1, fx.ctable, fx.setting, BigBudget(), &stats);
    benchmark::DoNotOptimize(r);
    state.counters["worlds"] = static_cast<double>(stats.worlds);
  }
}
BENCHMARK(BM_RcdpStrong_PatientsVsVars)->DenseRange(0, 3, 1);

void BM_RcdpStrong_PatientsVsRows(benchmark::State& state) {
  // Data-size growth at a fixed number of variables: the polynomial regime.
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto r = RcdpStrong(fx.q1, fx.ctable, fx.setting, BigBudget());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RcdpStrong_PatientsVsRows)->Range(2, 16)->Complexity();

void BM_MinpStrong_CInstance(benchmark::State& state) {
  // Thm 4.8 gadget (Is = {0, 1}); growing X inflates the Πp3 world sweep.
  int nx = static_cast<int>(state.range(0));
  Qbf qbf = MakeExistsForallExists(nx, 1, 1, RandomCnf3(nx + 2, 1, 5));
  GadgetProblem gadget = BuildSigma3Gadget(qbf, /*full_rs=*/true);
  for (auto _ : state) {
    SearchStats stats;
    auto r = MinpStrong(gadget.query, gadget.cinstance, gadget.setting,
                        BigBudget(), &stats);
    benchmark::DoNotOptimize(r);
    state.counters["valuations"] = static_cast<double>(stats.valuations);
  }
}
BENCHMARK(BM_MinpStrong_CInstance)->DenseRange(1, 3, 1);

void BM_MinpStrong_Ground(benchmark::State& state) {
  // The same gadget grounded by one valuation: the Dp2 ground case; at equal
  // size this runs one world instead of 2^nx — the Table I gap.
  int nx = static_cast<int>(state.range(0));
  Qbf qbf = MakeExistsForallExists(nx, 1, 1, RandomCnf3(nx + 2, 1, 5));
  GadgetProblem gadget = BuildSigma3Gadget(qbf, /*full_rs=*/true);
  Valuation mu;
  for (VarId v : gadget.cinstance.Vars()) mu.Bind(v, Value::Int(1));
  Instance ground = *gadget.cinstance.Apply(mu);
  for (auto _ : state) {
    auto r = MinpStrongGround(gadget.query, ground, gadget.setting,
                              BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MinpStrong_Ground)->DenseRange(1, 3, 1);

void BM_RcqpStrong_BoundedSearch(benchmark::State& state) {
  // NEXPTIME witness search over instances of growing size bound.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "B", {Attribute{"x", Domain::Finite({Value::Int(0), Value::Int(1),
                                           Value::Int(2)})}}));
  setting.dm = Instance(setting.master_schema);
  Query q = Query::Cq(
      ConjunctiveQuery({CTerm(VarId{0})}, {RelAtom{"B", {VarId{0}}}}));
  size_t bound = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = RcqpStrongBounded(q, setting, bound, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RcqpStrong_BoundedSearch)->DenseRange(1, 3, 1);

void BM_RcqpStrong_IndPtime(benchmark::State& state) {
  // Corollary 7.2: the IND case decided in PTIME, vs master-data size.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs"}, Attribute{"note"}}));
  setting.master_schema.AddRelation(RelationSchema("Pm", {Attribute{"nhs"}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < state.range(0); ++i) {
    setting.dm.AddTuple("Pm", {Value::Sym("n" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}}}});
  setting.ccs.emplace_back("ind", std::move(proj), "Pm",
                           std::vector<int>{0});
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{0})}, {RelAtom{"Visit", {VarId{0}, VarId{1}}}}));
  for (auto _ : state) {
    auto r = RcqpStrongInd(q, setting);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RcqpStrong_IndPtime)->Range(8, 512)->Complexity();

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
