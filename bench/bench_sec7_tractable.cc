// Experiment S7 (Section 7, Corollaries 7.1–7.3): with Q and V fixed and a
// constant number of variables, RCDP / MINP scale polynomially in the data
// size (|T| rows and |Dm|), in contrast to the exponential variable sweeps
// of the combined-complexity benchmarks.
#include <benchmark/benchmark.h>

#include "core/tractable.h"
#include "reductions/examples_fig1.h"

namespace relcomp {
namespace {

SearchOptions BigBudget() {
  SearchOptions o;
  o.max_steps = 1ull << 42;
  return o;
}

void BM_RcdpStrongTractable_VsRows(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = RcdpStrongTractable(fx.q1, fx.ctable, fx.setting, 8, BigBudget());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RcdpStrongTractable_VsRows)->Range(2, 16)->Complexity();

void BM_RcdpWeakTractable_VsRows(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto r = RcdpWeakTractable(fx.q1, fx.ctable, fx.setting, 8, BigBudget());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RcdpWeakTractable_VsRows)->Range(2, 16)->Complexity();

void BM_RcdpViableTractable_VsRows(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = RcdpViableTractable(fx.q4, fx.ctable, fx.setting, 8, BigBudget());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RcdpViableTractable_VsRows)->Range(2, 8)->Complexity();

void BM_MinpWeakCqTractable_VsMaster(benchmark::State& state) {
  // Lemma 5.7's coDP check against growing master data.
  PatientsFixture fx = MakePatientsFixture();
  for (int i = 0; i < state.range(0); ++i) {
    fx.setting.dm.AddTuple(
        "Patientm", {Value::Sym("777-" + std::to_string(i)), Value::Sym("X"),
                     Value::Int(1999), Value::Sym("Z"), Value::Sym("M")});
  }
  CInstance empty(fx.setting.schema);
  for (auto _ : state) {
    auto r = MinpWeakCqTractable(fx.q1, empty, fx.setting, 8, BigBudget());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinpWeakCqTractable_VsMaster)->Range(4, 64)->Complexity();

void BM_Contrast_ExponentialInVars(benchmark::State& state) {
  // The same decider outside the constant-variable regime: each missing
  // value multiplies the world count (finite DrID domain, factor 3).
  PatientsFixture fx =
      MakeScaledPatientsFixture(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SearchStats stats;
    auto r = RcdpStrong(fx.q1, fx.ctable, fx.setting, BigBudget(), &stats);
    benchmark::DoNotOptimize(r);
    state.counters["worlds"] = static_cast<double>(stats.worlds);
  }
}
BENCHMARK(BM_Contrast_ExponentialInVars)->DenseRange(0, 3, 1);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
