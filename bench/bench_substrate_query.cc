// Substrate benchmark: the CQ/UCQ/FO/FP evaluation engine itself (joins,
// unions, quantifiers, fixpoints) as a function of data size.
#include <benchmark/benchmark.h>

#include "query/fo.h"
#include "query/fp.h"
#include "query/query.h"

namespace relcomp {
namespace {

Instance ChainInstance(int n) {
  DatabaseSchema schema;
  schema.AddRelation(
      RelationSchema("E", {Attribute{"a"}, Attribute{"b"}}));
  Instance db(schema);
  for (int i = 0; i < n; ++i) {
    db.AddTuple("E", {Value::Int(i), Value::Int(i + 1)});
  }
  return db;
}

void BM_CqTwoHopJoin(benchmark::State& state) {
  Instance db = ChainInstance(static_cast<int>(state.range(0)));
  ConjunctiveQuery q({CTerm(VarId{0}), CTerm(VarId{2})},
                     {RelAtom{"E", {VarId{0}, VarId{1}}},
                      RelAtom{"E", {VarId{1}, VarId{2}}}});
  for (auto _ : state) {
    auto out = q.Eval(db);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CqTwoHopJoin)->Range(8, 512)->Complexity();

void BM_UcqFourDisjuncts(benchmark::State& state) {
  Instance db = ChainInstance(static_cast<int>(state.range(0)));
  UnionQuery ucq;
  for (int k = 0; k < 4; ++k) {
    ucq.AddDisjunct(ConjunctiveQuery(
        {CTerm(VarId{0})}, {RelAtom{"E", {VarId{0}, VarId{1}}}},
        {CondAtom{VarId{1}, true, Value::Int(k)}}));
  }
  for (auto _ : state) {
    auto out = ucq.Eval(db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_UcqFourDisjuncts)->Range(8, 512);

void BM_FoSinkNodes(benchmark::State& state) {
  Instance db = ChainInstance(static_cast<int>(state.range(0)));
  FoPtr has_out = FoFormula::Exists(
      {VarId{1}}, FoFormula::Atom({"E", {VarId{0}, VarId{1}}}));
  FoQuery q({VarId{0}}, FoFormula::Not(has_out));
  for (auto _ : state) {
    auto out = q.Eval(db);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FoSinkNodes)->Range(8, 128);

void BM_FpTransitiveClosure(benchmark::State& state) {
  Instance db = ChainInstance(static_cast<int>(state.range(0)));
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {VarId{0}, VarId{1}}},
                    {{"E", {VarId{0}, VarId{1}}}},
                    {}});
  tc.AddRule(FpRule{{"T", {VarId{0}, VarId{2}}},
                    {{"T", {VarId{0}, VarId{1}}}, {"E", {VarId{1}, VarId{2}}}},
                    {}});
  tc.set_output("T");
  for (auto _ : state) {
    auto out = tc.Eval(db);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FpTransitiveClosure)->Range(4, 64)->Complexity();

void BM_EfoPlusToUcqExpansion(benchmark::State& state) {
  // (A1 | A2) & (A1 | A2) & ... — DNF blowup 2^k.
  int k = static_cast<int>(state.range(0));
  std::vector<FoPtr> conjuncts;
  for (int i = 0; i < k; ++i) {
    conjuncts.push_back(
        FoFormula::Or({FoFormula::Atom({"E", {VarId{0}, Value::Int(i)}}),
                       FoFormula::Atom({"E", {Value::Int(i), VarId{0}}})}));
  }
  FoQuery q({VarId{0}}, FoFormula::And(std::move(conjuncts)));
  for (auto _ : state) {
    auto ucq = q.ToUcq();
    benchmark::DoNotOptimize(ucq);
  }
}
BENCHMARK(BM_EfoPlusToUcqExpansion)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
