// Experiment OBS-2: the cost of being scraped.
//
// The live observability endpoint promises that serving /metrics and
// /traces never slows the decision path: a scrape renders a dump on an
// endpoint worker thread and takes exactly the snapshot locks the
// corresponding Dump* call always took, never a lock a decision holds
// for long. This file measures the warm-batch service workload from
// OBS-1 under three configurations:
//
//   no-endpoint  — full-obs service, endpoint never started (baseline);
//   idle         — endpoint listening, nobody scraping (the standing
//                  cost of the listener + worker threads);
//   scraped      — a client hammering GET /metrics and GET /traces
//                  back-to-back over real sockets for the whole run.
//
// baseline vs idle bounds the cost of just having the port open;
// baseline vs scraped bounds the worst-case scrape interference. Both
// gaps should stay within run-to-run noise.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/types.h"
#include "net/socket.h"
#include "obs/http_endpoint.h"
#include "service/service.h"

namespace relcomp {
namespace {

Value S(const std::string& s) { return Value::Sym(s); }

PartiallyClosedSetting MakeAuditSetting(int master_rows) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})},
                Attribute{"year", Domain::IntRange(1998, 2001)}}));
  setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    setting.dm.AddTuple("Patientm", {S("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}, VarId{2}}}});
  setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                           std::vector<int>{0});
  return setting;
}

std::vector<DecisionRequest> MakeWorkload(const DatabaseSchema& schema) {
  Instance db(schema);
  db.AddTuple("Visit", {S("nhs-0"), S("EDI"), Value::Int(1999)});
  db.AddTuple("Visit", {S("nhs-1"), S("LON"), Value::Int(2000)});
  CInstance audited = CInstance::FromInstance(db);
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < 8; ++i) {
    ConjunctiveQuery cq(
        {CTerm(VarId{0})},
        {RelAtom{"Visit",
                 {CTerm(S("nhs-" + std::to_string(i))), CTerm(VarId{0}),
                  CTerm(VarId{1})}}});
    Query q = Query::Cq(std::move(cq));
    for (ProblemKind kind :
         {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
          ProblemKind::kRcqpStrong, ProblemKind::kMinpStrong}) {
      DecisionRequest request;
      request.kind = kind;
      request.query = q;
      request.cinstance = audited;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

/// One blocking GET against the endpoint; returns false when the
/// connection failed (endpoint gone — scraper should stop).
bool ScrapeOnce(uint16_t port, const char* path) {
  Result<net::Socket> conn = net::ConnectTcp("127.0.0.1", port);
  if (!conn.ok()) return false;
  const std::string raw =
      std::string("GET ") + path + " HTTP/1.1\r\nConnection: close\r\n\r\n";
  if (!conn->WriteAll(raw.data(), raw.size()).ok()) return false;
  char buf[16 * 1024];
  for (;;) {
    Result<size_t> n = conn->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    benchmark::DoNotOptimize(buf[0]);
  }
  return true;
}

enum class Endpoint { kOff, kIdle, kScraped };

void RunScrapeAb(benchmark::State& state, Endpoint mode) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  std::vector<DecisionRequest> workload = MakeWorkload(setting.schema);
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = 0;  // warm path: every request evaluates
  options.memoize = false;
  options.trace_sample = 1;
  options.slow_log = 16;
  options.trace_ring = 256;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }

  std::atomic<bool> stop{false};
  std::thread scraper;
  if (mode != Endpoint::kOff) {
    obs::ObsHttpOptions http;  // loopback, ephemeral port
    Status served = service.ServeObs(http);
    if (!served.ok()) {
      state.SkipWithError(served.ToString().c_str());
      return;
    }
    if (mode == Endpoint::kScraped) {
      const uint16_t port = service.obs_port();
      scraper = std::thread([&stop, port] {
        while (!stop.load(std::memory_order_relaxed)) {
          if (!ScrapeOnce(port, "/metrics")) break;
          if (!ScrapeOnce(port, "/traces")) break;
        }
      });
    }
  }

  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(*handle, workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));

  stop = true;
  if (scraper.joinable()) scraper.join();
  service.StopObs();
}

void BM_Service_Batch_NoEndpoint(benchmark::State& state) {
  RunScrapeAb(state, Endpoint::kOff);
}
BENCHMARK(BM_Service_Batch_NoEndpoint)->Arg(256)->Arg(2048);

void BM_Service_Batch_EndpointIdle(benchmark::State& state) {
  RunScrapeAb(state, Endpoint::kIdle);
}
BENCHMARK(BM_Service_Batch_EndpointIdle)->Arg(256)->Arg(2048);

void BM_Service_Batch_EndpointScraped(benchmark::State& state) {
  RunScrapeAb(state, Endpoint::kScraped);
}
BENCHMARK(BM_Service_Batch_EndpointScraped)->Arg(256)->Arg(2048);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
