// Experiment T1-V (Table I, viable-model row):
//   RCDPᵛ — Σp3-complete for c-instances vs Πp2 for ground (Theorem 6.1)
//   RCQPᵛ — NEXPTIME-complete, ≡ the strong model (Lemma 4.4 / Cor 6.2)
//   MINPᵛ — Σp3-complete vs Dp2 for ground (Corollary 6.3)
// The c-instance/ground pairs at equal size exhibit the Table I gaps.
#include <benchmark/benchmark.h>

#include "core/minp.h"
#include "core/rcdp.h"
#include "reductions/thm61_viable.h"

namespace relcomp {
namespace {

SearchOptions BigBudget() {
  SearchOptions o;
  o.max_steps = 1ull << 42;
  return o;
}

GadgetProblem MakeGadget(int nx) {
  Qbf qbf = MakeExistsForallExists(nx, 1, 1, RandomCnf3(nx + 2, 1, 29));
  return BuildViableGadget(qbf);
}

void BM_RcdpViable_CInstance(benchmark::State& state) {
  GadgetProblem gadget = MakeGadget(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SearchStats stats;
    auto r = RcdpViable(gadget.query, gadget.cinstance, gadget.setting,
                        BigBudget(), &stats);
    benchmark::DoNotOptimize(r);
    state.counters["worlds"] = static_cast<double>(stats.worlds);
  }
}
BENCHMARK(BM_RcdpViable_CInstance)->DenseRange(1, 3, 1);

void BM_RcdpViable_Ground(benchmark::State& state) {
  GadgetProblem gadget = MakeGadget(static_cast<int>(state.range(0)));
  Valuation mu;
  for (VarId v : gadget.cinstance.Vars()) mu.Bind(v, Value::Int(1));
  Instance ground = *gadget.cinstance.Apply(mu);
  for (auto _ : state) {
    auto r = RcdpStrongGround(gadget.query, ground, gadget.setting,
                              BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RcdpViable_Ground)->DenseRange(1, 3, 1);

void BM_MinpViable_CInstance(benchmark::State& state) {
  GadgetProblem gadget = MakeGadget(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = MinpViable(gadget.query, gadget.cinstance, gadget.setting,
                        BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MinpViable_CInstance)->DenseRange(1, 3, 1);

void BM_MinpViable_Ground(benchmark::State& state) {
  GadgetProblem gadget = MakeGadget(static_cast<int>(state.range(0)));
  Valuation mu;
  for (VarId v : gadget.cinstance.Vars()) mu.Bind(v, Value::Int(1));
  Instance ground = *gadget.cinstance.Apply(mu);
  for (auto _ : state) {
    auto r = MinpStrongGround(gadget.query, ground, gadget.setting,
                              BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MinpViable_Ground)->DenseRange(1, 3, 1);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
