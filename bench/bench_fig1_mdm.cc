// Experiment F1/F2 (Figures 1–2, Examples 1.1–2.4): the patients MDM
// workload end to end — consistency, the three RCDP models and the query
// evaluation itself on the Fig. 1 family at growing database sizes.
#include <benchmark/benchmark.h>

#include "core/consistency.h"
#include "core/rcdp.h"
#include "reductions/examples_fig1.h"

namespace relcomp {
namespace {

SearchOptions BigBudget() {
  SearchOptions o;
  o.max_steps = 1ull << 42;
  return o;
}

void BM_Fig1_Consistency(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto r = IsConsistent(fx.setting, fx.ctable, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig1_Consistency)->Range(2, 64);

void BM_Fig1_Q1Strong(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto r = RcdpStrong(fx.q1, fx.ctable, fx.setting, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig1_Q1Strong)->Range(2, 16);

void BM_Fig1_Q4Weak(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 0);
  for (auto _ : state) {
    auto r = RcdpWeak(fx.q4, fx.ctable, fx.setting, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig1_Q4Weak)->Range(2, 8);

void BM_Fig1_Q4Viable(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto r = RcdpViable(fx.q4, fx.ctable, fx.setting, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig1_Q4Viable)->Range(2, 8);

void BM_Fig1_QueryEvalOnly(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 0);
  for (auto _ : state) {
    auto r = fx.q4.Eval(fx.ground);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig1_QueryEvalOnly)->Range(8, 1024)->Complexity();

void BM_Fig1_GroundQ2Completeness(benchmark::State& state) {
  PatientsFixture fx =
      MakeScaledPatientsFixture(static_cast<int>(state.range(0)), 0);
  for (auto _ : state) {
    auto r = RcdpStrongGround(fx.q2, fx.ground, fx.acquisition, BigBudget());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig1_GroundQ2Completeness)->Range(2, 64);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
