// Experiment OBS-1: the cost of watching.
//
// The observability layer promises near-zero overhead on the request fast
// path: instrument updates are relaxed atomics, the per-evaluation
// SearchProfile is a bounded stack-local recorder, windows touch a single
// ring slot under a leaf mutex, and the trace ring only sees sampled
// requests. This file puts numbers on each of those claims:
//
//   micro  — SearchProfile enter/heartbeat/exit, WindowedCounter/Histogram
//            Record, live Histogram Record, and TraceSink Offer, each in
//            isolation (ns/op);
//   macro  — the service warm-batch workload from ENG-B decided under three
//            configurations: dark (metrics off), metrics (the default
//            production configuration: metrics + windows + profiles), and
//            full-obs (plus 1-in-1 trace sampling, a trace ring, the
//            flight-recorder sampler and an armed-but-quiet watchdog).
//
// dark vs metrics bounds the standing cost of the default telemetry;
// metrics vs full-obs bounds the marginal cost of turning every dial up
// for an incident. Both gaps should stay in the low single-digit percent.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/service.h"

namespace relcomp {
namespace {

using Clock = std::chrono::steady_clock;

void BM_Obs_SearchProfileLoopCycle(benchmark::State& state) {
  // One enter/heartbeat/exit cycle — what every instrumented search loop
  // pays per SearchCheckpoint when a profile is attached. The profile is
  // reset each kMaxSlices cycles so the slice buffer never saturates into
  // the (cheaper) dropped-slice path.
  SearchProfile profile;
  profile.Start(Clock::now());
  size_t cycles = 0;
  for (auto _ : state) {
    const auto now = Clock::now();
    profile.EnterLoop("bench", now);
    profile.Heartbeat(64);
    profile.ExitLoop("bench", 64, now);
    if (++cycles == SearchProfile::kMaxSlices) {
      state.PauseTiming();
      profile = SearchProfile();
      profile.Start(Clock::now());
      cycles = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_Obs_SearchProfileLoopCycle);

void BM_Obs_WindowedCounterRecord(benchmark::State& state) {
  obs::WindowedCounter counter(/*window_slots=*/120);
  const auto now = Clock::now();
  for (auto _ : state) {
    counter.Record(1, now);
  }
  benchmark::DoNotOptimize(counter.Sum(60, now));
}
BENCHMARK(BM_Obs_WindowedCounterRecord);

void BM_Obs_WindowedHistogramRecord(benchmark::State& state) {
  obs::WindowedHistogram histogram(/*window_slots=*/120);
  const auto now = Clock::now();
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value, now);
    value = value < (uint64_t{1} << 30) ? value * 2 : 1;
  }
  benchmark::DoNotOptimize(histogram.Snapshot(60, now).count);
}
BENCHMARK(BM_Obs_WindowedHistogramRecord);

void BM_Obs_LiveHistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  uint64_t value = 1;
  for (auto _ : state) {
    histogram.Record(value);
    value = value < (uint64_t{1} << 30) ? value * 2 : 1;
  }
  benchmark::DoNotOptimize(histogram.Snapshot().count);
}
BENCHMARK(BM_Obs_LiveHistogramRecord);

void BM_Obs_TraceSinkOffer(benchmark::State& state) {
  obs::TraceSink sink;
  sink.Configure(256);
  auto trace = std::make_shared<obs::Trace>(1, Clock::now());
  trace->Finish("ok", Clock::now());
  for (auto _ : state) {
    obs::TraceRecord record;
    record.trace = trace;
    record.tenant = "1";
    record.kind = "rcdp-strong";
    sink.Offer(std::move(record));
  }
  benchmark::DoNotOptimize(sink.dropped());
}
BENCHMARK(BM_Obs_TraceSinkOffer);

// --------------------------------------------------------------- macro ----

Value S(const std::string& s) { return Value::Sym(s); }

PartiallyClosedSetting MakeAuditSetting(int master_rows) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})},
                Attribute{"year", Domain::IntRange(1998, 2001)}}));
  setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    setting.dm.AddTuple("Patientm", {S("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}, VarId{2}}}});
  setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                           std::vector<int>{0});
  return setting;
}

std::vector<DecisionRequest> MakeWorkload(const DatabaseSchema& schema) {
  Instance db(schema);
  db.AddTuple("Visit", {S("nhs-0"), S("EDI"), Value::Int(1999)});
  db.AddTuple("Visit", {S("nhs-1"), S("LON"), Value::Int(2000)});
  CInstance audited = CInstance::FromInstance(db);
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < 8; ++i) {
    ConjunctiveQuery cq(
        {CTerm(VarId{0})},
        {RelAtom{"Visit",
                 {CTerm(S("nhs-" + std::to_string(i))), CTerm(VarId{0}),
                  CTerm(VarId{1})}}});
    Query q = Query::Cq(std::move(cq));
    for (ProblemKind kind :
         {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
          ProblemKind::kRcqpStrong, ProblemKind::kMinpStrong}) {
      DecisionRequest request;
      request.kind = kind;
      request.query = q;
      request.cinstance = audited;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

enum class ObsLevel { kDark, kMetrics, kFullObs };

void RunServiceObsBatch(benchmark::State& state, ObsLevel level) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  std::vector<DecisionRequest> workload = MakeWorkload(setting.schema);
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = 0;  // warm path: every request evaluates
  options.memoize = false;
  options.metrics = level != ObsLevel::kDark;
  if (level == ObsLevel::kFullObs) {
    options.trace_sample = 1;
    options.slow_log = 16;
    options.trace_ring = 256;
    options.recorder_interval_ms = 100;
    options.watchdog_stall_micros = 5'000'000;  // armed, never trips
  }
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(*handle, workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}

void BM_Obs_ServiceBatch_Dark(benchmark::State& state) {
  RunServiceObsBatch(state, ObsLevel::kDark);
}
BENCHMARK(BM_Obs_ServiceBatch_Dark)->Arg(256)->Arg(2048);

void BM_Obs_ServiceBatch_Metrics(benchmark::State& state) {
  RunServiceObsBatch(state, ObsLevel::kMetrics);
}
BENCHMARK(BM_Obs_ServiceBatch_Metrics)->Arg(256)->Arg(2048);

void BM_Obs_ServiceBatch_FullObs(benchmark::State& state) {
  RunServiceObsBatch(state, ObsLevel::kFullObs);
}
BENCHMARK(BM_Obs_ServiceBatch_FullObs)->Arg(256)->Arg(2048);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
