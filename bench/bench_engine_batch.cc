// Experiment ENG-B: batch decision throughput through the service stack.
//
// The workload models MDM audit traffic: a large closed-world patient master
// (|Dm| = state.range), an IND CC binding visits to it, and a stream of
// cheap per-query completeness decisions (RCDP strong/viable, ground MINP,
// and the PTIME IND RCQP of Corollary 7.2). The same request stream is
// answered several ways:
//   cold    — independent decider calls on the raw setting (the pre-engine
//             call pattern): every request re-derives the Adom seed (a scan
//             and sort of all |Dm| constants) and re-projects the masters;
//   warm    — SubmitBatch through the CompletenessEngine adapter over a
//             PreparedSetting built once, memoization off: the prepared-
//             artifact savings plus the (near-zero) adapter overhead;
//   memo    — the same with the LRU cache on: repeated queries collapse to
//             fingerprint lookups (the serving-traffic regime);
//   service — the CompletenessService called directly (single-setting batch
//             and the async-futures path), to show the multi-setting
//             front door costs nothing over the adapter.
// warm must beat cold at every master size, and the gap must widen with
// |Dm|; memo sits another order of magnitude above.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "service/service.h"

namespace relcomp {
namespace {

Value S(const std::string& s) { return Value::Sym(s); }

/// A setting with `master_rows` patients in Dm and an IND CC
/// π_nhs(Visit) ⊆ π_nhs(Patientm).
PartiallyClosedSetting MakeAuditSetting(int master_rows) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})},
                Attribute{"year", Domain::IntRange(1998, 2001)}}));
  setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    setting.dm.AddTuple("Patientm", {S("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}, VarId{2}}}});
  setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                           std::vector<int>{0});
  return setting;
}

/// A small audited instance whose patients exist in every MakeAuditSetting.
CInstance MakeAuditedInstance(const DatabaseSchema& schema) {
  Instance db(schema);
  db.AddTuple("Visit", {S("nhs-0"), S("EDI"), Value::Int(1999)});
  db.AddTuple("Visit", {S("nhs-1"), S("LON"), Value::Int(2000)});
  db.AddTuple("Visit", {S("nhs-2"), S("EDI"), Value::Int(2001)});
  return CInstance::FromInstance(db);
}

/// One audit sweep: `distinct` per-patient queries, each decided in four
/// problem kinds (mixed RCDP / RCQP / MINP traffic), `repeat` times over.
std::vector<DecisionRequest> MakeWorkload(const CInstance& audited,
                                          int distinct, int repeat) {
  std::vector<DecisionRequest> requests;
  for (int r = 0; r < repeat; ++r) {
    for (int i = 0; i < distinct; ++i) {
      // q_i(c) :- Visit("nhs-i", c, y): which cities has patient i visited?
      // Head and join variables sit in finite-domain columns, so the
      // decision itself is cheap — per-request setup is the dominant cost.
      ConjunctiveQuery cq(
          {CTerm(VarId{0})},
          {RelAtom{"Visit",
                   {CTerm(S("nhs-" + std::to_string(i))), CTerm(VarId{0}),
                    CTerm(VarId{1})}}});
      Query q = Query::Cq(std::move(cq));
      for (ProblemKind kind :
           {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
            ProblemKind::kRcqpStrong, ProblemKind::kMinpStrong}) {
        DecisionRequest request;
        request.kind = kind;
        request.query = q;
        request.cinstance = audited;
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

constexpr int kDistinctQueries = 8;

void BM_Cold_IndependentCalls(benchmark::State& state) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  for (auto _ : state) {
    for (const DecisionRequest& request : workload) {
      Decision decision = DecideCold(request, setting);
      benchmark::DoNotOptimize(decision);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_Cold_IndependentCalls)->Arg(256)->Arg(2048)->Arg(8192);

void RunEngineBatch(benchmark::State& state, size_t cache_capacity) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  EngineOptions options;
  options.num_workers = 4;
  options.cache_capacity = cache_capacity;
  options.memoize = cache_capacity > 0;
  auto engine = CompletenessEngine::Create(setting, options);
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = (*engine)->SubmitBatch(workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["cache_hits"] =
      static_cast<double>((*engine)->counters().cache_hits);
}

void BM_Engine_WarmBatch(benchmark::State& state) {
  RunEngineBatch(state, /*cache_capacity=*/0);
}
BENCHMARK(BM_Engine_WarmBatch)->Arg(256)->Arg(2048)->Arg(8192);

void BM_Engine_MemoizedBatch(benchmark::State& state) {
  RunEngineBatch(state, /*cache_capacity=*/1024);
}
BENCHMARK(BM_Engine_MemoizedBatch)->Arg(256)->Arg(2048)->Arg(8192);

void RunServiceBatch(benchmark::State& state, size_t cache_capacity,
                     bool metrics = true) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = cache_capacity;
  options.memoize = cache_capacity > 0;
  options.metrics = metrics;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(*handle, workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}

void BM_Service_WarmBatch(benchmark::State& state) {
  RunServiceBatch(state, /*cache_capacity=*/0);
}
BENCHMARK(BM_Service_WarmBatch)->Arg(256)->Arg(2048)->Arg(8192);

void BM_Service_MemoizedBatch(benchmark::State& state) {
  RunServiceBatch(state, /*cache_capacity=*/1024);
}
BENCHMARK(BM_Service_MemoizedBatch)->Arg(256)->Arg(2048)->Arg(8192);

/// The A/B baseline for instrumentation overhead: identical to
/// BM_Service_WarmBatch but with every metric instrument stripped
/// (ServiceOptions::metrics = false). The warm-batch medians of the two
/// should stay within ~2% of each other.
void BM_Service_WarmBatch_NoObs(benchmark::State& state) {
  RunServiceBatch(state, /*cache_capacity=*/0, /*metrics=*/false);
}
BENCHMARK(BM_Service_WarmBatch_NoObs)->Arg(256)->Arg(2048)->Arg(8192);

/// The async front door, memoized: submit the whole workload as futures and
/// drain them — the per-request promise/queue overhead on top of memo.
void BM_Service_AsyncFutures(benchmark::State& state) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<std::future<Decision>> futures;
    futures.reserve(workload.size());
    for (const DecisionRequest& request : workload) {
      futures.push_back(service.SubmitAsync(ServiceRequest{*handle, request}));
    }
    for (std::future<Decision>& future : futures) {
      Decision decision = future.get();
      benchmark::DoNotOptimize(decision);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_Service_AsyncFutures)->Arg(2048);

/// Two fingerprint-distinct settings interleaved in one batch: routing and
/// per-shard caching must not tax the single-setting path.
void BM_Service_TwoSettingsInterleaved(benchmark::State& state) {
  PartiallyClosedSetting setting_a =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  PartiallyClosedSetting setting_b =
      MakeAuditSetting(static_cast<int>(state.range(0)) + 1);
  CInstance audited = MakeAuditedInstance(setting_a.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  CompletenessService service(options);
  Result<SettingHandle> handle_a = service.RegisterSetting(setting_a);
  Result<SettingHandle> handle_b = service.RegisterSetting(setting_b);
  if (!handle_a.ok() || !handle_b.ok()) {
    state.SkipWithError("registration failed");
    return;
  }
  std::vector<ServiceRequest> batch;
  batch.reserve(workload.size() * 2);
  for (const DecisionRequest& request : workload) {
    batch.push_back(ServiceRequest{*handle_a, request});
    batch.push_back(ServiceRequest{*handle_b, request});
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(batch);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_Service_TwoSettingsInterleaved)->Arg(2048);

/// Experiment SCHED-C: two-tenant contention — the scheduler's reason to
/// exist. An expensive tenant (|Dm| = 8192) floods the single worker with
/// a 64-request backlog; a cheap tenant (|Dm| = 64, weight 8) then submits
/// 8 small requests. Under FIFO the cheap tenant queues behind the whole
/// backlog; under fair-share it interleaves at 8:1. Reported counters are
/// the cheap tenant's completion latency percentiles (microseconds) —
/// p50/p99 should collapse by an order of magnitude under `fair`.
void RunContendedTwoTenants(benchmark::State& state,
                            sched::SchedPolicy policy) {
  PartiallyClosedSetting heavy_setting = MakeAuditSetting(8192);
  PartiallyClosedSetting cheap_setting = MakeAuditSetting(64);
  CInstance heavy_audited = MakeAuditedInstance(heavy_setting.schema);
  CInstance cheap_audited = MakeAuditedInstance(cheap_setting.schema);
  std::vector<DecisionRequest> heavy_workload =
      MakeWorkload(heavy_audited, /*distinct=*/16, /*repeat=*/1);  // 64 reqs
  std::vector<DecisionRequest> cheap_workload =
      MakeWorkload(cheap_audited, /*distinct=*/2, /*repeat=*/1);  // 8 reqs

  ServiceOptions options;
  options.num_workers = 1;  // forces queueing: the contention under test
  options.cache_capacity = 0;
  options.memoize = false;
  options.policy = policy;
  CompletenessService service(options);
  ShardOptions heavy_opts;
  heavy_opts.weight = 1;
  ShardOptions cheap_opts;
  cheap_opts.weight = 8;
  Result<SettingHandle> heavy = service.RegisterSetting(heavy_setting,
                                                        heavy_opts);
  Result<SettingHandle> cheap = service.RegisterSetting(cheap_setting,
                                                        cheap_opts);
  if (!heavy.ok() || !cheap.ok()) {
    state.SkipWithError("registration failed");
    return;
  }

  std::vector<double> cheap_latency_us;
  for (auto _ : state) {
    std::vector<std::future<Decision>> heavy_futures;
    heavy_futures.reserve(heavy_workload.size());
    for (const DecisionRequest& request : heavy_workload) {
      heavy_futures.push_back(
          service.SubmitAsync(ServiceRequest{*heavy, request}));
    }
    std::mutex mu;
    size_t pending = cheap_workload.size();
    std::promise<void> cheap_done;
    for (const DecisionRequest& request : cheap_workload) {
      const auto submitted = std::chrono::steady_clock::now();
      service.SubmitAsync(
          ServiceRequest{*cheap, request},
          [&mu, &pending, &cheap_done, &cheap_latency_us,
           submitted](Decision) {
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - submitted)
                    .count();
            bool last = false;
            {
              std::lock_guard<std::mutex> lock(mu);
              cheap_latency_us.push_back(us);
              last = --pending == 0;
            }
            // Signal outside the lock: the main thread may destroy `mu`
            // the moment it wakes.
            if (last) cheap_done.set_value();
          });
    }
    cheap_done.get_future().wait();
    for (std::future<Decision>& future : heavy_futures) future.get();
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(heavy_workload.size() + cheap_workload.size()));
  if (!cheap_latency_us.empty()) {
    std::sort(cheap_latency_us.begin(), cheap_latency_us.end());
    state.counters["cheap_p50_us"] =
        cheap_latency_us[cheap_latency_us.size() / 2];
    state.counters["cheap_p99_us"] =
        cheap_latency_us[cheap_latency_us.size() * 99 / 100];
  }
}

void BM_Service_TwoTenantContended_Fifo(benchmark::State& state) {
  RunContendedTwoTenants(state, sched::SchedPolicy::kFifo);
}
BENCHMARK(BM_Service_TwoTenantContended_Fifo)->UseRealTime();

void BM_Service_TwoTenantContended_FairShare(benchmark::State& state) {
  RunContendedTwoTenants(state, sched::SchedPolicy::kFairShare);
}
BENCHMARK(BM_Service_TwoTenantContended_FairShare)->UseRealTime();

/// An audited c-instance whose Mod(T, Dm, V) enumeration must exhaust the
/// full |Adom|^vars valuation space: `vars` variables in the infinite nhs
/// column plus one ground "ghost" row no world can satisfy the IND with.
CInstance MakeSlowAudited(const DatabaseSchema& schema, int vars) {
  CInstance audited(schema);
  CTable& visits = audited.at("Visit");
  visits.AddRow({Cell(S("ghost")), Cell(S("EDI")), Cell(Value::Int(1999))});
  for (int v = 0; v < vars; ++v) {
    visits.AddRow({Cell(VarId{v}), Cell(S("EDI")), Cell(Value::Int(1999))});
  }
  return audited;
}

/// Experiment SCHED-D: mid-run shed latency — the checkpoints' reason to
/// exist. One slow evaluation (a ~260-constant Adom squared, ≥100ms of
/// enumeration) is submitted with a deadline that expires almost
/// immediately; reported is the latency from deadline expiry to the
/// decision resolving. With checkpoint_interval = 0 (the pre-checkpoint
/// behavior) the worker runs the search to completion and shed latency is
/// the full evaluation time; with checkpoints on, the abort lands within
/// one interval — shed_p50/p99 should collapse by orders of magnitude.
void RunDeadlineShedLatency(benchmark::State& state,
                            uint64_t checkpoint_interval) {
  PartiallyClosedSetting setting = MakeAuditSetting(256);
  CInstance audited = MakeSlowAudited(setting.schema, /*vars=*/2);
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{20})},
      {RelAtom{"Visit", {VarId{21}, VarId{20}, VarId{22}}}}));
  request.cinstance = audited;
  request.options.checkpoint_interval = checkpoint_interval;

  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;  // aborted runs are never cached anyway
  options.memoize = false;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }

  std::vector<double> shed_us;
  for (auto _ : state) {
    ServiceRequest sr{*handle, request};
    const sched::TimePoint deadline = sched::DeadlineAfterMs(2);
    sr.sched.deadline = deadline;
    Decision decision = service.SubmitAsync(std::move(sr)).get();
    const double us = std::chrono::duration<double, std::micro>(
                          sched::Clock::now() - deadline)
                          .count();
    shed_us.push_back(us > 0 ? us : 0.0);
    benchmark::DoNotOptimize(decision);
  }
  if (!shed_us.empty()) {
    std::sort(shed_us.begin(), shed_us.end());
    state.counters["shed_p50_us"] = shed_us[shed_us.size() / 2];
    state.counters["shed_p99_us"] = shed_us[shed_us.size() * 99 / 100];
  }
}

void BM_Service_DeadlineShedLatency_NoCheckpoints(benchmark::State& state) {
  RunDeadlineShedLatency(state, /*checkpoint_interval=*/0);
}
BENCHMARK(BM_Service_DeadlineShedLatency_NoCheckpoints)->UseRealTime();

void BM_Service_DeadlineShedLatency_Checkpointed(benchmark::State& state) {
  RunDeadlineShedLatency(state, /*checkpoint_interval=*/4096);
}
BENCHMARK(BM_Service_DeadlineShedLatency_Checkpointed)->UseRealTime();

/// Experiment CACHE-W: warm-start first-batch latency — the reason cache
/// persistence exists. Each iteration stands up a FRESH service (the
/// "restarted process") and submits the whole audit workload once:
///   Cold     — every request evaluates from scratch;
///   Restored — the service first loads a snapshot saved by a previous
///              service (LoadCaches, fingerprint-matched at
///              RegisterSetting), so the first batch is served from
///              yesterday's decisions with zero evaluations.
/// The gap is the restart penalty persistence removes; `misses` confirms
/// Restored did no decider work.
void RunWarmStartFirstBatch(benchmark::State& state, bool restored) {
  PartiallyClosedSetting setting = MakeAuditSetting(2048);
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);

  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 1024;
  const std::string snapshot_path =
      "/tmp/relcomp_bench_warmstart.rccs";
  if (restored) {
    // The "previous process": compute the workload once and snapshot it.
    CompletenessService warmer(options);
    Result<SettingHandle> handle = warmer.RegisterSetting(setting);
    if (!handle.ok()) {
      state.SkipWithError(handle.status().ToString().c_str());
      return;
    }
    warmer.SubmitBatch(*handle, workload);
    Status saved = warmer.SaveCaches(snapshot_path);
    if (!saved.ok()) {
      state.SkipWithError(saved.ToString().c_str());
      return;
    }
  }

  uint64_t misses = 0;
  for (auto _ : state) {
    CompletenessService service(options);
    if (restored) {
      Result<size_t> staged = service.LoadCaches(snapshot_path);
      if (!staged.ok()) {
        state.SkipWithError(staged.status().ToString().c_str());
        return;
      }
    }
    Result<SettingHandle> handle = service.RegisterSetting(setting);
    if (!handle.ok()) {
      state.SkipWithError(handle.status().ToString().c_str());
      return;
    }
    std::vector<Decision> decisions = service.SubmitBatch(*handle, workload);
    benchmark::DoNotOptimize(decisions);
    misses = service.TotalCounters().cache_misses;
  }
  state.counters["first_batch_misses"] = static_cast<double>(misses);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  if (restored) std::remove(snapshot_path.c_str());
}

void BM_Service_WarmStart_Cold(benchmark::State& state) {
  RunWarmStartFirstBatch(state, /*restored=*/false);
}
BENCHMARK(BM_Service_WarmStart_Cold)->UseRealTime();

void BM_Service_WarmStart_Restored(benchmark::State& state) {
  RunWarmStartFirstBatch(state, /*restored=*/true);
}
BENCHMARK(BM_Service_WarmStart_Restored)->UseRealTime();

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
