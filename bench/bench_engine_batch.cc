// Experiment ENG-B: batch decision throughput through the service stack.
//
// The workload models MDM audit traffic: a large closed-world patient master
// (|Dm| = state.range), an IND CC binding visits to it, and a stream of
// cheap per-query completeness decisions (RCDP strong/viable, ground MINP,
// and the PTIME IND RCQP of Corollary 7.2). The same request stream is
// answered several ways:
//   cold    — independent decider calls on the raw setting (the pre-engine
//             call pattern): every request re-derives the Adom seed (a scan
//             and sort of all |Dm| constants) and re-projects the masters;
//   warm    — SubmitBatch through the CompletenessEngine adapter over a
//             PreparedSetting built once, memoization off: the prepared-
//             artifact savings plus the (near-zero) adapter overhead;
//   memo    — the same with the LRU cache on: repeated queries collapse to
//             fingerprint lookups (the serving-traffic regime);
//   service — the CompletenessService called directly (single-setting batch
//             and the async-futures path), to show the multi-setting
//             front door costs nothing over the adapter.
// warm must beat cold at every master size, and the gap must widen with
// |Dm|; memo sits another order of magnitude above.
#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "service/service.h"

namespace relcomp {
namespace {

Value S(const std::string& s) { return Value::Sym(s); }

/// A setting with `master_rows` patients in Dm and an IND CC
/// π_nhs(Visit) ⊆ π_nhs(Patientm).
PartiallyClosedSetting MakeAuditSetting(int master_rows) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})},
                Attribute{"year", Domain::IntRange(1998, 2001)}}));
  setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    setting.dm.AddTuple("Patientm", {S("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}, VarId{2}}}});
  setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                           std::vector<int>{0});
  return setting;
}

/// A small audited instance whose patients exist in every MakeAuditSetting.
CInstance MakeAuditedInstance(const DatabaseSchema& schema) {
  Instance db(schema);
  db.AddTuple("Visit", {S("nhs-0"), S("EDI"), Value::Int(1999)});
  db.AddTuple("Visit", {S("nhs-1"), S("LON"), Value::Int(2000)});
  db.AddTuple("Visit", {S("nhs-2"), S("EDI"), Value::Int(2001)});
  return CInstance::FromInstance(db);
}

/// One audit sweep: `distinct` per-patient queries, each decided in four
/// problem kinds (mixed RCDP / RCQP / MINP traffic), `repeat` times over.
std::vector<DecisionRequest> MakeWorkload(const CInstance& audited,
                                          int distinct, int repeat) {
  std::vector<DecisionRequest> requests;
  for (int r = 0; r < repeat; ++r) {
    for (int i = 0; i < distinct; ++i) {
      // q_i(c) :- Visit("nhs-i", c, y): which cities has patient i visited?
      // Head and join variables sit in finite-domain columns, so the
      // decision itself is cheap — per-request setup is the dominant cost.
      ConjunctiveQuery cq(
          {CTerm(VarId{0})},
          {RelAtom{"Visit",
                   {CTerm(S("nhs-" + std::to_string(i))), CTerm(VarId{0}),
                    CTerm(VarId{1})}}});
      Query q = Query::Cq(std::move(cq));
      for (ProblemKind kind :
           {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
            ProblemKind::kRcqpStrong, ProblemKind::kMinpStrong}) {
        DecisionRequest request;
        request.kind = kind;
        request.query = q;
        request.cinstance = audited;
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

constexpr int kDistinctQueries = 8;

void BM_Cold_IndependentCalls(benchmark::State& state) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  for (auto _ : state) {
    for (const DecisionRequest& request : workload) {
      Decision decision = DecideCold(request, setting);
      benchmark::DoNotOptimize(decision);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_Cold_IndependentCalls)->Arg(256)->Arg(2048)->Arg(8192);

void RunEngineBatch(benchmark::State& state, size_t cache_capacity) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  EngineOptions options;
  options.num_workers = 4;
  options.cache_capacity = cache_capacity;
  options.memoize = cache_capacity > 0;
  auto engine = CompletenessEngine::Create(setting, options);
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = (*engine)->SubmitBatch(workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["cache_hits"] =
      static_cast<double>((*engine)->counters().cache_hits);
}

void BM_Engine_WarmBatch(benchmark::State& state) {
  RunEngineBatch(state, /*cache_capacity=*/0);
}
BENCHMARK(BM_Engine_WarmBatch)->Arg(256)->Arg(2048)->Arg(8192);

void BM_Engine_MemoizedBatch(benchmark::State& state) {
  RunEngineBatch(state, /*cache_capacity=*/1024);
}
BENCHMARK(BM_Engine_MemoizedBatch)->Arg(256)->Arg(2048)->Arg(8192);

void RunServiceBatch(benchmark::State& state, size_t cache_capacity) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = cache_capacity;
  options.memoize = cache_capacity > 0;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(*handle, workload);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}

void BM_Service_WarmBatch(benchmark::State& state) {
  RunServiceBatch(state, /*cache_capacity=*/0);
}
BENCHMARK(BM_Service_WarmBatch)->Arg(256)->Arg(2048)->Arg(8192);

void BM_Service_MemoizedBatch(benchmark::State& state) {
  RunServiceBatch(state, /*cache_capacity=*/1024);
}
BENCHMARK(BM_Service_MemoizedBatch)->Arg(256)->Arg(2048)->Arg(8192);

/// The async front door, memoized: submit the whole workload as futures and
/// drain them — the per-request promise/queue overhead on top of memo.
void BM_Service_AsyncFutures(benchmark::State& state) {
  PartiallyClosedSetting setting =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  CInstance audited = MakeAuditedInstance(setting.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    state.SkipWithError(handle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    std::vector<std::future<Decision>> futures;
    futures.reserve(workload.size());
    for (const DecisionRequest& request : workload) {
      futures.push_back(service.SubmitAsync(ServiceRequest{*handle, request}));
    }
    for (std::future<Decision>& future : futures) {
      Decision decision = future.get();
      benchmark::DoNotOptimize(decision);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_Service_AsyncFutures)->Arg(2048);

/// Two fingerprint-distinct settings interleaved in one batch: routing and
/// per-shard caching must not tax the single-setting path.
void BM_Service_TwoSettingsInterleaved(benchmark::State& state) {
  PartiallyClosedSetting setting_a =
      MakeAuditSetting(static_cast<int>(state.range(0)));
  PartiallyClosedSetting setting_b =
      MakeAuditSetting(static_cast<int>(state.range(0)) + 1);
  CInstance audited = MakeAuditedInstance(setting_a.schema);
  std::vector<DecisionRequest> workload =
      MakeWorkload(audited, kDistinctQueries, /*repeat=*/1);
  ServiceOptions options;
  options.num_workers = 4;
  CompletenessService service(options);
  Result<SettingHandle> handle_a = service.RegisterSetting(setting_a);
  Result<SettingHandle> handle_b = service.RegisterSetting(setting_b);
  if (!handle_a.ok() || !handle_b.ok()) {
    state.SkipWithError("registration failed");
    return;
  }
  std::vector<ServiceRequest> batch;
  batch.reserve(workload.size() * 2);
  for (const DecisionRequest& request : workload) {
    batch.push_back(ServiceRequest{*handle_a, request});
    batch.push_back(ServiceRequest{*handle_b, request});
  }
  for (auto _ : state) {
    std::vector<Decision> decisions = service.SubmitBatch(batch);
    benchmark::DoNotOptimize(decisions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_Service_TwoSettingsInterleaved)->Arg(2048);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
