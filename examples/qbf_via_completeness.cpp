// The hardness reductions run forwards: decide ∀X∃Y 3SAT by building the
// Prop 3.3 gadget and asking the *consistency* decider, and ∃X∀Y∃Z 3SAT via
// the viable-model RCDP gadget (Thm 6.1). Cross-checked against the brute
// QBF evaluator — a demonstration that the executable reductions are exact.
#include <cstdio>

#include "core/consistency.h"
#include "core/rcdp.h"
#include "logic/qbf.h"
#include "reductions/prop33.h"
#include "reductions/thm61_viable.h"

using namespace relcomp;

int main() {
  std::printf("=== deciding QBF through relative-completeness gadgets ===\n\n");

  int agree = 0, total = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Qbf pi2 = MakeForallExists(2, 2, RandomCnf3(4, 3, seed));
    GadgetProblem gadget = BuildConsistencyGadget(pi2);
    Result<bool> consistent = IsConsistent(gadget.setting, gadget.cinstance);
    if (!consistent.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   consistent.status().ToString().c_str());
      return 1;
    }
    bool via_gadget = !*consistent;  // ϕ true ⇔ Mod(T) empty
    bool direct = pi2.Eval();
    ++total;
    agree += (via_gadget == direct);
    std::printf("forall-exists #%llu: gadget=%d brute=%d  %s\n",
                static_cast<unsigned long long>(seed), via_gadget, direct,
                via_gadget == direct ? "ok" : "MISMATCH");
  }

  std::printf("\n");
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Qbf sigma3 = MakeExistsForallExists(1, 1, 1, RandomCnf3(3, 1, seed));
    GadgetProblem gadget = BuildViableGadget(sigma3);
    Result<bool> viable =
        RcdpViable(gadget.query, gadget.cinstance, gadget.setting);
    if (!viable.ok()) {
      std::fprintf(stderr, "error: %s\n", viable.status().ToString().c_str());
      return 1;
    }
    bool direct = sigma3.Eval();
    ++total;
    agree += (*viable == direct);
    std::printf("exists-forall-exists #%llu: gadget=%d brute=%d  %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<int>(*viable), direct,
                *viable == direct ? "ok" : "MISMATCH");
  }

  std::printf("\n%d/%d agree\n", agree, total);
  return agree == total ? 0 : 1;
}
