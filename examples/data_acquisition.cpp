// Minimal data acquisition (Examples 2.2 / 2.4): use RCDP witnesses to find
// what is missing, extend the database one tuple at a time until the query
// is complete, then verify minimality with MINP.
#include <cstdio>

#include "core/minp.h"
#include "core/rcdp.h"
#include "query/printer.h"
#include "reductions/examples_fig1.h"

using namespace relcomp;

int main() {
  PatientsFixture fx = MakePatientsFixture();
  const PartiallyClosedSetting& setting = fx.acquisition;

  std::printf("Query Q2: %s\n\n", fx.q2.ToString().c_str());
  Instance db = fx.ground;

  // Acquisition loop: while incomplete, add the witness extension's tuples.
  for (int round = 0; round < 5; ++round) {
    CompletenessWitness witness;
    Result<bool> complete =
        RcdpStrongGround(fx.q2, db, setting, {}, nullptr, &witness);
    if (!complete.ok()) {
      std::fprintf(stderr, "error: %s\n", complete.status().ToString().c_str());
      return 1;
    }
    if (*complete) {
      std::printf("round %d: database is now complete for Q2.\n", round);
      break;
    }
    std::printf("round %d: incomplete — %s\n", round, witness.note.c_str());
    // Acquire the tuples the witness extension adds.
    size_t added = 0;
    for (size_t r = 0; r < witness.extension.relations().size(); ++r) {
      const Relation& ext_rel = witness.extension.relations()[r];
      for (const Tuple& t : ext_rel.rows()) {
        if (db.AddTuple(ext_rel.schema().name(), t)) {
          std::printf("  acquiring %s into %s\n", TupleToString(t).c_str(),
                      ext_rel.schema().name().c_str());
          ++added;
        }
      }
    }
    if (added == 0) break;
  }

  Result<Relation> answer = fx.q2.Eval(db);
  if (answer.ok()) {
    std::printf("\nfinal answer to Q2: %s\n", answer->ToString().c_str());
  }

  // Minimality check: is the whole database minimal for Q2? (No: the
  // unrelated London visits are removable.)
  Result<bool> minimal = MinpStrongGround(fx.q2, db, setting);
  if (minimal.ok()) {
    std::printf("full database minimal for Q2? %s\n", *minimal ? "yes" : "no");
  }

  // A minimal complete database for Q2: just the acquired tuple.
  Instance minimal_db(setting.schema);
  minimal_db.AddTuple(
      "MVisit", {Value::Sym("915-15-321"), Value::Sym("Alice"),
                 Value::Sym("EDI"), Value::Int(2000), Value::Sym("F"),
                 Value::Sym("15/03/2015"), Value::Sym("Flu"),
                 Value::Sym("01")});
  Result<bool> min2 = MinpStrongGround(fx.q2, minimal_db, setting);
  if (min2.ok()) {
    std::printf("single-tuple database minimal for Q2? %s\n",
                *min2 ? "yes" : "no");
  }
  return 0;
}
