// Quickstart: the paper's running example end to end — build the Fig. 1
// c-table, the Patientm master data and the Example 2.1 CCs, then decide
// strong / weak / viable completeness for the queries of Examples 1.1-2.3.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/consistency.h"
#include "core/rcdp.h"
#include "query/printer.h"
#include "reductions/examples_fig1.h"
#include "service/service.h"

using namespace relcomp;

namespace {

const char* Verdict(const Result<bool>& r) {
  if (!r.ok()) return r.status().ToString().c_str();
  return *r ? "YES" : "no";
}

}  // namespace

int main() {
  PatientsFixture fx = MakePatientsFixture();

  std::printf("== The Fig. 1 c-table ==\n%s\n",
              FormatCTable(fx.ctable.at("MVisit")).c_str());
  std::printf("== Master data ==\n%s\n",
              FormatRelation(fx.setting.dm.at("Patientm")).c_str());

  Result<bool> consistent = IsConsistent(fx.setting, fx.ctable);
  std::printf("c-instance consistent (Mod nonempty)?  %s\n\n",
              Verdict(consistent));

  struct Row {
    const char* name;
    const Query* q;
  } queries[] = {{"Q1 (NHS 915-15-335, EDI, born 2000)", &fx.q1},
                 {"Q4 (EDI, born 2000, visited 15/03)", &fx.q4}};

  for (const Row& row : queries) {
    std::printf("-- %s\n   %s\n", row.name, row.q->ToString().c_str());
    Result<bool> strong = RcdpStrong(*row.q, fx.ctable, fx.setting);
    Result<bool> weak = RcdpWeak(*row.q, fx.ctable, fx.setting);
    Result<bool> viable = RcdpViable(*row.q, fx.ctable, fx.setting);
    std::printf("   strongly complete: %s\n", Verdict(strong));
    std::printf("   weakly complete:   %s\n", Verdict(weak));
    std::printf("   viably complete:   %s\n\n", Verdict(viable));
  }

  // A strong-model counterexample, explained.
  CompletenessWitness witness;
  Result<bool> q4_strong =
      RcdpStrong(fx.q4, fx.ctable, fx.setting, {}, nullptr, &witness);
  if (q4_strong.ok() && !*q4_strong) {
    std::printf("Why Q4 is not strongly complete:\n%s\n",
                witness.ToString().c_str());
  }

  // The same decision through the service front door — the deployment
  // shape: register the setting once, audit in batches, read the witness
  // off the Decision instead of threading an out-parameter.
  CompletenessService service;
  Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
  if (handle.ok()) {
    DecisionRequest request;
    request.kind = ProblemKind::kRcdpStrong;
    request.query = fx.q4;
    request.cinstance = fx.ctable;
    request.want_witness = true;
    Decision decision = service.Decide(*handle, request);
    std::printf("\nVia CompletenessService: Q4 strongly complete? %s\n",
                decision.ToString().c_str());
    if (decision.witness != nullptr) {
      std::printf("service-carried witness: %s\n",
                  decision.witness->note.c_str());
    }
  }
  return 0;
}
