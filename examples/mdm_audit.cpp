// MDM completeness audit through the CompletenessService: a workload defined
// in the textual language is registered as a setting, the queries are
// batched through the service in all three models, and incomplete queries
// come back with counterexample witnesses. This is the "user wants to know
// whether the database in use is complete for a query" scenario from the
// paper's introduction, in the deployment shape of the service layer:
// register once, audit continuously.
#include <cstdio>
#include <string>
#include <vector>

#include "service/service.h"
#include "query/parser.h"
#include "query/printer.h"

using namespace relcomp;

namespace {

const char* kProgram = R"(
# Enterprise sales database, partially closed by product master data.
schema Order(id: int, product: sym, region: {"EU", "US"}, qty: int).
schema Catalog(product: sym, tier: {"basic", "pro"}).

master ProductM(product: sym, tier: {"basic", "pro"}).
master RegionM(region: {"EU", "US"}).

minstance dm {
  ProductM("widget", "basic").
  ProductM("gadget", "pro").
}

instance db {
  Order(1, "widget", "EU", 5).
  Order(2, "gadget", "US", 3).
  Catalog("widget", "basic").
  Catalog("gadget", "pro").
}

# The catalog is bounded by the product master: closed-world dimension.
cc catalog_bound(p, t) :- Catalog(p, t) <= ProductM[product, tier].

# Workload.
query AllCatalog(p, t) :- Catalog(p, t).
query ProTier(p) :- Catalog(p, t), t = "pro".
query EuOrders(i) :- Order(i, p, r, q), r = "EU".
)";

const ProblemKind kModels[] = {ProblemKind::kRcdpStrong,
                               ProblemKind::kRcdpWeak,
                               ProblemKind::kRcdpViable};

}  // namespace

int main() {
  Result<ParsedProgram> parsed = ParseProgram(kProgram);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  ParsedProgram& p = *parsed;

  PartiallyClosedSetting setting;
  setting.schema = p.schema;
  setting.master_schema = p.master_schema;
  setting.dm = p.minstances.at("dm");
  setting.ccs = p.ccs;

  const Instance& db = p.instances.at("db");
  CInstance t = CInstance::FromInstance(db);

  // Register the setting once; RegisterSetting validates it. Auditing the
  // same master snapshot again later would dedup onto this shard.
  CompletenessService service;
  Result<SettingHandle> handle = service.RegisterSetting(setting);
  if (!handle.ok()) {
    std::fprintf(stderr, "invalid setting: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }

  // One batch: every query in every model, witnesses requested so the
  // incomplete ones explain themselves.
  std::vector<ServiceRequest> batch;
  std::vector<std::string> names;
  for (const auto& [name, query] : p.queries) {
    for (ProblemKind model : kModels) {
      DecisionRequest request;
      request.kind = model;
      request.query = query;
      request.cinstance = t;
      request.want_witness = true;
      batch.push_back(ServiceRequest{*handle, std::move(request)});
    }
    names.push_back(name);
  }
  std::vector<Decision> decisions = service.SubmitBatch(batch);

  std::printf("=== MDM completeness audit (service handle %llu) ===\n\n%s\n",
              static_cast<unsigned long long>(handle->id),
              FormatInstance(db).c_str());
  std::printf("%-14s %-9s %-8s %-8s  answer\n", "query", "strong", "weak",
              "viable");
  size_t slot = 0;
  std::vector<const Decision*> incomplete;
  for (const std::string& name : names) {
    const Decision& strong = decisions[slot];
    const Decision& weak = decisions[slot + 1];
    const Decision& viable = decisions[slot + 2];
    auto verdict = [](const Decision& d) {
      return !d.status.ok() ? "err" : (d.answer ? "YES" : "no");
    };
    Result<Relation> answer = batch[slot].request.query.Eval(db);
    std::printf("%-14s %-9s %-8s %-8s  %s\n", name.c_str(), verdict(strong),
                verdict(weak), verdict(viable),
                answer.ok() ? answer->ToString().c_str() : "?");
    if (strong.status.ok() && !strong.answer && strong.witness != nullptr) {
      incomplete.push_back(&strong);
    }
    slot += 3;
  }

  std::printf("\n=== why the incomplete queries fail (witnesses) ===\n");
  for (const Decision* decision : incomplete) {
    std::printf("  - %s\n", decision->witness->note.c_str());
  }
  std::printf(
      "\nReading: the catalog queries are complete (the catalog is bounded\n"
      "by product master data); the order query is open-world and cannot\n"
      "be complete — new EU orders may always arrive.\n");
  std::printf("\nservice counters: %s\n",
              service.TotalCounters().ToString().c_str());
  return 0;
}
