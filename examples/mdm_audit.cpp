// MDM completeness audit: a workload defined in the textual language is
// checked query by query — can the partially closed database answer it
// completely relative to the master data? This is the "user wants to know
// whether the database in use is complete for a query" scenario from the
// paper's introduction.
#include <cstdio>
#include <string>

#include "core/rcdp.h"
#include "query/parser.h"
#include "query/printer.h"

using namespace relcomp;

namespace {

const char* kProgram = R"(
# Enterprise sales database, partially closed by product master data.
schema Order(id: int, product: sym, region: {"EU", "US"}, qty: int).
schema Catalog(product: sym, tier: {"basic", "pro"}).

master ProductM(product: sym, tier: {"basic", "pro"}).
master RegionM(region: {"EU", "US"}).

minstance dm {
  ProductM("widget", "basic").
  ProductM("gadget", "pro").
}

instance db {
  Order(1, "widget", "EU", 5).
  Order(2, "gadget", "US", 3).
  Catalog("widget", "basic").
  Catalog("gadget", "pro").
}

# The catalog is bounded by the product master: closed-world dimension.
cc catalog_bound(p, t) :- Catalog(p, t) <= ProductM[product, tier].

# Workload.
query AllCatalog(p, t) :- Catalog(p, t).
query ProTier(p) :- Catalog(p, t), t = "pro".
query EuOrders(i) :- Order(i, p, r, q), r = "EU".
)";

}  // namespace

int main() {
  Result<ParsedProgram> parsed = ParseProgram(kProgram);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  ParsedProgram& p = *parsed;

  PartiallyClosedSetting setting;
  setting.schema = p.schema;
  setting.master_schema = p.master_schema;
  setting.dm = p.minstances.at("dm");
  setting.ccs = p.ccs;
  if (Status st = setting.Validate(); !st.ok()) {
    std::fprintf(stderr, "invalid setting: %s\n", st.ToString().c_str());
    return 1;
  }

  const Instance& db = p.instances.at("db");
  CInstance t = CInstance::FromInstance(db);

  std::printf("=== MDM completeness audit ===\n\n%s\n",
              FormatInstance(db).c_str());
  std::printf("%-14s %-9s %-8s %-8s  answer\n", "query", "strong", "weak",
              "viable");
  for (const auto& [name, query] : p.queries) {
    Result<bool> strong = RcdpStrong(query, t, setting);
    Result<bool> weak = RcdpWeak(query, t, setting);
    Result<bool> viable = RcdpViable(query, t, setting);
    Result<Relation> answer = query.Eval(db);
    auto verdict = [](const Result<bool>& r) {
      return !r.ok() ? "err" : (*r ? "YES" : "no");
    };
    std::printf("%-14s %-9s %-8s %-8s  %s\n", name.c_str(), verdict(strong),
                verdict(weak), verdict(viable),
                answer.ok() ? answer->ToString().c_str() : "?");
  }
  std::printf(
      "\nReading: the catalog queries are complete (the catalog is bounded\n"
      "by product master data); the order query is open-world and cannot\n"
      "be complete — new EU orders may always arrive.\n");
  return 0;
}
