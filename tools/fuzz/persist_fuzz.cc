// Fuzz harness for the snapshot parser (cache::DecodeSnapshot) — the one
// place the process parses bytes it did not produce in this run: a
// warm-start snapshot comes from disk, survives restarts, and may be
// truncated, bit-rotted, or written by a different build.
//
// The property checked is stronger than "does not crash": any input the
// parser ACCEPTS must re-encode and re-decode to the same shape
// (round-trip closure), so an asymmetric reader/writer pair trips the
// harness even when it corrupts silently instead of crashing.
//
// Two build modes:
//   - libFuzzer (clang, -fsanitize=fuzzer,address; RELCOMP_BUILD_FUZZERS):
//     the CI fuzz-smoke job runs a short bounded session from the seed
//     corpus in tests/fuzz_corpus/persist/.
//   - standalone regression driver (RELCOMP_FUZZ_STANDALONE, any
//     compiler): replays the corpus files named on the command line (or
//     found in corpus directories) through the same entry point, so
//     tier-1 exercises every past finding under plain gcc.
#include <cstdint>
#include <string>

#include "cache/persist.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  relcomp::Result<relcomp::cache::Snapshot> decoded =
      relcomp::cache::DecodeSnapshot(bytes);
  if (decoded.ok()) {
    const std::string reencoded = relcomp::cache::EncodeSnapshot(*decoded);
    relcomp::Result<relcomp::cache::Snapshot> again =
        relcomp::cache::DecodeSnapshot(reencoded);
    if (!again.ok() || again->shards.size() != decoded->shards.size() ||
        again->TotalEntries() != decoded->TotalEntries()) {
      __builtin_trap();  // round-trip closure violated
    }
  }
  return 0;
}

#ifdef RELCOMP_FUZZ_STANDALONE
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: persist_fuzz_regression <corpus-file-or-dir>...\n");
    return 2;
  }
  for (const std::filesystem::path& path : inputs) {
    const std::string bytes = ReadAll(path);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::printf("ok %s (%zu bytes)\n", path.string().c_str(), bytes.size());
  }
  std::printf("replayed %zu corpus input(s)\n", inputs.size());
  return 0;
}
#endif  // RELCOMP_FUZZ_STANDALONE
