// lock-rank-sync: keeps the three copies of the lock order honest —
//
//   1. every `LockRank::kX` spelled anywhere must name a member of the
//      enum in src/util/mutex.h (catches construction with an
//      unregistered rank);
//   2. the README "Lock-rank table" must list exactly the enum's
//      (rank value, constant) pairs — no drift in either direction;
//   3. a statically visible MutexLock nested inside another MutexLock
//      scope must acquire a strictly higher rank, resolving each lock's
//      mutex to its declared rank via the same file, the paired
//      header/source, or a globally unique declaration (ambiguous names
//      are skipped — the runtime checker still covers them).
//
// The runtime rank checker catches dynamic orderings; this rule catches
// the ones visible in a single function body at review time, before any
// test runs.
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace relcomp {
namespace lint {
namespace {

constexpr const char* kMutexHeader = "src/util/mutex.h";
constexpr const char* kRule = "lock-rank-sync";

const SourceFile* FindFile(const Tree& tree, const std::string& rel_path) {
  for (const SourceFile& f : tree.files) {
    if (f.rel_path == rel_path) return &f;
  }
  return nullptr;
}

/// Parses `enum class LockRank : int { kName = value, ... }`.
std::map<std::string, int> ParseLockRankEnum(const SourceFile& mutex_h) {
  std::map<std::string, int> ranks;
  const std::vector<Token>& t = mutex_h.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].IsIdent("enum") && t[i + 1].IsIdent("class") &&
          t[i + 2].IsIdent("LockRank"))) {
      continue;
    }
    size_t j = i + 3;
    while (j < t.size() && !t[j].IsPunct("{")) ++j;
    const size_t close = MatchForward(t, j);
    if (close == std::string::npos) return ranks;
    for (size_t k = j + 1; k + 2 < close; ++k) {
      if (t[k].kind == Token::Kind::kIdent && t[k + 1].IsPunct("=") &&
          t[k + 2].kind == Token::Kind::kNumber) {
        ranks[t[k].text] = std::atoi(t[k + 2].text.c_str());
        k += 2;
      }
    }
    return ranks;
  }
  return ranks;
}

/// `Mutex <name>{LockRank::kX, ...}` or `Mutex <name>(LockRank::kX, ...)`
/// declaration sites, mapped name -> enum constant.
std::map<std::string, std::string> FindMutexDecls(const SourceFile& f) {
  std::map<std::string, std::string> decls;
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i + 5 < t.size(); ++i) {
    if (!(t[i].IsIdent("Mutex") && t[i + 1].kind == Token::Kind::kIdent &&
          (t[i + 2].IsPunct("{") || t[i + 2].IsPunct("(")) &&
          t[i + 3].IsIdent("LockRank") && t[i + 4].IsPunct("::") &&
          t[i + 5].kind == Token::Kind::kIdent)) {
      continue;
    }
    decls[t[i + 1].text] = t[i + 5].text;
  }
  return decls;
}

std::string PairedPath(const std::string& rel_path) {
  const size_t dot = rel_path.rfind('.');
  if (dot == std::string::npos) return "";
  const std::string ext = rel_path.substr(dot);
  if (ext == ".cc") return rel_path.substr(0, dot) + ".h";
  if (ext == ".h") return rel_path.substr(0, dot) + ".cc";
  return "";
}

struct TableRow {
  int line;  // 1-based README line
  int rank;
  std::string constant;
};

/// Rows of the README "### Lock-rank table": `| <rank> | \`kConstant\` |
/// ...`. Returns false if the heading is absent (nothing to check).
bool ParseReadmeTable(const std::vector<std::string>& lines,
                      std::vector<TableRow>* rows, int* heading_line) {
  size_t i = 0;
  for (; i < lines.size(); ++i) {
    if (lines[i].find("### Lock-rank table") != std::string::npos) break;
  }
  if (i == lines.size()) return false;
  *heading_line = static_cast<int>(i) + 1;
  for (++i; i < lines.size(); ++i) {
    const std::string& ln = lines[i];
    if (ln.rfind("#", 0) == 0) break;  // next heading ends the section
    if (ln.empty() || ln[0] != '|') continue;
    // cell 1: the rank
    size_t p = 1;
    while (p < ln.size() && std::isspace(static_cast<unsigned char>(ln[p]))) {
      ++p;
    }
    if (p >= ln.size() || !std::isdigit(static_cast<unsigned char>(ln[p]))) {
      continue;  // header or separator row
    }
    TableRow row;
    row.line = static_cast<int>(i) + 1;
    row.rank = std::atoi(ln.c_str() + p);
    // cell 2: the first backticked span is the enum constant
    const size_t bar = ln.find('|', p);
    const size_t tick = ln.find('`', bar == std::string::npos ? p : bar);
    const size_t tick2 =
        tick == std::string::npos ? tick : ln.find('`', tick + 1);
    if (tick2 == std::string::npos) continue;
    row.constant = ln.substr(tick + 1, tick2 - tick - 1);
    rows->push_back(row);
  }
  return true;
}

}  // namespace

void LockRankSyncRule(const Tree& tree, std::vector<Finding>* out) {
  const SourceFile* mutex_h = FindFile(tree, kMutexHeader);
  if (mutex_h == nullptr) return;  // fixture tree without the header
  const std::map<std::string, int> ranks = ParseLockRankEnum(*mutex_h);
  if (ranks.empty()) return;

  // 1. Every LockRank::kX names a registered rank.
  for (const SourceFile& f : tree.files) {
    const std::vector<Token>& t = f.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].IsIdent("LockRank") && t[i + 1].IsPunct("::") &&
          t[i + 2].kind == Token::Kind::kIdent &&
          ranks.count(t[i + 2].text) == 0) {
        out->push_back(Finding{
            kRule, f.rel_path, t[i + 2].line,
            "LockRank::" + t[i + 2].text + " is not a member of the " +
                "LockRank enum in " + kMutexHeader +
                "; register the rank (and its README table row) first"});
      }
    }
  }

  // 2. README table <-> enum bijection.
  std::vector<TableRow> rows;
  int heading_line = 0;
  if (ParseReadmeTable(tree.readme_lines, &rows, &heading_line)) {
    std::set<std::string> seen;
    for (const TableRow& row : rows) {
      const auto it = ranks.find(row.constant);
      if (it == ranks.end()) {
        out->push_back(Finding{
            kRule, "README.md", row.line,
            "lock-rank table lists `" + row.constant +
                "` which is not a LockRank enum member"});
      } else if (it->second != row.rank) {
        out->push_back(Finding{
            kRule, "README.md", row.line,
            "lock-rank table says `" + row.constant + "` = " +
                std::to_string(row.rank) + " but the enum says " +
                std::to_string(it->second)});
      }
      if (!seen.insert(row.constant).second) {
        out->push_back(Finding{kRule, "README.md", row.line,
                               "lock-rank table lists `" + row.constant +
                                   "` more than once"});
      }
    }
    for (const auto& [name, value] : ranks) {
      if (seen.count(name) == 0) {
        out->push_back(Finding{
            kRule, "README.md", heading_line,
            "LockRank::" + name + " (= " + std::to_string(value) +
                ") has no row in the README lock-rank table"});
      }
    }
  }

  // 3. Statically visible MutexLock nesting must strictly ascend.
  // Resolution maps: per file, plus a global map for names that are
  // unambiguous across the whole tree.
  std::map<std::string, std::map<std::string, std::string>> decls_by_file;
  std::map<std::string, std::set<std::string>> global_candidates;
  for (const SourceFile& f : tree.files) {
    auto decls = FindMutexDecls(f);
    for (const auto& [name, constant] : decls) {
      global_candidates[name].insert(constant);
    }
    decls_by_file[f.rel_path] = std::move(decls);
  }

  auto resolve = [&](const SourceFile& f,
                     const std::string& name) -> std::string {
    for (const std::string& candidate : {name, name + "_"}) {
      const auto& here = decls_by_file[f.rel_path];
      auto it = here.find(candidate);
      if (it != here.end()) return it->second;
      const std::string paired = PairedPath(f.rel_path);
      auto pit = decls_by_file.find(paired);
      if (pit != decls_by_file.end()) {
        it = pit->second.find(candidate);
        if (it != pit->second.end()) return it->second;
      }
      auto git = global_candidates.find(candidate);
      if (git != global_candidates.end() && git->second.size() == 1) {
        return *git->second.begin();
      }
    }
    return "";
  };

  for (const SourceFile& f : tree.files) {
    const std::vector<Token>& t = f.tokens;
    struct Held {
      int depth;
      int rank;
      std::string name;
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].IsPunct("{")) ++depth;
      if (t[i].IsPunct("}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (!(t[i].IsIdent("MutexLock") && i + 2 < t.size() &&
            t[i + 1].kind == Token::Kind::kIdent && t[i + 2].IsPunct("("))) {
        continue;
      }
      const size_t close = MatchForward(t, i + 2);
      if (close == std::string::npos) continue;
      // The guarded mutex is the last identifier of the argument
      // expression (`mu_`, `t.mu`, `budget_->pressure_mu()`).
      std::string name;
      for (size_t j = i + 3; j < close; ++j) {
        if (t[j].kind == Token::Kind::kIdent) name = t[j].text;
      }
      int rank = -1;
      if (!name.empty()) {
        const std::string constant = resolve(f, name);
        auto it = ranks.find(constant);
        if (it != ranks.end()) rank = it->second;
      }
      if (rank >= 0) {
        for (const Held& h : held) {
          if (h.rank >= rank) {
            out->push_back(Finding{
                kRule, f.rel_path, t[i].line,
                "MutexLock acquires '" + name + "' (rank " +
                    std::to_string(rank) + ") while '" + h.name +
                    "' (rank " + std::to_string(h.rank) +
                    ") is held in an enclosing scope; ranks must strictly "
                    "ascend"});
            break;
          }
        }
      }
      held.push_back(Held{depth, rank, name});
    }
  }
}

}  // namespace lint
}  // namespace relcomp
