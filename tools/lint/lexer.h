// A minimal C++ lexer for relcomp_lint: splits a translation unit into
// identifiers, literals, punctuation, comments, and preprocessor directive
// markers, with 1-based line numbers. It does NOT preprocess — macro bodies
// lex as ordinary tokens (which is exactly what the metric-registry rule
// needs to read the X-macro table), and backslash-newline is whitespace.
//
// Deliberately lossy where the rules don't care: numbers keep their raw
// spelling, strings keep their uninterpreted contents, and multi-character
// punctuation is only fused where a rule matches on it ("::", "->", "##").
#ifndef RELCOMP_TOOLS_LINT_LEXER_H_
#define RELCOMP_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace relcomp {
namespace lint {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kString,     // text is the contents, quotes stripped, escapes kept raw
    kChar,       // character literal, quotes stripped
    kPunct,      // single char, or one of "::", "->", "##"
    kComment,    // full comment text including the // or /* */ markers
    kDirective,  // the directive head only: "#include", "#pragma", ...
  };

  Kind kind;
  std::string text;
  int line;  // 1-based line of the token's first character

  bool Is(Kind k, const char* t) const { return kind == k && text == t; }
  bool IsPunct(const char* t) const { return Is(Kind::kPunct, t); }
  bool IsIdent(const char* t) const { return Is(Kind::kIdent, t); }
};

/// Lexes `source` (one file's contents). Never fails: unrecognized bytes
/// become single-character punctuation, and an unterminated string or
/// comment is closed at end of file.
std::vector<Token> LexCpp(const std::string& source);

}  // namespace lint
}  // namespace relcomp

#endif  // RELCOMP_TOOLS_LINT_LEXER_H_
