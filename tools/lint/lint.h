// relcomp_lint — a project-specific static analyzer that machine-checks
// the cross-file invariants relcomp's correctness story leans on but a
// compiler cannot see:
//
//   checkpoint-coverage  every loop in the core search files polls a
//                        SearchCheckpoint (cancellation/deadline/step
//                        budget) or carries an explicit waiver
//   lock-rank-sync       the LockRank enum, every Mutex construction
//                        site, and the README lock-rank table agree; no
//                        statically visible MutexLock nesting acquires an
//                        equal-or-lower rank
//   metric-registry      every relcomp_* metric family is declared once
//                        in src/obs/metric_names.h, no metric name is
//                        spelled as a loose string literal elsewhere in
//                        src/, and the README metric table matches the
//                        registry row for row
//   banned-constructs    raw std::mutex / std::lock_guard /
//                        std::condition_variable / std::thread /
//                        std::rand / sleep_for outside src/util/, and
//                        headers without an include guard
//
// Any finding can be waived at the offending line (same line or the line
// above) with:   // LINT:waive(<rule-id>, <reason>)
//
// The analysis is token-level and heuristic by design: it prefers loud
// false positives (waivable, with a reason that documents the exception)
// over silent false negatives, and it never needs a compilation database
// or a specific compiler.
#ifndef RELCOMP_TOOLS_LINT_LINT_H_
#define RELCOMP_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace relcomp {
namespace lint {

struct Finding {
  std::string rule;
  std::string file;  // path relative to the lint root, e.g. "src/core/minp.cc"
  int line = 0;
  std::string message;
};

/// One lexed file. Comment tokens are removed after waiver extraction so
/// rules never take evidence from prose; directives are kept for the
/// header-guard check.
struct SourceFile {
  std::string rel_path;
  std::vector<Token> tokens;
};

/// The unit every rule runs over: all .h/.cc files under <root>/src and
/// <root>/tools, plus README.md split into lines. Missing pieces load as
/// empty — each rule degrades gracefully, which is what lets the fixture
/// corpus exercise one rule with a three-file micro-tree.
struct Tree {
  std::string root;
  std::vector<SourceFile> files;
  std::vector<std::string> readme_lines;  // empty if README.md is absent
};

struct Rule {
  const char* id;
  const char* summary;
  void (*fn)(const Tree&, std::vector<Finding>*);
};

/// All rules in reporting order.
const std::vector<Rule>& AllRules();

struct Options {
  std::string root = ".";
  std::vector<std::string> rules;  // empty = run every rule
};

/// Loads the tree under opts.root, runs the selected rules, drops waived
/// findings, and returns the rest sorted by (file, line, rule). On a load
/// failure (no src/ or tools/ under root) sets *error and returns empty.
std::vector<Finding> RunLint(const Options& opts, std::string* error);

/// "path:line: error: [rule] message" — the gcc-style format editors and
/// CI annotations already understand.
std::string FormatFinding(const Finding& f);

// ---- shared helpers (exposed for the rule implementations and tests) ----

/// Index of the punctuation matching the opener at `open_idx` ("(", "{" or
/// "["), counting only that pair; npos if unbalanced.
size_t MatchForward(const std::vector<Token>& toks, size_t open_idx);

/// A heuristically detected function definition: `name` is the last
/// identifier before the parameter list, the body is toks[body_begin,
/// body_end) between its braces.
struct FunctionDef {
  std::string name;
  size_t body_begin = 0;
  size_t body_end = 0;
};

/// Scans a token stream for function definitions (free functions, member
/// definitions, class-inline methods). Token-level heuristic: misses
/// nothing the rules currently care about, but may return the occasional
/// macro-invocation-with-block as a "function" — callers must tolerate
/// junk entries.
std::vector<FunctionDef> FindFunctions(const std::vector<Token>& toks);

// The individual rules (registered in AllRules; exposed for tests).
void CheckpointCoverageRule(const Tree& tree, std::vector<Finding>* out);
void LockRankSyncRule(const Tree& tree, std::vector<Finding>* out);
void MetricRegistryRule(const Tree& tree, std::vector<Finding>* out);
void BannedConstructsRule(const Tree& tree, std::vector<Finding>* out);

}  // namespace lint
}  // namespace relcomp

#endif  // RELCOMP_TOOLS_LINT_LINT_H_
