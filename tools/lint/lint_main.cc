// relcomp_lint CLI. Exit status: 0 clean, 1 findings, 2 usage or I/O
// error. Findings print to stdout in gcc format so editors and CI
// annotations pick them up; diagnostics go to stderr.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: relcomp_lint [--root DIR] [--rule ID]... [--list-rules]\n"
      "\n"
      "Checks relcomp's cross-file invariants over DIR (default: .).\n"
      "Waive a finding at its line (or the line above) with:\n"
      "    // LINT:waive(<rule-id>, <reason>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  relcomp::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      opts.rules.push_back(argv[++i]);
    } else if (arg == "--list-rules") {
      for (const relcomp::lint::Rule& rule : relcomp::lint::AllRules()) {
        std::printf("%-22s %s\n", rule.id, rule.summary);
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "relcomp_lint: unknown argument '%s'\n",
                   arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  for (const std::string& id : opts.rules) {
    bool known = false;
    for (const relcomp::lint::Rule& rule : relcomp::lint::AllRules()) {
      known = known || id == rule.id;
    }
    if (!known) {
      std::fprintf(stderr, "relcomp_lint: unknown rule '%s'\n", id.c_str());
      return 2;
    }
  }

  std::string error;
  const std::vector<relcomp::lint::Finding> findings =
      relcomp::lint::RunLint(opts, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "relcomp_lint: %s\n", error.c_str());
    return 2;
  }
  for (const relcomp::lint::Finding& f : findings) {
    std::printf("%s\n", relcomp::lint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "relcomp_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
