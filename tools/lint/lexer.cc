#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace relcomp {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> LexCpp(const std::string& src) {
  std::vector<Token> out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  // True until the first token of a physical line — a '#' here starts a
  // preprocessor directive.
  bool at_line_start = true;

  auto push = [&](Token::Kind kind, std::string text, int tok_line) {
    out.push_back(Token{kind, std::move(text), tok_line});
    at_line_start = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {  // line continuation
      ++line;
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      push(Token::Kind::kComment, src.substr(start, i - start), line);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      push(Token::Kind::kComment, src.substr(start, i - start), start_line);
      continue;
    }
    if (c == '#' && at_line_start) {
      const size_t start = i;
      ++i;
      while (i < n && std::isspace(static_cast<unsigned char>(src[i])) &&
             src[i] != '\n') {
        ++i;
      }
      while (i < n && IsIdentChar(src[i])) ++i;
      // "#include": swallow the rest of the line so <paths> and "paths"
      // never masquerade as comparisons or string literals.
      std::string head = src.substr(start, i - start);
      if (head == "#include") {
        while (i < n && src[i] != '\n') ++i;
      }
      push(Token::Kind::kDirective, std::move(head), line);
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // Raw string literal: an encoding prefix ending in R, directly
      // followed by `"delim( ... )delim"`.
      if (i < n && src[i] == '"' && !word.empty() && word.back() == 'R' &&
          (word == "R" || word == "LR" || word == "uR" || word == "UR" ||
           word == "u8R")) {
        ++i;  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        if (i < n) ++i;  // '('
        const std::string closer = ")" + delim + "\"";
        const size_t body_start = i;
        const int tok_line = line;
        size_t end = src.find(closer, i);
        if (end == std::string::npos) end = n;
        for (size_t k = body_start; k < end; ++k) {
          if (src[k] == '\n') ++line;
        }
        push(Token::Kind::kString, src.substr(body_start, end - body_start),
             tok_line);
        i = (end == n) ? n : end + closer.size();
        continue;
      }
      push(Token::Kind::kIdent, std::move(word), line);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n &&
                   std::isalnum(static_cast<unsigned char>(src[i + 1]))) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, src.substr(start, i - start), line);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int tok_line = line;
      ++i;
      const size_t start = i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      push(quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
           src.substr(start, i - start), tok_line);
      if (i < n) ++i;  // closing quote
      continue;
    }
    // Punctuation; fuse only the pairs the rules match on.
    if (i + 1 < n) {
      const char d = src[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          (c == '#' && d == '#')) {
        push(Token::Kind::kPunct, src.substr(i, 2), line);
        i += 2;
        continue;
      }
    }
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace lint
}  // namespace relcomp
