// checkpoint-coverage: every loop in the files implementing the paper's
// search procedures must poll a SearchCheckpoint — the PR-4 guarantee that
// cancellation, deadlines, and step budgets reach every unbounded loop —
// or carry an explicit waiver naming why it is bounded.
//
// "Polls" is computed as a fixpoint over the core files: the seed set is
// the checkpoint surface itself (Tick / Poll / Heartbeat /
// SearchCheckpoint), and a function defined in a core file becomes polling
// if its body mentions any polling name. A loop has evidence if its body
// mentions any polling name; only the outermost loop of an evidence-free
// nest is reported (fixing the outer loop fixes the nest).
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace relcomp {
namespace lint {
namespace {

const char* const kCoreStems[] = {"ground", "enumerate", "minp",
                                  "rcdp",   "rcqp",      "bounded",
                                  "consistency", "tractable"};

bool IsCoreSearchFile(const std::string& rel_path) {
  for (const char* stem : kCoreStems) {
    const std::string base = std::string("src/core/") + stem;
    if (rel_path == base + ".cc" || rel_path == base + ".h") return true;
  }
  return false;
}

struct Loop {
  size_t kw;  // token index of for/while/do
  size_t body_begin;
  size_t body_end;
  int line;
};

/// Finds every for/while/do loop in [0, toks.size()). The body span of a
/// braced loop is the tokens between its braces; a single-statement body
/// runs to the terminating ';' at paren/brace depth zero. The `while` of a
/// do-while is consumed with its `do` and never double-counted.
std::vector<Loop> FindLoops(const std::vector<Token>& toks) {
  std::vector<Loop> loops;
  std::set<size_t> dowhile_tails;
  const size_t n = toks.size();

  auto body_after = [&](size_t pos, size_t* begin, size_t* end) {
    if (pos < n && toks[pos].IsPunct("{")) {
      const size_t close = MatchForward(toks, pos);
      if (close == std::string::npos) return false;
      *begin = pos + 1;
      *end = close;
      return true;
    }
    int paren = 0;
    int brace = 0;
    for (size_t j = pos; j < n; ++j) {
      const Token& t = toks[j];
      if (t.IsPunct("(")) ++paren;
      if (t.IsPunct(")")) --paren;
      if (t.IsPunct("{")) ++brace;
      if (t.IsPunct("}")) --brace;
      if (t.IsPunct(";") && paren == 0 && brace == 0) {
        *begin = pos;
        *end = j;
        return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if ((t.text == "for" || t.text == "while") &&
        dowhile_tails.count(i) == 0) {
      if (i + 1 >= n || !toks[i + 1].IsPunct("(")) continue;
      const size_t close = MatchForward(toks, i + 1);
      if (close == std::string::npos) continue;
      Loop loop{i, 0, 0, t.line};
      if (body_after(close + 1, &loop.body_begin, &loop.body_end)) {
        loops.push_back(loop);
      }
    } else if (t.text == "do" && i + 1 < n && toks[i + 1].IsPunct("{")) {
      Loop loop{i, 0, 0, t.line};
      if (!body_after(i + 1, &loop.body_begin, &loop.body_end)) continue;
      loops.push_back(loop);
      // Mark the trailing `while` so it is not counted as its own loop.
      const size_t after = loop.body_end + 1;
      if (after < n && toks[after].IsIdent("while")) {
        dowhile_tails.insert(after);
      }
    }
  }
  return loops;
}

}  // namespace

void CheckpointCoverageRule(const Tree& tree, std::vector<Finding>* out) {
  std::vector<const SourceFile*> core_files;
  for (const SourceFile& f : tree.files) {
    if (IsCoreSearchFile(f.rel_path)) core_files.push_back(&f);
  }
  if (core_files.empty()) return;

  // Fixpoint: which functions defined in the core files transitively reach
  // a checkpoint poll?
  std::set<std::string> polling = {"Tick", "Poll", "Heartbeat",
                                   "SearchCheckpoint"};
  struct Fn {
    const SourceFile* file;
    FunctionDef def;
  };
  std::vector<Fn> fns;
  for (const SourceFile* f : core_files) {
    for (FunctionDef& d : FindFunctions(f->tokens)) {
      fns.push_back(Fn{f, std::move(d)});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fn& fn : fns) {
      if (polling.count(fn.def.name) != 0) continue;
      for (size_t i = fn.def.body_begin; i < fn.def.body_end; ++i) {
        const Token& t = fn.file->tokens[i];
        if (t.kind == Token::Kind::kIdent && polling.count(t.text) != 0) {
          polling.insert(fn.def.name);
          changed = true;
          break;
        }
      }
    }
  }

  for (const SourceFile* f : core_files) {
    const std::vector<Loop> loops = FindLoops(f->tokens);
    for (const Loop& loop : loops) {
      bool outermost = true;
      for (const Loop& other : loops) {
        if (other.body_begin <= loop.kw && loop.kw < other.body_end) {
          outermost = false;
          break;
        }
      }
      if (!outermost) continue;
      bool evidence = false;
      for (size_t i = loop.body_begin; i < loop.body_end && !evidence; ++i) {
        const Token& t = f->tokens[i];
        evidence = t.kind == Token::Kind::kIdent && polling.count(t.text) != 0;
      }
      if (!evidence) {
        out->push_back(Finding{
            "checkpoint-coverage", f->rel_path, loop.line,
            "loop in a core search file never polls a SearchCheckpoint "
            "(Tick/Poll/Heartbeat, directly or via a polling callee); add "
            "a checkpoint.Tick() or waive with // "
            "LINT:waive(checkpoint-coverage, <why bounded>)"});
      }
    }
  }
}

}  // namespace lint
}  // namespace relcomp
