#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

namespace relcomp {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// A waiver comment: suppresses findings for `rule` at its own line and
/// the line below (so the comment can sit above the offending statement).
struct Waiver {
  std::string file;
  int line;
  std::string rule;
};

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string ReadFileOrEmpty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extracts every LINT:waive(rule[, reason]) marker from a comment token.
void ParseWaivers(const std::string& file, const Token& comment,
                  std::vector<Waiver>* out) {
  static const std::string kMarker = "LINT:waive(";
  size_t pos = 0;
  while ((pos = comment.text.find(kMarker, pos)) != std::string::npos) {
    pos += kMarker.size();
    const size_t end = comment.text.find_first_of(",)", pos);
    if (end == std::string::npos) break;
    std::string rule = comment.text.substr(pos, end - pos);
    // trim
    const size_t b = rule.find_first_not_of(" \t");
    const size_t e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) rule = rule.substr(b, e - b + 1);
    if (!rule.empty()) out->push_back(Waiver{file, comment.line, rule});
    pos = end;
  }
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "do" || s == "sizeof" ||
         s == "else" || s == "case" || s == "new" || s == "delete" ||
         s == "throw" || s == "alignof" || s == "decltype" ||
         s == "static_assert" || s == "defined";
}

}  // namespace

size_t MatchForward(const std::vector<Token>& toks, size_t open_idx) {
  if (open_idx >= toks.size() || toks[open_idx].kind != Token::Kind::kPunct) {
    return std::string::npos;
  }
  const std::string& open = toks[open_idx].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "{") {
    close = "}";
  } else if (open == "[") {
    close = "]";
  } else {
    return std::string::npos;
  }
  int depth = 0;
  for (size_t i = open_idx; i < toks.size(); ++i) {
    if (toks[i].IsPunct(open.c_str())) ++depth;
    if (toks[i].IsPunct(close.c_str()) && --depth == 0) return i;
  }
  return std::string::npos;
}

std::vector<FunctionDef> FindFunctions(const std::vector<Token>& toks) {
  std::vector<FunctionDef> out;
  const size_t n = toks.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        IsControlKeyword(toks[i].text) || !toks[i + 1].IsPunct("(")) {
      continue;
    }
    const size_t close = MatchForward(toks, i + 1);
    if (close == std::string::npos) continue;
    // Walk the header cruft after the parameter list — const, noexcept,
    // trailing return, constructor initializers — until the body '{' or
    // something that proves this is a declaration or expression.
    size_t j = close + 1;
    size_t body_open = std::string::npos;
    while (j < n) {
      const Token& t = toks[j];
      if (t.IsPunct("{")) {
        body_open = j;
        break;
      }
      if (t.IsPunct(";") || t.IsPunct("=") || t.IsPunct(")") ||
          t.IsPunct("}") || t.IsPunct(".")) {
        break;
      }
      if (t.IsPunct("(")) {  // initializer arguments, noexcept(...)
        const size_t sub = MatchForward(toks, j);
        if (sub == std::string::npos) break;
        j = sub + 1;
        continue;
      }
      if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kNumber ||
          t.IsPunct("::") || t.IsPunct(":") || t.IsPunct(",") ||
          t.IsPunct("->") || t.IsPunct("&") || t.IsPunct("*") ||
          t.IsPunct("<") || t.IsPunct(">") || t.IsPunct("[") ||
          t.IsPunct("]")) {
        ++j;
        continue;
      }
      break;
    }
    if (body_open == std::string::npos) continue;
    const size_t body_close = MatchForward(toks, body_open);
    if (body_close == std::string::npos) continue;
    out.push_back(FunctionDef{toks[i].text, body_open + 1, body_close});
    // Keep scanning from inside the body so class-inline methods and
    // nested definitions are found too.
  }
  return out;
}

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule> kRules = {
      {"checkpoint-coverage",
       "core search loops must poll a SearchCheckpoint or be waived",
       CheckpointCoverageRule},
      {"lock-rank-sync",
       "LockRank enum, Mutex construction sites, README table, and "
       "statically visible MutexLock nesting must agree",
       LockRankSyncRule},
      {"metric-registry",
       "relcomp_* metric names live only in src/obs/metric_names.h and "
       "match the README metric table",
       MetricRegistryRule},
      {"banned-constructs",
       "no raw std synchronization/threads/rand/sleep outside src/util/; "
       "headers carry include guards",
       BannedConstructsRule},
  };
  return kRules;
}

std::vector<Finding> RunLint(const Options& opts, std::string* error) {
  std::vector<Finding> findings;
  const fs::path root(opts.root);
  std::error_code ec;
  const bool has_src = fs::is_directory(root / "src", ec);
  const bool has_tools = fs::is_directory(root / "tools", ec);
  if (!has_src && !has_tools) {
    if (error != nullptr) {
      *error = "no src/ or tools/ directory under root '" + opts.root + "'";
    }
    return findings;
  }

  Tree tree;
  tree.root = opts.root;
  std::vector<Waiver> waivers;
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile file;
    file.rel_path = fs::relative(p, root, ec).generic_string();
    file.tokens = LexCpp(ReadFileOrEmpty(p));
    // Pull waivers out of the comments, then drop the comments so no rule
    // ever takes evidence (e.g. a polling-function name) from prose.
    std::vector<Token> kept;
    kept.reserve(file.tokens.size());
    for (Token& t : file.tokens) {
      if (t.kind == Token::Kind::kComment) {
        ParseWaivers(file.rel_path, t, &waivers);
      } else {
        kept.push_back(std::move(t));
      }
    }
    file.tokens = std::move(kept);
    tree.files.push_back(std::move(file));
  }

  const std::string readme = ReadFileOrEmpty(root / "README.md");
  if (!readme.empty()) {
    std::istringstream in(readme);
    std::string ln;
    while (std::getline(in, ln)) tree.readme_lines.push_back(ln);
  }

  for (const Rule& rule : AllRules()) {
    if (!opts.rules.empty() &&
        std::find(opts.rules.begin(), opts.rules.end(), rule.id) ==
            opts.rules.end()) {
      continue;
    }
    rule.fn(tree, &findings);
  }

  // Drop waived findings, then sort and dedup (overlapping heuristics may
  // report one site twice).
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool waived = false;
    for (const Waiver& w : waivers) {
      if (w.rule == f.rule && w.file == f.file &&
          (w.line == f.line || w.line + 1 == f.line)) {
        waived = true;
        break;
      }
    }
    if (!waived) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());
  return kept;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": error: [" << f.rule << "] "
      << f.message;
  return out.str();
}

}  // namespace lint
}  // namespace relcomp
