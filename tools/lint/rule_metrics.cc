// metric-registry: src/obs/metric_names.h is the single source of truth
// for every relcomp_* metric family. This rule
//
//   1. parses the X-macro table (symbol, name, kind, label keys) and
//      rejects duplicate names;
//   2. bans `relcomp_*` string literals in src/ outside the registry
//      header, so no call site or test fixture can invent a family the
//      registry does not know;
//   3. checks the README "Metric reference" table against the registry in
//      both directions: every row must name a registered family with the
//      matching type and label set, and every family must have a row.
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace relcomp {
namespace lint {
namespace {

constexpr const char* kRegistryHeader = "src/obs/metric_names.h";
constexpr const char* kRule = "metric-registry";

struct Family {
  std::string kind;    // "counter", "gauge", "histogram", "rate"
  std::string labels;  // comma-joined label keys, "" if unlabeled
  int line = 0;
};

std::string KindWord(const std::string& enumerator) {
  if (enumerator == "kCounter") return "counter";
  if (enumerator == "kGauge") return "gauge";
  if (enumerator == "kHistogram") return "histogram";
  if (enumerator == "kRate") return "rate";
  return enumerator;
}

/// Parses X(Sym, "name", kKind, "labels", "help"...) rows out of the
/// registry header's token stream. Adjacent string literals concatenate.
std::map<std::string, Family> ParseRegistry(const SourceFile& header,
                                            std::vector<Finding>* out) {
  std::map<std::string, Family> families;
  const std::vector<Token>& t = header.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].IsIdent("X") && t[i + 1].IsPunct("("))) continue;
    const size_t close = MatchForward(t, i + 1);
    if (close == std::string::npos) continue;
    // Split the argument tokens on depth-1 commas.
    std::vector<std::vector<const Token*>> argv(1);
    int depth = 0;
    for (size_t j = i + 2; j < close; ++j) {
      if (t[j].IsPunct("(") || t[j].IsPunct("{")) ++depth;
      if (t[j].IsPunct(")") || t[j].IsPunct("}")) --depth;
      if (t[j].IsPunct(",") && depth == 0) {
        argv.emplace_back();
      } else {
        argv.back().push_back(&t[j]);
      }
    }
    if (argv.size() < 4) continue;
    auto joined_string = [](const std::vector<const Token*>& arg) {
      std::string s;
      for (const Token* tok : arg) {
        if (tok->kind != Token::Kind::kString) return std::string("\x01");
        s += tok->text;
      }
      return s;
    };
    const std::string name = joined_string(argv[1]);
    const std::string labels = joined_string(argv[3]);
    if (name == "\x01" || labels == "\x01" || argv[0].empty() ||
        argv[2].empty() || argv[2][0]->kind != Token::Kind::kIdent) {
      continue;
    }
    Family fam{KindWord(argv[2][0]->text), labels, argv[0][0]->line};
    if (!families.emplace(name, fam).second) {
      out->push_back(Finding{kRule, header.rel_path, fam.line,
                             "metric family '" + name +
                                 "' is declared more than once in the "
                                 "registry"});
    }
  }
  return families;
}

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// `tenant, kind` -> `tenant,kind`; an em dash or empty cell -> "".
std::string NormalizeLabels(const std::string& cell) {
  std::string out;
  for (char c : cell) {
    if (!std::isspace(static_cast<unsigned char>(c)) && c != '`') out += c;
  }
  if (out == "\xe2\x80\x94" || out == "-") return "";
  return out;
}

struct TableRow {
  int line;
  std::string name;
  std::string kind;
  std::string labels;
};

bool ParseReadmeTable(const std::vector<std::string>& lines,
                      std::vector<TableRow>* rows, int* heading_line) {
  size_t i = 0;
  for (; i < lines.size(); ++i) {
    if (lines[i].find("### Metric reference") != std::string::npos) break;
  }
  if (i == lines.size()) return false;
  *heading_line = static_cast<int>(i) + 1;
  for (++i; i < lines.size(); ++i) {
    const std::string& ln = lines[i];
    if (ln.rfind("#", 0) == 0) break;
    if (ln.empty() || ln[0] != '|') continue;
    // | `name` | type | labels | meaning |
    std::vector<std::string> cells;
    size_t start = 1;
    for (size_t p = 1; p <= ln.size(); ++p) {
      if (p == ln.size() || ln[p] == '|') {
        cells.push_back(Trim(ln.substr(start, p - start)));
        start = p + 1;
      }
    }
    if (cells.size() < 3) continue;
    const size_t tick = cells[0].find('`');
    const size_t tick2 =
        tick == std::string::npos ? tick : cells[0].find('`', tick + 1);
    if (tick2 == std::string::npos) continue;  // header / separator row
    TableRow row;
    row.line = static_cast<int>(i) + 1;
    row.name = cells[0].substr(tick + 1, tick2 - tick - 1);
    row.kind = Trim(cells[1]);
    row.labels = NormalizeLabels(cells[2]);
    if (row.name.rfind("relcomp_", 0) == 0) rows->push_back(row);
  }
  return true;
}

}  // namespace

void MetricRegistryRule(const Tree& tree, std::vector<Finding>* out) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : tree.files) {
    if (f.rel_path == kRegistryHeader) registry = &f;
  }
  if (registry == nullptr) return;  // fixture tree without a registry
  const std::map<std::string, Family> families = ParseRegistry(*registry, out);

  // 2. No relcomp_* literal outside the registry header. Scoped to src/:
  // that is where metrics are emitted; tools and tests interact with
  // metrics through the registry constants they link against.
  for (const SourceFile& f : tree.files) {
    if (f.rel_path == kRegistryHeader ||
        f.rel_path.rfind("src/", 0) != 0) {
      continue;
    }
    for (const Token& t : f.tokens) {
      if (t.kind == Token::Kind::kString &&
          t.text.find("relcomp_") != std::string::npos) {
        out->push_back(Finding{
            kRule, f.rel_path, t.line,
            "metric name literal \"" + t.text +
                "\" outside the registry; use the kMetric* constant from " +
                kRegistryHeader + " (add a family row there if it is new)"});
      }
    }
  }

  // 3. README table <-> registry bijection.
  std::vector<TableRow> rows;
  int heading_line = 0;
  if (!ParseReadmeTable(tree.readme_lines, &rows, &heading_line)) return;
  std::set<std::string> seen;
  for (const TableRow& row : rows) {
    const auto it = families.find(row.name);
    if (it == families.end()) {
      out->push_back(Finding{kRule, "README.md", row.line,
                             "metric table lists `" + row.name +
                                 "` which is not in the registry"});
      continue;
    }
    if (row.kind != it->second.kind) {
      out->push_back(Finding{
          kRule, "README.md", row.line,
          "metric table says `" + row.name + "` is a " + row.kind +
              " but the registry says " + it->second.kind});
    }
    if (row.labels != it->second.labels) {
      out->push_back(Finding{
          kRule, "README.md", row.line,
          "metric table labels for `" + row.name + "` are `" + row.labels +
              "` but the registry says `" + it->second.labels + "`"});
    }
    if (!seen.insert(row.name).second) {
      out->push_back(Finding{kRule, "README.md", row.line,
                             "metric table lists `" + row.name +
                                 "` more than once"});
    }
  }
  for (const auto& [name, family] : families) {
    if (seen.count(name) == 0) {
      out->push_back(Finding{
          kRule, "README.md", heading_line,
          "registry family '" + name +
              "' has no row in the README metric table"});
    }
  }
}

}  // namespace lint
}  // namespace relcomp
