// banned-constructs: the raw primitives every project swears off after
// the first deadlock postmortem. Outside src/util/ (where the sanctioned
// wrappers live) nothing may reach for:
//
//   std::mutex / std::lock_guard / std::scoped_lock      -> relcomp::Mutex
//      / std::condition_variable[_any] / std::unique_lock   + MutexLock
//                                                           + CondVar
//   std::thread                                          -> JoinableThread
//   std::rand / std::srand      -> seeded, reproducible generators
//   sleep_for / sleep_until     -> CondVar::WaitFor (wakeable at shutdown)
//
// Raw socket and readiness syscalls (socket/bind/listen/accept/recv/
// send/poll/select and friends) are confined to src/net/, whose
// wrappers own the EINTR, SIGPIPE, and shutdown discipline — everything
// else goes through net::Socket. Member calls (x.send(...)) and
// qualified names from other namespaces (std::bind) are not syscalls
// and pass.
//
// and every header must open with an include guard (#ifndef or
// #pragma once). Scope: src/ and tools/ — bench/ and tests/ drive the
// system from outside and may use raw threads to do it.
#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace relcomp {
namespace lint {
namespace {

constexpr const char* kRule = "banned-constructs";

bool InScope(const std::string& rel_path) {
  if (rel_path.rfind("src/util/", 0) == 0) return false;
  return rel_path.rfind("src/", 0) == 0 || rel_path.rfind("tools/", 0) == 0;
}

const std::map<std::string, std::string>& BannedStdNames() {
  static const std::map<std::string, std::string> kBanned = {
      {"mutex", "use relcomp::Mutex (util/mutex.h): it carries a LockRank "
                "and thread-safety annotations"},
      {"lock_guard", "use relcomp::MutexLock (util/mutex.h)"},
      {"scoped_lock", "use relcomp::MutexLock (util/mutex.h)"},
      {"unique_lock", "use relcomp::MutexLock (util/mutex.h)"},
      {"condition_variable", "use relcomp::CondVar (util/mutex.h)"},
      {"condition_variable_any", "use relcomp::CondVar (util/mutex.h)"},
      {"thread", "use relcomp::JoinableThread (util/thread.h): its "
                 "destructor joins instead of terminating"},
      {"rand", "use a seeded generator so runs stay reproducible"},
      {"srand", "use a seeded generator so runs stay reproducible"},
  };
  return kBanned;
}

/// Socket-layer syscalls confined to src/net/ (the wrappers there own
/// the EINTR/SIGPIPE/shutdown discipline).
const std::map<std::string, int>& SocketSyscallNames() {
  static const std::map<std::string, int> kSyscalls = {
      {"socket", 0},      {"bind", 0},         {"listen", 0},
      {"accept", 0},      {"accept4", 0},      {"connect", 0},
      {"recv", 0},        {"recvfrom", 0},     {"send", 0},
      {"sendto", 0},      {"setsockopt", 0},   {"getsockopt", 0},
      {"getsockname", 0}, {"getpeername", 0},  {"getaddrinfo", 0},
      {"shutdown", 0},    {"poll", 0},         {"ppoll", 0},
      {"select", 0},
      {"epoll_create1", 0}, {"epoll_ctl", 0},  {"epoll_wait", 0},
  };
  return kSyscalls;
}

/// True when token `i` is a call to a raw socket syscall: the name
/// followed by `(`, not a member call (`.x(` / `->x(`) and not a name
/// qualified into some namespace (`std::bind(`). A bare global
/// qualification `::socket(` IS the syscall idiom and matches.
bool IsSocketSyscall(const std::vector<Token>& t, size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  if (SocketSyscallNames().count(t[i].text) == 0) return false;
  if (i + 1 >= t.size() || !t[i + 1].IsPunct("(")) return false;
  if (i > 0 && (t[i - 1].IsPunct(".") || t[i - 1].IsPunct("->"))) return false;
  if (i > 0 && t[i - 1].IsPunct("::")) {
    // Qualified: only the global-namespace form is the syscall. The
    // lexer files keywords under kIdent, so `return ::send(...)` must
    // still read as global, not as a name qualified into `return`.
    static const std::map<std::string, int> kExprKeywords = {
        {"return", 0}, {"throw", 0}, {"else", 0},      {"do", 0},
        {"case", 0},   {"co_return", 0}, {"co_yield", 0}, {"co_await", 0},
    };
    if (i > 1 && t[i - 2].kind == Token::Kind::kIdent &&
        kExprKeywords.count(t[i - 2].text) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

void BannedConstructsRule(const Tree& tree, std::vector<Finding>* out) {
  for (const SourceFile& f : tree.files) {
    if (!InScope(f.rel_path)) continue;
    const std::vector<Token>& t = f.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].IsIdent("std") && i + 2 < t.size() && t[i + 1].IsPunct("::") &&
          t[i + 2].kind == Token::Kind::kIdent) {
        const auto it = BannedStdNames().find(t[i + 2].text);
        if (it != BannedStdNames().end()) {
          out->push_back(Finding{kRule, f.rel_path, t[i].line,
                                 "std::" + t[i + 2].text +
                                     " is banned outside src/util/; " +
                                     it->second});
        }
      }
      if (f.rel_path.rfind("src/net/", 0) != 0 && IsSocketSyscall(t, i)) {
        out->push_back(Finding{
            kRule, f.rel_path, t[i].line,
            t[i].text + "() is a raw socket syscall, confined to src/net/; "
                        "go through net::Socket (net/socket.h) so the "
                        "EINTR/SIGPIPE/shutdown discipline stays in one "
                        "place"});
      }
      if (t[i].kind == Token::Kind::kIdent &&
          (t[i].text == "sleep_for" || t[i].text == "sleep_until")) {
        out->push_back(Finding{
            kRule, f.rel_path, t[i].line,
            t[i].text + " is banned outside src/util/; sleep on a "
                        "relcomp::CondVar::WaitFor so shutdown can wake "
                        "the thread immediately"});
      }
    }
    // Headers must open with an include guard.
    if (f.rel_path.size() > 2 &&
        f.rel_path.compare(f.rel_path.size() - 2, 2, ".h") == 0) {
      const Token* first_directive = nullptr;
      for (const Token& tok : t) {
        if (tok.kind == Token::Kind::kDirective) {
          first_directive = &tok;
          break;
        }
      }
      bool guarded = false;
      if (first_directive != nullptr) {
        if (first_directive->text == "#ifndef") guarded = true;
        if (first_directive->text == "#pragma") guarded = true;
      }
      if (!guarded) {
        out->push_back(Finding{
            kRule, f.rel_path, 1,
            "header has no include guard; open with #ifndef "
            "RELCOMP_..._H_ (project style) or #pragma once"});
      }
    }
  }
}

}  // namespace lint
}  // namespace relcomp
