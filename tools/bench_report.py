#!/usr/bin/env python3
"""Runs the BM_* benchmark binaries and records a medians snapshot.

Each run appends one snapshot object to BENCH_trajectory.json (a JSON
array), so successive CI runs grow a perf trajectory that can be diffed
across commits:

    {
      "git": "<short rev or 'unknown'>",
      "timestamp": "<UTC ISO-8601>",
      "benchmarks": { "<name>": {"real_time_ns": <median>, "runs": N}, ... }
    }

Usage:
    tools/bench_report.py --build-dir build [--out BENCH_trajectory.json]
        [--filter REGEX] [--repetitions N] [--bench NAME ...]
        [--compare] [--compare-threshold 0.25] [--compare-filter ^BM_Service_]

By default every bench_* executable found in the build directory runs with
--benchmark_repetitions=N (default 3) and the per-benchmark median of
real_time is kept. Only the standard library is used; the script exits
nonzero if any benchmark binary fails.

--compare diffs the new snapshot against the PREVIOUS trajectory entry
and warns (never fails: shared CI runners are noisy) about key
benchmarks whose median regressed by more than the threshold. Under
GITHUB_ACTIONS the warnings use the ::warning annotation format so they
surface on the workflow run page.
"""

import argparse
import datetime
import json
import os
import statistics
import subprocess
import sys


def find_benches(build_dir, names):
    if names:
        paths = [os.path.join(build_dir, n) for n in names]
        missing = [p for p in paths if not os.path.isfile(p)]
        if missing:
            sys.exit("bench_report: missing benchmark binaries: %s"
                     % ", ".join(missing))
        return paths
    found = sorted(
        os.path.join(build_dir, f)
        for f in os.listdir(build_dir)
        if f.startswith("bench_") and
        os.access(os.path.join(build_dir, f), os.X_OK) and
        os.path.isfile(os.path.join(build_dir, f)))
    if not found:
        sys.exit("bench_report: no bench_* executables in %r" % build_dir)
    return found


def run_bench(path, bench_filter, repetitions):
    cmd = [
        path,
        "--benchmark_format=json",
        "--benchmark_repetitions=%d" % repetitions,
        "--benchmark_report_aggregates_only=false",
    ]
    if bench_filter:
        cmd.append("--benchmark_filter=%s" % bench_filter)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=False)
    if proc.returncode != 0:
        sys.exit("bench_report: %s exited with %d" % (path, proc.returncode))
    return json.loads(proc.stdout.decode("utf-8"))


def git_rev():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                             check=False)
        rev = out.stdout.decode("utf-8").strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except OSError:
        return "unknown"


def compare_snapshots(previous, current, threshold, name_filter):
    """Prints per-benchmark regressions beyond `threshold`; returns count."""
    import re
    pattern = re.compile(name_filter)
    github = os.environ.get("GITHUB_ACTIONS") == "true"
    regressions = 0
    prev_benches = previous.get("benchmarks", {})
    for name, row in sorted(current.get("benchmarks", {}).items()):
        if not pattern.search(name):
            continue
        base = prev_benches.get(name)
        if base is None or base.get("real_time_ns", 0) <= 0:
            continue
        ratio = row["real_time_ns"] / base["real_time_ns"]
        if ratio > 1.0 + threshold:
            regressions += 1
            message = (
                "%s regressed %.0f%% vs previous snapshot (%s): "
                "%.0f ns -> %.0f ns median"
                % (name, (ratio - 1.0) * 100.0, previous.get("git", "?"),
                   base["real_time_ns"], row["real_time_ns"]))
            if github:
                print("::warning title=bench regression::%s" % message)
            else:
                print("bench_report: WARNING: %s" % message)
    matched = sum(1 for n in current.get("benchmarks", {}) if pattern.search(n))
    print("bench_report: compare vs %s: %d key benchmark(s) checked, "
          "%d regression(s) beyond %.0f%%"
          % (previous.get("git", "?"), matched, regressions, threshold * 100))
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to every binary")
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--bench", action="append", default=[],
                        help="benchmark binary name (repeatable; default: "
                             "every bench_* in the build dir)")
    parser.add_argument("--compare", action="store_true",
                        help="warn when a key benchmark's median regressed "
                             "vs the previous trajectory entry")
    parser.add_argument("--compare-threshold", type=float, default=0.25,
                        help="relative regression that triggers a warning "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--compare-filter", default="^BM_Service_",
                        help="regex selecting the key benchmarks to compare "
                             "(default ^BM_Service_)")
    args = parser.parse_args()

    # Median over repetitions, keyed by benchmark name with the
    # "/repeats:N" suffix stripped (aggregate rows are skipped — we compute
    # our own median so --repetitions=1 still works).
    samples = {}
    for path in find_benches(args.build_dir, args.bench):
        print("bench_report: running %s" % path, flush=True)
        report = run_bench(path, args.filter, args.repetitions)
        for row in report.get("benchmarks", []):
            if row.get("run_type") == "aggregate":
                continue
            name = row["name"].split("/repeats:")[0]
            samples.setdefault(name, []).append(float(row["real_time"]))

    snapshot = {
        "git": git_rev(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
                     .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "benchmarks": {
            name: {"real_time_ns": statistics.median(times),
                   "runs": len(times)}
            for name, times in sorted(samples.items())
        },
    }

    trajectory = []
    if os.path.exists(args.out):
        with open(args.out) as f:
            trajectory = json.load(f)
        if not isinstance(trajectory, list):
            sys.exit("bench_report: %r is not a JSON array" % args.out)
    if args.compare:
        if trajectory:
            compare_snapshots(trajectory[-1], snapshot,
                              args.compare_threshold, args.compare_filter)
        else:
            print("bench_report: compare skipped (no previous snapshot)")
    trajectory.append(snapshot)
    with open(args.out, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print("bench_report: %d benchmark(s) -> %s (snapshot #%d)"
          % (len(snapshot["benchmarks"]), args.out, len(trajectory)))


if __name__ == "__main__":
    main()
