// relcomp_cli: batch completeness auditing from the command line.
//
// Loads a partially closed setting (schema, master data, CCs, instances) and
// a stream of queries from program files in the textual language of
// query/parser.h, fans the resulting decision requests through a
// CompletenessEngine, and reports per-query decisions plus throughput and
// cache statistics.
//
//   relcomp_cli setting.rcp [more_queries.rcp ...] \
//       [--problem rcdp-strong,rcdp-weak] [--workers N] [--cache N]
//       [--repeat K] [--instance NAME] [--minstance NAME] [--compare]
//
// Extra query files are parsed against the setting file's declarations (the
// texts are concatenated), so a query stream needs no schema boilerplate.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/parser.h"

using namespace relcomp;

namespace {

struct CliOptions {
  std::vector<std::string> files;
  std::vector<ProblemKind> problems = {ProblemKind::kRcdpStrong};
  size_t workers = 4;
  size_t cache = 1024;
  size_t repeat = 1;
  std::string instance_name;
  std::string minstance_name;
  bool compare = false;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "relcomp_cli: %s\n", message.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

/// Picks instances.at(name) — an explicitly requested name that does not
/// exist is a hard error (silently auditing another block would report
/// verdicts about the wrong database). With no name: `fallback`, then the
/// first declared block, then the empty instance over `schema`.
Instance PickInstance(const std::map<std::string, Instance>& instances,
                      const std::string& name, const char* flag,
                      const std::string& fallback,
                      const DatabaseSchema& schema) {
  if (!name.empty()) {
    auto it = instances.find(name);
    if (it == instances.end()) {
      std::fprintf(stderr,
                   "relcomp_cli: %s '%s' names no declared block\n", flag,
                   name.c_str());
      std::exit(1);
    }
    return it->second;
  }
  auto it = instances.find(fallback);
  if (it != instances.end()) return it->second;
  if (!instances.empty()) return instances.begin()->second;
  return Instance(schema);
}

/// Strict decimal parse for flag values; exits with a clean message on
/// anything std::strtoull would swallow or throw on.
size_t ParseCount(const char* flag, const std::string& text) {
  if (text.empty() ||
      !std::isdigit(static_cast<unsigned char>(text.front()))) {
    std::fprintf(stderr, "relcomp_cli: %s expects a number, got '%s'\n", flag,
                 text.c_str());
    std::exit(1);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "relcomp_cli: %s expects a number, got '%s'\n", flag,
                 text.c_str());
    std::exit(1);
  }
  return static_cast<size_t>(value);
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "relcomp_cli: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--problem") {
      cli.problems.clear();
      for (const std::string& name : SplitCommas(next("--problem"))) {
        Result<ProblemKind> kind = ParseProblemKind(name);
        if (!kind.ok()) return Fail(kind.status().ToString());
        cli.problems.push_back(*kind);
      }
      if (cli.problems.empty()) {
        return Fail("--problem lists no problem kinds");
      }
    } else if (arg == "--workers") {
      cli.workers = ParseCount("--workers", next("--workers"));
    } else if (arg == "--cache") {
      cli.cache = ParseCount("--cache", next("--cache"));
    } else if (arg == "--repeat") {
      cli.repeat = ParseCount("--repeat", next("--repeat"));
    } else if (arg == "--instance") {
      cli.instance_name = next("--instance");
    } else if (arg == "--minstance") {
      cli.minstance_name = next("--minstance");
    } else if (arg == "--compare") {
      cli.compare = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: relcomp_cli <setting.rcp> [queries.rcp ...]\n"
          "  --problem K1,K2   problem kinds (rcdp-strong rcdp-weak\n"
          "                    rcdp-viable rcqp-strong rcqp-weak\n"
          "                    minp-strong minp-viable minp-weak)\n"
          "  --workers N       worker threads (default 4)\n"
          "  --cache N         LRU capacity, 0 disables (default 1024)\n"
          "  --repeat K        submit the workload K times (default 1)\n"
          "  --instance NAME   audited instance block (default: db/first)\n"
          "  --minstance NAME  master data block (default: dm/first)\n"
          "  --compare         also time cold per-call decider dispatch\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown flag '" + arg + "' (see --help)");
    } else {
      cli.files.push_back(arg);
    }
  }
  if (cli.files.empty()) return Fail("no input files (see --help)");
  if (cli.repeat == 0) cli.repeat = 1;

  // Parse the setting file; extra query files see its declarations.
  std::string setting_text;
  if (!ReadFile(cli.files[0], &setting_text)) {
    return Fail("cannot read '" + cli.files[0] + "'");
  }
  Result<ParsedProgram> base = ParseProgram(setting_text);
  if (!base.ok()) {
    return Fail(cli.files[0] + ": " + base.status().ToString());
  }

  std::vector<std::pair<std::string, Query>> workload(base->queries.begin(),
                                                      base->queries.end());
  for (size_t f = 1; f < cli.files.size(); ++f) {
    std::string query_text;
    if (!ReadFile(cli.files[f], &query_text)) {
      return Fail("cannot read '" + cli.files[f] + "'");
    }
    Result<ParsedProgram> merged =
        ParseProgram(setting_text + "\n" + query_text);
    if (!merged.ok()) {
      return Fail(cli.files[f] + ": " + merged.status().ToString());
    }
    for (auto& [name, query] : merged->queries) {
      if (base->queries.count(name)) continue;  // setting's own queries
      workload.emplace_back(cli.files[f] + ":" + name, query);
    }
  }
  if (workload.empty()) return Fail("no queries declared in the input files");

  PartiallyClosedSetting setting;
  setting.schema = base->schema;
  setting.master_schema = base->master_schema;
  setting.dm = PickInstance(base->minstances, cli.minstance_name,
                            "--minstance", "dm", base->master_schema);
  setting.ccs = base->ccs;

  Instance db = PickInstance(base->instances, cli.instance_name, "--instance",
                             "db", base->schema);
  CInstance audited = CInstance::FromInstance(db);

  EngineOptions engine_options;
  engine_options.num_workers = cli.workers;
  engine_options.cache_capacity = cli.cache;
  engine_options.memoize = cli.cache > 0;

  auto prep_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<CompletenessEngine>> engine =
      CompletenessEngine::Create(setting, engine_options);
  if (!engine.ok()) return Fail(engine.status().ToString());
  auto prep_end = std::chrono::steady_clock::now();

  // One batch of queries × problems; --repeat resubmits the same batch (the
  // serving-traffic regime) rather than materializing K copies up front.
  std::vector<std::string> labels;
  std::vector<DecisionRequest> requests;
  for (const auto& [name, query] : workload) {
    for (ProblemKind kind : cli.problems) {
      DecisionRequest request;
      request.kind = kind;
      request.query = query;
      request.cinstance = audited;
      requests.push_back(std::move(request));
      labels.push_back(name + " / " + ProblemKindName(kind));
    }
  }
  size_t total_requests = requests.size() * cli.repeat;

  auto batch_start = std::chrono::steady_clock::now();
  std::vector<Decision> decisions = (*engine)->SubmitBatch(requests);
  for (size_t r = 1; r < cli.repeat; ++r) {
    (*engine)->SubmitBatch(requests);
  }
  auto batch_end = std::chrono::steady_clock::now();

  std::printf("=== decisions (%zu queries x %zu problems) ===\n",
              workload.size(), cli.problems.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    std::printf("  %-40s %s\n", labels[i].c_str(),
                decisions[i].ToString().c_str());
  }

  double prep_s = Seconds(prep_start, prep_end);
  double batch_s = Seconds(batch_start, batch_end);
  std::printf("\n=== engine ===\n");
  std::printf("  prepare      %.3f ms (validation, Adom seed, projections)\n",
              prep_s * 1e3);
  std::printf("  batch        %zu requests in %.3f ms  (%.0f req/s, %zu workers)\n",
              total_requests, batch_s * 1e3,
              batch_s > 0 ? total_requests / batch_s : 0.0, cli.workers);
  std::printf("  counters     %s\n", (*engine)->counters().ToString().c_str());

  if (cli.compare) {
    auto cold_start = std::chrono::steady_clock::now();
    size_t mismatches = 0;
    for (size_t r = 0; r < cli.repeat; ++r) {
      for (size_t i = 0; i < requests.size(); ++i) {
        Decision cold = DecideCold(requests[i], setting);
        if (r == 0 && (cold.status.ok() != decisions[i].status.ok() ||
                       (cold.status.ok() &&
                        cold.answer != decisions[i].answer))) {
          ++mismatches;
        }
      }
    }
    auto cold_end = std::chrono::steady_clock::now();
    double cold_s = Seconds(cold_start, cold_end);
    std::printf("\n=== cold per-call dispatch (no prepared setting) ===\n");
    std::printf("  %zu requests in %.3f ms  (%.0f req/s)\n", total_requests,
                cold_s * 1e3, cold_s > 0 ? total_requests / cold_s : 0.0);
    std::printf("  speedup      %.2fx%s\n",
                batch_s > 0 ? cold_s / batch_s : 0.0,
                mismatches == 0 ? "  (answers agree)"
                                : "  (ANSWER MISMATCH!)");
    if (mismatches != 0) return 2;
  }
  return 0;
}
