// relcomp_cli: batch completeness auditing from the command line.
//
// Loads one or more partially closed settings (schema, master data, CCs,
// instances) plus a stream of queries from program files in the textual
// language of query/parser.h, fans the resulting decision requests through a
// multi-setting CompletenessService, and reports per-query decisions plus
// throughput and cache statistics.
//
//   relcomp_cli setting.rcp [more_queries.rcp ...]
//       [--problem rcdp-strong,rcdp-weak] [--workers N] [--cache N]
//       [--repeat K] [--instance NAME] [--minstance NAME]
//       [--compare] [--witness]
//   relcomp_cli --setting a.rcp --setting b.rcp [more_queries.rcp ...] ...
//
// With --setting flags, every named file contributes its own setting and
// workload; the workloads are interleaved request by request in one batch,
// each routed to its shard by handle (identical settings deduplicate onto
// one shard). Extra positional query files are parsed against each
// setting's declarations (the texts are concatenated), so a query stream
// needs no schema boilerplate.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/socket.h"
#include "service/service.h"
#include "query/parser.h"

using namespace relcomp;

namespace {

struct CliOptions {
  std::vector<std::string> setting_files;  // --setting; else files[0]
  std::vector<std::string> files;          // positional: query streams
  std::vector<ProblemKind> problems = {ProblemKind::kRcdpStrong};
  size_t workers = 4;
  size_t cache = 1024;
  size_t repeat = 1;
  std::string instance_name;
  std::string minstance_name;
  bool compare = false;
  bool witness = false;
  // Scheduler knobs. --weight / --max-queue bind to the most recent
  // --setting (or set the default for all settings when given first).
  sched::SchedPolicy policy = sched::SchedPolicy::kFifo;
  sched::OverloadPolicy overload = sched::OverloadPolicy::kBlock;
  sched::Priority priority = sched::Priority::kNormal;
  uint64_t deadline_ms = 0;  // 0 = none
  uint64_t max_steps = 0;    // 0 = keep the built-in decider budget
  bool checkpoint_set = false;
  uint64_t checkpoint_interval = 0;  // with checkpoint_set: 0 disables
  bool stream = false;
  uint32_t default_weight = 1;
  size_t default_max_queue = 0;  // 0 = unbounded
  std::vector<uint32_t> weights;     // parallel to setting_files
  std::vector<size_t> max_queues;    // parallel to setting_files
  // Cache lifecycle knobs. --cache-floor binds to the most recent --setting
  // (or sets the default), like --weight.
  size_t cache_budget_bytes = 0;  // 0 = unbounded
  size_t default_cache_floor = 0;
  std::vector<size_t> cache_floors;  // parallel to setting_files
  std::string cache_save;  // snapshot path written after the batch
  std::string cache_load;  // snapshot path loaded before registration
  bool cache_stats = false;
  // Observability knobs.
  std::string metrics_dump;   // "" = off, else "prom" | "json"
  uint64_t trace_sample = 0;  // sample every Nth submission (0 = off)
  size_t slow_log = 0;        // keep the N worst traces (0 = off)
  std::string trace_dump;     // write a Chrome/Perfetto trace JSON here
  size_t trace_ring = 0;      // retained traces (0 + --trace-dump = 256)
  bool obs_report = false;    // print the ObsReport() dashboard
  uint64_t recorder_interval_ms = 0;  // flight-recorder cadence (0 = off)
  uint64_t watchdog_stall_us = 0;     // stall threshold (0 = off)
  std::string obs_listen;  // HOST:PORT for the live endpoint ("" = off)
  uint64_t serve_ms = 0;   // keep serving this long after the reports
};

/// One registered setting and its share of the workload.
struct SettingWorkload {
  std::string file;
  PartiallyClosedSetting setting;
  CInstance audited;
  SettingHandle handle;
  std::vector<std::string> labels;
  std::vector<DecisionRequest> requests;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "relcomp_cli: %s\n", message.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

/// Picks instances.at(name) — an explicitly requested name that does not
/// exist is a hard error (silently auditing another block would report
/// verdicts about the wrong database). With no name: `fallback`, then the
/// first declared block, then the empty instance over `schema`.
Instance PickInstance(const std::map<std::string, Instance>& instances,
                      const std::string& name, const char* flag,
                      const std::string& fallback,
                      const DatabaseSchema& schema) {
  if (!name.empty()) {
    auto it = instances.find(name);
    if (it == instances.end()) {
      std::fprintf(stderr,
                   "relcomp_cli: %s '%s' names no declared block\n", flag,
                   name.c_str());
      std::exit(1);
    }
    return it->second;
  }
  auto it = instances.find(fallback);
  if (it != instances.end()) return it->second;
  if (!instances.empty()) return instances.begin()->second;
  return Instance(schema);
}

/// Strict decimal parse for flag values; exits with a clean message on
/// anything std::strtoull would swallow or throw on.
size_t ParseCount(const char* flag, const std::string& text) {
  if (text.empty() ||
      !std::isdigit(static_cast<unsigned char>(text.front()))) {
    std::fprintf(stderr, "relcomp_cli: %s expects a number, got '%s'\n", flag,
                 text.c_str());
    std::exit(1);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "relcomp_cli: %s expects a number, got '%s'\n", flag,
                 text.c_str());
    std::exit(1);
  }
  return static_cast<size_t>(value);
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Decision text plus its end-to-end latency (the service stamps every
/// delivery; 0 = never went through the service).
std::string WithLatency(const Decision& decision) {
  std::string out = decision.ToString();
  if (decision.latency_micros != 0) {
    out += "  " + std::to_string(decision.latency_micros) + "us";
  }
  return out;
}

/// Parses one setting file (plus the shared query streams) into a workload.
/// Exits with a message on any parse or file error.
SettingWorkload LoadSetting(const std::string& setting_file,
                            const std::vector<std::string>& query_files,
                            const CliOptions& cli) {
  SettingWorkload load;
  load.file = setting_file;

  std::string setting_text;
  if (!ReadFile(setting_file, &setting_text)) {
    std::exit(Fail("cannot read '" + setting_file + "'"));
  }
  Result<ParsedProgram> base = ParseProgram(setting_text);
  if (!base.ok()) {
    std::exit(Fail(setting_file + ": " + base.status().ToString()));
  }

  std::vector<std::pair<std::string, Query>> workload(base->queries.begin(),
                                                      base->queries.end());
  for (const std::string& query_file : query_files) {
    std::string query_text;
    if (!ReadFile(query_file, &query_text)) {
      std::exit(Fail("cannot read '" + query_file + "'"));
    }
    Result<ParsedProgram> merged =
        ParseProgram(setting_text + "\n" + query_text);
    if (!merged.ok()) {
      std::exit(Fail(query_file + ": " + merged.status().ToString()));
    }
    for (auto& [name, query] : merged->queries) {
      if (base->queries.count(name)) continue;  // setting's own queries
      workload.emplace_back(query_file + ":" + name, query);
    }
  }
  if (workload.empty()) {
    std::exit(Fail("no queries declared in '" + setting_file +
                   "' or the query files"));
  }

  load.setting.schema = base->schema;
  load.setting.master_schema = base->master_schema;
  load.setting.dm = PickInstance(base->minstances, cli.minstance_name,
                                 "--minstance", "dm", base->master_schema);
  load.setting.ccs = base->ccs;
  load.audited = CInstance::FromInstance(
      PickInstance(base->instances, cli.instance_name, "--instance", "db",
                   base->schema));

  for (const auto& [name, query] : workload) {
    for (ProblemKind kind : cli.problems) {
      DecisionRequest request;
      request.kind = kind;
      request.query = query;
      request.cinstance = load.audited;
      request.want_witness = cli.witness;
      if (cli.max_steps != 0) request.options.max_steps = cli.max_steps;
      if (cli.checkpoint_set) {
        request.options.checkpoint_interval = cli.checkpoint_interval;
      }
      load.requests.push_back(std::move(request));
      load.labels.push_back(name + " / " + std::string(ProblemKindName(kind)));
    }
  }
  return load;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "relcomp_cli: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--setting") {
      cli.setting_files.push_back(next("--setting"));
      cli.weights.push_back(cli.default_weight);
      cli.max_queues.push_back(cli.default_max_queue);
      cli.cache_floors.push_back(cli.default_cache_floor);
    } else if (arg == "--weight") {
      const size_t weight = ParseCount("--weight", next("--weight"));
      if (cli.weights.empty()) {
        cli.default_weight = static_cast<uint32_t>(weight);
      } else {
        cli.weights.back() = static_cast<uint32_t>(weight);
      }
    } else if (arg == "--max-queue") {
      const size_t quota = ParseCount("--max-queue", next("--max-queue"));
      if (cli.max_queues.empty()) {
        cli.default_max_queue = quota;
      } else {
        cli.max_queues.back() = quota;
      }
    } else if (arg == "--policy") {
      const std::string name = next("--policy");
      if (name == "fifo") {
        cli.policy = sched::SchedPolicy::kFifo;
      } else if (name == "fair") {
        cli.policy = sched::SchedPolicy::kFairShare;
      } else {
        return Fail("--policy expects 'fifo' or 'fair', got '" + name + "'");
      }
    } else if (arg == "--overload") {
      const std::string name = next("--overload");
      if (name == "block") {
        cli.overload = sched::OverloadPolicy::kBlock;
      } else if (name == "reject") {
        cli.overload = sched::OverloadPolicy::kReject;
      } else {
        return Fail("--overload expects 'block' or 'reject', got '" + name +
                    "'");
      }
    } else if (arg == "--priority") {
      const std::string name = next("--priority");
      if (name == "high") {
        cli.priority = sched::Priority::kHigh;
      } else if (name == "normal") {
        cli.priority = sched::Priority::kNormal;
      } else if (name == "low") {
        cli.priority = sched::Priority::kLow;
      } else {
        return Fail("--priority expects high|normal|low, got '" + name + "'");
      }
    } else if (arg == "--deadline-ms") {
      cli.deadline_ms = ParseCount("--deadline-ms", next("--deadline-ms"));
    } else if (arg == "--max-steps") {
      cli.max_steps = ParseCount("--max-steps", next("--max-steps"));
      if (cli.max_steps == 0) {
        return Fail("--max-steps expects a positive step budget");
      }
    } else if (arg == "--checkpoint-interval") {
      cli.checkpoint_interval =
          ParseCount("--checkpoint-interval", next("--checkpoint-interval"));
      cli.checkpoint_set = true;
    } else if (arg == "--stream") {
      cli.stream = true;
    } else if (arg == "--cache-budget-bytes") {
      cli.cache_budget_bytes =
          ParseCount("--cache-budget-bytes", next("--cache-budget-bytes"));
    } else if (arg == "--cache-floor") {
      const size_t floor = ParseCount("--cache-floor", next("--cache-floor"));
      if (cli.cache_floors.empty()) {
        cli.default_cache_floor = floor;
      } else {
        cli.cache_floors.back() = floor;
      }
    } else if (arg == "--cache-save") {
      cli.cache_save = next("--cache-save");
    } else if (arg == "--cache-load") {
      cli.cache_load = next("--cache-load");
    } else if (arg == "--cache-stats") {
      cli.cache_stats = true;
    } else if (arg == "--metrics-dump") {
      cli.metrics_dump = next("--metrics-dump");
      if (cli.metrics_dump != "prom" && cli.metrics_dump != "json") {
        return Fail("--metrics-dump expects 'prom' or 'json', got '" +
                    cli.metrics_dump + "'");
      }
    } else if (arg == "--trace-sample") {
      cli.trace_sample = ParseCount("--trace-sample", next("--trace-sample"));
    } else if (arg == "--slow-log") {
      cli.slow_log = ParseCount("--slow-log", next("--slow-log"));
    } else if (arg == "--trace-dump") {
      cli.trace_dump = next("--trace-dump");
    } else if (arg == "--trace-ring") {
      cli.trace_ring = ParseCount("--trace-ring", next("--trace-ring"));
    } else if (arg == "--obs-report") {
      cli.obs_report = true;
    } else if (arg == "--recorder-interval-ms") {
      cli.recorder_interval_ms = ParseCount("--recorder-interval-ms",
                                            next("--recorder-interval-ms"));
    } else if (arg == "--watchdog-stall-us") {
      cli.watchdog_stall_us =
          ParseCount("--watchdog-stall-us", next("--watchdog-stall-us"));
    } else if (arg == "--obs-listen") {
      cli.obs_listen = next("--obs-listen");
      if (cli.obs_listen.rfind(':') == std::string::npos) {
        return Fail("--obs-listen expects HOST:PORT, got '" + cli.obs_listen +
                    "'");
      }
    } else if (arg == "--serve-ms") {
      cli.serve_ms = ParseCount("--serve-ms", next("--serve-ms"));
    } else if (arg == "--problem") {
      cli.problems.clear();
      for (const std::string& name : SplitCommas(next("--problem"))) {
        Result<ProblemKind> kind = ParseProblemKind(name);
        if (!kind.ok()) return Fail(kind.status().ToString());
        cli.problems.push_back(*kind);
      }
      if (cli.problems.empty()) {
        return Fail("--problem lists no problem kinds");
      }
    } else if (arg == "--workers") {
      cli.workers = ParseCount("--workers", next("--workers"));
    } else if (arg == "--cache") {
      cli.cache = ParseCount("--cache", next("--cache"));
    } else if (arg == "--repeat") {
      cli.repeat = ParseCount("--repeat", next("--repeat"));
    } else if (arg == "--instance") {
      cli.instance_name = next("--instance");
    } else if (arg == "--minstance") {
      cli.minstance_name = next("--minstance");
    } else if (arg == "--compare") {
      cli.compare = true;
    } else if (arg == "--witness") {
      cli.witness = true;
    } else if (arg == "--help" || arg == "-h") {
      std::string kinds;
      for (ProblemKind kind : AllProblemKinds()) {
        if (!kinds.empty()) kinds += " ";
        kinds += ProblemKindName(kind);
      }
      std::printf(
          "usage: relcomp_cli <setting.rcp> [queries.rcp ...]\n"
          "       relcomp_cli --setting a.rcp --setting b.rcp [queries.rcp ...]\n"
          "  --setting FILE    register FILE as a setting (repeatable;\n"
          "                    identical settings share one shard)\n"
          "  --problem K1,K2   problem kinds (%s)\n"
          "  --workers N       shared worker threads (default 4)\n"
          "  --cache N         LRU capacity per setting, 0 disables (default 1024)\n"
          "  --repeat K        submit the workload K times (default 1)\n"
          "  --instance NAME   audited instance block (default: db/first)\n"
          "  --minstance NAME  master data block (default: dm/first)\n"
          "  --compare         also time cold per-call decider dispatch\n"
          "  --witness         request counterexample witnesses\n"
          "scheduler:\n"
          "  --policy P        queue policy: fifo (default) | fair\n"
          "  --weight W        fair-share weight of the preceding --setting\n"
          "                    (before any --setting: default for all)\n"
          "  --max-queue N     in-queue quota of the preceding --setting,\n"
          "                    0 = unbounded (before any --setting: default)\n"
          "  --overload P      over-quota behavior: block (default) | reject\n"
          "  --priority P      request priority: high | normal | low\n"
          "  --deadline-ms N   deadline per submission round; queued requests\n"
          "                    past it are shed, and RUNNING evaluations abort\n"
          "                    at the next cooperative checkpoint\n"
          "  --max-steps N     decider step budget per request (default %llu;\n"
          "                    exhaustion reports kResourceExhausted)\n"
          "  --checkpoint-interval N\n"
          "                    steps between deadline/cancel polls inside the\n"
          "                    search loops (rounded to a power of two;\n"
          "                    0 disables mid-run aborting)\n"
          "  --stream          deliver decisions incrementally as they\n"
          "                    complete (SubmitStream) instead of one batch\n"
          "cache lifecycle:\n"
          "  --cache-budget-bytes N\n"
          "                    ONE byte budget shared by every setting's\n"
          "                    cache (witness-weighted entries; coldest\n"
          "                    shard evicted first); 0 = unbounded\n"
          "  --cache-floor N   byte floor of the preceding --setting: peer\n"
          "                    budget pressure never evicts it below this\n"
          "                    (before any --setting: default for all)\n"
          "  --cache-load F    load a cache snapshot before registration;\n"
          "                    settings with matching fingerprints warm-\n"
          "                    start and serve prior decisions as hits\n"
          "  --cache-save F    snapshot every setting's cache to F after\n"
          "                    the batch (versioned, checksummed, atomic)\n"
          "  --cache-stats     print per-setting cache stats (entries,\n"
          "                    bytes, hit ratio, evictions, admission\n"
          "                    rejects, restored entries)\n"
          "observability:\n"
          "  --metrics-dump F  print every metric after the batch: 'prom'\n"
          "                    (Prometheus text format) or 'json'\n"
          "  --trace-sample N  sample every Nth submission into a span\n"
          "                    timeline (admit, queue, evaluate, cache\n"
          "                    outcome); 0 = off\n"
          "  --slow-log N      keep and print the N slowest sampled\n"
          "                    request timelines (needs --trace-sample)\n"
          "  --trace-dump F    write retained traces to F as Chrome\n"
          "                    trace_event JSON (open in ui.perfetto.dev);\n"
          "                    per-worker rows nest each evaluation's\n"
          "                    per-loop sub-slices (needs --trace-sample)\n"
          "  --trace-ring N    retain the last N finished traces for\n"
          "                    --trace-dump (default 256 when dumping)\n"
          "  --obs-report      print the operational dashboard (windowed\n"
          "                    rates, active evaluations, flight recorder)\n"
          "  --recorder-interval-ms N  sample system vitals into the\n"
          "                    flight recorder every N ms (0 = off)\n"
          "  --watchdog-stall-us N  flag evaluations whose checkpoints\n"
          "                    stop heartbeating for N us (0 = off)\n"
          "  --obs-listen HOST:PORT\n"
          "                    serve the live observability endpoint\n"
          "                    (/metrics, /traces, /report, /healthz, ...)\n"
          "                    while the batch runs; PORT 0 picks a free\n"
          "                    port and prints it\n"
          "  --serve-ms N      keep the endpoint up N ms after the final\n"
          "                    reports (so a scraper can collect them)\n",
          kinds.c_str(),
          static_cast<unsigned long long>(SearchOptions::kDefaultMaxSteps));
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown flag '" + arg + "' (see --help)");
    } else {
      cli.files.push_back(arg);
    }
  }
  std::vector<std::string> query_files = cli.files;
  if (cli.setting_files.empty()) {
    // Legacy shape: the first positional file is the setting.
    if (cli.files.empty()) return Fail("no input files (see --help)");
    cli.setting_files.push_back(cli.files[0]);
    cli.weights.push_back(cli.default_weight);
    cli.max_queues.push_back(cli.default_max_queue);
    cli.cache_floors.push_back(cli.default_cache_floor);
    query_files.erase(query_files.begin());
  }
  if (cli.repeat == 0) cli.repeat = 1;

  std::vector<SettingWorkload> loads;
  loads.reserve(cli.setting_files.size());
  for (const std::string& setting_file : cli.setting_files) {
    loads.push_back(LoadSetting(setting_file, query_files, cli));
  }

  ServiceOptions service_options;
  service_options.num_workers = cli.workers;
  service_options.cache_capacity = cli.cache;
  service_options.cache_budget_bytes = cli.cache_budget_bytes;
  service_options.memoize = cli.cache > 0;
  service_options.policy = cli.policy;
  service_options.overload = cli.overload;
  service_options.default_max_queue = cli.default_max_queue;
  service_options.trace_sample = cli.trace_sample;
  service_options.slow_log = cli.slow_log;
  service_options.trace_ring =
      cli.trace_ring > 0 ? cli.trace_ring
                         : (cli.trace_dump.empty() ? 0 : 256);
  service_options.recorder_interval_ms = cli.recorder_interval_ms;
  service_options.watchdog_stall_micros = cli.watchdog_stall_us;

  CompletenessService service(service_options);
  // Warm start BEFORE registration: staged snapshot entries are replayed
  // into each matching setting's cache as it registers.
  if (!cli.cache_load.empty()) {
    Result<size_t> staged = service.LoadCaches(cli.cache_load);
    if (!staged.ok()) {
      return Fail(cli.cache_load + ": " + staged.status().ToString());
    }
    std::printf("cache snapshot '%s': %zu setting image(s) staged\n",
                cli.cache_load.c_str(), *staged);
  }
  auto prep_start = std::chrono::steady_clock::now();
  for (size_t s = 0; s < loads.size(); ++s) {
    SettingWorkload& load = loads[s];
    ShardOptions shard_options;
    shard_options.weight = cli.weights[s];
    shard_options.max_queue = cli.max_queues[s];
    shard_options.cache_floor_bytes = cli.cache_floors[s];
    Result<SettingHandle> handle =
        service.RegisterSetting(load.setting, shard_options);
    if (!handle.ok()) {
      return Fail(load.file + ": " + handle.status().ToString());
    }
    load.handle = *handle;
  }
  auto prep_end = std::chrono::steady_clock::now();

  // Start the live endpoint BEFORE the batch so scrapes can overlap the
  // contended workload — that concurrency is the whole point of serving.
  if (!cli.obs_listen.empty()) {
    const size_t colon = cli.obs_listen.rfind(':');
    obs::ObsHttpOptions obs_options;
    obs_options.host = cli.obs_listen.substr(0, colon);
    obs_options.port = static_cast<uint16_t>(
        ParseCount("--obs-listen port", cli.obs_listen.substr(colon + 1)));
    Status served = service.ServeObs(obs_options);
    if (!served.ok()) {
      return Fail(cli.obs_listen + ": " + served.ToString());
    }
    std::printf("obs: listening on http://%s:%u/\n", obs_options.host.c_str(),
                service.obs_port());
    std::fflush(stdout);
  }

  // One batch interleaving every setting's requests round-robin — the
  // multi-tenant traffic shape; --repeat resubmits the same batch (the
  // serving-traffic regime) rather than materializing K copies up front.
  std::vector<ServiceRequest> batch;
  std::vector<std::pair<size_t, size_t>> origin;  // batch slot → (load, local)
  size_t widest = 0;
  for (const SettingWorkload& load : loads) {
    widest = std::max(widest, load.requests.size());
  }
  for (size_t k = 0; k < widest; ++k) {
    for (size_t s = 0; s < loads.size(); ++s) {
      if (k >= loads[s].requests.size()) continue;
      ServiceRequest request{loads[s].handle, loads[s].requests[k]};
      request.sched.priority = cli.priority;
      batch.push_back(std::move(request));
      origin.emplace_back(s, k);
    }
  }
  size_t total_requests = batch.size() * cli.repeat;

  // Deadlines are armed per submission round: a --deadline-ms budget is
  // relative to when the round enters the queue, not to process start.
  auto arm_deadlines = [&batch, &cli] {
    if (cli.deadline_ms == 0) return;
    const sched::TimePoint deadline = sched::DeadlineAfterMs(cli.deadline_ms);
    for (ServiceRequest& request : batch) request.sched.deadline = deadline;
  };

  std::vector<Decision> decisions(batch.size());
  auto batch_start = std::chrono::steady_clock::now();
  if (cli.stream) {
    // Streaming submission: decisions arrive (and print) as they
    // complete, in completion order — no result vector materializes
    // inside the service.
    for (size_t r = 0; r < cli.repeat; ++r) {
      arm_deadlines();
      DecisionStream stream;
      service.SubmitStream(batch, &stream);
      StreamedDecision item;
      size_t arrived = 0;
      while (stream.Next(&item)) {
        if (r == 0) {
          const auto [s, k] = origin[item.index];
          std::printf("stream [%zu/%zu] %s: %-40s %s\n", ++arrived,
                      batch.size(), loads[s].file.c_str(),
                      loads[s].labels[k].c_str(),
                      WithLatency(item.decision).c_str());
          decisions[item.index] = std::move(item.decision);
        }
      }
    }
  } else {
    arm_deadlines();
    decisions = service.SubmitBatch(batch);
    for (size_t r = 1; r < cli.repeat; ++r) {
      arm_deadlines();
      service.SubmitBatch(batch);
    }
  }
  auto batch_end = std::chrono::steady_clock::now();

  // Re-scatter the interleaved decisions per setting for printing.
  std::vector<std::vector<Decision>> per_load(loads.size());
  for (size_t s = 0; s < loads.size(); ++s) {
    per_load[s].resize(loads[s].requests.size());
  }
  for (size_t i = 0; i < decisions.size(); ++i) {
    per_load[origin[i].first][origin[i].second] = decisions[i];
  }

  for (size_t s = 0; s < loads.size(); ++s) {
    const SettingWorkload& load = loads[s];
    std::printf("=== %s: decisions (%zu requests, handle %llu) ===\n",
                load.file.c_str(), load.requests.size(),
                static_cast<unsigned long long>(load.handle.id));
    for (size_t i = 0; i < load.labels.size(); ++i) {
      std::printf("  %-40s %s\n", load.labels[i].c_str(),
                  WithLatency(per_load[s][i]).c_str());
      if (cli.witness && per_load[s][i].witness != nullptr) {
        std::printf("    witness: %s\n",
                    per_load[s][i].witness->note.c_str());
      }
    }
  }

  // Abort causes across the first round's decisions: how many requests were
  // shed/aborted, and why (queue-time vs mid-run is visible in the shard
  // counters' shed_running/aborted_steps fields below).
  size_t n_expired = 0, n_cancelled = 0, n_rejected = 0, n_exhausted = 0;
  for (const Decision& decision : decisions) {
    switch (decision.status.code()) {
      case StatusCode::kDeadlineExceeded: ++n_expired; break;
      case StatusCode::kCancelled: ++n_cancelled; break;
      case StatusCode::kUnavailable: ++n_rejected; break;
      case StatusCode::kResourceExhausted: ++n_exhausted; break;
      default: break;
    }
  }

  double prep_s = Seconds(prep_start, prep_end);
  double batch_s = Seconds(batch_start, batch_end);
  std::printf("\n=== service ===\n");
  if (n_expired + n_cancelled + n_rejected + n_exhausted > 0) {
    std::printf("  aborts       deadline=%zu cancelled=%zu rejected=%zu "
                "budget-exhausted=%zu (of %zu decisions)\n",
                n_expired, n_cancelled, n_rejected, n_exhausted,
                decisions.size());
  }
  std::printf("  settings     %zu registered (%zu distinct shards)\n",
              loads.size(), service.num_settings());
  std::printf("  scheduler    %s policy, %s on overload%s\n",
              cli.policy == sched::SchedPolicy::kFairShare ? "fair-share"
                                                           : "fifo",
              cli.overload == sched::OverloadPolicy::kReject ? "reject"
                                                             : "block",
              cli.stream ? ", streaming delivery" : "");
  std::printf("  prepare      %.3f ms (validation, Adom seed, projections)\n",
              prep_s * 1e3);
  std::printf("  batch        %zu requests in %.3f ms  (%.0f req/s, %zu workers)\n",
              total_requests, batch_s * 1e3,
              batch_s > 0 ? total_requests / batch_s : 0.0, cli.workers);
  // One counters line per distinct shard: files that deduped onto the same
  // handle share one cache and one set of counters, so printing them per
  // file would double-count the shared shard's work.
  std::vector<uint64_t> printed;
  for (const SettingWorkload& load : loads) {
    if (std::find(printed.begin(), printed.end(), load.handle.id) !=
        printed.end()) {
      continue;
    }
    printed.push_back(load.handle.id);
    std::string files;
    for (const SettingWorkload& other : loads) {
      if (other.handle != load.handle) continue;
      if (!files.empty()) files += " = ";
      files += other.file;
    }
    Result<EngineCounters> counters = service.counters(load.handle);
    if (counters.ok()) {
      std::printf("  counters[%s]  %s\n", files.c_str(),
                  counters->ToString().c_str());
    }
    // The EFFECTIVE per-setting cache configuration (kInherit resolved,
    // zeroed when memoization is off) — what the shard actually runs with.
    Result<ShardOptions> resolved = service.shard_options(load.handle);
    if (resolved.ok()) {
      std::printf("  cache[%s]  capacity=%zu floor_bytes=%zu",
                  files.c_str(), resolved->cache_capacity,
                  resolved->cache_floor_bytes);
      if (cli.cache_stats) {
        Result<cache::CacheStats> stats = service.CacheStats(load.handle);
        if (stats.ok()) {
          std::printf(
              " entries=%llu bytes=%llu hit_ratio=%.3f evictions=%llu "
              "admission_rejects=%llu restored=%llu",
              static_cast<unsigned long long>(stats->entries),
              static_cast<unsigned long long>(stats->bytes),
              stats->hit_ratio(),
              static_cast<unsigned long long>(stats->evictions),
              static_cast<unsigned long long>(stats->admission_rejects),
              static_cast<unsigned long long>(stats->restored));
        }
      }
      std::printf("\n");
    }
  }
  std::printf("  counters     %s\n", service.TotalCounters().ToString().c_str());
  if (cli.cache_budget_bytes != 0 || cli.cache_stats) {
    const EngineCounters total = service.TotalCounters();
    std::printf("  cache budget %zu bytes shared, %llu resident\n",
                cli.cache_budget_bytes,
                static_cast<unsigned long long>(total.cache_bytes));
  }
  if (!cli.cache_save.empty()) {
    Status saved = service.SaveCaches(cli.cache_save);
    if (!saved.ok()) {
      return Fail(cli.cache_save + ": " + saved.ToString());
    }
    std::printf("  cache snapshot written to '%s'\n", cli.cache_save.c_str());
  }

  if (cli.slow_log > 0) {
    const auto worst = service.SlowDecisions();
    std::printf("\n=== slow decisions (%zu of %zu kept, slowest first) ===\n",
                worst.size(), cli.slow_log);
    if (cli.trace_sample == 0) {
      std::printf("  (empty: --slow-log needs --trace-sample to feed it)\n");
    }
    for (const auto& entry : worst) {
      std::printf("%llu us  tenant=%s kind=%s%s%s\n",
                  static_cast<unsigned long long>(entry.micros),
                  entry.tenant.c_str(), entry.kind.c_str(),
                  entry.trace_id != 0
                      ? ("  trace#" + std::to_string(entry.trace_id)).c_str()
                      : "",
                  entry.note.empty() ? "" : ("  " + entry.note).c_str());
      if (entry.profile != nullptr) {
        std::printf("  search: %s\n", entry.profile->ToString().c_str());
      }
      if (entry.trace != nullptr) {
        std::printf("%s\n", entry.trace->ToString().c_str());
      }
    }
  }

  if (!cli.trace_dump.empty()) {
    std::ofstream out(cli.trace_dump, std::ios::binary | std::ios::trunc);
    if (!out) return Fail(cli.trace_dump + ": cannot open for writing");
    out << service.DumpTraces();
    if (!out.flush()) return Fail(cli.trace_dump + ": write failed");
    std::printf("\n  trace timeline written to '%s' (open in "
                "ui.perfetto.dev)\n",
                cli.trace_dump.c_str());
  }

  if (cli.obs_report) {
    std::printf("\n%s", service.ObsReport().c_str());
  }

  if (cli.compare) {
    auto cold_start = std::chrono::steady_clock::now();
    size_t mismatches = 0;
    for (size_t r = 0; r < cli.repeat; ++r) {
      for (size_t i = 0; i < batch.size(); ++i) {
        const SettingWorkload& load = loads[origin[i].first];
        Decision cold = DecideCold(batch[i].request, load.setting);
        if (r == 0 && (cold.status.ok() != decisions[i].status.ok() ||
                       (cold.status.ok() &&
                        cold.answer != decisions[i].answer))) {
          ++mismatches;
        }
      }
    }
    auto cold_end = std::chrono::steady_clock::now();
    double cold_s = Seconds(cold_start, cold_end);
    std::printf("\n=== cold per-call dispatch (no prepared settings) ===\n");
    std::printf("  %zu requests in %.3f ms  (%.0f req/s)\n", total_requests,
                cold_s * 1e3, cold_s > 0 ? total_requests / cold_s : 0.0);
    std::printf("  speedup      %.2fx%s\n",
                batch_s > 0 ? cold_s / batch_s : 0.0,
                mismatches == 0 ? "  (answers agree)"
                                : "  (ANSWER MISMATCH!)");
    if (mismatches != 0) return 2;
  }

  // Metrics last: the dump reflects everything above, including --compare.
  if (!cli.metrics_dump.empty()) {
    std::printf("\n=== metrics (%s) ===\n%s", cli.metrics_dump.c_str(),
                service
                    .DumpMetrics(cli.metrics_dump == "json"
                                     ? obs::DumpFormat::kJson
                                     : obs::DumpFormat::kPrometheus)
                    .c_str());
  }
  if (!cli.obs_listen.empty() && cli.serve_ms > 0) {
    std::printf("\nobs: serving http://127.0.0.1:%u/ for %llu ms more "
                "(Ctrl-C to stop)\n",
                service.obs_port(),
                static_cast<unsigned long long>(cli.serve_ms));
    std::fflush(stdout);
    net::SleepForMs(cli.serve_ms);
  }
  return 0;
}
