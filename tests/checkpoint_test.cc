// Cooperative checkpoints inside the core search loops: SearchCheckpoint
// unit behavior (budget, amortized polling, interval rounding, the
// interval-0 escape hatch), per-decider units that a poisoned cancellation
// token or an already-expired deadline aborts every long enumeration within
// one checkpoint interval (with the abort code distinct from
// kResourceExhausted), and mid-run aborts of genuinely slow searches —
// cancellation from another thread and a deadline expiring while the
// decider runs — with partial SearchStats surviving the abort.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "core/bounded.h"
#include "core/certain.h"
#include "core/consistency.h"
#include "core/ground.h"
#include "core/minp.h"
#include "core/prepared_setting.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "sched/cancel.h"
#include "service/decision.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::AuditFixture;
using testing::MakeAuditFixture;
using testing::MakeSlowFixture;
using testing::S;
using testing::SlowFixture;

/// A token that was cancelled before the search even starts; the owning
/// source lives for the whole test binary.
CancelToken PoisonedToken() {
  static CancelSource* source = [] {
    auto* s = new CancelSource();
    s->Cancel();
    return s;
  }();
  return source->token();
}

SearchOptions WithPoisonedCancel(uint64_t interval = 1) {
  SearchOptions options;
  options.cancel = PoisonedToken();
  options.checkpoint_interval = interval;
  return options;
}

SearchOptions WithExpiredDeadline(uint64_t interval = 1) {
  SearchOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  options.checkpoint_interval = interval;
  return options;
}

// ---------------------------------------------------------------------------
// SearchCheckpoint unit behavior
// ---------------------------------------------------------------------------

TEST(SearchCheckpointTest, BudgetExhaustionKeepsItsCodeAndMessage) {
  SearchOptions options;
  options.max_steps = 3;
  SearchCheckpoint checkpoint(options, "unit search");
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  Status st = checkpoint.Tick();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("unit search"), std::string::npos);
  EXPECT_NE(st.message().find("step budget"), std::string::npos);
  EXPECT_EQ(checkpoint.steps(), 4u);
}

TEST(SearchCheckpointTest, PoisonedTokenAbortsAtTheFirstPoll) {
  SearchCheckpoint checkpoint(WithPoisonedCancel(/*interval=*/1), "unit");
  Status st = checkpoint.Tick();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(SearchCheckpointTest, PollsAreAmortizedToTheInterval) {
  // Interval 4: ticks 1..3 must not observe the poisoned token; tick 4 must.
  SearchCheckpoint checkpoint(WithPoisonedCancel(/*interval=*/4), "unit");
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  EXPECT_EQ(checkpoint.Tick().code(), StatusCode::kCancelled);
}

TEST(SearchCheckpointTest, IntervalRoundsUpToAPowerOfTwo) {
  // Interval 3 rounds to 4: the first poll happens at tick 4, not 3.
  SearchCheckpoint checkpoint(WithPoisonedCancel(/*interval=*/3), "unit");
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  EXPECT_OK(checkpoint.Tick());
  EXPECT_EQ(checkpoint.Tick().code(), StatusCode::kCancelled);
}

TEST(SearchCheckpointTest, ExpiredDeadlineAbortsWithDeadlineExceeded) {
  SearchCheckpoint checkpoint(WithExpiredDeadline(/*interval=*/1), "unit");
  EXPECT_EQ(checkpoint.Tick().code(), StatusCode::kDeadlineExceeded);
}

TEST(SearchCheckpointTest, IntervalZeroDisablesPollingButKeepsBudget) {
  SearchOptions options = WithPoisonedCancel(/*interval=*/0);
  options.max_steps = 8;
  SearchCheckpoint checkpoint(options, "unit");
  for (int i = 0; i < 8; ++i) EXPECT_OK(checkpoint.Tick());
  EXPECT_EQ(checkpoint.Tick().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Per-decider abort units: a poisoned token / expired deadline stops every
// long enumeration within one (tiny) checkpoint interval.
// ---------------------------------------------------------------------------

/// The kinds whose evaluation on the slow fixture reaches an enumeration
/// loop. kRcqpWeak is O(1) (no loop to abort) and kRcqpStrong takes the
/// IND PTIME path with no unbounded disjunct here; both are covered by the
/// dedicated RCQP tests below.
const std::vector<ProblemKind>& AbortableKinds() {
  static const std::vector<ProblemKind> kinds = {
      ProblemKind::kRcdpStrong, ProblemKind::kRcdpWeak,
      ProblemKind::kRcdpViable, ProblemKind::kMinpStrong,
      ProblemKind::kMinpViable, ProblemKind::kMinpWeak,
  };
  return kinds;
}

TEST(DeciderCheckpointTest, EveryKindAbortsOnAPoisonedToken) {
  SlowFixture fx = MakeSlowFixture(/*master_rows=*/8, /*vars=*/3);
  PreparedSetting prepared = PreparedSetting::Borrow(fx.setting);
  for (ProblemKind kind : AbortableKinds()) {
    DecisionRequest request = fx.Request(kind);
    request.options = WithPoisonedCancel();
    Decision decision = EvaluateRequest(request, prepared);
    EXPECT_EQ(decision.status.code(), StatusCode::kCancelled)
        << ProblemKindName(kind) << ": " << decision.status.ToString();
  }
}

TEST(DeciderCheckpointTest, EveryKindAbortsOnAnExpiredDeadline) {
  SlowFixture fx = MakeSlowFixture(/*master_rows=*/8, /*vars=*/3);
  PreparedSetting prepared = PreparedSetting::Borrow(fx.setting);
  for (ProblemKind kind : AbortableKinds()) {
    DecisionRequest request = fx.Request(kind);
    request.options = WithExpiredDeadline();
    Decision decision = EvaluateRequest(request, prepared);
    EXPECT_EQ(decision.status.code(), StatusCode::kDeadlineExceeded)
        << ProblemKindName(kind) << ": " << decision.status.ToString();
  }
}

TEST(DeciderCheckpointTest, RcqpBoundedSearchAborts) {
  AuditFixture fx = MakeAuditFixture();
  // A non-IND CC (a builtin in the body) forces the NEXPTIME-bounded DFS
  // instead of the Corollary 7.2 PTIME path.
  ConjunctiveQuery edi_visitors(
      {CTerm(VarId{0})}, {RelAtom{"Visit", {VarId{0}, VarId{1}}}},
      {CondAtom{CTerm(VarId{1}), /*neq=*/false, CTerm(S("EDI"))}});
  fx.setting.ccs.emplace_back("edi_known", std::move(edi_visitors),
                              "Patientm", std::vector<int>{0});
  ASSERT_FALSE(AllInds(fx.setting.ccs));
  Result<RcqpSearchResult> cancelled = RcqpStrongBounded(
      fx.by_patient, fx.setting, /*max_tuples=*/2, WithPoisonedCancel());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  Result<RcqpSearchResult> expired = RcqpStrongBounded(
      fx.by_patient, fx.setting, /*max_tuples=*/2, WithExpiredDeadline());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeciderCheckpointTest, RcqpIndValuationSearchAborts) {
  // An extra relation no IND covers gives the PTIME path an unbounded
  // disjunct, whose canonical-valuation search must checkpoint.
  AuditFixture fx = MakeAuditFixture();
  fx.setting.schema.AddRelation(
      RelationSchema("Lab", {Attribute{"code", Domain::Infinite()}}));
  ASSERT_TRUE(AllInds(fx.setting.ccs));
  Query lab_codes = Query::Cq(
      ConjunctiveQuery({CTerm(VarId{0})}, {RelAtom{"Lab", {VarId{0}}}}));
  Result<bool> cancelled =
      RcqpStrongInd(lab_codes, PreparedSetting::Borrow(fx.setting),
                    WithPoisonedCancel());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

TEST(DeciderCheckpointTest, GroundCertainAndConsistencySearchesAbort) {
  AuditFixture fx = MakeAuditFixture();
  PreparedSetting prepared = PreparedSetting::Borrow(fx.setting);
  Instance ground(fx.setting.schema);
  ground.AddTuple("Visit", {S("nhs-0"), S("EDI")});

  Result<bool> ground_abort = IsCompleteGroundAuto(
      fx.by_patient, ground, prepared, WithPoisonedCancel());
  EXPECT_EQ(ground_abort.status().code(), StatusCode::kCancelled);

  Result<bool> extensible =
      IsExtensible(prepared, ground, WithExpiredDeadline());
  EXPECT_EQ(extensible.status().code(), StatusCode::kDeadlineExceeded);

  Result<bool> consistent =
      IsConsistent(prepared, fx.audited, WithPoisonedCancel());
  EXPECT_EQ(consistent.status().code(), StatusCode::kCancelled);

  AdomContext adom = prepared.BuildAdom(fx.audited, &fx.by_patient);
  Result<CertainAnswersResult> certain = CertainAnswers(
      fx.by_patient, fx.audited, prepared, adom, WithExpiredDeadline(),
      nullptr);
  EXPECT_EQ(certain.status().code(), StatusCode::kDeadlineExceeded);

  Result<BoundedSearchResult> bounded = SearchIncompletenessGround(
      fx.by_patient, ground, fx.setting, /*max_added_tuples=*/2,
      WithPoisonedCancel());
  EXPECT_EQ(bounded.status().code(), StatusCode::kCancelled);
}

TEST(DeciderCheckpointTest, LargeIntervalNeverFiresOnShortSearches) {
  // Amortization is real: with the poll interval far above the fixture's
  // total step count, a poisoned token goes unobserved and the decider
  // still completes — the hot path paid no per-step poll.
  AuditFixture fx = MakeAuditFixture();
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;
  request.options = WithPoisonedCancel(/*interval=*/uint64_t{1} << 40);
  Decision decision =
      EvaluateRequest(request, PreparedSetting::Borrow(fx.setting));
  EXPECT_TRUE(decision.status.ok()) << decision.status.ToString();
}

// ---------------------------------------------------------------------------
// Mid-run aborts of genuinely slow searches
// ---------------------------------------------------------------------------

TEST(MidRunAbortTest, ConcurrentCancelStopsASlowSearchWithPartialStats) {
  // ~48^6 valuations to exhaust — unfinishable within the budget; the
  // cancel lands while the enumeration runs and must stop it at the next
  // checkpoint, leaving the partial stats in place.
  SlowFixture fx = MakeSlowFixture(/*master_rows=*/40, /*vars=*/6);
  CancelSource source;
  DecisionRequest request = fx.Request();
  request.options.max_steps = 20'000'000;
  request.options.cancel = source.token();

  SearchStats stats;
  std::future<Result<bool>> running = std::async(std::launch::async, [&] {
    return RcdpStrong(fx.query, fx.audited, fx.setting, request.options,
                      &stats);
  });
  // Let the search get properly inside the loop, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  source.Cancel();
  ASSERT_EQ(running.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "cancellation did not stop the running search";
  Result<bool> result = running.get();
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GT(stats.valuations, 0u) << "no partial stats survived the abort";
  EXPECT_LT(stats.valuations, request.options.max_steps)
      << "the search ran to budget exhaustion instead of aborting";
}

TEST(MidRunAbortTest, DeadlineExpiringMidRunAbortsTheSearch) {
  SlowFixture fx = MakeSlowFixture(/*master_rows=*/40, /*vars=*/6);
  DecisionRequest request = fx.Request();
  request.options.max_steps = 20'000'000;
  request.options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);

  const auto start = std::chrono::steady_clock::now();
  Decision decision =
      EvaluateRequest(request, PreparedSetting::Borrow(fx.setting));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(decision.status.code(), StatusCode::kDeadlineExceeded)
      << decision.status.ToString();
  EXPECT_GT(decision.stats.valuations, 0u);
  EXPECT_LT(decision.stats.valuations, request.options.max_steps);
  // The enforced deadline bounds shed latency to roughly the checkpoint
  // interval; anything near the full (budget-bounded) search time means
  // the abort never fired. Generous margin for slow CI machines.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);
}

}  // namespace
}  // namespace relcomp
